#!/usr/bin/env bash
# Tier-1 gate under AddressSanitizer+UBSan: configure, build, run the full
# test suite with the asan preset. Usage: scripts/check.sh [extra ctest args]
#
# For data-race hunting on the executor/network hot paths, use the tsan
# preset instead:
#   cmake --preset tsan && cmake --build --preset tsan -j --target test_executor_stress
#   ./build-tsan/tests/test_executor_stress
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ASAN_OPTIONS=detect_leaks=0 ctest --preset asan -j"$(nproc)" "$@"
