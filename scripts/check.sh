#!/usr/bin/env bash
# Tier-1 gate: (1) the full test suite under AddressSanitizer+UBSan, then
# (2) a bounded chaos soak (fault-injecting network + retry layer) under
# ThreadSanitizer, which exercises the timer/transport/engine lifecycle
# races ASan cannot see. Usage: scripts/check.sh [extra ctest args]
#
# For deeper data-race hunting on the executor/network hot paths, build the
# full tsan preset:
#   cmake --preset tsan && cmake --build --preset tsan -j && ctest --preset tsan
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ASAN_OPTIONS=detect_leaks=0 ctest --preset asan -j"$(nproc)" "$@"

# Bounded TSan chaos pass: a handful of transactions per client keeps the
# whole pass within ~2 minutes while still driving retries, duplicate
# replies, and flapping links through every engine flavour. The predict
# subset covers the concurrent predict/learn paths and the adaptive gate's
# storm/heal loop (supplier + observer hooks firing from engine threads).
# The engine-shard suite storms the sharded call tables, per-tree locks,
# and stat snapshots (DESIGN.md §6.4) with 8 client threads.
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target test_executor_stress test_transport test_chaos_soak test_predict \
  test_engine_shard
./build-tsan/tests/test_executor_stress
./build-tsan/tests/test_transport --gtest_filter='SimNetworkFaults.*'
./build-tsan/tests/test_predict \
  --gtest_filter='Predictors.ConcurrentPredictLearnStress:PredictEngineTest.*'
SPECRPC_CHAOS_TXNS=10 ./build-tsan/tests/test_chaos_soak
./build-tsan/tests/test_engine_shard

# Engine-scale smoke (reuses the asan build): sanity-check that the sharded
# engine beats the single-domain baseline at 8 client threads and that the
# bench's shutdown path is leak-free. Sanitizer overhead mutes the ratio —
# the ≥3× acceptance number (EXPERIMENTS.md) is for the release build.
cmake --build --preset asan -j"$(nproc)" --target perf_engine_scale
SPECRPC_ENGINE_SCALE_SECS=0.5 SPECRPC_ENGINE_SCALE_THREADS=8 \
  ./build-asan/bench/perf_engine_scale
