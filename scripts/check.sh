#!/usr/bin/env bash
# Tier-1 gate: (1) the full test suite under AddressSanitizer+UBSan, then
# (2) a bounded chaos soak (fault-injecting network + retry layer) under
# ThreadSanitizer, which exercises the timer/transport/engine lifecycle
# races ASan cannot see. Usage: scripts/check.sh [extra ctest args]
#
# For deeper data-race hunting on the executor/network hot paths, build the
# full tsan preset:
#   cmake --preset tsan && cmake --build --preset tsan -j && ctest --preset tsan
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ASAN_OPTIONS=detect_leaks=0 ctest --preset asan -j"$(nproc)" "$@"

# Bounded TSan chaos pass: a handful of transactions per client keeps the
# whole pass within ~2 minutes while still driving retries, duplicate
# replies, and flapping links through every engine flavour. The predict
# subset covers the concurrent predict/learn paths and the adaptive gate's
# storm/heal loop (supplier + observer hooks firing from engine threads).
# The engine-shard suite storms the sharded call tables, per-tree locks,
# and stat snapshots (DESIGN.md §6.4) with 8 client threads.
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target test_executor_stress test_transport test_chaos_soak test_predict \
  test_engine_shard test_overload test_batch test_batch_adaptive \
  test_reconfig rc_cluster_node
./build-tsan/tests/test_executor_stress
./build-tsan/tests/test_transport --gtest_filter='SimNetworkFaults.*'
# The real-TCP reactor suite under TSan: reactor sharding, wake coalescing,
# backpressure park/release, simultaneous-connect dedup, and the
# cross-process smoke (the TSan-built rc_cluster_node is pointed at
# explicitly so the children run instrumented too). DESIGN.md §10.
SPECRPC_CLUSTER_NODE_BIN=./build-tsan/src/rc/rc_cluster_node \
  ./build-tsan/tests/test_transport \
  --gtest_filter='TcpTransport.*:ProcessCluster.*'
./build-tsan/tests/test_predict \
  --gtest_filter='Predictors.ConcurrentPredictLearnStress:PredictEngineTest.*'
SPECRPC_CHAOS_TXNS=10 ./build-tsan/tests/test_chaos_soak
./build-tsan/tests/test_engine_shard
# Overload protection (DESIGN.md §11): the admission controller's admit()
# fast path + try_lock poll + tick() under an 8-thread storm, and the
# budget's exactly-once token accounting under the engine call paths.
./build-tsan/tests/test_overload
# Batch transactions (DESIGN.md §12): the full suite under TSan — the
# multi-shard batch storm drives 6 concurrent clients' speculative read
# chains, seed-store puts from engine threads, batch-id lock ownership,
# and the gauge's cross-thread accounting.
./build-tsan/tests/test_batch
# Adaptive batching (DESIGN.md §14): controller gate/climber units plus the
# multi-client phase-shift storm under TSan — controller next()/observe()
# from client threads, mid-run epoch resizing through the sized workload
# source, and seed poisoning racing the prediction manager's learn path.
./build-tsan/tests/test_batch_adaptive
# Live reconfiguration (DESIGN.md §13): the full suite under TSan — view
# installs racing closed-loop traffic, wrong-epoch NACK refresh from client
# threads, warming/pull state transfer, and the provider's epoch-monotone
# install under concurrent readers. The chaos epoch-flip variant (migrations
# mid-2PC under drop/dup/flap) already runs in the bounded chaos pass above.
./build-tsan/tests/test_reconfig

# Engine-scale smoke (reuses the asan build): sanity-check that the sharded
# engine beats the single-domain baseline at 8 client threads and that the
# bench's shutdown path is leak-free. Sanitizer overhead mutes the ratio —
# the ≥3× acceptance number (EXPERIMENTS.md) is for the release build.
cmake --build --preset asan -j"$(nproc)" --target perf_engine_scale perf_tcp
SPECRPC_ENGINE_SCALE_SECS=0.5 SPECRPC_ENGINE_SCALE_THREADS=8 \
  ./build-asan/bench/perf_engine_scale

# TCP transport smoke under ASan: short echo/pipeline A/B against the frozen
# baseline plus the 2-process cluster smoke inside the test suite above;
# the full fig9/fig13 cross-process points are release-build only (the
# cluster children would inherit sanitizer slowdowns and distort the
# orderings), so they are skipped here. Run from the build tree so the
# instrumented BENCH_tcp.json doesn't clobber the release one at the root.
(cd build-asan && SPECRPC_TCP_SECONDS=0.3 SPECRPC_TCP_SKIP_CLUSTER=1 \
  ./bench/perf_tcp)

# Overload-ramp smoke under ASan: tiny windows, low offered load — checks
# the budget/admission/shed paths and the bench's open-loop shutdown drain
# for leaks and lifetime bugs. The goodput acceptance numbers
# (EXPERIMENTS.md) are for the release build; the JSON here is noise.
cmake --build --preset asan -j"$(nproc)" --target perf_overload
(cd build-asan && SPECRPC_OVERLOAD_SECS=0.2 SPECRPC_OVERLOAD_FRACS=0.5,2 \
  SPECRPC_OVERLOAD_THREADS=4 ./bench/perf_overload)

# Batch-transactions smoke under ASan (DESIGN.md §12): tiny windows, one
# conflict point, process phase skipped (sanitized children would distort
# nothing useful here) — checks the planner/executor/group-commit paths
# and the epoch shutdown drain for leaks. The 1.5x acceptance number
# (EXPERIMENTS.md) is release-build only.
cmake --build --preset asan -j"$(nproc)" --target perf_batch
(cd build-asan && SPECRPC_BENCH_WARMUP_S=0.1 SPECRPC_BENCH_MEASURE_S=0.3 \
  SPECRPC_BATCH_HOTFRACS=0.5 SPECRPC_BATCH_SKIP_PROCESS=1 \
  SPECRPC_BATCH_NUM_KEYS=2000 ./bench/perf_batch)

# Adaptive-batching smoke under ASan (DESIGN.md §14): tiny windows over the
# low->high->low conflict schedule — drives the controller's regime reflex,
# probing, and mode gates across all four configs and checks the sized
# closed loop's shutdown drain for leaks. The within-10%/1.3x acceptance
# bars (EXPERIMENTS.md) are release-build only; the JSON here is noise.
cmake --build --preset asan -j"$(nproc)" --target perf_batch_adaptive
(cd build-asan && SPECRPC_BENCH_WARMUP_S=0.1 SPECRPC_BENCH_MEASURE_S=0.3 \
  ./bench/perf_batch_adaptive)

# Reconfiguration smoke under ASan (DESIGN.md §13): tiny windows — drives a
# live slot migration (view install broadcast, wrong-epoch NACK refresh,
# warming/pull state transfer) under closed-loop traffic and checks the
# counter audit (zero lost committed writes) for leaks and lifetime bugs.
# The ≥90% recovered-throughput acceptance (EXPERIMENTS.md) is
# release-build only; the sanitized ratios are noise.
cmake --build --preset asan -j"$(nproc)" --target perf_reconfig
(cd build-asan && SPECRPC_BENCH_WARMUP_S=0.1 SPECRPC_RECONFIG_STEADY_S=0.3 \
  SPECRPC_RECONFIG_POST_S=0.3 ./bench/perf_reconfig)
