// Sharded-engine stress coverage (DESIGN.md §6): stat-snapshot consistency
// under a multi-threaded call storm, N=1 vs N=8 semantic equivalence,
// early-state TTL eviction, and bookkeeping drain across shards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

using namespace std::chrono_literals;

/// Client/server pair over a SimNetwork with a configurable client shard
/// count. The server always uses engine defaults.
struct Harness {
  explicit Harness(std::size_t client_shards,
                   Duration early_state_ttl = std::chrono::seconds(30)) {
    SimConfig config;
    config.executor_threads = 16;
    config.default_delay = std::chrono::milliseconds(1);
    net = std::make_unique<SimNetwork>(config);
    SpecConfig client_config;
    client_config.shards = client_shards;
    client_config.early_state_ttl = early_state_ttl;
    client = std::make_unique<SpecEngine>(net->add_node("client"),
                                          net->executor(), net->wheel(),
                                          client_config);
    SpecConfig server_config;
    server_config.early_state_ttl = early_state_ttl;
    server = std::make_unique<SpecEngine>(net->add_node("server"),
                                          net->executor(), net->wheel(),
                                          server_config);
    server->register_method("inc", Handler([](const ServerCallPtr& c) {
      c->finish(Value(c->args()[0].as_int() + 1));
    }));
  }

  ~Harness() {
    client->begin_shutdown();
    server->begin_shutdown();
    net->executor().shutdown();
  }

  std::unique_ptr<SimNetwork> net;
  std::unique_ptr<SpecEngine> client;
  std::unique_ptr<SpecEngine> server;
};

CallbackFactory blocking_inc_factory() {
  return []() -> CallbackFn {
    return [](SpecContext& ctx, const Value& v) -> CallbackResult {
      ctx.spec_block();  // park until this branch is validated
      return Value(v.as_int() * 10);
    };
  };
}

void assert_snapshot_invariants(const SpecStats& s) {
  // Derived counters may never exceed their bases, in any concurrent
  // snapshot — this is the acquire-ordering contract of stats().
  EXPECT_LE(s.predictions_correct + s.predictions_incorrect,
            s.predictions_made);
  EXPECT_LE(s.predictions_made, s.callbacks_spawned);
  EXPECT_LE(s.reexecutions, s.callbacks_spawned);
  EXPECT_LE(s.rollbacks_run, s.branches_abandoned);
  // Budget accounting (DESIGN.md §11): tokens release at most once per
  // acquire, in any concurrent snapshot.
  EXPECT_LE(s.budget_released, s.budget_acquired);
}

/// 8 client threads issue predicted calls (half correct, half wrong) while a
/// sampler hammers stats(); every sample must satisfy the invariants.
void run_storm(Harness& h, int threads, int calls_per_thread) {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> samples{0};
  std::thread sampler([&] {
    while (!done.load()) {
      assert_snapshot_invariants(h.client->stats());
      samples.fetch_add(1);
    }
  });
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < calls_per_thread; ++i) {
        const std::int64_t arg = t * calls_per_thread + i;
        // Even calls predict correctly (arg+1); odd calls mispredict.
        const std::int64_t guess = (i % 2 == 0) ? arg + 1 : -1;
        auto f = h.client->call("server", "inc", make_args(arg),
                                {Value(guess)}, blocking_inc_factory());
        try {
          if (f->get().as_int() != (arg + 1) * 10) failures.fetch_add(1);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true);
  sampler.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(samples.load(), 0u);

  const SpecStats s = h.client->stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * calls_per_thread;
  // Even indices predict correctly: (calls_per_thread + 1) / 2 per thread.
  const std::uint64_t correct =
      static_cast<std::uint64_t>(threads) * ((calls_per_thread + 1) / 2);
  const std::uint64_t wrong = total - correct;
  EXPECT_EQ(s.calls_issued, total);
  EXPECT_EQ(s.predictions_made, total);
  EXPECT_EQ(s.predictions_correct, correct);
  EXPECT_EQ(s.predictions_incorrect, wrong);
  EXPECT_EQ(s.reexecutions, wrong);
  EXPECT_EQ(s.callbacks_spawned, total + wrong);
  // Every prediction took one budget token; with every call resolved, every
  // token came back — exactly once — and the in-flight gauge is empty.
  EXPECT_EQ(s.budget_acquired, total);
  EXPECT_EQ(s.budget_released, s.budget_acquired);
  EXPECT_EQ(h.client->spec_inflight(), 0);
  assert_snapshot_invariants(s);
}

bool wait_until(const std::function<bool()>& pred,
                Duration timeout = std::chrono::seconds(5)) {
  const TimePoint deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(EngineShard, ShardCountConfiguration) {
  Harness h(8);
  EXPECT_EQ(h.client->shard_count(), 8u);
  EXPECT_GE(h.server->shard_count(), 1u);  // auto-sized
  Harness single(1);
  EXPECT_EQ(single.client->shard_count(), 1u);
}

TEST(EngineShard, StatSnapshotsConsistentUnderCallStorm) {
  Harness h(8);
  run_storm(h, 8, 40);
}

TEST(EngineShard, SingleShardBaselineSameSemantics) {
  // N=1 collapses every tree into one concurrency domain (the historical
  // global-lock engine); results and final stats must be identical.
  Harness h(1);
  run_storm(h, 8, 40);
}

TEST(EngineShard, BookkeepingDrainsAcrossShards) {
  Harness h(8);
  run_storm(h, 4, 25);
  ASSERT_TRUE(wait_until([&] {
    const auto c = h.client->debug_sizes();
    const auto s = h.server->debug_sizes();
    return c.outgoing == 0 && c.wire_routes == 0 && c.incoming == 0 &&
           s.incoming == 0 && s.early_state == 0;
  })) << "call-tracking tables did not drain after quiesce";
}

// Budget-vs-quorum accounting: the first quorum response doubles as a
// prediction (§4.1) and takes one budget token. With every request and
// reply duplicated, each destination can respond "twice"; the dedup in the
// quorum path must keep the accounting at exactly one acquire and one
// release per logical call — a release per dst_responded would overshoot
// and corrupt the in-flight gauge.
TEST(EngineShard, QuorumDuplicateRepliesReleaseExactlyOneToken) {
  constexpr int kCalls = 25;
  SimConfig config;
  config.executor_threads = 16;
  config.default_delay = std::chrono::milliseconds(1);
  config.default_faults.dup_prob = 1.0;
  SimNetwork net(config);
  SpecConfig client_config;
  client_config.budget.max_inflight = 4;  // bounded: leaks would pin it
  auto client = std::make_unique<SpecEngine>(net.add_node("client"),
                                             net.executor(), net.wheel(),
                                             client_config);
  auto s1 = std::make_unique<SpecEngine>(net.add_node("s1"), net.executor(),
                                         net.wheel(), SpecConfig{});
  auto s2 = std::make_unique<SpecEngine>(net.add_node("s2"), net.executor(),
                                         net.wheel(), SpecConfig{});
  // Different replica values: whichever response lands first becomes the
  // prediction, and is wrong whenever the combiner prefers the other.
  s1->register_method("read", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args()[0].as_int() + 1));
  }));
  s2->register_method("read", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args()[0].as_int() + 2));
  }));
  auto combiner = [](const std::vector<Value>& responses) {
    const Value* best = &responses.front();
    for (const auto& r : responses) {
      if (r.as_int() > best->as_int()) best = &r;
    }
    return *best;
  };
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
  };
  for (int i = 0; i < kCalls; ++i) {
    auto f = client->call_quorum({"s1", "s2"}, 2, "read", make_args(i),
                                 combiner, factory);
    EXPECT_EQ(f->get(), Value(i + 2));
  }
  const SpecStats s = client->stats();
  EXPECT_EQ(s.quorum_calls_issued, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(s.predictions_made, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(s.budget_acquired, s.predictions_made);
  EXPECT_EQ(s.budget_released, s.budget_acquired);
  EXPECT_EQ(client->spec_inflight(), 0);
  assert_snapshot_invariants(s);

  client->begin_shutdown();
  s1->begin_shutdown();
  s2->begin_shutdown();
  net.executor().shutdown();
}

TEST(EngineShard, EarlyStateStashEvictedAfterTtl) {
  Harness h(4, /*early_state_ttl=*/50ms);
  // A state-change whose request never arrives (fault-injected loss with
  // retries exhausted): the stash must not leak past the TTL.
  StateChangeMsg orphan;
  orphan.call_id = 0xDEADBEEF;
  orphan.correct = true;
  Transport& injector = h.net->add_node("injector");
  injector.send("server", encode(orphan, binary_codec()));
  ASSERT_TRUE(wait_until(
      [&] { return h.server->debug_sizes().early_state == 1; }, 2s))
      << "early state-change was not stashed";
  ASSERT_TRUE(wait_until([&] {
    return h.server->debug_sizes().early_state == 0 &&
           h.server->stats().early_state_evictions == 1;
  })) << "stashed early state-change was not TTL-evicted";
}

TEST(EngineShard, EarlyStateZeroTtlDisablesEviction) {
  Harness h(4, /*early_state_ttl=*/Duration::zero());
  StateChangeMsg orphan;
  orphan.call_id = 0xFEEDFACE;
  orphan.correct = false;
  Transport& injector = h.net->add_node("injector");
  injector.send("server", encode(orphan, binary_codec()));
  ASSERT_TRUE(wait_until(
      [&] { return h.server->debug_sizes().early_state == 1; }, 2s));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(h.server->debug_sizes().early_state, 1u);  // no timer, no evict
  EXPECT_EQ(h.server->stats().early_state_evictions, 0u);
}

}  // namespace
}  // namespace srpc::spec
