// SpecRPC engine edge cases: quorum disagreements, timeouts, late/early
// messages, concurrent predictions from client and server, error inside
// callbacks, deep chains under load, and GC hygiene.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

constexpr int kDeepChainDepth = 12;

CallbackFactory deep_chain_factory(SpecEngine* client, int level) {
  return [client, level]() -> CallbackFn {
    return [client, level](SpecContext& ctx,
                           const Value& v) -> CallbackResult {
      if (level > kDeepChainDepth) return v;  // 1-based next-call index
      return ctx.call("s1", "inc", make_args(v.as_int()),
                      {Value(v.as_int() + 1)},
                      deep_chain_factory(client, level + 1));
    };
  };
}

class SpecEdgeTest : public ::testing::Test {
 protected:
  SpecEdgeTest() {
    SimConfig config;
    config.executor_threads = 8;
    config.default_delay = std::chrono::milliseconds(1);
    net_ = std::make_unique<SimNetwork>(config);
    for (const char* name : {"client", "s1", "s2", "s3"}) {
      engines_[name] = std::make_unique<SpecEngine>(
          net_->add_node(name), net_->executor(), net_->wheel());
    }
  }

  ~SpecEdgeTest() override {
    for (auto& [_, engine] : engines_) engine->begin_shutdown();
    net_->executor().shutdown();
  }

  SpecEngine& engine(const std::string& name) { return *engines_.at(name); }

  std::unique_ptr<SimNetwork> net_;
  std::map<std::string, std::unique_ptr<SpecEngine>> engines_;
};

TEST_F(SpecEdgeTest, QuorumDisagreementPredictionWrong) {
  // Replicas return different versions; the first responder's stale value
  // is a wrong prediction; the combiner's pick must win.
  engine("s1").register_method("read", Handler([](const ServerCallPtr& c) {
    c->finish(vlist("stale", 3));  // nearest, fastest, stale
  }));
  engine("s2").register_method("read", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::milliseconds(10), vlist("fresh", 9));
  }));
  net_->set_rtt("client", "s2", std::chrono::milliseconds(8));

  auto combiner = [](const std::vector<Value>& responses) {
    const Value* best = &responses.front();
    for (const auto& r : responses) {
      if (r.as_list().at(1).as_int() > best->as_list().at(1).as_int())
        best = &r;
    }
    return *best;
  };
  std::atomic<int> runs{0};
  auto factory = [&runs]() -> CallbackFn {
    return [&runs](SpecContext&, const Value& v) -> CallbackResult {
      runs.fetch_add(1);
      return v.as_list().at(0);
    };
  };
  auto future = engine("client").call_quorum({"s1", "s2"}, 2, "read",
                                             make_args("k"), combiner,
                                             factory);
  EXPECT_EQ(future->get(), Value("fresh"));
  EXPECT_EQ(runs.load(), 2);  // speculative run on stale + re-execution
  const auto stats = engine("client").stats();
  EXPECT_EQ(stats.predictions_incorrect, 1u);
  EXPECT_EQ(stats.reexecutions, 1u);
}

TEST_F(SpecEdgeTest, QuorumOfThreeUsesFirstTwo) {
  int version = 0;
  for (const char* s : {"s1", "s2", "s3"}) {
    version += 10;
    engine(s).register_method(
        "read", Handler([version](const ServerCallPtr& c) {
          c->finish(vlist("v", version));
        }));
  }
  net_->set_rtt("client", "s3", std::chrono::milliseconds(50));  // straggler
  auto combiner = [](const std::vector<Value>& responses) -> Value {
    EXPECT_EQ(responses.size(), 2u);  // quorum reached without straggler
    const Value* best = &responses.front();
    for (const auto& r : responses) {
      if (r.as_list().at(1).as_int() > best->as_list().at(1).as_int())
        best = &r;
    }
    return *best;
  };
  const auto t0 = Clock::now();
  auto future = engine("client").call_quorum({"s1", "s2", "s3"}, 2, "read",
                                             make_args("k"), combiner,
                                             nullptr);
  EXPECT_EQ(future->get().as_list().at(1).as_int(), 20);
  EXPECT_LT(to_ms(Clock::now() - t0), 30.0);  // did not wait for s3
}

TEST_F(SpecEdgeTest, CallTimeoutFailsFutureAndAbandonsBranches) {
  engine("s1").register_method("void", Handler([](const ServerCallPtr& c) {
    // Never finishes.
  }));
  SimConfig unused;
  SpecConfig config;
  config.call_timeout = std::chrono::milliseconds(80);
  auto impatient = std::make_unique<SpecEngine>(net_->add_node("impatient"),
                                                net_->executor(),
                                                net_->wheel(), config);
  std::atomic<int> rollbacks{0};
  auto factory = [&]() -> CallbackFn {
    return [&](SpecContext& ctx, const Value& v) -> CallbackResult {
      ctx.set_rollback([&] { rollbacks.fetch_add(1); });
      return v;
    };
  };
  auto future = impatient->call("s1", "void", make_args(1), {Value(5)},
                                factory);
  EXPECT_THROW(future->get(), rpc::RpcError);
  for (int i = 0; i < 200 && rollbacks.load() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(rollbacks.load(), 1);  // timed-out predictions are abandoned
  impatient->begin_shutdown();
}

TEST_F(SpecEdgeTest, ClientAndServerPredictionsCoexist) {
  // Client predicts 5 (wrong); server specReturns 7 (correct): the server
  // prediction's branch must deliver, the client's must be abandoned.
  engine("s1").register_method("f", Handler([](const ServerCallPtr& c) {
    c->spec_return(Value(7));
    c->finish_after(std::chrono::milliseconds(20), Value(7));
  }));
  std::atomic<int> runs{0};
  auto factory = [&runs]() -> CallbackFn {
    return [&runs](SpecContext&, const Value& v) -> CallbackResult {
      runs.fetch_add(1);
      return Value(v.as_int() * 100);
    };
  };
  auto future =
      engine("client").call("s1", "f", make_args(), {Value(5)}, factory);
  EXPECT_EQ(future->get(), Value(700));
  EXPECT_EQ(runs.load(), 2);  // both branches ran; one survived
  const auto stats = engine("client").stats();
  EXPECT_EQ(stats.predictions_correct, 1u);
  EXPECT_EQ(stats.predictions_incorrect, 1u);
  EXPECT_EQ(stats.reexecutions, 0u);
}

TEST_F(SpecEdgeTest, ServerSpecReturnAfterActualIsIgnored) {
  engine("s1").register_method("f", Handler([](const ServerCallPtr& c) {
    c->finish(Value(1));
    c->spec_return(Value(2));  // too late; must be dropped server-side
  }));
  std::atomic<int> runs{0};
  auto factory = [&runs]() -> CallbackFn {
    return [&runs](SpecContext&, const Value& v) -> CallbackResult {
      runs.fetch_add(1);
      return v;
    };
  };
  auto future = engine("client").call("s1", "f", make_args(), {}, factory);
  EXPECT_EQ(future->get(), Value(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(runs.load(), 1);
}

TEST_F(SpecEdgeTest, CallbackExceptionFailsFutureWhenCorrect) {
  engine("s1").register_method("f", Handler([](const ServerCallPtr& c) {
    c->finish(Value(1));
  }));
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value&) -> CallbackResult {
      throw std::runtime_error("user bug");
      return Value();  // unreachable
    };
  };
  auto future = engine("client").call("s1", "f", make_args(), {}, factory);
  EXPECT_THROW(future->get(), rpc::RpcError);
}

TEST_F(SpecEdgeTest, SpeculativeFlagReflectsContext) {
  engine("s1").register_method("slow", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::milliseconds(30), Value(1));
  }));
  std::atomic<int> spec_seen{0};
  std::atomic<int> nonspec_seen{0};
  auto factory = [&]() -> CallbackFn {
    return [&](SpecContext& ctx, const Value&) -> CallbackResult {
      (ctx.speculative() ? spec_seen : nonspec_seen).fetch_add(1);
      return Value(0);
    };
  };
  // Wrong prediction: the first run is speculative, the re-execution is not.
  auto future = engine("client").call("s1", "slow", make_args(), {Value(99)},
                                      factory);
  future->get();
  EXPECT_EQ(spec_seen.load(), 1);
  EXPECT_EQ(nonspec_seen.load(), 1);
  EXPECT_FALSE(engine("client").speculative());  // app thread: never
}

TEST_F(SpecEdgeTest, DeepChainUnderConcurrentLoad) {
  engine("s1").register_method("inc", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args().at(0).as_int() + 1));
  }));
  constexpr int kDepth = kDeepChainDepth;
  constexpr int kConcurrent = 16;
  std::vector<SpecFuturePtr> futures;
  SpecEngine* client = &engine("client");
  for (int i = 0; i < kConcurrent; ++i) {
    futures.push_back(client->call("s1", "inc", make_args(i * 100),
                                   {Value(i * 100 + 1)},
                                   deep_chain_factory(client, 2)));
  }
  for (int i = 0; i < kConcurrent; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)]->get().as_int(),
              i * 100 + kDepth);
  }
  const auto stats = engine("client").stats();
  EXPECT_EQ(stats.predictions_incorrect, 0u);
  EXPECT_EQ(stats.predictions_correct,
            static_cast<std::uint64_t>(kDepth * kConcurrent));
}

TEST_F(SpecEdgeTest, MixedValueTypePredictions) {
  engine("s1").register_method("typed", Handler([](const ServerCallPtr& c) {
    c->finish(vlist("composite", 1, true));
  }));
  std::atomic<int> runs{0};
  auto factory = [&runs]() -> CallbackFn {
    return [&runs](SpecContext&, const Value& v) -> CallbackResult {
      runs.fetch_add(1);
      return v;
    };
  };
  // Predictions of assorted wrong types plus the right structured value.
  auto future = engine("client").call(
      "s1", "typed", make_args(),
      {Value(1), Value("composite"), vlist("composite", 1, true)}, factory);
  EXPECT_EQ(future->get(), vlist("composite", 1, true));
  EXPECT_EQ(engine("client").stats().predictions_correct, 1u);
  EXPECT_EQ(engine("client").stats().predictions_incorrect, 2u);
}

TEST_F(SpecEdgeTest, BookkeepingDrainsAfterQuiesce) {
  // GC hygiene: outgoing/incoming records and wire routes must not
  // accumulate across workloads (mispredictions included).
  engine("s1").register_method("inc", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args().at(0).as_int() + 1));
  }));
  for (int i = 0; i < 100; ++i) {
    auto factory = []() -> CallbackFn {
      return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
    };
    engine("client")
        .call("s1", "inc", make_args(i),
              {Value(i % 2 == 0 ? i + 1 : i - 1)},  // half mispredict
              factory)
        ->get();
  }
  // Allow deferred actions / state messages to drain.
  for (int tries = 0; tries < 200; ++tries) {
    const auto client_sizes = engine("client").debug_sizes();
    const auto server_sizes = engine("s1").debug_sizes();
    if (client_sizes.outgoing == 0 && client_sizes.wire_routes == 0 &&
        server_sizes.incoming == 0 && server_sizes.early_state == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto client_sizes = engine("client").debug_sizes();
  const auto server_sizes = engine("s1").debug_sizes();
  EXPECT_EQ(client_sizes.outgoing, 0u);
  EXPECT_EQ(client_sizes.wire_routes, 0u);
  EXPECT_EQ(server_sizes.incoming, 0u);
  EXPECT_EQ(server_sizes.early_state, 0u);
}

TEST_F(SpecEdgeTest, ServerBranchesFinishWithDifferentValues) {
  // A handler speculates on its sub-call with TWO client-side predictions;
  // each branch finishes the enclosing RPC with a different value. The
  // caller receives both as predicted responses but exactly one actual —
  // the one whose branch value-resolved.
  engine("s2").register_method("sub", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::milliseconds(25), Value(2));
  }));
  engine("s1").register_method("outer", Handler([](const ServerCallPtr& c) {
    auto factory = [c]() -> CallbackFn {
      return [c](SpecContext&, const Value& sub) -> CallbackResult {
        const Value result("outer:" + std::to_string(sub.as_int()));
        c->finish(result);  // predicted until `sub` resolves
        return result;
      };
    };
    // Predictions 1 and 2: branch "outer:1" must die, "outer:2" must win.
    c->call("s2", "sub", make_args(), {Value(1), Value(2)}, factory);
  }));
  std::atomic<int> client_runs{0};
  auto client_factory = [&client_runs]() -> CallbackFn {
    return [&client_runs](SpecContext&, const Value& v) -> CallbackResult {
      client_runs.fetch_add(1);
      return v;
    };
  };
  auto future = engine("client").call("s1", "outer", make_args(), {},
                                      client_factory);
  EXPECT_EQ(future->get(), Value("outer:2"));
  // The client saw up to two predicted values (dedup permitting) and ran a
  // callback per distinct one, but only the value-resolved branch's result
  // was delivered.
  EXPECT_GE(client_runs.load(), 1);
  const auto server_stats = engine("s1").stats();
  EXPECT_GE(server_stats.branches_abandoned, 1u);  // the "outer:1" branch
}

TEST_F(SpecEdgeTest, ManySequentialCallsDoNotLeakState) {
  engine("s1").register_method("inc", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args().at(0).as_int() + 1));
  }));
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const std::int64_t x = static_cast<std::int64_t>(rng.uniform(1000));
    const bool right = rng.flip(0.5);
    auto factory = []() -> CallbackFn {
      return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
    };
    auto future = engine("client").call(
        "s1", "inc", make_args(x), {Value(right ? x + 1 : x - 1)}, factory);
    EXPECT_EQ(future->get().as_int(), x + 1);
  }
  // All 300 calls resolved; prediction stats add up exactly.
  const auto stats = engine("client").stats();
  EXPECT_EQ(stats.predictions_correct + stats.predictions_incorrect, 300u);
  EXPECT_EQ(stats.calls_issued, 300u);
}

}  // namespace
}  // namespace srpc::spec
