// RpcSignature / SpecStub / Registry (paper Figure 1(b) and §3.5 signature
// distribution), plus SpecRPC running over the real TCP transport.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/executor.h"
#include "specrpc/registry.h"
#include "specrpc/stub.h"
#include "transport/sim_network.h"
#include "transport/tcp_transport.h"

namespace srpc::spec {
namespace {

class StubTest : public ::testing::Test {
 protected:
  StubTest() {
    net_ = std::make_unique<SimNetwork>();
    server_ = std::make_unique<SpecEngine>(net_->add_node("server"),
                                           net_->executor(), net_->wheel());
    client_ = std::make_unique<SpecEngine>(net_->add_node("client"),
                                           net_->executor(), net_->wheel());
    const RpcSignature plus{"Math", "plus", 2};
    register_signature(*server_, plus, Handler([](const ServerCallPtr& c) {
      c->finish(Value(c->args().at(0).as_int() + c->args().at(1).as_int()));
    }));
    registry_.publish(plus, "server");
  }

  ~StubTest() override {
    client_->begin_shutdown();
    server_->begin_shutdown();
    net_->executor().shutdown();
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SpecEngine> server_;
  std::unique_ptr<SpecEngine> client_;
  Registry registry_;
};

TEST_F(StubTest, BindAndCall) {
  SpecStub stub = registry_.bind(*client_, "Math", "plus");
  EXPECT_EQ(stub.server(), "server");
  EXPECT_EQ(stub.signature().arity, 2);
  EXPECT_EQ(stub.call_plain(1, 2)->get(), Value(3));
}

TEST_F(StubTest, CallWithPredictionAndCallback) {
  SpecStub stub = registry_.bind(*client_, "Math", "plus");
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult {
      return Value(v.as_int() + 1);
    };
  };
  // Figure 1: predict plus(1,2) == 3; callback increments -> 4.
  EXPECT_EQ(stub.call({Value(3)}, factory, 1, 2)->get(), Value(4));
}

TEST_F(StubTest, ArityMismatchThrows) {
  SpecStub stub = registry_.bind(*client_, "Math", "plus");
  EXPECT_THROW(stub.call_plain(1), SignatureMismatch);
  EXPECT_THROW(stub.call_plain(1, 2, 3), SignatureMismatch);
}

TEST_F(StubTest, UnknownSignatureThrows) {
  EXPECT_THROW(registry_.bind(*client_, "Math", "minus"), std::out_of_range);
}

TEST_F(StubTest, RegistryFileRoundTrip) {
  const RpcSignature mul{"Math", "mul", 2};
  registry_.publish(mul, "server");
  const std::string path = ::testing::TempDir() + "/specrpc_registry.txt";
  registry_.save(path);

  Registry loaded;
  loaded.load(path);
  EXPECT_EQ(loaded.size(), 2u);
  auto entry = loaded.lookup("Math.plus");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->address, "server");
  EXPECT_EQ(entry->arity, 2);
  std::remove(path.c_str());
}

TEST_F(StubTest, RegistryLoadMissingFileThrows) {
  Registry registry;
  EXPECT_THROW(registry.load("/nonexistent/specrpc.reg"),
               std::runtime_error);
}

// ------------------------------------------------------------- over TCP

class SpecOverTcpTest : public ::testing::Test {
 protected:
  SpecOverTcpTest()
      : executor_(8, "tcp-spec"),
        server_transport_(executor_),
        client_transport_(executor_),
        server_(server_transport_, executor_, wheel_),
        client_(client_transport_, executor_, wheel_) {
    server_.register_method("plus", Handler([](const ServerCallPtr& c) {
      c->finish(Value(c->args().at(0).as_int() + c->args().at(1).as_int()));
    }));
    server_.register_method("slow_echo", Handler([](const ServerCallPtr& c) {
      c->spec_return(c->args().at(0));  // accurate server-side prediction
      c->finish_after(std::chrono::milliseconds(40), c->args().at(0));
    }));
  }

  ~SpecOverTcpTest() override {
    client_.begin_shutdown();
    server_.begin_shutdown();
    executor_.shutdown();
  }

  Executor executor_;
  TimerWheel wheel_;
  TcpTransport server_transport_;
  TcpTransport client_transport_;
  SpecEngine server_;
  SpecEngine client_;
};

TEST_F(SpecOverTcpTest, PlainCall) {
  auto future =
      client_.call(server_transport_.address(), "plus", make_args(20, 22));
  EXPECT_EQ(future->get(), Value(42));
}

TEST_F(SpecOverTcpTest, SpeculativeChainOverRealSockets) {
  // Two dependent 40 ms RPCs with accurate server-side predictions should
  // overlap: the pair completes in well under 2 x 40 ms.
  std::atomic<int> callback_runs{0};
  auto inner = [&]() -> CallbackFn {
    return [&](SpecContext&, const Value& v) -> CallbackResult {
      callback_runs.fetch_add(1);
      return v;
    };
  };
  auto outer = [&, inner]() -> CallbackFn {
    return [&, inner](SpecContext& ctx, const Value& v) -> CallbackResult {
      callback_runs.fetch_add(1);
      return ctx.call(server_transport_.address(), "slow_echo",
                      {v} /*args*/, {}, inner);
    };
  };
  const auto t0 = Clock::now();
  auto future = client_.call(server_transport_.address(), "slow_echo",
                             make_args("payload"), {}, outer);
  EXPECT_EQ(future->get(), Value("payload"));
  EXPECT_LT(to_ms(Clock::now() - t0), 70.0);  // ~40ms + slack, not 80ms
  EXPECT_GE(callback_runs.load(), 2);
  EXPECT_EQ(client_.stats().predictions_correct, 2u);
}

TEST_F(SpecOverTcpTest, WrongPredictionOverTcpStillCorrect) {
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult {
      return Value(v.as_int() * 10);
    };
  };
  auto future = client_.call(server_transport_.address(), "plus",
                             make_args(1, 2), {Value(99)}, factory);
  EXPECT_EQ(future->get(), Value(30));
}

}  // namespace
}  // namespace srpc::spec
