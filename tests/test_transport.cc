// Transport layer: simulated network (latency, FIFO, jitter, partitions,
// byte accounting), geo topology (Table 1), and the real TCP transport.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "common/sync.h"
#include "transport/geo.h"
#include "transport/sim_network.h"
#include "transport/tcp_transport.h"

namespace srpc {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string string_of(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

TEST(SimNetwork, DeliversWithConfiguredLatency) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::milliseconds(30));
  Event received;
  TimePoint arrival;
  b.set_receiver([&](const Address& src, Bytes payload) {
    EXPECT_EQ(src, "a");
    EXPECT_EQ(string_of(payload), "hello");
    arrival = Clock::now();
    received.set();
  });
  const TimePoint sent = Clock::now();
  a.send("b", bytes_of("hello"));
  ASSERT_TRUE(received.wait_for(std::chrono::seconds(5)));
  const double ms = to_ms(arrival - sent);
  EXPECT_GE(ms, 29.0);
  EXPECT_LE(ms, 60.0);
}

TEST(SimNetwork, AsymmetricLatencies) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::milliseconds(5));
  net.set_one_way("b", "a", std::chrono::milliseconds(40));
  Event pong;
  TimePoint t0;
  b.set_receiver([&](const Address&, Bytes) { b.send("a", bytes_of("pong")); });
  a.set_receiver([&](const Address&, Bytes) { pong.set(); });
  t0 = Clock::now();
  a.send("b", bytes_of("ping"));
  ASSERT_TRUE(pong.wait_for(std::chrono::seconds(5)));
  EXPECT_GE(to_ms(Clock::now() - t0), 44.0);
}

TEST(SimNetwork, FifoPerDirectedPair) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(100),
                  /*jitter=*/std::chrono::microseconds(500));
  std::vector<int> received;
  std::mutex mu;
  WaitGroup wg;
  constexpr int kMessages = 200;
  wg.add(kMessages);
  b.set_receiver([&](const Address&, Bytes payload) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(static_cast<int>(payload[0]) * 256 +
                       static_cast<int>(payload[1]));
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) {
    a.send("b", Bytes{static_cast<std::uint8_t>(i / 256),
                      static_cast<std::uint8_t>(i % 256)});
  }
  wg.wait();
  // Despite jitter, per-pair delivery order matches send order (TCP-like).
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], i);
}

TEST(SimNetwork, TrafficAccounting) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  Event done;
  b.set_receiver([&](const Address&, Bytes) { done.set(); });
  a.send("b", Bytes(100));
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(5)));
  const auto a_stats = net.stats("a");
  const auto b_stats = net.stats("b");
  EXPECT_EQ(a_stats.msgs_sent, 1u);
  EXPECT_EQ(a_stats.bytes_sent, 100u);
  EXPECT_EQ(b_stats.msgs_recv, 1u);
  EXPECT_EQ(b_stats.bytes_recv, 100u);
  net.reset_stats();
  EXPECT_EQ(net.stats("a").bytes_sent, 0u);
}

TEST(SimNetwork, PartitionDropsAndHeals) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  std::atomic<int> received{0};
  Event second;
  b.set_receiver([&](const Address&, Bytes) {
    if (received.fetch_add(1) + 1 == 1) second.set();
  });
  net.partition("a", "b", true);
  a.send("b", bytes_of("lost"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(received.load(), 0);
  net.partition("a", "b", false);
  a.send("b", bytes_of("delivered"));
  ASSERT_TRUE(second.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(received.load(), 1);
}

TEST(SimNetworkFaults, DropRateStatistics) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(50));
  FaultCfg faults;
  faults.drop_prob = 0.5;
  net.set_faults("a", "b", faults);
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) { received.fetch_add(1); });
  constexpr int kMessages = 400;
  for (int i = 0; i < kMessages; ++i) a.send("b", bytes_of("x"));
  // Undropped messages are in flight for <1ms; give them ample slack.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const int got = received.load();
  // Binomial(400, 0.5): [140, 260] is > 6 sigma around the mean.
  EXPECT_GE(got, 140);
  EXPECT_LE(got, 260);
  EXPECT_EQ(net.fault_stats().dropped, static_cast<std::uint64_t>(kMessages - got));
}

TEST(SimNetworkFaults, DuplicationDeliversTwice) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(50));
  FaultCfg faults;
  faults.dup_prob = 1.0;
  net.set_faults("a", "b", faults);
  constexpr int kMessages = 50;
  WaitGroup wg;
  wg.add(kMessages * 2);
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) {
    received.fetch_add(1);
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) a.send("b", bytes_of("x"));
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(received.load(), kMessages * 2);
  EXPECT_EQ(net.fault_stats().duplicated, static_cast<std::uint64_t>(kMessages));
}

TEST(SimNetworkFaults, ReorderingObserved) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(50));
  FaultCfg faults;
  faults.reorder_window = 3;
  faults.reorder_slack = std::chrono::microseconds(200);
  net.set_faults("a", "b", faults);
  constexpr int kMessages = 300;
  std::vector<int> received;
  std::mutex mu;
  WaitGroup wg;
  wg.add(kMessages);
  b.set_receiver([&](const Address&, Bytes payload) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(static_cast<int>(payload[0]) * 256 +
                       static_cast<int>(payload[1]));
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) {
    a.send("b", Bytes{static_cast<std::uint8_t>(i / 256),
                      static_cast<std::uint8_t>(i % 256)});
  }
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(10)));
  // Nothing is lost under pure reordering...
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  // ...but with window=3 (held back with prob 3/4 per message) at least one
  // inversion is overwhelmingly likely.
  int inversions = 0;
  for (int i = 1; i < kMessages; ++i) {
    if (received[i] < received[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0);
  EXPECT_GT(net.fault_stats().reordered, 0u);
}

TEST(SimNetworkFaults, FlapDropsThenHeals) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) { received.fetch_add(1); });
  // Up 20ms / down 20ms; sends every 2ms for 160ms straddle several down
  // phases, so some messages must be eaten.
  net.flap_link("a", "b", std::chrono::milliseconds(20),
                std::chrono::milliseconds(20));
  for (int i = 0; i < 80; ++i) {
    a.send("b", bytes_of("tick"));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(net.fault_stats().dropped, 0u);
  EXPECT_GT(received.load(), 0);
  // After stop_flaps() the link is healed for good: a fresh message arrives.
  net.stop_flaps();
  Event final_msg;
  const int before = received.load();
  b.set_receiver([&](const Address&, Bytes) {
    received.fetch_add(1);
    final_msg.set();
  });
  a.send("b", bytes_of("after-heal"));
  ASSERT_TRUE(final_msg.wait_for(std::chrono::seconds(5)));
  EXPECT_GT(received.load(), before);
}

TEST(SimNetworkFaults, SetFaultsAllAppliesToLiveLinks) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  // Materialize the a->b peer entry with a normal delivery first.
  Event first;
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) {
    if (received.fetch_add(1) + 1 == 1) first.set();
  });
  a.send("b", bytes_of("warm"));
  ASSERT_TRUE(first.wait_for(std::chrono::seconds(5)));
  // Now a blanket drop-everything profile must reach the live peer entry.
  FaultCfg faults;
  faults.drop_prob = 1.0;
  net.set_faults_all(faults);
  a.send("b", bytes_of("lost"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(received.load(), 1);
  EXPECT_GE(net.fault_stats().dropped, 1u);
  // Clearing restores delivery (and applies to links not yet materialized).
  net.set_faults_all(FaultCfg{});
  Event second;
  b.set_receiver([&](const Address&, Bytes) {
    received.fetch_add(1);
    second.set();
  });
  a.send("b", bytes_of("restored"));
  ASSERT_TRUE(second.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(received.load(), 2);
}

TEST(SimNetwork, DuplicateNodeRejected) {
  SimNetwork net;
  net.add_node("a");
  EXPECT_THROW(net.add_node("a"), std::invalid_argument);
}

TEST(GeoTopology, Table1Matrix) {
  SimNetwork net;
  GeoConfig geo;  // Table 1 defaults
  GeoTopology topo(net, geo);
  EXPECT_EQ(topo.num_dcs(), 3);
  EXPECT_EQ(to_ms(topo.rtt(0, 1)), 140.0);
  EXPECT_EQ(to_ms(topo.rtt(0, 2)), 122.0);
  EXPECT_EQ(to_ms(topo.rtt(1, 2)), 243.0);
  EXPECT_EQ(to_ms(topo.rtt(2, 1)), 243.0);
  EXPECT_EQ(topo.address(0, "x"), "oregon.x");
}

TEST(GeoTopology, ScaleAppliesToAllLatencies) {
  SimNetwork net;
  GeoConfig geo;
  geo.scale = 0.5;
  GeoTopology topo(net, geo);
  EXPECT_EQ(to_ms(topo.rtt(1, 2)), 121.5);
}

TEST(GeoTopology, MachinesInSameDcUseLanLatency) {
  SimNetwork net;
  GeoConfig geo;
  geo.lan_rtt_ms = 2.0;
  geo.jitter_ms = 0.0;
  GeoTopology topo(net, geo);
  Transport& m1 = topo.add_machine(0, "m1");
  Transport& m2 = topo.add_machine(0, "m2");
  Event got;
  TimePoint arrival;
  m2.set_receiver([&](const Address&, Bytes) {
    arrival = Clock::now();
    got.set();
  });
  const TimePoint sent = Clock::now();
  m1.send(topo.address(0, "m2"), bytes_of("x"));
  ASSERT_TRUE(got.wait_for(std::chrono::seconds(5)));
  const double ms = to_ms(arrival - sent);
  EXPECT_GE(ms, 0.9);   // one way = 1ms
  EXPECT_LE(ms, 20.0);
  (void)m1;
}

TEST(TcpTransport, RoundTripAndStats) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  Event got_reply;
  std::string reply;
  server.set_receiver([&](const Address& src, Bytes payload) {
    std::string msg = string_of(payload);
    server.send(src, bytes_of("re:" + msg));
  });
  client.set_receiver([&](const Address& src, Bytes payload) {
    EXPECT_EQ(src, server.address());
    reply = string_of(payload);
    got_reply.set();
  });
  client.send(server.address(), bytes_of("hello"));
  ASSERT_TRUE(got_reply.wait_for(std::chrono::seconds(10)));
  EXPECT_EQ(reply, "re:hello");
  EXPECT_GE(client.stats().bytes_sent, 5u);
  EXPECT_GE(client.stats().bytes_recv, 8u);
}

TEST(TcpTransport, ManyMessagesBothDirectionsStayOrdered) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  constexpr int kMessages = 300;
  std::vector<int> received;
  std::mutex mu;
  WaitGroup wg;
  wg.add(kMessages);
  server.set_receiver([&](const Address& src, Bytes payload) {
    server.send(src, std::move(payload));  // echo
  });
  client.set_receiver([&](const Address&, Bytes payload) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(static_cast<int>(payload[0]) * 256 +
                       static_cast<int>(payload[1]));
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) {
    client.send(server.address(),
                Bytes{static_cast<std::uint8_t>(i / 256),
                      static_cast<std::uint8_t>(i % 256), 0xAB});
  }
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(30)));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], i);
}

TEST(TcpTransport, LargePayload) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  Event done;
  std::size_t got = 0;
  server.set_receiver([&](const Address&, Bytes payload) {
    got = payload.size();
    done.set();
  });
  Bytes big(1 << 20, 0x5A);  // 1 MiB
  client.send(server.address(), std::move(big));
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  EXPECT_EQ(got, 1u << 20);
}

}  // namespace
}  // namespace srpc
