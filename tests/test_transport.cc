// Transport layer: simulated network (latency, FIFO, jitter, partitions,
// byte accounting), geo topology (Table 1), and the real TCP transport
// (multi-reactor: framing, backpressure, dedup, quiesce, cross-process).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "common/sync.h"
#include "rc/process_cluster.h"
#include "transport/geo.h"
#include "transport/sim_network.h"
#include "transport/tcp_transport.h"

namespace srpc {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string string_of(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

TEST(SimNetwork, DeliversWithConfiguredLatency) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::milliseconds(30));
  Event received;
  TimePoint arrival;
  b.set_receiver([&](const Address& src, Bytes payload) {
    EXPECT_EQ(src, "a");
    EXPECT_EQ(string_of(payload), "hello");
    arrival = Clock::now();
    received.set();
  });
  const TimePoint sent = Clock::now();
  a.send("b", bytes_of("hello"));
  ASSERT_TRUE(received.wait_for(std::chrono::seconds(5)));
  const double ms = to_ms(arrival - sent);
  EXPECT_GE(ms, 29.0);
  EXPECT_LE(ms, 60.0);
}

TEST(SimNetwork, AsymmetricLatencies) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::milliseconds(5));
  net.set_one_way("b", "a", std::chrono::milliseconds(40));
  Event pong;
  TimePoint t0;
  b.set_receiver([&](const Address&, Bytes) { b.send("a", bytes_of("pong")); });
  a.set_receiver([&](const Address&, Bytes) { pong.set(); });
  t0 = Clock::now();
  a.send("b", bytes_of("ping"));
  ASSERT_TRUE(pong.wait_for(std::chrono::seconds(5)));
  EXPECT_GE(to_ms(Clock::now() - t0), 44.0);
}

TEST(SimNetwork, FifoPerDirectedPair) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(100),
                  /*jitter=*/std::chrono::microseconds(500));
  std::vector<int> received;
  std::mutex mu;
  WaitGroup wg;
  constexpr int kMessages = 200;
  wg.add(kMessages);
  b.set_receiver([&](const Address&, Bytes payload) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(static_cast<int>(payload[0]) * 256 +
                       static_cast<int>(payload[1]));
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) {
    a.send("b", Bytes{static_cast<std::uint8_t>(i / 256),
                      static_cast<std::uint8_t>(i % 256)});
  }
  wg.wait();
  // Despite jitter, per-pair delivery order matches send order (TCP-like).
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], i);
}

TEST(SimNetwork, TrafficAccounting) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  Event done;
  b.set_receiver([&](const Address&, Bytes) { done.set(); });
  a.send("b", Bytes(100));
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(5)));
  const auto a_stats = net.stats("a");
  const auto b_stats = net.stats("b");
  EXPECT_EQ(a_stats.msgs_sent, 1u);
  EXPECT_EQ(a_stats.bytes_sent, 100u);
  EXPECT_EQ(b_stats.msgs_recv, 1u);
  EXPECT_EQ(b_stats.bytes_recv, 100u);
  net.reset_stats();
  EXPECT_EQ(net.stats("a").bytes_sent, 0u);
}

TEST(SimNetwork, PartitionDropsAndHeals) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  std::atomic<int> received{0};
  Event second;
  b.set_receiver([&](const Address&, Bytes) {
    if (received.fetch_add(1) + 1 == 1) second.set();
  });
  net.partition("a", "b", true);
  a.send("b", bytes_of("lost"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(received.load(), 0);
  net.partition("a", "b", false);
  a.send("b", bytes_of("delivered"));
  ASSERT_TRUE(second.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(received.load(), 1);
}

TEST(SimNetworkFaults, DropRateStatistics) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(50));
  FaultCfg faults;
  faults.drop_prob = 0.5;
  net.set_faults("a", "b", faults);
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) { received.fetch_add(1); });
  constexpr int kMessages = 400;
  for (int i = 0; i < kMessages; ++i) a.send("b", bytes_of("x"));
  // Undropped messages are in flight for <1ms; give them ample slack.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const int got = received.load();
  // Binomial(400, 0.5): [140, 260] is > 6 sigma around the mean.
  EXPECT_GE(got, 140);
  EXPECT_LE(got, 260);
  EXPECT_EQ(net.fault_stats().dropped, static_cast<std::uint64_t>(kMessages - got));
}

TEST(SimNetworkFaults, DuplicationDeliversTwice) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(50));
  FaultCfg faults;
  faults.dup_prob = 1.0;
  net.set_faults("a", "b", faults);
  constexpr int kMessages = 50;
  WaitGroup wg;
  wg.add(kMessages * 2);
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) {
    received.fetch_add(1);
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) a.send("b", bytes_of("x"));
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(received.load(), kMessages * 2);
  EXPECT_EQ(net.fault_stats().duplicated, static_cast<std::uint64_t>(kMessages));
}

TEST(SimNetworkFaults, ReorderingObserved) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  net.set_one_way("a", "b", std::chrono::microseconds(50));
  FaultCfg faults;
  faults.reorder_window = 3;
  faults.reorder_slack = std::chrono::microseconds(200);
  net.set_faults("a", "b", faults);
  constexpr int kMessages = 300;
  std::vector<int> received;
  std::mutex mu;
  WaitGroup wg;
  wg.add(kMessages);
  b.set_receiver([&](const Address&, Bytes payload) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(static_cast<int>(payload[0]) * 256 +
                       static_cast<int>(payload[1]));
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) {
    a.send("b", Bytes{static_cast<std::uint8_t>(i / 256),
                      static_cast<std::uint8_t>(i % 256)});
  }
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(10)));
  // Nothing is lost under pure reordering...
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  // ...but with window=3 (held back with prob 3/4 per message) at least one
  // inversion is overwhelmingly likely.
  int inversions = 0;
  for (int i = 1; i < kMessages; ++i) {
    if (received[i] < received[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0);
  EXPECT_GT(net.fault_stats().reordered, 0u);
}

TEST(SimNetworkFaults, FlapDropsThenHeals) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) { received.fetch_add(1); });
  // Up 20ms / down 20ms; sends every 2ms for 160ms straddle several down
  // phases, so some messages must be eaten.
  net.flap_link("a", "b", std::chrono::milliseconds(20),
                std::chrono::milliseconds(20));
  for (int i = 0; i < 80; ++i) {
    a.send("b", bytes_of("tick"));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(net.fault_stats().dropped, 0u);
  EXPECT_GT(received.load(), 0);
  // After stop_flaps() the link is healed for good: a fresh message arrives.
  net.stop_flaps();
  Event final_msg;
  const int before = received.load();
  b.set_receiver([&](const Address&, Bytes) {
    received.fetch_add(1);
    final_msg.set();
  });
  a.send("b", bytes_of("after-heal"));
  ASSERT_TRUE(final_msg.wait_for(std::chrono::seconds(5)));
  EXPECT_GT(received.load(), before);
}

TEST(SimNetworkFaults, SetFaultsAllAppliesToLiveLinks) {
  SimNetwork net;
  Transport& a = net.add_node("a");
  Transport& b = net.add_node("b");
  // Materialize the a->b peer entry with a normal delivery first.
  Event first;
  std::atomic<int> received{0};
  b.set_receiver([&](const Address&, Bytes) {
    if (received.fetch_add(1) + 1 == 1) first.set();
  });
  a.send("b", bytes_of("warm"));
  ASSERT_TRUE(first.wait_for(std::chrono::seconds(5)));
  // Now a blanket drop-everything profile must reach the live peer entry.
  FaultCfg faults;
  faults.drop_prob = 1.0;
  net.set_faults_all(faults);
  a.send("b", bytes_of("lost"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(received.load(), 1);
  EXPECT_GE(net.fault_stats().dropped, 1u);
  // Clearing restores delivery (and applies to links not yet materialized).
  net.set_faults_all(FaultCfg{});
  Event second;
  b.set_receiver([&](const Address&, Bytes) {
    received.fetch_add(1);
    second.set();
  });
  a.send("b", bytes_of("restored"));
  ASSERT_TRUE(second.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(received.load(), 2);
}

TEST(SimNetwork, DuplicateNodeRejected) {
  SimNetwork net;
  net.add_node("a");
  EXPECT_THROW(net.add_node("a"), std::invalid_argument);
}

TEST(GeoTopology, Table1Matrix) {
  SimNetwork net;
  GeoConfig geo;  // Table 1 defaults
  GeoTopology topo(net, geo);
  EXPECT_EQ(topo.num_dcs(), 3);
  EXPECT_EQ(to_ms(topo.rtt(0, 1)), 140.0);
  EXPECT_EQ(to_ms(topo.rtt(0, 2)), 122.0);
  EXPECT_EQ(to_ms(topo.rtt(1, 2)), 243.0);
  EXPECT_EQ(to_ms(topo.rtt(2, 1)), 243.0);
  EXPECT_EQ(topo.address(0, "x"), "oregon.x");
}

TEST(GeoTopology, ScaleAppliesToAllLatencies) {
  SimNetwork net;
  GeoConfig geo;
  geo.scale = 0.5;
  GeoTopology topo(net, geo);
  EXPECT_EQ(to_ms(topo.rtt(1, 2)), 121.5);
}

TEST(GeoTopology, MachinesInSameDcUseLanLatency) {
  SimNetwork net;
  GeoConfig geo;
  geo.lan_rtt_ms = 2.0;
  geo.jitter_ms = 0.0;
  GeoTopology topo(net, geo);
  Transport& m1 = topo.add_machine(0, "m1");
  Transport& m2 = topo.add_machine(0, "m2");
  Event got;
  TimePoint arrival;
  m2.set_receiver([&](const Address&, Bytes) {
    arrival = Clock::now();
    got.set();
  });
  const TimePoint sent = Clock::now();
  m1.send(topo.address(0, "m2"), bytes_of("x"));
  ASSERT_TRUE(got.wait_for(std::chrono::seconds(5)));
  const double ms = to_ms(arrival - sent);
  EXPECT_GE(ms, 0.9);   // one way = 1ms
  EXPECT_LE(ms, 20.0);
  (void)m1;
}

TEST(TcpTransport, RoundTripAndStats) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  Event got_reply;
  std::string reply;
  server.set_receiver([&](const Address& src, Bytes payload) {
    std::string msg = string_of(payload);
    server.send(src, bytes_of("re:" + msg));
  });
  client.set_receiver([&](const Address& src, Bytes payload) {
    EXPECT_EQ(src, server.address());
    reply = string_of(payload);
    got_reply.set();
  });
  client.send(server.address(), bytes_of("hello"));
  ASSERT_TRUE(got_reply.wait_for(std::chrono::seconds(10)));
  EXPECT_EQ(reply, "re:hello");
  EXPECT_GE(client.stats().bytes_sent, 5u);
  EXPECT_GE(client.stats().bytes_recv, 8u);
}

TEST(TcpTransport, ManyMessagesBothDirectionsStayOrdered) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  constexpr int kMessages = 300;
  std::vector<int> received;
  std::mutex mu;
  WaitGroup wg;
  wg.add(kMessages);
  server.set_receiver([&](const Address& src, Bytes payload) {
    server.send(src, std::move(payload));  // echo
  });
  client.set_receiver([&](const Address&, Bytes payload) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(static_cast<int>(payload[0]) * 256 +
                       static_cast<int>(payload[1]));
    wg.done();
  });
  for (int i = 0; i < kMessages; ++i) {
    client.send(server.address(),
                Bytes{static_cast<std::uint8_t>(i / 256),
                      static_cast<std::uint8_t>(i % 256), 0xAB});
  }
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(30)));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], i);
}

TEST(TcpTransport, LargePayload) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  Event done;
  std::size_t got = 0;
  server.set_receiver([&](const Address&, Bytes payload) {
    got = payload.size();
    done.set();
  });
  Bytes big(1 << 20, 0x5A);  // 1 MiB
  client.send(server.address(), std::move(big));
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  EXPECT_EQ(got, 1u << 20);
}

// A raw TCP endpoint for exercising the transport's kernel-facing edges
// (frame validation, backpressure) without a second transport in the way.
struct RawPeer {
  int listen_fd = -1;
  int conn_fd = -1;
  std::uint16_t port = 0;

  RawPeer() {
    listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    bind(listen_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    listen(listen_fd, 8);
    socklen_t len = sizeof(sa);
    getsockname(listen_fd, reinterpret_cast<sockaddr*>(&sa), &len);
    port = ntohs(sa.sin_port);
  }
  ~RawPeer() {
    if (conn_fd >= 0) ::close(conn_fd);
    if (listen_fd >= 0) ::close(listen_fd);
  }
  Address address() const { return "127.0.0.1:" + std::to_string(port); }
  void accept_one() { conn_fd = ::accept(listen_fd, nullptr, nullptr); }
  /// Reads up to max_bytes but never blocks longer than 100ms waiting for
  /// data — callers loop on an external condition and must be able to
  /// re-check it even if the stream has momentarily (or permanently) dried
  /// up.
  std::size_t drain_some(std::size_t max_bytes) {
    std::vector<char> buf(65536);
    std::size_t total = 0;
    while (total < max_bytes) {
      struct pollfd pfd{conn_fd, POLLIN, 0};
      if (::poll(&pfd, 1, 100) <= 0) break;
      const ssize_t n = ::read(conn_fd, buf.data(),
                               std::min(buf.size(), max_bytes - total));
      if (n <= 0) break;
      total += static_cast<std::size_t>(n);
    }
    return total;
  }
};

TEST(TcpTransport, LargeFrameReassemblyPreservesContent) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  // Well past one 64 KiB read chunk, with a position-dependent pattern so a
  // mis-stitched reassembly (wrong offset, dropped chunk) changes bytes,
  // not just the length.
  constexpr std::size_t kSize = 300 * 1024 + 7;
  Bytes pattern(kSize);
  for (std::size_t i = 0; i < kSize; ++i)
    pattern[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 8));
  Event done;
  Bytes got;
  server.set_receiver([&](const Address&, Bytes payload) {
    got = std::move(payload);
    done.set();
  });
  Bytes copy = pattern;
  client.send(server.address(), std::move(copy));
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  ASSERT_EQ(got.size(), kSize);
  EXPECT_TRUE(got == pattern);
}

TEST(TcpTransport, RejectsOversizedInboundFrameAndCloses) {
  Executor executor(2, "tcp-test");
  TcpConfig config;
  config.max_frame_bytes = 1 << 16;
  TcpTransport server(executor, config);
  server.set_receiver([](const Address&, Bytes) {});

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(
      std::stoi(server.address().substr(server.address().find(':') + 1))));
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  // Claimed length 256 MiB >> max_frame_bytes: must be rejected before any
  // buffering happens on its behalf.
  const std::uint8_t evil[4] = {0x00, 0x00, 0x00, 0x10};
  ASSERT_EQ(write(fd, evil, sizeof(evil)), 4);
  // The server closes the connection: our next read sees EOF.
  char buf[16];
  ssize_t n = -1;
  for (int i = 0; i < 500; ++i) {
    n = recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(n, 0);
  EXPECT_EQ(server.stats().frames_rejected, 1u);
  EXPECT_EQ(server.stats().msgs_recv, 0u);
  ::close(fd);
}

TEST(TcpTransport, OversizedSendIsRefusedAndCounted) {
  Executor executor(2, "tcp-test");
  TcpConfig config;
  config.max_frame_bytes = 1024;
  TcpTransport client(executor, config);
  client.send("127.0.0.1:9", Bytes(4096, 0x11));
  EXPECT_EQ(client.stats().send_drops, 1u);
  EXPECT_EQ(client.stats().msgs_sent, 0u);
}

TEST(TcpTransport, UnreachablePeerCountsSendDrops) {
  Executor executor(2, "tcp-test");
  // Grab a port that is definitely closed: bind, learn it, release it.
  std::uint16_t dead_port;
  {
    RawPeer probe;
    dead_port = probe.port;
  }
  TcpTransport client(executor);
  client.send("127.0.0.1:" + std::to_string(dead_port), bytes_of("lost"));
  // The non-blocking connect fails asynchronously (EPOLLERR on the owning
  // reactor); the queued frame must surface as a send_drop, not vanish.
  bool dropped = false;
  for (int i = 0; i < 500 && !dropped; ++i) {
    dropped = client.stats().send_drops >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(dropped);
}

TEST(TcpTransport, BackpressureBlocksSenderUntilDrained) {
  Executor executor(2, "tcp-test");
  TcpConfig config;
  config.outbuf_hi_watermark = 256 * 1024;
  config.overflow = TcpConfig::OverflowPolicy::kBlock;
  // Small SO_SNDBUF: the kernel absorbs ~hundreds of KiB, not autotuned
  // megabytes, so the user-space watermark is what the sender actually hits.
  config.so_sndbuf = 64 * 1024;
  TcpTransport client(executor, config);
  RawPeer peer;  // accepts but does not read
  std::thread accepter([&] { peer.accept_one(); });
  client.send(peer.address(), Bytes(1024, 0xAA));  // triggers the dial
  accepter.join();

  // Push far more than kernel buffers + watermark can hold; the sender
  // thread must stall inside send() on the watermark.
  constexpr int kTotal = 600;  // 600 x 16 KiB = 9.4 MiB
  std::atomic<int> sent{0};
  std::thread sender([&] {
    for (int i = 0; i < kTotal; ++i) {
      client.send(peer.address(), Bytes(16 * 1024, 0xBB));
      sent.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_LT(sent.load(), kTotal) << "sender should be blocked on watermark";
  // Draining the peer releases the sender.
  std::thread drainer([&] {
    while (sent.load() < kTotal) peer.drain_some(1 << 20);
  });
  sender.join();
  drainer.join();
  EXPECT_EQ(sent.load(), kTotal);
  EXPECT_EQ(client.stats().send_shed, 0u);
}

TEST(TcpTransport, BackpressureShedPolicyDropsWithCounter) {
  Executor executor(2, "tcp-test");
  TcpConfig config;
  config.outbuf_hi_watermark = 128 * 1024;
  config.overflow = TcpConfig::OverflowPolicy::kShed;
  config.so_sndbuf = 64 * 1024;
  TcpTransport client(executor, config);
  RawPeer peer;
  std::thread accepter([&] { peer.accept_one(); });
  client.send(peer.address(), Bytes(1024, 0xAA));
  accepter.join();

  // kShed must never block: this loop completes promptly no matter how
  // wedged the peer is, with the overflow visible in send_shed.
  for (int i = 0; i < 600; ++i)
    client.send(peer.address(), Bytes(16 * 1024, 0xCC));
  EXPECT_GT(client.stats().send_shed, 0u);
  EXPECT_LT(client.stats().msgs_sent, 601u);
}

TEST(TcpTransport, SimultaneousConnectKeepsOneMappingAndLosesNothing) {
  // Regression for the dual-dial bug: when two nodes dial each other
  // concurrently, the handshake used to keep both connections and the
  // loser's close could erase the live by_peer_ routing entry, black-holing
  // every later send. Both sides must converge on one surviving connection
  // and deliver everything sent on either.
  for (int round = 0; round < 5; ++round) {
    Executor executor(4, "tcp-test");
    TcpTransport a(executor);
    TcpTransport b(executor);
    constexpr int kEach = 100;
    std::atomic<int> at_a{0}, at_b{0};
    a.set_receiver([&](const Address&, Bytes) { at_a.fetch_add(1); });
    b.set_receiver([&](const Address&, Bytes) { at_b.fetch_add(1); });
    // Dial each other from two threads at once to race the handshakes.
    std::thread ta([&] {
      for (int i = 0; i < kEach; ++i) a.send(b.address(), bytes_of("a2b"));
    });
    std::thread tb([&] {
      for (int i = 0; i < kEach; ++i) b.send(a.address(), bytes_of("b2a"));
    });
    ta.join();
    tb.join();
    for (int i = 0; i < 1000; ++i) {
      if (at_a.load() == kEach && at_b.load() == kEach) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(at_b.load(), kEach) << "round " << round;
    EXPECT_EQ(at_a.load(), kEach) << "round " << round;
    // The surviving mapping must still route: traffic after dedup works.
    a.send(b.address(), bytes_of("post"));
    b.send(a.address(), bytes_of("post"));
    for (int i = 0; i < 1000; ++i) {
      if (at_a.load() == kEach + 1 && at_b.load() == kEach + 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(at_b.load(), kEach + 1) << "round " << round;
    EXPECT_EQ(at_a.load(), kEach + 1) << "round " << round;
    EXPECT_EQ(a.stats().send_drops + b.stats().send_drops, 0u);
  }
}

TEST(TcpTransport, QuiesceUnderLoadIsARealBarrier) {
  Executor executor(4, "tcp-test");
  TcpTransport server(executor);
  TcpTransport client(executor);
  std::atomic<int> active{0};
  std::atomic<int> delivered{0};
  std::atomic<bool> detached{false};
  server.set_receiver([&](const Address&, Bytes) {
    active.fetch_add(1);
    EXPECT_FALSE(detached.load()) << "receiver ran after quiesce returned";
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    delivered.fetch_add(1);
    active.fetch_sub(1);
  });
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    while (!stop.load()) client.send(server.address(), Bytes(64, 0x42));
  });
  // Let deliveries pile up, then detach mid-stream.
  while (delivered.load() < 50) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.set_receiver(nullptr);
  server.quiesce();
  EXPECT_EQ(active.load(), 0) << "quiesce returned with a receiver in flight";
  detached.store(true);
  stop.store(true);
  pump.join();
}

TEST(ProcessCluster, TwoProcessSmoke) {
  if (rc::ProcessCluster::find_node_binary().empty())
    GTEST_SKIP() << "rc_cluster_node binary not found (fork/exec unavailable "
                    "or out-of-tree test run)";
  rc::ProcessClusterConfig config;
  config.flavor = Flavor::kTrad;
  config.num_dcs = 1;  // 1 server process + 1 client process
  config.clients_per_dc = 2;
  config.read_quorum = 1;
  config.vote_quorum = 1;
  config.num_keys = 500;
  config.warmup = std::chrono::milliseconds(100);
  config.measure = std::chrono::milliseconds(500);
  rc::ProcessCluster cluster(config);
  const auto result = cluster.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.mean_txn_ms, 0.0);
}

}  // namespace
}  // namespace srpc
