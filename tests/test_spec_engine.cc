// Core SpecRPC engine semantics: Figure 1 quickstart behaviour, client- and
// server-side speculation (§2.1), multi-level speculation (§2.2), incorrect
// prediction handling and re-execution (§3.3), rollback and specBlock
// (§3.5.2).
#include <gtest/gtest.h>

#include <atomic>

#include "common/env.h"
#include "common/sync.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

class SpecEngineTest : public ::testing::Test {
 protected:
  SpecEngineTest() {
    SimConfig config;
    config.executor_threads = 6;
    config.default_delay = std::chrono::milliseconds(2);
    net_ = std::make_unique<SimNetwork>(config);
    client_engine_ = std::make_unique<SpecEngine>(
        net_->add_node("client"), net_->executor(), net_->wheel());
    server_engine_ = std::make_unique<SpecEngine>(
        net_->add_node("server"), net_->executor(), net_->wheel());
    server2_engine_ = std::make_unique<SpecEngine>(
        net_->add_node("server2"), net_->executor(), net_->wheel());
  }

  ~SpecEngineTest() override {
    client_engine_->begin_shutdown();
    server_engine_->begin_shutdown();
    server2_engine_->begin_shutdown();
    net_->executor().shutdown();  // drain in-flight callbacks
    client_engine_.reset();
    server_engine_.reset();
    server2_engine_.reset();
    net_.reset();
  }

  void register_plus() {
    server_engine_->register_method("plus", Handler([](const ServerCallPtr& c) {
      c->finish(Value(c->args().at(0).as_int() + c->args().at(1).as_int()));
    }));
  }

  static CallbackFactory increment_factory(std::atomic<int>* runs = nullptr) {
    return [runs]() -> CallbackFn {
      return [runs](SpecContext&, const Value& v) -> CallbackResult {
        if (runs != nullptr) runs->fetch_add(1);
        return Value(v.as_int() + 1);
      };
    };
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SpecEngine> client_engine_;
  std::unique_ptr<SpecEngine> server_engine_;
  std::unique_ptr<SpecEngine> server2_engine_;
};

TEST_F(SpecEngineTest, PlainCallWithoutCallbackResolvesWithRpcResult) {
  register_plus();
  auto future = client_engine_->call("server", "plus", make_args(1, 2));
  EXPECT_EQ(future->get(), Value(3));
}

TEST_F(SpecEngineTest, Figure1CorrectClientPrediction) {
  register_plus();
  std::atomic<int> runs{0};
  auto future = client_engine_->call("server", "plus", make_args(1, 2),
                                     {Value(3)}, increment_factory(&runs));
  EXPECT_EQ(future->get(), Value(4));
  EXPECT_EQ(runs.load(), 1);  // correct prediction: exactly one execution
  auto stats = client_engine_->stats();
  EXPECT_EQ(stats.predictions_correct, 1u);
  EXPECT_EQ(stats.predictions_incorrect, 0u);
  EXPECT_EQ(stats.reexecutions, 0u);
}

TEST_F(SpecEngineTest, IncorrectPredictionReexecutesOnActual) {
  register_plus();
  std::atomic<int> runs{0};
  auto future = client_engine_->call("server", "plus", make_args(1, 2),
                                     {Value(99)}, increment_factory(&runs));
  EXPECT_EQ(future->get(), Value(4));
  EXPECT_EQ(runs.load(), 2);  // speculative run + re-execution
  auto stats = client_engine_->stats();
  EXPECT_EQ(stats.predictions_incorrect, 1u);
  EXPECT_EQ(stats.reexecutions, 1u);
}

TEST_F(SpecEngineTest, MultiplePredictionsOnlyMatchingBranchDelivers) {
  register_plus();
  std::atomic<int> runs{0};
  auto future =
      client_engine_->call("server", "plus", make_args(1, 2),
                           {Value(7), Value(3), Value(11)},
                           increment_factory(&runs));
  EXPECT_EQ(future->get(), Value(4));
  EXPECT_EQ(runs.load(), 3);  // three branches, no re-execution
  auto stats = client_engine_->stats();
  EXPECT_EQ(stats.predictions_correct, 1u);
  EXPECT_EQ(stats.predictions_incorrect, 2u);
  EXPECT_EQ(stats.reexecutions, 0u);
}

TEST_F(SpecEngineTest, DuplicatePredictionsAreDeduplicated) {
  register_plus();
  std::atomic<int> runs{0};
  auto future = client_engine_->call("server", "plus", make_args(1, 2),
                                     {Value(3), Value(3), Value(3)},
                                     increment_factory(&runs));
  EXPECT_EQ(future->get(), Value(4));
  EXPECT_EQ(runs.load(), 1);
}

TEST_F(SpecEngineTest, ServerSidePredictionViaSpecReturn) {
  // Server predicts its result before slow work completes (§2.1, Fig 2c).
  server_engine_->register_method(
      "slow_plus", Handler([](const ServerCallPtr& c) {
        const std::int64_t sum =
            c->args().at(0).as_int() + c->args().at(1).as_int();
        c->spec_return(Value(sum));  // accurate early prediction
        c->finish_after(std::chrono::milliseconds(30), Value(sum));
      }));
  std::atomic<int> runs{0};
  auto t0 = Clock::now();
  auto future = client_engine_->call("server", "slow_plus", make_args(20, 22),
                                     {}, increment_factory(&runs));
  EXPECT_EQ(future->get(), Value(43));
  auto elapsed = Clock::now() - t0;
  EXPECT_EQ(runs.load(), 1);
  // The dependent operation ran during the server's 30ms of work; total
  // time is still bounded by the RPC itself (~34ms), not doubled.
  EXPECT_LT(to_ms(elapsed), 100.0);
  EXPECT_EQ(client_engine_->stats().predictions_correct, 1u);
}

TEST_F(SpecEngineTest, RollbackRunsExactlyOnceOnMisprediction) {
  register_plus();
  std::atomic<int> rollbacks{0};
  auto factory = [&rollbacks]() -> CallbackFn {
    return [&rollbacks](SpecContext& ctx, const Value& v) -> CallbackResult {
      ctx.set_rollback([&rollbacks] { rollbacks.fetch_add(1); });
      return Value(v.as_int() + 1);
    };
  };
  auto future = client_engine_->call("server", "plus", make_args(1, 2),
                                     {Value(99)}, factory);
  EXPECT_EQ(future->get(), Value(4));
  // Allow the deferred rollback action to run.
  for (int i = 0; i < 100 && rollbacks.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rollbacks.load(), 1);
  EXPECT_EQ(client_engine_->stats().rollbacks_run, 1u);
}

TEST_F(SpecEngineTest, SpecBlockReturnsOnCorrectSpeculation) {
  register_plus();
  std::atomic<bool> blocked_then_ran{false};
  auto factory = [&]() -> CallbackFn {
    return [&](SpecContext& ctx, const Value& v) -> CallbackResult {
      ctx.spec_block();  // wait until non-speculative
      blocked_then_ran.store(true);
      return Value(v.as_int() * 10);
    };
  };
  auto future = client_engine_->call("server", "plus", make_args(1, 2),
                                     {Value(3)}, factory);
  EXPECT_EQ(future->get(), Value(30));
  EXPECT_TRUE(blocked_then_ran.load());
}

TEST_F(SpecEngineTest, SpecBlockThrowsOnMisspeculation) {
  // Hold the actual response until the speculative callback has started, so
  // it reliably misspeculates: once the callback runs with the predicted
  // value, the later actual response invalidates it no matter how the
  // threads interleave (a fixed delay here was flaky under CPU load).
  srpc::Event callback_entered;
  server_engine_->register_method(
      "slow_plus", Handler([&callback_entered](const ServerCallPtr& c) {
        callback_entered.wait();
        c->finish_after(
            std::chrono::milliseconds(1),
            Value(c->args().at(0).as_int() + c->args().at(1).as_int()));
      }));
  std::atomic<int> misspeculations{0};
  std::atomic<int> completions{0};
  // The parked speculative callback observes its invalidation
  // asynchronously: the future resolves via the actual-value branch, so
  // get() returning does not order after the misspeculation throw.
  srpc::Event misspeculation_seen;
  auto factory = [&]() -> CallbackFn {
    return [&](SpecContext& ctx, const Value& v) -> CallbackResult {
      callback_entered.set();
      try {
        ctx.spec_block();
      } catch (const MisspeculationError&) {
        misspeculations.fetch_add(1);
        misspeculation_seen.set();
        throw;
      }
      completions.fetch_add(1);
      return Value(v.as_int() * 10);
    };
  };
  auto future = client_engine_->call("server", "slow_plus", make_args(1, 2),
                                     {Value(99)}, factory);
  EXPECT_EQ(future->get(), Value(30));
  EXPECT_TRUE(misspeculation_seen.wait_for(std::chrono::seconds(10)));
  EXPECT_EQ(misspeculations.load(), 1);
  EXPECT_EQ(completions.load(), 1);
}

TEST_F(SpecEngineTest, ChainedCallsMultiLevelSpeculation) {
  // client -> plus(1,2) -> callback issues plus(result,10) -> final callback.
  register_plus();
  std::atomic<int> second_runs{0};
  auto inner_factory = [&second_runs]() -> CallbackFn {
    return [&second_runs](SpecContext&, const Value& v) -> CallbackResult {
      second_runs.fetch_add(1);
      return Value(v.as_int() + 100);
    };
  };
  auto outer_factory = [inner_factory]() -> CallbackFn {
    return [inner_factory](SpecContext& ctx, const Value& v) -> CallbackResult {
      // Speculatively predict the nested RPC result too (MLS, §2.2).
      return ctx.call("server", "plus", make_args(v.as_int(), 10),
                      {Value(v.as_int() + 10)}, inner_factory);
    };
  };
  auto future = client_engine_->call("server", "plus", make_args(1, 2),
                                     {Value(3)}, outer_factory);
  EXPECT_EQ(future->get(), Value(113));  // ((1+2)+10)+100
  EXPECT_EQ(second_runs.load(), 1);      // both levels predicted correctly
}

TEST_F(SpecEngineTest, ChainWithWrongFirstPredictionAbandonsNestedCall) {
  register_plus();
  std::atomic<int> inner_runs{0};
  auto inner_factory = [&inner_runs]() -> CallbackFn {
    return [&inner_runs](SpecContext&, const Value& v) -> CallbackResult {
      inner_runs.fetch_add(1);
      return Value(v.as_int() + 100);
    };
  };
  auto outer_factory = [inner_factory]() -> CallbackFn {
    return [inner_factory](SpecContext& ctx, const Value& v) -> CallbackResult {
      return ctx.call("server", "plus", make_args(v.as_int(), 10),
                      {Value(v.as_int() + 10)}, inner_factory);
    };
  };
  auto future = client_engine_->call("server", "plus", make_args(1, 2),
                                     {Value(50)}, outer_factory);
  // Wrong first prediction (50 != 3): the speculative nested chain is
  // abandoned; the re-executed chain delivers the correct value.
  EXPECT_EQ(future->get(), Value(113));
  auto stats = client_engine_->stats();
  EXPECT_GE(stats.branches_abandoned, 1u);
}

TEST_F(SpecEngineTest, ServerToServerSpeculation) {
  // Figure 3 shape: client -> server(getPI) -> server2(getPH). The middle
  // server speculatively returns its result based on a predicted getPH.
  server2_engine_->register_method(
      "getPH", Handler([](const ServerCallPtr& c) {
        c->spec_return(Value("history"));  // local data before sync completes
        c->finish_after(std::chrono::milliseconds(20), Value("history"));
      }));
  server_engine_->register_method(
      "getPI", Handler([](const ServerCallPtr& c) {
        auto factory = [call = c]() -> CallbackFn {
          return [call](SpecContext&, const Value& ph) -> CallbackResult {
            Value pi("PI:" + ph.as_string());
            call->finish(pi);  // predicted first, actual once PH resolves
            return pi;
          };
        };
        c->call("server2", "getPH", make_args("user1"), {}, factory);
      }));
  auto t0 = Clock::now();
  auto future = client_engine_->call("server", "getPI", make_args("user1"));
  EXPECT_EQ(future->get(), Value("PI:history"));
  // The client must eventually receive the *actual* response even though the
  // first response it saw was speculative.
  EXPECT_LT(to_ms(Clock::now() - t0), 500.0);
}

TEST_F(SpecEngineTest, QuorumCallFirstResponsePredictsResult) {
  for (auto* engine : {server_engine_.get(), server2_engine_.get()}) {
    engine->register_method("read", Handler([](const ServerCallPtr& c) {
      c->finish(Value("v1"));
    }));
  }
  client_engine_->register_method("read", Handler([](const ServerCallPtr& c) {
    c->finish(Value("v1"));
  }));
  // Make server2 far away so the quorum (2 of 3) is dominated by it... use
  // asymmetric delays: client->server2 slow.
  net_->set_rtt("client", "server2", std::chrono::milliseconds(40));
  std::atomic<int> runs{0};
  auto combiner = [](const std::vector<Value>& responses) {
    return responses.front();
  };
  auto factory = [&runs]() -> CallbackFn {
    return [&runs](SpecContext&, const Value& v) -> CallbackResult {
      runs.fetch_add(1);
      return v;
    };
  };
  auto future = client_engine_->call_quorum(
      {"server", "server2"}, 2, "read", make_args("k"), combiner, factory);
  EXPECT_EQ(future->get(), Value("v1"));
  EXPECT_EQ(runs.load(), 1);  // first response predicted the quorum result
  auto stats = client_engine_->stats();
  EXPECT_EQ(stats.quorum_calls_issued, 1u);
  EXPECT_EQ(stats.predictions_correct, 1u);
}

TEST_F(SpecEngineTest, UnknownMethodFailsTheFuture) {
  auto future = client_engine_->call("server", "nope", make_args(1));
  EXPECT_THROW(future->get(), rpc::RpcError);
}

TEST_F(SpecEngineTest, HandlerFailurePropagates) {
  server_engine_->register_method("boom", Handler([](const ServerCallPtr& c) {
    c->fail("kaboom");
  }));
  auto future = client_engine_->call("server", "boom", make_args());
  EXPECT_THROW(future->get(), rpc::RpcError);
}

TEST_F(SpecEngineTest, AdversarialAlwaysWrongPredictionsStillComplete) {
  // Figure 6's bad scenario: every prediction is wrong at every level; the
  // client must still observe exactly the sequential-equivalent result.
  register_plus();
  auto inner_factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult {
      return Value(v.as_int() * 2);
    };
  };
  auto outer_factory = [inner_factory]() -> CallbackFn {
    return [inner_factory](SpecContext& ctx, const Value& v) -> CallbackResult {
      return ctx.call("server", "plus", make_args(v.as_int(), 5),
                      {Value(-1)} /* always wrong */, inner_factory);
    };
  };
  for (int i = 0; i < 5; ++i) {
    auto future = client_engine_->call("server", "plus", make_args(i, 1),
                                       {Value(-1)} /* always wrong */,
                                       outer_factory);
    EXPECT_EQ(future->get(), Value(((i + 1) + 5) * 2));
  }
  auto stats = client_engine_->stats();
  EXPECT_EQ(stats.predictions_correct, 0u);
  EXPECT_GE(stats.reexecutions, 5u);
}

}  // namespace
}  // namespace srpc::spec
