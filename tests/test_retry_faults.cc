// Retry/deadline layer and engine lifecycle under faults: re-issued
// attempts across partitions, duplicate/late reply handling, overall
// deadlines, and regression tests for the timer-vs-destruction races the
// NodeCore/LifeToken reworks fixed (run under ASan to be meaningful).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "common/sync.h"
#include "common/timer_wheel.h"
#include "grpcsim/grpcsim.h"
#include "rpc/node.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"
#include "transport/tcp_transport.h"

namespace srpc::rpc {
namespace {

class RetryFaultTest : public ::testing::Test {
 protected:
  RetryFaultTest() {
    SimConfig config;
    config.default_delay = std::chrono::milliseconds(1);
    net_ = std::make_unique<SimNetwork>(config);
    server_ = std::make_unique<Node>(net_->add_node("server"),
                                     net_->executor(), net_->wheel());
    server_->register_method(
        "plus", [](const CallContext&, ValueList args, Responder responder) {
          responder.finish(Value(args.at(0).as_int() + args.at(1).as_int()));
        });
  }

  std::unique_ptr<Node> make_client(NodeConfig config,
                                    const Address& addr = "client") {
    return std::make_unique<Node>(net_->add_node(addr), net_->executor(),
                                  net_->wheel(), config);
  }

  static NodeConfig retrying_config() {
    NodeConfig config;
    config.call_timeout = std::chrono::seconds(5);
    config.retry.max_attempts = 5;
    config.retry.attempt_timeout = std::chrono::milliseconds(100);
    config.retry.initial_backoff = std::chrono::milliseconds(10);
    return config;
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<Node> server_;
};

// Regression: the call-timeout timer used to capture the Node raw and was
// never cancelled, so destroying the Node with a call in flight let the
// timer fire into freed memory (UAF under ASan pre-fix). Post-fix the
// record's timer is cancelled at shutdown and wheel callbacks hold only a
// weak handle.
TEST_F(RetryFaultTest, TimeoutTimerSurvivesNodeDestruction) {
  server_->register_method(
      "blackhole", [](const CallContext&, ValueList, Responder responder) {
        static std::vector<Responder> parked;
        parked.push_back(std::move(responder));
      });
  NodeConfig config;
  config.call_timeout = std::chrono::milliseconds(50);
  auto ephemeral = make_client(config, "ephemeral");
  auto future = ephemeral->call("server", "blackhole", {});
  ephemeral.reset();  // destroys the Node while the 50ms timer is pending
  // Shutdown fails the pending call instead of leaving the client hanging.
  EXPECT_THROW(future->get(), RpcError);
  // Give any stale timer time to fire against the dead node (the wheel is
  // still running inside net_); ASan flags the old raw-`this` capture here.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
}

// Regression: GrpcSim's per-message overhead parked inbound frames on the
// wheel with a raw `this`; a node destroyed mid-delay was then dispatched
// into. Post-fix the delayed dispatch holds a weak core handle.
TEST_F(RetryFaultTest, OverheadDispatchSurvivesNodeDestruction) {
  grpcsim::GrpcSimConfig grpc_config;
  grpc_config.per_message_overhead = std::chrono::milliseconds(60);
  auto grpc_server = std::make_unique<grpcsim::GrpcNode>(
      net_->add_node("gs"), net_->executor(), net_->wheel(), grpc_config);
  grpc_server->register_method(
      "echo", [](const CallContext&, ValueList args, Responder responder) {
        responder.finish(args.empty() ? Value() : args[0]);
      });
  NodeConfig config;
  config.call_timeout = std::chrono::milliseconds(300);
  auto client = make_client(config);
  auto future = client->call("gs", "echo", {Value(1)});
  // Let the request arrive and park in the 60ms overhead delay...
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  grpc_server.reset();  // ...then destroy the server under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_THROW(future->get(), RpcError);  // no reply -> deadline
}

TEST_F(RetryFaultTest, RetrySucceedsAfterPartitionHeals) {
  auto client = make_client(retrying_config());
  net_->partition("client", "server", true);
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    net_->partition("client", "server", false);
  });
  // Attempt 1 is eaten by the partition; a later re-issued attempt lands
  // after the heal at ~250ms, well inside the 5s deadline.
  const auto t0 = Clock::now();
  EXPECT_EQ(client->call_sync("server", "plus", {Value(20), Value(3)}),
            Value(23));
  EXPECT_GE(to_ms(Clock::now() - t0), 100.0);  // did not succeed first try
  healer.join();
}

TEST_F(RetryFaultTest, GivesUpAtOverallDeadline) {
  NodeConfig config;
  config.call_timeout = std::chrono::milliseconds(250);
  config.retry.max_attempts = 100;  // deadline, not attempts, must bound it
  config.retry.attempt_timeout = std::chrono::milliseconds(50);
  config.retry.initial_backoff = std::chrono::milliseconds(5);
  auto client = make_client(config);
  net_->partition("client", "server", true);  // never heals
  const auto t0 = Clock::now();
  auto future = client->call("server", "plus", {Value(1), Value(1)});
  EXPECT_THROW(future->get(), RpcError);
  const double ms = to_ms(Clock::now() - t0);
  EXPECT_GE(ms, 200.0);
  EXPECT_LE(ms, 2000.0);  // gave up near the deadline, not after 100 tries
}

TEST_F(RetryFaultTest, DuplicatedRepliesAndRequestsAreDeduplicated) {
  // Force every message (request and reply) to be delivered twice: the
  // server executes the idempotent handler twice and the client must
  // resolve each future exactly once, from the first reply.
  FaultCfg dup;
  dup.dup_prob = 1.0;
  net_->set_faults("client", "server", dup);
  net_->set_faults("server", "client", dup);
  auto client = make_client(retrying_config());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client->call_sync("server", "plus", {Value(i), Value(1)}),
              Value(i + 1));
  }
}

TEST_F(RetryFaultTest, LateReplyAfterTimeoutIsIgnored) {
  server_->register_method(
      "slow", [](const CallContext& ctx, ValueList, Responder responder) {
        ctx.finish_after(std::chrono::milliseconds(150), std::move(responder),
                         Value("late"));
      });
  NodeConfig config;
  config.call_timeout = std::chrono::milliseconds(40);  // no retry
  auto client = make_client(config);
  auto future = client->call("server", "slow", {});
  EXPECT_THROW(future->get(), RpcError);  // timed out at 40ms
  // The reply lands at ~150ms against an erased record; it must be dropped
  // without disturbing later calls on the same node.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(client->call_sync("server", "plus", {Value(2), Value(2)}),
            Value(4));
}

TEST_F(RetryFaultTest, RetryUnderHeavyLossEventuallyCompletes) {
  FaultCfg lossy;
  lossy.drop_prob = 0.3;
  net_->set_faults("client", "server", lossy);
  net_->set_faults("server", "client", lossy);
  NodeConfig config = retrying_config();
  config.retry.max_attempts = 8;
  auto client = make_client(config);
  int ok = 0;
  for (int i = 0; i < 30; ++i) {
    // P(all 8 attempts lose a message) ≈ (1 - 0.7^2)^8 ≈ 5e-3; thirty calls
    // virtually all succeed, and none may hang.
    try {
      if (client->call_sync("server", "plus", {Value(i), Value(i)}) ==
          Value(2 * i))
        ++ok;
    } catch (const RpcError&) {
    }
  }
  EXPECT_GE(ok, 25);
}

// Over the real transport, every retry attempt to an unreachable peer used
// to vanish with only a WARN log; the send_drops counter makes the loss the
// retry layer is papering over observable without log scraping.
TEST(RetryOverTcp, UnreachablePeerDropsAreCountedPerAttempt) {
  Executor executor(4, "retry-tcp");
  TimerWheel wheel;
  {
    // Reserve-then-release a port so the dial target is definitely closed.
    std::uint16_t dead_port;
    {
      TcpTransport probe(executor);
      const auto& addr = probe.address();
      dead_port = static_cast<std::uint16_t>(
          std::stoi(addr.substr(addr.find(':') + 1)));
    }
    TcpTransport transport(executor);
    NodeConfig config;
    config.call_timeout = std::chrono::seconds(2);
    config.retry.max_attempts = 3;
    config.retry.attempt_timeout = std::chrono::milliseconds(100);
    config.retry.initial_backoff = std::chrono::milliseconds(10);
    Node client(transport, executor, wheel, config);
    auto future = client.call("127.0.0.1:" + std::to_string(dead_port),
                              "anything", {});
    const auto outcome = future->get_for(std::chrono::seconds(10));
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->ok);
    // One drop per failed attempt: retries are visible in the counter, so
    // a flapping peer shows up as send_drops, not as silence.
    EXPECT_GE(transport.stats().send_drops,
              static_cast<std::uint64_t>(config.retry.max_attempts));
  }
  wheel.shutdown();
  executor.shutdown();
}

// Regression: under OverflowPolicy::kShed a watermarked send() dropped the
// frame silently while returning void, so the caller sat out the full
// attempt timeout per attempt before retrying — a shed call took
// attempts x attempt_timeout to fail. Post-fix send() reports the refusal
// and the node fails the attempt immediately, so only the retry backoffs
// separate the attempts.
TEST(RetryOverTcp, ShedSendFailsAttemptImmediately) {
  Executor executor(4, "shed-tcp");
  TimerWheel wheel;
  {
    TcpTransport peer(executor);  // live listener: connect succeeds
    TcpConfig cfg;
    cfg.outbuf_hi_watermark = 1;  // every frame overflows the outbuf
    cfg.overflow = TcpConfig::OverflowPolicy::kShed;
    TcpTransport transport(executor, cfg);
    NodeConfig config;
    config.call_timeout = std::chrono::seconds(30);
    config.retry.max_attempts = 3;
    // Huge per-attempt timeout: if any attempt waits it out, the elapsed
    // bound below trips. The call must fail via the send-refused fast path.
    config.retry.attempt_timeout = std::chrono::seconds(5);
    config.retry.initial_backoff = std::chrono::milliseconds(10);
    Node client(transport, executor, wheel, config);
    const auto t0 = Clock::now();
    auto future = client.call(peer.address(), "anything", {});
    const auto outcome = future->get_for(std::chrono::seconds(60));
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->ok);
    // Pre-fix floor was 3 x 5s; post-fix only the ~30ms of backoff remains.
    EXPECT_LE(to_ms(Clock::now() - t0), 2500.0);
    EXPECT_GE(transport.stats().send_shed,
              static_cast<std::uint64_t>(config.retry.max_attempts));
  }
  wheel.shutdown();
  executor.shutdown();
}

}  // namespace
}  // namespace srpc::rpc

namespace srpc::spec {
namespace {

TEST(SpecEngineRetry, RetriesThroughPartitionHeal) {
  SimConfig sim_config;
  sim_config.default_delay = std::chrono::milliseconds(1);
  SimNetwork net(sim_config);
  SpecConfig config;
  config.call_timeout = std::chrono::seconds(5);
  config.retry.max_attempts = 5;
  config.retry.attempt_timeout = std::chrono::milliseconds(100);
  config.retry.initial_backoff = std::chrono::milliseconds(10);
  auto client = std::make_unique<SpecEngine>(net.add_node("client"),
                                             net.executor(), net.wheel(),
                                             config);
  auto server = std::make_unique<SpecEngine>(net.add_node("server"),
                                             net.executor(), net.wheel(),
                                             config);
  server->register_method("plus", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args().at(0).as_int() + c->args().at(1).as_int()));
  }));

  net.partition("client", "server", true);
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    net.partition("client", "server", false);
  });
  auto future = client->call("server", "plus", make_args(4, 5));
  EXPECT_EQ(future->get(), Value(9));
  healer.join();
  EXPECT_GE(client->stats().retries, 1u);

  client->begin_shutdown();
  server->begin_shutdown();
  net.executor().shutdown();
  client.reset();
  server.reset();
}

TEST(SpecEngineRetry, FailsAtDeadlineWhenPartitionNeverHeals) {
  SimConfig sim_config;
  sim_config.default_delay = std::chrono::milliseconds(1);
  SimNetwork net(sim_config);
  SpecConfig config;
  config.call_timeout = std::chrono::milliseconds(300);
  config.retry.max_attempts = 50;
  config.retry.attempt_timeout = std::chrono::milliseconds(50);
  config.retry.initial_backoff = std::chrono::milliseconds(5);
  auto client = std::make_unique<SpecEngine>(net.add_node("client"),
                                             net.executor(), net.wheel(),
                                             config);
  net.add_node("server");  // endpoint exists but nothing ever answers
  net.partition("client", "server", true);
  const auto t0 = Clock::now();
  auto future = client->call("server", "plus", make_args(1, 1));
  EXPECT_THROW(future->get(), rpc::RpcError);
  EXPECT_LE(to_ms(Clock::now() - t0), 2000.0);

  client->begin_shutdown();
  net.executor().shutdown();
  client.reset();
}

}  // namespace
}  // namespace srpc::spec
