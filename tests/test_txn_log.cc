// Async transaction log: append/flush semantics, replay, crash-tail
// tolerance, store recovery, and the RC integration (logs record exactly
// the applied commits).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "kvstore/txn_log.h"
#include "rc/cluster.h"
#include "specrpc/side_table.h"
#include "transport/sim_network.h"

namespace srpc::kv {
namespace {

std::string temp_log_path(const char* tag) {
  return ::testing::TempDir() + "/specrpc_" + tag + "_" +
         std::to_string(::getpid()) + ".log";
}

TEST(TxnLog, AppendFlushReplayRoundTrip) {
  const std::string path = temp_log_path("roundtrip");
  std::remove(path.c_str());
  {
    TxnLog log(path);
    log.append(CommitRecord{1, 100, {{"a", "x"}, {"b", "y"}}});
    log.append(CommitRecord{2, 200, {{"a", "z"}}});
    log.append(CommitRecord{3, 300, {}});  // write-less record
    log.flush();
    EXPECT_EQ(log.appended(), 3u);
    EXPECT_EQ(log.flushed(), 3u);
  }
  std::vector<CommitRecord> replayed;
  const auto n = TxnLog::replay(
      path, [&](const CommitRecord& r) { replayed.push_back(r); });
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(replayed[0].txn, 1u);
  EXPECT_EQ(replayed[0].commit_version, 100);
  ASSERT_EQ(replayed[0].writes.size(), 2u);
  EXPECT_EQ(replayed[0].writes[1].key, "b");
  EXPECT_EQ(replayed[2].writes.size(), 0u);
  std::remove(path.c_str());
}

TEST(TxnLog, RecoverRebuildsStore) {
  const std::string path = temp_log_path("recover");
  std::remove(path.c_str());
  {
    TxnLog log(path);
    log.append(CommitRecord{1, 10, {{"k", "v1"}}});
    log.append(CommitRecord{2, 20, {{"k", "v2"}, {"j", "w"}}});
    log.flush();
  }
  VersionedStore store;
  EXPECT_EQ(TxnLog::recover(path, store), 2u);
  EXPECT_EQ(store.get("k")->value, "v2");
  EXPECT_EQ(store.get("k")->version, 20);
  EXPECT_EQ(store.get("j")->value, "w");
  std::remove(path.c_str());
}

TEST(TxnLog, TornTailIsIgnored) {
  const std::string path = temp_log_path("torn");
  std::remove(path.c_str());
  {
    TxnLog log(path);
    log.append(CommitRecord{1, 10, {{"k", "v1"}}});
    log.append(CommitRecord{2, 20, {{"k", "v2"}}});
    log.flush();
  }
  // Simulate a crash mid-write: truncate the last few bytes.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  std::vector<CommitRecord> replayed;
  TxnLog::replay(path, [&](const CommitRecord& r) { replayed.push_back(r); });
  ASSERT_EQ(replayed.size(), 1u);  // the complete record survives
  EXPECT_EQ(replayed[0].writes[0].value, "v1");
  std::remove(path.c_str());
}

TEST(TxnLog, ReplayOfMissingFileIsEmpty) {
  EXPECT_EQ(TxnLog::replay("/nonexistent/specrpc.rclog",
                           [](const CommitRecord&) { FAIL(); }),
            0u);
}

TEST(TxnLog, AppendsFromManyThreads) {
  const std::string path = temp_log_path("mt");
  std::remove(path.c_str());
  {
    TxnLog log(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&log, t] {
        for (int i = 0; i < 100; ++i) {
          log.append(CommitRecord{static_cast<TxnId>(t * 100 + i + 1),
                                  t * 100 + i + 1,
                                  {{"k" + std::to_string(t), "v"}}});
        }
      });
    }
    for (auto& th : threads) th.join();
    log.flush();
    EXPECT_EQ(log.flushed(), 400u);
  }
  EXPECT_EQ(TxnLog::replay(path, [](const CommitRecord&) {}), 400u);
  std::remove(path.c_str());
}

TEST(TxnLogRcIntegration, ClusterLogsAppliedCommits) {
  const std::string dir = ::testing::TempDir() + "/rclogs_" +
                          std::to_string(::getpid());
  // A crashed prior run leaves its dir behind and pids recycle: start from
  // scratch so stale logs can't leak records into this run's recovery.
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    rc::ClusterConfig config;
    config.flavor = Flavor::kSpec;
    config.geo = uniform_geo(5.0);
    config.clients_per_dc = 1;
    config.num_keys = 200;
    config.log_dir = dir;
    rc::RcCluster cluster(config);
    std::vector<rc::Op> ops;
    ops.push_back(rc::Op{false, "k00000001", "logged"});
    ASSERT_TRUE(cluster.client(0, 0).run(ops).committed);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));  // applies
  }
  // Every replica of the owning shard logged the commit. The cluster ran
  // the default static view, so a fresh static view resolves the same owner.
  const int shard = rc::ClusterView::make_static().shard_of("k00000001");
  int logs_with_record = 0;
  for (int dc = 0; dc < 3; ++dc) {
    const std::string path = dir + "/" + std::to_string(dc) + "." +
                             std::to_string(shard) + ".rclog";
    VersionedStore recovered;
    if (TxnLog::recover(path, recovered) > 0 &&
        recovered.get("k00000001").has_value()) {
      EXPECT_EQ(recovered.get("k00000001")->value, "logged");
      logs_with_record++;
    }
  }
  EXPECT_GE(logs_with_record, 2);  // at least the majority applied + logged
  std::filesystem::remove_all(dir);
}

TEST(TxnLogRcIntegration, FreshReplicaConvergesFromLogReplayAlone) {
  // A joining replica recovers from dataset preload + pure TxnLog replay —
  // no state transfer. Drive BOTH log record shapes at the cluster:
  // per-transaction 2PC commits (TxnLog::append) and batch group commits
  // (TxnLog::append_batch), then rebuild every replica offline and demand
  // exact (value, version) equality with the live store it replicates.
  const std::string dir = ::testing::TempDir() + "/rclogs_replay_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto key_at = [](std::size_t i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08zu", i);
    return std::string(key);
  };
  constexpr std::size_t kNumKeys = 120;
  constexpr std::size_t kValueSize = 16;
  using Snapshot =
      std::vector<std::tuple<std::string, std::string, std::int64_t>>;
  std::vector<Snapshot> live;
  int num_dcs = 0;
  int num_shards = 0;
  {
    rc::ClusterConfig config;
    config.flavor = Flavor::kSpec;
    config.geo = uniform_geo(3.0);
    config.clients_per_dc = 1;
    config.num_keys = kNumKeys;
    config.value_size = kValueSize;
    config.log_dir = dir;
    config.batch_clients = true;
    rc::RcCluster cluster(config);
    num_dcs = cluster.num_dcs();
    num_shards = cluster.total_shards();

    // Per-txn traffic: single CommitRecord appends.
    for (std::size_t t = 0; t < 5; ++t) {
      std::vector<rc::Op> ops;
      ops.push_back(rc::Op{false, key_at(t), "txn" + std::to_string(t)});
      ASSERT_TRUE(cluster.client(0, 0).run(ops).committed);
    }
    // Batch traffic: three speculative group-commit epochs — rmw increments
    // on a shared hot range plus disjoint blind writes — whose applies land
    // through TxnLog::append_batch.
    auto& bc = cluster.batch_client(1, 0);
    for (int e = 0; e < 3; ++e) {
      std::vector<batch::BatchTxn> txns;
      for (std::size_t t = 0; t < 8; ++t) {
        batch::BatchTxn txn;
        txn.id = static_cast<std::uint64_t>(e) * 8 + t;
        batch::BatchOp rmw;
        rmw.kind = batch::OpKind::kRmw;
        rmw.key = key_at(10 + t);
        rmw.value = "1";
        rmw.transform = batch::Transform::kIncrement;
        txn.ops.push_back(std::move(rmw));
        batch::BatchOp w;
        w.kind = batch::OpKind::kWrite;
        w.key = key_at(40 + static_cast<std::size_t>(e) * 8 + t);
        w.value = "batch" + std::to_string(txn.id);
        txn.ops.push_back(std::move(w));
        txns.push_back(std::move(txn));
      }
      EXPECT_GT(bc.run_epoch(std::move(txns)).committed, 0u);
    }
    // Let the asynchronous decide/apply broadcasts drain, then snapshot
    // every live replica.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    for (int dc = 0; dc < num_dcs; ++dc) {
      for (int shard = 0; shard < num_shards; ++shard) {
        live.push_back(cluster.store(dc, shard).export_if(
            [](const std::string&) { return true; }));
      }
    }
  }  // teardown flushes every log

  const rc::ClusterView view = rc::ClusterView::make_static(num_dcs,
                                                            num_shards);
  for (int dc = 0; dc < num_dcs; ++dc) {
    for (int shard = 0; shard < num_shards; ++shard) {
      VersionedStore fresh;
      for (std::size_t i = 0; i < kNumKeys; ++i) {
        const std::string key = key_at(i);
        if (view.shard_of(key) == shard) {
          fresh.load(key, std::string(kValueSize, 'v'), 1);
        }
      }
      const std::string path = dir + "/" + std::to_string(dc) + "." +
                               std::to_string(shard) + ".rclog";
      TxnLog::recover(path, fresh);
      const Snapshot& reference =
          live.at(static_cast<std::size_t>(dc * num_shards + shard));
      EXPECT_EQ(fresh.size(), reference.size())
          << "dc" << dc << " shard" << shard;
      for (const auto& [key, value, version] : reference) {
        const auto got = fresh.get(key);
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(got->value, value) << key;
        EXPECT_EQ(got->version, version) << key;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace srpc::kv

namespace srpc::spec {
namespace {

TEST(SpecSideTable, PlainWritesFromAppThread) {
  SimNetwork net;
  SpecEngine engine(net.add_node("n"), net.executor(), net.wheel());
  SpecSideTable table(engine);
  table.put("k", Value(1));
  EXPECT_EQ(table.get("k"), Value(1));
  table.erase("k");
  EXPECT_FALSE(table.get("k").has_value());
  engine.begin_shutdown();
}

TEST(SpecSideTable, MisspeculatedWriteIsRolledBack) {
  SimNetwork net;
  SpecEngine server(net.add_node("server"), net.executor(), net.wheel());
  SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
  server.register_method("slow", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::milliseconds(20), Value(7));
  }));
  SpecSideTable table(client);
  table.put("seen", Value("initial"));

  auto factory = [&table]() -> CallbackFn {
    return [&table](SpecContext&, const Value& v) -> CallbackResult {
      table.put("seen", v);  // speculative side effect
      return v;
    };
  };
  auto future = client.call("server", "slow", make_args(), {Value(999)},
                            factory);
  EXPECT_EQ(future->get(), Value(7));
  // The wrong branch wrote 999 into the table; the rollback must restore it
  // before/while the correct branch writes 7. Eventually: value is 7, and
  // 999 is gone.
  for (int i = 0; i < 200; ++i) {
    auto v = table.get("seen");
    if (v.has_value() && *v == Value(7)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(table.get("seen"), Value(7));
  EXPECT_GE(client.stats().rollbacks_run, 1u);
  client.begin_shutdown();
  server.begin_shutdown();
}

TEST(SpecSideTable, CorrectSpeculationKeepsWrite) {
  SimNetwork net;
  SpecEngine server(net.add_node("server"), net.executor(), net.wheel());
  SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
  server.register_method("f", Handler([](const ServerCallPtr& c) {
    c->finish(Value(7));
  }));
  SpecSideTable table(client);
  auto factory = [&table]() -> CallbackFn {
    return [&table](SpecContext&, const Value& v) -> CallbackResult {
      table.put("seen", v);
      return v;
    };
  };
  EXPECT_EQ(client.call("server", "f", make_args(), {Value(7)}, factory)
                ->get(),
            Value(7));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(table.get("seen"), Value(7));
  EXPECT_EQ(client.stats().rollbacks_run, 0u);
  client.begin_shutdown();
  server.begin_shutdown();
}

}  // namespace
}  // namespace srpc::spec
