// Live reconfiguration (DESIGN.md §13): ClusterView wire format and
// provider semantics, wrong-epoch NACK + inline client refresh, live slot
// migration under closed-loop traffic (zero lost committed writes), spare
// shards gaining their first slots, and batch clients re-planning a whole
// epoch when the view flips under them.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "batch/client.h"
#include "common/rng.h"
#include "rc/cluster.h"

namespace srpc::rc {
namespace {

ClusterConfig reconfig_cluster(Flavor flavor) {
  ClusterConfig config;
  config.flavor = flavor;
  config.geo = uniform_geo(/*rtt_ms=*/6.0);
  config.geo.lan_rtt_ms = 0.3;
  config.clients_per_dc = 1;
  config.num_keys = 500;
  config.executor_threads = 8;
  return config;
}

/// The `skip`-th preloaded dataset key that `view` routes to `shard`.
std::string key_on_shard(const ClusterView& view, int shard, int skip = 0) {
  for (std::uint64_t i = 0; i < 100000; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08llu",
                  static_cast<unsigned long long>(i));
    if (view.shard_of(key) == shard && skip-- == 0) return key;
  }
  ADD_FAILURE() << "no key found on shard " << shard;
  return {};
}

// ------------------------------------------------------------- view units

TEST(ClusterViewUnit, DefaultDcNamesScaleBeyondTheCanonicalThree) {
  // Topology hard-coded {oregon, ireland, seoul} while num_dcs was a free
  // knob; the view derives names for any size.
  EXPECT_EQ(ClusterView::default_dc_names(1),
            (std::vector<std::string>{"oregon"}));
  EXPECT_EQ(ClusterView::default_dc_names(3),
            (std::vector<std::string>{"oregon", "ireland", "seoul"}));
  const auto five = ClusterView::default_dc_names(5);
  ASSERT_EQ(five.size(), 5u);
  EXPECT_EQ(five[2], "seoul");
  EXPECT_EQ(five[3], "dc3");
  EXPECT_EQ(five[4], "dc4");

  const ClusterView view = ClusterView::make_static(/*num_dcs=*/5);
  EXPECT_EQ(view.shard_addr(4, 0), "dc4.shard0");
  EXPECT_EQ(view.coord_addr(3), "dc3.coord");
}

TEST(ClusterViewUnit, WireRoundTripPreservesRoutingExactly) {
  ClusterView view = ClusterView::make_static(/*num_dcs=*/3, /*num_shards=*/4)
                         .with_slots_moved({0, 5, 9}, 3);
  view.epoch = 7;

  const auto back = ClusterView::from_wire(view.to_wire());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 7);
  EXPECT_EQ(back->num_dcs, 3);
  EXPECT_EQ(back->num_shards, 4);
  EXPECT_EQ(back->slot_owner, view.slot_owner);
  EXPECT_EQ(back->dc_names, view.dc_names);

  // Explicit endpoint overrides (the cross-process cluster's real TCP
  // addresses) survive the trip too.
  ClusterView tcp = ClusterView::make_static(/*num_dcs=*/2, /*num_shards=*/2);
  tcp.shard_addrs_override = {{"h1:1", "h1:2"}, {"h2:1", "h2:2"}};
  tcp.coord_addrs_override = {"h1:9", "h2:9"};
  const auto tcp_back = ClusterView::from_wire(tcp.to_wire());
  ASSERT_TRUE(tcp_back.has_value());
  EXPECT_EQ(tcp_back->shard_addr(1, 0), "h2:1");
  EXPECT_EQ(tcp_back->coord_addr(0), "h1:9");

  // Garbage and truncations parse to nullopt, never to a bogus view.
  EXPECT_FALSE(ClusterView::from_wire("").has_value());
  EXPECT_FALSE(ClusterView::from_wire("CV1 2 3").has_value());
  EXPECT_FALSE(ClusterView::from_wire("XX " + view.to_wire()).has_value());

  // The wrong-epoch NACK embeds the view; parse recovers it even when the
  // marker sits inside a larger quorum-failure message.
  const std::string nested =
      "quorum failed: [" + wrong_epoch_error(view) + "]";
  EXPECT_TRUE(is_wrong_epoch(nested));
  const auto parsed = parse_wrong_epoch(nested);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 7);
  EXPECT_EQ(parsed->slot_owner, view.slot_owner);
  EXPECT_FALSE(parse_wrong_epoch("some other failure").has_value());
}

TEST(ClusterViewUnit, WithSlotsMovedSplitsAndActivatesSpares) {
  // make_static with a spare: 4 addressable shards, 3 own slots.
  const ClusterView v1 =
      ClusterView::make_static(3, /*num_shards=*/4, /*active_shards=*/3);
  EXPECT_EQ(v1.active_shards(), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(v1.slots_of(3).empty());

  const auto moved = v1.slots_of(0);
  const ClusterView v2 = v1.with_slots_moved(moved, 3);
  EXPECT_EQ(v2.epoch, v1.epoch + 1);
  EXPECT_EQ(v2.slots_of(3), moved);
  EXPECT_TRUE(v2.slots_of(0).empty());
  EXPECT_EQ(v2.active_shards(), (std::vector<int>{1, 2, 3}));
  // The predecessor is untouched (views are immutable blocks).
  EXPECT_EQ(v1.slots_of(0), moved);
}

TEST(ClusterViewUnit, ProviderInstallIsEpochMonotoneWithBoundedHistory) {
  ViewProvider provider(ClusterView::make_static());
  EXPECT_EQ(provider.epoch(), 1);

  ClusterView next = provider.get()->with_slots_moved({0}, 1);
  EXPECT_TRUE(provider.install(next));
  EXPECT_EQ(provider.epoch(), 2);

  // Stale and duplicate installs are refused; the current view stands.
  EXPECT_FALSE(provider.install(ClusterView::make_static()));
  EXPECT_FALSE(provider.install(next));
  EXPECT_EQ(provider.epoch(), 2);

  // History resolves recently prepared epochs; far-past epochs age out.
  for (int i = 0; i < 10; ++i) {
    provider.install(provider.get()->with_slots_moved({i}, 2));
  }
  EXPECT_EQ(provider.epoch(), 12);
  ASSERT_NE(provider.at_epoch(12), nullptr);
  ASSERT_NE(provider.at_epoch(6), nullptr);
  EXPECT_EQ(provider.at_epoch(6)->epoch, 6);
  EXPECT_EQ(provider.at_epoch(1), nullptr);  // beyond kHistory
  EXPECT_EQ(provider.at_epoch(99), nullptr);
}

// --------------------------------------------------- protocol, in cluster

class ReconfigTest : public ::testing::TestWithParam<Flavor> {};

TEST_P(ReconfigTest, StaleClientIsNackedAndRefreshesRoutingInline) {
  RcCluster cluster(reconfig_cluster(GetParam()));
  auto& client = cluster.client(0, 0);

  const std::string key = key_on_shard(*cluster.view(), 0);
  std::vector<Op> write;
  write.push_back(Op{false, key, "before-migration"});
  ASSERT_TRUE(client.run(write).committed);

  // Migrate the key's slot off shard 0 while the client still holds the
  // epoch-1 view.
  const int target = 1;
  ASSERT_TRUE(cluster.view_coordinator().migrate_slots({slot_of_key(key)},
                                                       target));
  ASSERT_TRUE(cluster.view_coordinator().wait_ready());
  EXPECT_EQ(cluster.view()->epoch, 2);
  EXPECT_EQ(client.views()->epoch(), 1);  // nobody told the client

  // The next transaction routes to the old owner, is NACKed with the new
  // view, refreshes inline, re-issues — and reads the migrated value from
  // the new owner (state transfer landed).
  std::vector<Op> read;
  read.push_back(Op{true, key, {}});
  TxnResult r = client.run(read);
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.reads.at(0).value, "before-migration");
  EXPECT_GE(r.view_refreshes, 1);
  EXPECT_EQ(client.views()->epoch(), 2);

  // The new owner's stores hold the key in every DC.
  for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
    const auto got = cluster.store(dc, target).get(key);
    ASSERT_TRUE(got.has_value()) << "dc " << dc;
    EXPECT_EQ(got->value, "before-migration");
  }
}

TEST_P(ReconfigTest, LiveMigrationUnderTrafficLosesNoCommittedWrite) {
  RcCluster cluster(reconfig_cluster(GetParam()));
  const auto v1 = cluster.view();
  const std::array<std::string, 2> keys = {key_on_shard(*v1, 0),
                                           key_on_shard(*v1, 1)};
  const std::string initial(16, 'v');
  auto increment = [initial](const std::string& current) {
    const int n = current == initial ? 0 : std::stoi(current);
    return std::to_string(n + 1);
  };

  // Closed-loop increments of two hot counters from every DC; committed
  // counts are the ground truth the stores must equal afterwards.
  std::array<std::atomic<int>, 2> committed{};
  std::vector<std::thread> threads;
  for (int dc = 0; dc < 3; ++dc) {
    threads.emplace_back([&, dc] {
      auto& client = cluster.client(dc, 0);
      Rng rng(static_cast<std::uint64_t>(dc) + 1);
      for (int round = 0; round < 12; ++round) {
        const std::size_t k = static_cast<std::size_t>(round % 2);
        TxnResult w = client.run_transform(keys[k], increment);
        if (w.committed) committed[k].fetch_add(1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rng.uniform_range(1, 20)));
      }
    });
  }

  // Mid-traffic, migrate both hot slots to the next shard over. The network
  // is healthy, so both migrations must fully succeed.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const int owner = cluster.view()->shard_of(keys[k]);
    const int target = (owner + 1) % cluster.num_shards();
    EXPECT_TRUE(cluster.view_coordinator().migrate_slots(
        {slot_of_key(keys[k])}, target))
        << "migration " << k << " failed";
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(cluster.view_coordinator().wait_ready());
  EXPECT_EQ(cluster.view()->epoch, 3);

  // Zero lost committed writes: each counter equals exactly the number of
  // increments that reported commit, across both epochs.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (std::size_t k = 0; k < keys.size(); ++k) {
    ASSERT_GT(committed[k].load(), 0) << "no increment of key " << k
                                      << " ever committed";
    std::vector<Op> verify;
    verify.push_back(Op{true, keys[k], {}});
    TxnResult r = cluster.client(0, 0).run(verify);
    ASSERT_TRUE(r.committed);
    EXPECT_EQ(std::stoi(r.reads.at(0).value), committed[k].load())
        << "lost or duplicated increments on " << keys[k];
  }

  // No cross-epoch speculative validation: every validated prediction got
  // exactly one verdict.
  const auto stats = cluster.spec_stats();
  EXPECT_LE(stats.predictions_correct + stats.predictions_incorrect,
            stats.predictions_made);
}

INSTANTIATE_TEST_SUITE_P(Flavors, ReconfigTest,
                         ::testing::Values(Flavor::kTrad, Flavor::kSpec),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Reconfig, SpareShardGainsItsFirstSlotsAndServesReads) {
  auto config = reconfig_cluster(Flavor::kTrad);
  config.spare_shards = 1;  // shard 3: addressable, owns nothing
  RcCluster cluster(config);
  ASSERT_EQ(cluster.total_shards(), 4);
  const int spare = 3;
  EXPECT_TRUE(cluster.view()->slots_of(spare).empty());
  for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
    EXPECT_EQ(cluster.store(dc, spare).size(), 0u);
  }

  // Replica add: move a quarter of shard 0's slots onto the spare.
  const auto all = cluster.view()->slots_of(0);
  const std::vector<int> moved(all.begin(),
                               all.begin() + static_cast<long>(all.size()) / 4);
  ASSERT_FALSE(moved.empty());
  ASSERT_TRUE(cluster.view_coordinator().migrate_slots(moved, spare));
  ASSERT_TRUE(cluster.view_coordinator().wait_ready());

  const auto v2 = cluster.view();
  EXPECT_EQ(v2->slots_of(spare), moved);
  auto active = v2->active_shards();
  EXPECT_NE(std::find(active.begin(), active.end(), spare), active.end());

  // The spare now holds the migrated keys and serves quorum reads of them.
  const std::string key = key_on_shard(*v2, spare);
  for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
    EXPECT_GT(cluster.store(dc, spare).size(), 0u);
  }
  std::vector<Op> read;
  read.push_back(Op{true, key, {}});
  TxnResult r = cluster.client(2, 0).run(read);
  ASSERT_TRUE(r.committed);
  EXPECT_EQ(r.reads.at(0).value, std::string(16, 'v'));

  // And accepts writes in the new epoch.
  std::vector<Op> write;
  write.push_back(Op{false, key, "on-the-spare"});
  ASSERT_TRUE(cluster.client(0, 0).run(write).committed);
}

TEST(Reconfig, BatchClientReplansEpochAfterViewFlip) {
  auto config = reconfig_cluster(Flavor::kSpec);
  config.batch_clients = true;
  config.batch_mode = batch::BatchMode::kGroupCommit;
  RcCluster cluster(config);
  auto& client = cluster.batch_client(0, 0);

  const std::string key = key_on_shard(*cluster.view(), 0);
  auto incr_txn = [&key](std::uint64_t id) {
    batch::BatchOp op;
    op.kind = batch::OpKind::kRmw;
    op.key = key;
    op.value = "1";
    op.transform = batch::Transform::kIncrement;
    batch::BatchTxn txn;
    txn.id = id;
    txn.ops.push_back(op);
    return txn;
  };

  batch::EpochResult e1 = client.run_epoch({incr_txn(0)});
  EXPECT_EQ(e1.committed, 1u);

  // Flip the view between epochs; the client plans epoch 2 under the stale
  // view, every read/prepare is NACKed before anything commits, and the
  // whole epoch is re-planned under the installed view.
  ASSERT_TRUE(cluster.view_coordinator().migrate_slots({slot_of_key(key)},
                                                       /*to_shard=*/2));
  ASSERT_TRUE(cluster.view_coordinator().wait_ready());

  batch::EpochResult e2 = client.run_epoch({incr_txn(1)});
  EXPECT_EQ(e2.committed, 1u);
  EXPECT_GE(client.stats().view_refreshes.load(), 1u);

  // Both increments landed exactly once, on the new owner.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
    const auto got = cluster.store(dc, 2).get(key);
    ASSERT_TRUE(got.has_value()) << "dc " << dc;
    EXPECT_EQ(got->value, "2");
  }
}

}  // namespace
}  // namespace srpc::rc
