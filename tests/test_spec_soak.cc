// Randomized soak: a mixed speculative workload (chains of varying depth,
// quorum calls, server-side predictions, random accuracies, concurrent
// clients) run against the state-machine auditor. Every result must equal
// the sequential-equivalent value and every transition must be legal —
// the strongest end-to-end statement of the paper's correctness claim.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "common/rng.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

/// Per-round chain state, shared by value into callbacks.
struct SoakChain {
  std::vector<int> hops;
  double accuracy = 0;
  std::function<bool(double)> flip;
};

CallbackFactory soak_factory(std::shared_ptr<const SoakChain> chain,
                             std::size_t level) {
  return [chain, level]() -> CallbackFn {
    return [chain, level](SpecContext& ctx,
                          const Value& v) -> CallbackResult {
      if (level >= chain->hops.size()) return v;
      const int hop = chain->hops[level];
      const std::int64_t correct = 3 * v.as_int() + hop;
      ValueList predictions;
      if (chain->flip(0.8)) {  // sometimes rely on server prediction
        predictions.emplace_back(chain->flip(chain->accuracy) ? correct
                                                              : correct + 7);
      }
      return ctx.call("s" + std::to_string(hop), "f", make_args(v.as_int()),
                      std::move(predictions),
                      soak_factory(chain, level + 1));
    };
  };
}

class Auditor {
 public:
  SpecEngine::TransitionObserver observer() {
    return [this](SpecNode::Kind kind, std::uint64_t id, SpecState from,
                  SpecState to) {
      std::lock_guard<std::mutex> lock(mu_);
      bool legal = !is_terminal(from) && kind != SpecNode::Kind::kRoot;
      if (kind == SpecNode::Kind::kCall || kind == SpecNode::Kind::kMirror) {
        legal = legal && from == SpecState::kCallerSpeculative &&
                is_terminal(to);
      } else if (kind == SpecNode::Kind::kCallback) {
        legal = legal && (from == SpecState::kCalleeSpeculative
                              ? to != SpecState::kCalleeSpeculative
                              : (from == SpecState::kCallerSpeculative &&
                                 is_terminal(to)));
      }
      if (is_terminal(to) && !terminal_.insert(id).second) legal = false;
      if (!legal) violations_++;
    };
  }
  int violations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::uint64_t> terminal_;
  int violations_ = 0;
};

TEST(SpecSoak, RandomizedMixedWorkloadStaysCorrect) {
  SimConfig sim_config;
  sim_config.executor_threads = 8;
  sim_config.default_delay = std::chrono::microseconds(300);
  sim_config.default_jitter = std::chrono::microseconds(200);
  SimNetwork net(sim_config);
  Executor work(24, "soak-work");

  constexpr int kServers = 3;
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<SpecEngine>> servers;
  std::vector<std::unique_ptr<SpecEngine>> clients;
  std::vector<std::unique_ptr<Auditor>> auditors;

  for (int s = 0; s < kServers; ++s) {
    auto engine = std::make_unique<SpecEngine>(
        net.add_node("s" + std::to_string(s)), work, net.wheel());
    auditors.push_back(std::make_unique<Auditor>());
    engine->set_transition_observer(auditors.back()->observer());
    // f(x) = 3x + s, slow-ish, with a server-side prediction that is right
    // half the time (hash-based, deterministic).
    engine->register_method(
        "f", Handler([s](const ServerCallPtr& c) {
          const std::int64_t x = c->args().at(0).as_int();
          const std::int64_t result = 3 * x + s;
          const bool predict_right = ((x * 2654435761u) >> 3) % 2 == 0;
          c->spec_return(Value(predict_right ? result : result - 1));
          c->finish_after(std::chrono::milliseconds(2), Value(result));
        }));
    servers.push_back(std::move(engine));
  }
  for (int c = 0; c < kClients; ++c) {
    auto engine = std::make_unique<SpecEngine>(
        net.add_node("c" + std::to_string(c)), work, net.wheel());
    auditors.push_back(std::make_unique<Auditor>());
    engine->set_transition_observer(auditors.back()->observer());
    clients.push_back(std::move(engine));
  }

  auto expected_chain = [](std::int64_t x, const std::vector<int>& hops) {
    for (int s : hops) x = 3 * x + s;
    return x;
  };

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      std::mutex rng_mu;  // callbacks draw from worker threads
      auto flip = [&](double p) {
        std::lock_guard<std::mutex> lock(rng_mu);
        return rng.flip(p);
      };
      SpecEngine& engine = *clients[static_cast<std::size_t>(c)];
      for (int round = 0; round < 40; ++round) {
        const int depth = 1 + static_cast<int>(rng.uniform(4));
        // Per-round state is shared by value into the callbacks: abandoned
        // speculative branches can briefly outlive the round that spawned
        // them, so they must not reference round-local stack storage.
        auto chain = std::make_shared<SoakChain>();
        for (int i = 0; i < depth; ++i)
          chain->hops.push_back(static_cast<int>(rng.uniform(kServers)));
        const std::int64_t x0 = static_cast<std::int64_t>(rng.uniform(50));
        chain->accuracy = rng.uniform01();
        chain->flip = flip;  // captures thread-lifetime rng + lock
        const std::vector<int> hops = chain->hops;  // thread-local copy

        const int hop0 = hops[0];
        const std::int64_t correct0 = 3 * x0 + hop0;
        ValueList first_pred;
        if (flip(0.8)) {
          first_pred.emplace_back(flip(chain->accuracy) ? correct0
                                                        : correct0 + 7);
        }
        auto future = engine.call("s" + std::to_string(hop0), "f",
                                  make_args(x0), std::move(first_pred),
                                  hops.size() > 1 ? soak_factory(chain, 1)
                                                  : nullptr);
        const Value result = future->get();
        const std::int64_t expected =
            hops.size() > 1 ? expected_chain(x0, hops) : correct0;
        if (result.as_int() != expected) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  for (const auto& auditor : auditors) {
    EXPECT_EQ(auditor->violations(), 0);
  }

  // Aggregate sanity: a busy mixture of correct and incorrect speculation
  // actually happened.
  SpecStats total;
  for (const auto& client : clients) {
    const auto s = client->stats();
    total.predictions_made += s.predictions_made;
    total.predictions_correct += s.predictions_correct;
    total.predictions_incorrect += s.predictions_incorrect;
    total.branches_abandoned += s.branches_abandoned;
  }
  EXPECT_GT(total.predictions_made, 100u);
  EXPECT_GT(total.predictions_correct, 0u);
  EXPECT_GT(total.predictions_incorrect, 0u);
  EXPECT_GT(total.branches_abandoned, 0u);

  for (auto& client : clients) client->begin_shutdown();
  for (auto& server : servers) server->begin_shutdown();
  work.shutdown();
}

}  // namespace
}  // namespace srpc::spec
