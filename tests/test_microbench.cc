// The §5.1 microbenchmark driver itself: sanity of both prediction modes,
// the speedup ordering Figure 8 relies on, and traffic accounting.
#include <gtest/gtest.h>

#include "workload/microbench.h"

namespace srpc::wl {
namespace {

MicroConfig quick(Flavor flavor) {
  MicroConfig config;
  config.flavor = flavor;
  config.num_clients = 4;
  config.rpcs_per_request = 4;
  config.service_time = std::chrono::milliseconds(5);
  config.requests_per_s = 40;
  config.seed = 3;
  return config;
}

constexpr auto kWarm = std::chrono::milliseconds(100);
constexpr auto kMeasure = std::chrono::milliseconds(600);

TEST(Microbench, SequentialBaselineLatencyIsChainSum) {
  auto result = run_microbench(quick(Flavor::kTrad), kWarm, kMeasure);
  ASSERT_GT(result.requests, 10u);
  // 4 x (5ms service + ~0.2ms network): ~21ms.
  EXPECT_NEAR(result.mean_ms(), 21.0, 4.0);
}

TEST(Microbench, PerfectPredictionApproachesOneRpcTime) {
  auto config = quick(Flavor::kSpec);
  config.correct_rate = 1.0;
  auto result = run_microbench(config, kWarm, kMeasure);
  ASSERT_GT(result.requests, 10u);
  EXPECT_LT(result.mean_ms(), 10.0);  // ~1 RPC time + slack, not 21ms
}

TEST(Microbench, ZeroPredictionMatchesBaselineWithSmallOverhead) {
  auto config = quick(Flavor::kSpec);
  config.correct_rate = 0.0;
  auto spec = run_microbench(config, kWarm, kMeasure);
  auto trad = run_microbench(quick(Flavor::kTrad), kWarm, kMeasure);
  ASSERT_GT(spec.requests, 10u);
  // All predictions wrong: sequential re-execution, bounded overhead.
  EXPECT_GT(spec.mean_ms(), trad.mean_ms() * 0.9);
  EXPECT_LT(spec.mean_ms(), trad.mean_ms() * 1.35);
}

TEST(Microbench, ServerSidePredictionHelpsButLessThanClientSide) {
  auto client_side = quick(Flavor::kSpec);
  client_side.correct_rate = 1.0;
  auto server_side = client_side;
  server_side.server_side_prediction = true;
  server_side.server_handoff_fraction = 0.3;
  auto trad = run_microbench(quick(Flavor::kTrad), kWarm, kMeasure);
  auto cs = run_microbench(client_side, kWarm, kMeasure);
  auto ss = run_microbench(server_side, kWarm, kMeasure);
  EXPECT_LT(cs.mean_ms(), ss.mean_ms());   // Fig 2b beats Fig 2c
  EXPECT_LT(ss.mean_ms(), trad.mean_ms()); // which still beats sequential
}

TEST(Microbench, GrpcSimSlowerThanTradRpc) {
  // Use a large, unmistakable modelled overhead so host-scheduling noise
  // cannot flip the comparison: the default 75 us/message is within the
  // noise floor of a busy 1-core CI machine.
  auto grpc_config = quick(Flavor::kGrpc);
  auto trad_config = quick(Flavor::kTrad);
  grpc_config.num_clients = 1;
  trad_config.num_clients = 1;
  auto grpc = run_microbench(grpc_config, kWarm, kMeasure);
  auto trad = run_microbench(trad_config, kWarm, kMeasure);
  // GrpcSim charges 2 x 75 us per RPC; 4 RPCs -> ~0.6 ms per request.
  // Compare medians (robust) with half that margin.
  EXPECT_GT(grpc.latency.percentile_ms(50),
            trad.latency.percentile_ms(50) + 0.2);
}

TEST(Microbench, TrafficAccountingIsSymmetricAndNonzero) {
  auto result = run_microbench(quick(Flavor::kTrad), kWarm, kMeasure);
  EXPECT_GT(result.client_traffic.bytes_sent, 0u);
  // Requests and responses pair up client<->server; messages in flight at
  // the window edges may be counted on one side only, so allow slack.
  const auto near = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t delta = a > b ? a - b : b - a;
    return delta <= 32;
  };
  EXPECT_TRUE(near(result.client_traffic.msgs_sent,
                   result.server_traffic.msgs_recv))
      << result.client_traffic.msgs_sent << " vs "
      << result.server_traffic.msgs_recv;
  EXPECT_TRUE(near(result.server_traffic.msgs_sent,
                   result.client_traffic.msgs_recv))
      << result.server_traffic.msgs_sent << " vs "
      << result.client_traffic.msgs_recv;
}

TEST(Microbench, SpecUsesMoreBandwidthThanTradAtPartialAccuracy) {
  auto spec_config = quick(Flavor::kSpec);
  spec_config.correct_rate = 0.5;  // plenty of re-executions
  auto spec = run_microbench(spec_config, kWarm, kMeasure);
  auto trad = run_microbench(quick(Flavor::kTrad), kWarm, kMeasure);
  ASSERT_GT(spec.requests, 10u);
  const double spec_bytes_per_req =
      static_cast<double>(spec.client_traffic.bytes_sent) / spec.requests;
  const double trad_bytes_per_req =
      static_cast<double>(trad.client_traffic.bytes_sent) / trad.requests;
  EXPECT_GT(spec_bytes_per_req, trad_bytes_per_req);
}

}  // namespace
}  // namespace srpc::wl
