// Protocol-level tests: the paper's exact Figure 6 scenario (every
// prediction wrong, responses out of order across levels), and wire
// robustness — state-change messages racing ahead of requests, malformed
// frames, unknown ids.
#include <gtest/gtest.h>

#include <atomic>

#include "serde/io.h"
#include "specrpc/engine.h"
#include "specrpc/wire.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

class SpecProtocolTest : public ::testing::Test {
 protected:
  SpecProtocolTest() {
    SimConfig config;
    config.executor_threads = 6;
    config.default_delay = std::chrono::milliseconds(1);
    net_ = std::make_unique<SimNetwork>(config);
    client_ = std::make_unique<SpecEngine>(net_->add_node("client"),
                                           net_->executor(), net_->wheel());
    server1_ = std::make_unique<SpecEngine>(net_->add_node("server1"),
                                            net_->executor(), net_->wheel());
    server2_ = std::make_unique<SpecEngine>(net_->add_node("server2"),
                                            net_->executor(), net_->wheel());
  }

  ~SpecProtocolTest() override {
    client_->begin_shutdown();
    server1_->begin_shutdown();
    server2_->begin_shutdown();
    net_->executor().shutdown();
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SpecEngine> client_;
  std::unique_ptr<SpecEngine> server1_;
  std::unique_ptr<SpecEngine> server2_;
};

TEST_F(SpecProtocolTest, Figure6ExactScenario) {
  // rpc1 is slow and mispredicts; callback1 issues rpc2, which is fast and
  // also mispredicts, so rpc2 finishes (with its actual result) before
  // rpc1 does — the paper's "bad scenario". Three abandonments, yet the
  // client sees exactly the sequential-equivalent value.
  server1_->register_method("rpc1", Handler([](const ServerCallPtr& c) {
    c->spec_return(Value(-1));  // wrong prediction for rpc1
    c->finish_after(std::chrono::milliseconds(60),
                    Value(c->args().at(0).as_int() + 10));
  }));
  server2_->register_method("rpc2", Handler([](const ServerCallPtr& c) {
    c->spec_return(Value(-2));  // wrong prediction for rpc2
    c->finish_after(std::chrono::milliseconds(15),
                    Value(c->args().at(0).as_int() * 3));
  }));

  std::atomic<int> local_op_runs{0};
  auto callback2 = [&local_op_runs]() -> CallbackFn {
    return [&local_op_runs](SpecContext&, const Value& v) -> CallbackResult {
      local_op_runs.fetch_add(1);
      return Value(v.as_int() + 1000);  // the final local operation
    };
  };
  auto callback1 = [callback2]() -> CallbackFn {
    return [callback2](SpecContext& ctx, const Value& v) -> CallbackResult {
      return ctx.call("server2", "rpc2", make_args(v.as_int()), {},
                      callback2);
    };
  };

  auto future = client_->call("server1", "rpc1", make_args(5), {}, callback1);
  // Sequential equivalent: ((5 + 10) * 3) + 1000.
  EXPECT_EQ(future->get(), Value(1045));

  const auto stats = client_->stats();
  // callback'1 (on -1), its rpc'2 subtree, and callback'2 / callback''2 as
  // in Figure 6 — at least three abandoned nodes client-side.
  EXPECT_GE(stats.branches_abandoned, 3u);
  // Re-executions: callback1 re-ran on rpc1's actual; callback2 re-ran on
  // rpc2's actual at least once.
  EXPECT_GE(stats.reexecutions, 2u);
  // The local op ran speculatively (possibly several branches) plus the
  // final actual execution.
  EXPECT_GE(local_op_runs.load(), 2);
  // State-change messages flowed for the abandoned remote rpc2 instance.
  EXPECT_GE(stats.state_msgs_sent, 1u);
}

TEST_F(SpecProtocolTest, EarlyStateChangeBeforeRequestIsHonoured) {
  // Craft wire messages by hand: a state-change(incorrect) for a call id
  // that arrives *before* the request itself (possible with TCP reconnects;
  // the engine stashes it in early_state_). The handler must never run.
  std::atomic<int> handler_runs{0};
  server1_->register_method("probe", Handler([&](const ServerCallPtr& c) {
    handler_runs.fetch_add(1);
    c->finish(Value(1));
  }));

  Transport& raw = net_->add_node("raw-client");
  raw.set_receiver([](const Address&, Bytes) {});
  const CallId id = 0xABCDEF01;

  StateChangeMsg cancel;
  cancel.call_id = id;
  cancel.correct = false;
  raw.send("server1", encode(cancel, binary_codec()));

  RequestMsg request;
  request.call_id = id;
  request.caller_speculative = true;
  request.method = "probe";
  request.args = make_args(1);
  raw.send("server1", encode(request, binary_codec()));

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(handler_runs.load(), 0);  // dead on arrival
}

TEST_F(SpecProtocolTest, EarlyCorrectStateChangeAllowsExecution) {
  std::atomic<int> handler_runs{0};
  server1_->register_method("probe", Handler([&](const ServerCallPtr& c) {
    handler_runs.fetch_add(1);
    c->finish(Value(1));
  }));
  Transport& raw = net_->add_node("raw-client2");
  std::atomic<int> actual_responses{0};
  raw.set_receiver([&](const Address&, Bytes frame) {
    if (peek_type(frame) == MsgType::kActualResponse) {
      actual_responses.fetch_add(1);
    }
  });
  const CallId id = 0xABCDEF02;
  StateChangeMsg confirm;
  confirm.call_id = id;
  confirm.correct = true;
  raw.send("server1", encode(confirm, binary_codec()));
  RequestMsg request;
  request.call_id = id;
  request.caller_speculative = true;  // resolved by the early state change
  request.method = "probe";
  request.args = make_args(1);
  raw.send("server1", encode(request, binary_codec()));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(handler_runs.load(), 1);
  EXPECT_EQ(actual_responses.load(), 1);
}

TEST_F(SpecProtocolTest, MalformedFramesAreIgnored) {
  server1_->register_method("plus", Handler([](const ServerCallPtr& c) {
    c->finish(Value(c->args().at(0).as_int() + c->args().at(1).as_int()));
  }));
  Transport& raw = net_->add_node("fuzzer");
  raw.set_receiver([](const Address&, Bytes) {});
  // Garbage, truncated, and unknown-type frames.
  raw.send("server1", Bytes{});
  raw.send("server1", Bytes{0xFF, 0x01, 0x02});
  raw.send("server1", Bytes{static_cast<std::uint8_t>(MsgType::kRequest)});
  Bytes truncated = encode(RequestMsg{42, false, "plus", make_args(1, 2)},
                           binary_codec());
  truncated.resize(truncated.size() / 2);
  raw.send("server1", truncated);
  // The engine must survive and keep serving.
  auto future = client_->call("server1", "plus", make_args(20, 22));
  EXPECT_EQ(future->get(), Value(42));
}

TEST_F(SpecProtocolTest, ResponsesForUnknownCallsAreDropped) {
  Transport& raw = net_->add_node("stray");
  raw.set_receiver([](const Address&, Bytes) {});
  ActualResponseMsg stray;
  stray.call_id = 0xDEAD;
  stray.ok = true;
  stray.value = Value(1);
  raw.send("client", encode(stray, binary_codec()));
  PredictedResponseMsg stray_pred;
  stray_pred.call_id = 0xBEEF;
  stray_pred.value = Value(2);
  raw.send("client", encode(stray_pred, binary_codec()));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Engine is intact.
  server1_->register_method("ok", Handler([](const ServerCallPtr& c) {
    c->finish(Value(true));
  }));
  EXPECT_EQ(client_->call("server1", "ok", make_args())->get(), Value(true));
}

TEST_F(SpecProtocolTest, DuplicateRequestIdIsRejectedNotCorrupted) {
  std::atomic<int> handler_runs{0};
  server1_->register_method("probe", Handler([&](const ServerCallPtr& c) {
    handler_runs.fetch_add(1);
    c->finish(Value(1));
  }));
  Transport& raw = net_->add_node("dup");
  std::atomic<int> responses{0};
  raw.set_receiver([&](const Address&, Bytes) { responses.fetch_add(1); });
  RequestMsg request;
  request.call_id = 0x77;
  request.caller_speculative = true;  // stays resident until state change
  request.method = "probe";
  request.args = make_args(1);
  raw.send("server1", encode(request, binary_codec()));
  raw.send("server1", encode(request, binary_codec()));  // duplicate id
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(handler_runs.load(), 1);  // second request dropped
}

TEST_F(SpecProtocolTest, PartitionDuringSpeculationFailsCleanly) {
  // The network dies between the request and the actual response: the
  // speculative branch must be abandoned by the timeout and the future must
  // fail — never hang, never deliver the speculative value.
  SpecConfig config;
  config.call_timeout = std::chrono::milliseconds(120);
  auto impatient = std::make_unique<SpecEngine>(net_->add_node("cutoff"),
                                                net_->executor(),
                                                net_->wheel(), config);
  server1_->register_method("slow", Handler([](const ServerCallPtr& c) {
    c->spec_return(Value(42));  // prediction gets out...
    c->finish_after(std::chrono::milliseconds(200), Value(42));
  }));
  std::atomic<int> speculative_runs{0};
  auto factory = [&]() -> CallbackFn {
    return [&](SpecContext&, const Value& v) -> CallbackResult {
      speculative_runs.fetch_add(1);
      return v;
    };
  };
  auto future = impatient->call("server1", "slow", make_args(), {}, factory);
  // Let the prediction arrive, then cut the link before the actual.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  net_->partition("cutoff", "server1", true);
  EXPECT_THROW(future->get(), rpc::RpcError);
  EXPECT_GE(speculative_runs.load(), 1);  // speculation had started
  EXPECT_GE(impatient->stats().branches_abandoned, 1u);
  impatient->begin_shutdown();
}

}  // namespace
}  // namespace srpc::spec
