// The prediction subsystem: predictors (determinism, bounds, eviction),
// accuracy tracking, the adaptive controller's hysteresis, and the full
// observer -> tracker -> controller -> engine-hook loop under a
// misspeculation storm.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "predict/accuracy.h"
#include "predict/controller.h"
#include "predict/manager.h"
#include "predict/predictors.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::predict {
namespace {

ValueList args_of(std::int64_t k) {
  ValueList args;
  args.emplace_back(k);
  return args;
}

// ------------------------------------------------------------- predictors

TEST(KeyOf, DistinguishesMethodsAndArgs) {
  EXPECT_NE(key_of("a", args_of(1)), key_of("b", args_of(1)));
  EXPECT_NE(key_of("a", args_of(1)), key_of("a", args_of(2)));
  EXPECT_EQ(key_of("a", args_of(1)), key_of("a", args_of(1)));
  // Multi-arg framing must not collide with single-arg strings.
  ValueList two;
  two.emplace_back("x");
  two.emplace_back("y");
  ValueList one;
  one.emplace_back("xy");
  EXPECT_NE(key_of("m", two), key_of("m", one));
}

TEST(LastValuePredictor, PredictsLastObservedPerKey) {
  LastValuePredictor p;
  EXPECT_TRUE(p.predict("get", args_of(1)).empty());
  p.learn("get", args_of(1), Value("v1"));
  p.learn("get", args_of(2), Value("v2"));
  ASSERT_EQ(p.predict("get", args_of(1)).size(), 1u);
  EXPECT_EQ(p.predict("get", args_of(1)).at(0), Value("v1"));
  p.learn("get", args_of(1), Value("v1b"));  // overwrites
  EXPECT_EQ(p.predict("get", args_of(1)).at(0), Value("v1b"));
  p.forget("get", args_of(1));
  EXPECT_TRUE(p.predict("get", args_of(1)).empty());
  EXPECT_EQ(p.size(), 1u);
}

TEST(LastValuePredictor, LruEvictionKeepsHotKeys) {
  PredictorConfig config;
  config.capacity = 4;
  LastValuePredictor p(config);
  for (std::int64_t k = 0; k < 4; ++k) p.learn("get", args_of(k), Value(k));
  // Touch key 0 so it is the hottest, then insert a 5th key.
  EXPECT_FALSE(p.predict("get", args_of(0)).empty());
  p.learn("get", args_of(99), Value(99));
  EXPECT_EQ(p.size(), 4u);
  EXPECT_FALSE(p.predict("get", args_of(0)).empty());  // survived (hot)
  EXPECT_TRUE(p.predict("get", args_of(1)).empty());   // evicted (coldest)
}

TEST(TopKFrequencyPredictor, RanksByFrequencyDeterministically) {
  PredictorConfig config;
  config.top_k = 2;
  TopKFrequencyPredictor p(config);
  for (int i = 0; i < 5; ++i) p.learn("roll", args_of(1), Value("common"));
  for (int i = 0; i < 2; ++i) p.learn("roll", args_of(1), Value("rare"));
  p.learn("roll", args_of(1), Value("once"));
  const ValueList out = p.predict("roll", args_of(1));
  ASSERT_EQ(out.size(), 2u);  // top_k bounds the candidate list
  EXPECT_EQ(out.at(0), Value("common"));
  EXPECT_EQ(out.at(1), Value("rare"));
  // Repeated calls are stable.
  EXPECT_EQ(p.predict("roll", args_of(1)), out);
}

TEST(TopKFrequencyPredictor, BoundsDistinctValuesPerKey) {
  PredictorConfig config;
  config.values_per_key = 3;
  config.top_k = 8;
  TopKFrequencyPredictor p(config);
  // 5 distinct values; the two least frequent must be dropped.
  for (int i = 0; i < 9; ++i) p.learn("m", args_of(0), Value("a"));
  for (int i = 0; i < 7; ++i) p.learn("m", args_of(0), Value("b"));
  for (int i = 0; i < 5; ++i) p.learn("m", args_of(0), Value("c"));
  p.learn("m", args_of(0), Value("d"));
  p.learn("m", args_of(0), Value("e"));
  const ValueList out = p.predict("m", args_of(0));
  ASSERT_LE(out.size(), 3u);
  EXPECT_EQ(out.at(0), Value("a"));
  EXPECT_EQ(out.at(1), Value("b"));
}

TEST(MarkovPredictor, PredictsLikeliestSuccessor) {
  MarkovPredictor p;
  EXPECT_TRUE(p.predict("next", {}).empty());
  // Sequence a->b, a->b, a->c: after seeing "a" the prediction is "b".
  p.learn("next", {}, Value("a"));
  p.learn("next", {}, Value("b"));
  p.learn("next", {}, Value("a"));
  p.learn("next", {}, Value("b"));
  p.learn("next", {}, Value("a"));
  p.learn("next", {}, Value("c"));
  p.learn("next", {}, Value("a"));  // last seen = "a"
  const ValueList out = p.predict("next", {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.at(0), Value("b"));
  p.forget("next", {});
  EXPECT_TRUE(p.predict("next", {}).empty());
}

TEST(CachePredictor, EntriesExpireAfterTtl) {
  PredictorConfig config;
  config.ttl = std::chrono::milliseconds(50);
  CachePredictor p(config);
  p.learn("fetch", args_of(7), Value("fresh"));
  ASSERT_EQ(p.predict("fetch", args_of(7)).size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(p.predict("fetch", args_of(7)).empty());  // lazy expiry
  EXPECT_EQ(p.size(), 0u);
  p.learn("fetch", args_of(7), Value("again"));  // re-learn restarts the TTL
  EXPECT_EQ(p.predict("fetch", args_of(7)).at(0), Value("again"));
}

TEST(MakePredictor, BuildsEveryKindAndRoundTripsNames) {
  for (Kind kind : {Kind::kLastValue, Kind::kTopK, Kind::kMarkov,
                    Kind::kCache}) {
    PredictorPtr p = make_predictor(kind);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(parse_kind(to_string(kind)), kind);
    EXPECT_STREQ(p->name(), to_string(kind));
  }
  EXPECT_EQ(make_predictor(Kind::kNone), nullptr);
  EXPECT_THROW(parse_kind("bogus"), std::invalid_argument);
}

TEST(Predictors, ConcurrentPredictLearnStress) {
  // Four predictors hammered by predict/learn/forget from several threads;
  // run under TSan by scripts/check.sh. Assertions are minimal — the point
  // is the absence of races and of unbounded growth.
  std::vector<PredictorPtr> predictors = {
      make_predictor(Kind::kLastValue), make_predictor(Kind::kTopK),
      make_predictor(Kind::kMarkov), make_predictor(Kind::kCache)};
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kOps; ++i) {
        const std::int64_t key = (t * kOps + i) % 61;
        for (auto& p : predictors) {
          if (i % 7 == 3) {
            p->forget("m", args_of(key));
          } else if (i % 2 == 0) {
            p->learn("m", args_of(key), Value(key * 3 + t));
          } else {
            (void)p->predict("m", args_of(key));
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& p : predictors) {
    EXPECT_LE(p->size(), PredictorConfig{}.capacity);
  }
}

// ------------------------------------------------------ accuracy tracking

TEST(AccuracyTracker, CountsAndRatesPerMethod) {
  AccuracyTracker tracker;
  for (int i = 0; i < 8; ++i) tracker.record("hot", true, true);
  for (int i = 0; i < 2; ++i) tracker.record("hot", true, false);
  tracker.record("hot", false, false);  // shadow no-prediction outcome
  tracker.record("cold", true, false);

  const MethodAccuracy hot = tracker.snapshot("hot");
  EXPECT_EQ(hot.predictions, 10u);
  EXPECT_EQ(hot.hits, 8u);
  EXPECT_EQ(hot.no_prediction, 1u);
  EXPECT_DOUBLE_EQ(hot.windowed_hit_rate, 0.8);
  EXPECT_GT(hot.ewma_hit_rate, 0.5);
  EXPECT_EQ(tracker.samples("hot"), 10u);
  // The no-prediction outcome must not dilute the hit-rate estimators.
  EXPECT_DOUBLE_EQ(tracker.windowed_hit_rate("hot"), 0.8);

  EXPECT_EQ(tracker.samples("cold"), 1u);
  EXPECT_DOUBLE_EQ(tracker.hit_rate("cold"), 0.0);
  EXPECT_EQ(tracker.snapshot_all().size(), 2u);
  EXPECT_DOUBLE_EQ(tracker.hit_rate("unknown", 0.42), 0.42);

  tracker.reset();
  EXPECT_EQ(tracker.samples("hot"), 0u);
}

TEST(AccuracyTracker, EwmaConvergesToStreamAccuracy) {
  AccuracyConfig config;
  config.ewma_alpha = 0.2;
  AccuracyTracker tracker(config);
  // 3-of-4 correct stream: both estimators settle near 0.75.
  for (int i = 0; i < 400; ++i) tracker.record("m", true, i % 4 != 0);
  EXPECT_NEAR(tracker.hit_rate("m"), 0.75, 0.15);
  EXPECT_NEAR(tracker.windowed_hit_rate("m"), 0.75, 0.05);
}

// ----------------------------------------------------- adaptive controller

struct ControllerFixture {
  ControllerFixture() {
    accuracy.window = 8;
    tracker = std::make_unique<AccuracyTracker>(accuracy);
    adaptive.misspec_cost = 1.0;  // break-even 0.5; on 0.65 / off 0.35
    adaptive.hysteresis = 0.15;
    adaptive.min_samples = 4;
    adaptive.probe_every = 3;
    controller = std::make_unique<AdaptiveSpeculationController>(*tracker,
                                                                 adaptive);
  }
  void feed(int hits, int misses) {
    for (int i = 0; i < hits; ++i) tracker->record("m", true, true);
    for (int i = 0; i < misses; ++i) tracker->record("m", true, false);
  }
  AccuracyConfig accuracy;
  AdaptiveConfig adaptive;
  std::unique_ptr<AccuracyTracker> tracker;
  std::unique_ptr<AdaptiveSpeculationController> controller;
};

TEST(AdaptiveController, ThresholdsComeFromCostModel) {
  ControllerFixture f;
  EXPECT_DOUBLE_EQ(f.controller->off_threshold(), 0.35);
  EXPECT_DOUBLE_EQ(f.controller->on_threshold(), 0.65);
}

TEST(AdaptiveController, OpensUntilMinSamples) {
  ControllerFixture f;
  f.feed(0, 3);  // all misses, but below min_samples=4
  EXPECT_TRUE(f.controller->should_speculate("m"));
  EXPECT_TRUE(f.controller->gate_open("m"));
}

TEST(AdaptiveController, ClosesOnStormAndProbesWhileClosed) {
  ControllerFixture f;
  f.feed(8, 0);
  EXPECT_TRUE(f.controller->should_speculate("m"));
  // Storm: the 8-slot window goes fully wrong -> windowed 0 < 0.35.
  f.feed(0, 8);
  EXPECT_FALSE(f.controller->should_speculate("m"));  // flips off
  EXPECT_FALSE(f.controller->gate_open("m"));
  // While closed, exactly every probe_every-th call is allowed through.
  int allowed = 0;
  for (int i = 0; i < 9; ++i) {
    allowed += f.controller->should_speculate("m") ? 1 : 0;
  }
  EXPECT_EQ(allowed, 3);  // 9 calls / probe_every=3
  const auto stats = f.controller->stats("m");
  EXPECT_FALSE(stats.open);
  EXPECT_EQ(stats.probes, 3u);
  EXPECT_GE(stats.flips, 1u);
  EXPECT_GT(stats.suppressed, 0u);
}

TEST(AdaptiveController, HysteresisHoldsStateInsideTheBand) {
  ControllerFixture f;
  // Open gate at windowed 0.5 (inside the 0.35..0.65 band): stays open.
  f.feed(4, 4);
  EXPECT_TRUE(f.controller->should_speculate("m"));
  EXPECT_TRUE(f.controller->gate_open("m"));
  // Close it, then feed back to 0.5: must stay closed (no thrashing).
  f.feed(0, 8);
  EXPECT_FALSE(f.controller->should_speculate("m"));
  f.feed(4, 4);  // windowed back to 0.5 — inside the band
  (void)f.controller->should_speculate("m");
  EXPECT_FALSE(f.controller->gate_open("m"));
}

TEST(AdaptiveController, ReopensOnlyWhenBothEstimatorsClearOnThreshold) {
  ControllerFixture f;
  f.feed(8, 0);
  (void)f.controller->should_speculate("m");
  f.feed(0, 8);
  EXPECT_FALSE(f.controller->should_speculate("m"));
  // Recovery: windowed recovers quickly (8-slot window), but the EWMA
  // (alpha 0.2) needs a longer correct run — the gate must wait for both.
  f.feed(8, 0);  // windowed = 1.0 now
  const bool reopened_early = f.controller->gate_open("m") ||
                              (f.controller->should_speculate("m") &&
                               f.controller->gate_open("m"));
  if (!reopened_early) {
    f.feed(8, 0);  // more correct history lifts the EWMA past 0.65
    (void)f.controller->should_speculate("m");
  }
  EXPECT_TRUE(f.controller->gate_open("m"));
  EXPECT_TRUE(f.controller->should_speculate("m"));
}

// ------------------------------------------- engine-integrated (the loop)

class PredictEngineTest : public ::testing::Test {
 protected:
  PredictEngineTest() {
    net_ = std::make_unique<SimNetwork>();
    server_ = std::make_unique<spec::SpecEngine>(net_->add_node("server"),
                                                 net_->executor(),
                                                 net_->wheel());
    // Pure function of the argument, so a learned LastValue prediction for
    // a repeated key is always correct.
    server_->register_method(
        "inc", spec::Handler([](const spec::ServerCallPtr& c) {
          c->finish_after(std::chrono::milliseconds(5),
                          Value(c->args().at(0).as_int() + 1));
        }));
  }

  ~PredictEngineTest() override {
    if (client_) client_->begin_shutdown();
    server_->begin_shutdown();
    net_->executor().shutdown();
  }

  void make_client(ManagerConfig mgr_config, Duration timeout) {
    manager_ = std::make_unique<SpeculationManager>(
        make_predictor(Kind::kLastValue), mgr_config);
    spec::SpecConfig config;
    config.call_timeout = timeout;
    manager_->install(config);
    client_ = std::make_unique<spec::SpecEngine>(net_->add_node("client"),
                                                 net_->executor(),
                                                 net_->wheel(), config);
  }

  /// One speculation-capable call (it has a factory); returns success.
  bool call_once(std::int64_t key) {
    auto factory = []() -> spec::CallbackFn {
      return [](spec::SpecContext&, const Value& v) -> spec::CallbackResult {
        return v;
      };
    };
    auto future = client_->call("server", "inc", args_of(key), {}, factory);
    try {
      (void)future->get();
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  void settle() {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<spec::SpecEngine> server_;
  std::unique_ptr<spec::SpecEngine> client_;
  std::unique_ptr<SpeculationManager> manager_;
};

TEST_F(PredictEngineTest, SupplierPredictsAndObserverLearns) {
  make_client(ManagerConfig{}, std::chrono::seconds(5));
  ASSERT_TRUE(call_once(41));  // cold: no prediction, observer learns 42
  settle();
  EXPECT_EQ(manager_->stats().learned, 1u);
  EXPECT_EQ(manager_->stats().predictor_empty, 1u);

  ASSERT_TRUE(call_once(41));  // warm: supplier predicts 42, which is right
  settle();
  const auto stats = client_->stats();
  EXPECT_EQ(stats.predictions_made, 1u);
  EXPECT_EQ(stats.predictions_correct, 1u);
  EXPECT_EQ(stats.predictions_incorrect, 0u);
  EXPECT_EQ(manager_->stats().predictions_supplied, 1u);
  EXPECT_GT(manager_->tracker().hit_rate("inc"), 0.9);
}

TEST_F(PredictEngineTest, MisspeculationStormClosesGateHealingReopensIt) {
  ManagerConfig mgr_config;
  mgr_config.accuracy.window = 8;
  mgr_config.adaptive = true;
  mgr_config.adaptive_config.min_samples = 4;
  mgr_config.adaptive_config.probe_every = 4;
  make_client(mgr_config, std::chrono::milliseconds(100));
  auto* controller = manager_->controller();
  ASSERT_NE(controller, nullptr);

  // Warm phase: learn a few keys, then hit them — gate open, accuracy high.
  for (std::int64_t k = 0; k < 4; ++k) ASSERT_TRUE(call_once(k));
  for (int round = 0; round < 2; ++round) {
    for (std::int64_t k = 0; k < 4; ++k) ASSERT_TRUE(call_once(k));
  }
  settle();
  EXPECT_TRUE(controller->gate_open("inc"));
  EXPECT_GT(manager_->tracker().hit_rate("inc"), 0.8);

  // Storm: drop everything (SimNetwork fault injection). Calls carry warm
  // predictions but time out — every observation is a miss.
  FaultCfg storm;
  storm.drop_prob = 1.0;
  net_->set_faults_all(storm);
  std::vector<spec::SpecFuturePtr> inflight;
  auto factory = []() -> spec::CallbackFn {
    return [](spec::SpecContext&, const Value& v) -> spec::CallbackResult {
      return v;
    };
  };
  for (int i = 0; i < 12; ++i) {
    inflight.push_back(
        client_->call("server", "inc", args_of(i % 4), {}, factory));
  }
  for (auto& f : inflight) {
    EXPECT_THROW((void)f->get(), std::exception);  // all time out
  }
  settle();
  // The gate flips on the next decision after the misses are recorded, so
  // issue a couple more (still-dropped) calls to drive should_speculate.
  const auto suppressed_before = manager_->stats().gate_suppressed;
  for (int i = 0; i < 2; ++i) (void)call_once(i);
  EXPECT_FALSE(controller->gate_open("inc"));
  EXPECT_GE(controller->stats("inc").flips, 1u);
  EXPECT_GT(manager_->stats().gate_suppressed, suppressed_before);

  // Heal the network: shadow evaluation on non-speculated calls (plus
  // probes) rebuilds accuracy, and the gate reopens.
  net_->set_faults_all(FaultCfg{});
  for (int i = 0; i < 40 && !controller->gate_open("inc"); ++i) {
    (void)call_once(i % 4);
    settle();
  }
  EXPECT_TRUE(controller->gate_open("inc"));
  // And speculation actually resumes: a warm call predicts correctly again.
  const auto correct_before = client_->stats().predictions_correct;
  ASSERT_TRUE(call_once(2));
  settle();
  EXPECT_GT(client_->stats().predictions_correct, correct_before);
}

}  // namespace
}  // namespace srpc::predict
