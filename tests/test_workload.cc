// Workload generators: YCSB+T parameters, the Table 2 Retwis profile, and
// key-distribution properties.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/retwis.h"
#include "workload/ycsbt.h"

namespace srpc::wl {
namespace {

TEST(Ycsbt, RespectsOpsPerTxn) {
  YcsbtWorkload workload(YcsbtConfig{12, 0.5, 0.75, 1000, 8}, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(workload.next_txn().size(), 12u);
  }
}

class YcsbtReadFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(YcsbtReadFractionTest, ReadFractionMatches) {
  const double fraction = GetParam();
  YcsbtWorkload workload(YcsbtConfig{10, fraction, 0.75, 1000, 8}, 3);
  int reads = 0;
  int total = 0;
  for (int i = 0; i < 2000; ++i) {
    for (const auto& op : workload.next_txn()) {
      reads += op.is_read ? 1 : 0;
      total++;
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / total, fraction, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Fractions, YcsbtReadFractionTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

TEST(Ycsbt, KeysAreWithinLoadedSpaceAndZipfSkewed) {
  constexpr std::uint64_t kKeys = 500;
  YcsbtWorkload workload(YcsbtConfig{10, 1.0, 0.99, kKeys, 8}, 7);
  std::map<std::string, int> counts;
  for (int i = 0; i < 3000; ++i) {
    for (const auto& op : workload.next_txn()) {
      ASSERT_EQ(op.key.size(), 9u);
      ASSERT_EQ(op.key[0], 'k');
      const auto idx = std::stoul(op.key.substr(1));
      ASSERT_LT(idx, kKeys);
      counts[op.key]++;
    }
  }
  // Skew: the hottest key should be far above the mean.
  int hottest = 0;
  for (const auto& [_, c] : counts) hottest = std::max(hottest, c);
  const double mean = 30000.0 / kKeys;
  EXPECT_GT(hottest, 5 * mean);
}

TEST(Ycsbt, WritesCarryValuesOfConfiguredSize) {
  YcsbtWorkload workload(YcsbtConfig{10, 0.0, 0.75, 1000, 24}, 5);
  for (const auto& op : workload.next_txn()) {
    ASSERT_FALSE(op.is_read);
    EXPECT_EQ(op.value.size(), 24u);
  }
}

TEST(Retwis, Table2MixAndOpCounts) {
  RetwisWorkload workload(RetwisConfig{0.75, 10'000, 8}, 11);
  std::map<RetwisTxnType, int> mix;
  constexpr int kTxns = 50'000;
  for (int i = 0; i < kTxns; ++i) {
    const auto txn = workload.next_txn();
    mix[txn.type]++;
    int gets = 0;
    int puts = 0;
    for (const auto& op : txn.ops) (op.is_read ? gets : puts)++;
    switch (txn.type) {
      case RetwisTxnType::kAddUser:
        EXPECT_EQ(gets, 1);
        EXPECT_EQ(puts, 3);
        break;
      case RetwisTxnType::kFollow:
        EXPECT_EQ(gets, 2);
        EXPECT_EQ(puts, 2);
        break;
      case RetwisTxnType::kPostTweet:
        EXPECT_EQ(gets, 3);
        EXPECT_EQ(puts, 5);
        break;
      case RetwisTxnType::kLoadTimeline:
        EXPECT_GE(gets, 1);
        EXPECT_LE(gets, 10);
        EXPECT_EQ(puts, 0);
        break;
    }
  }
  EXPECT_NEAR(mix[RetwisTxnType::kAddUser] / double(kTxns), 0.05, 0.01);
  EXPECT_NEAR(mix[RetwisTxnType::kFollow] / double(kTxns), 0.15, 0.01);
  EXPECT_NEAR(mix[RetwisTxnType::kPostTweet] / double(kTxns), 0.30, 0.015);
  EXPECT_NEAR(mix[RetwisTxnType::kLoadTimeline] / double(kTxns), 0.50, 0.015);
}

TEST(Retwis, LoadTimelineGetsAreUniform1To10) {
  RetwisWorkload workload(RetwisConfig{}, 13);
  std::map<int, int> gets_hist;
  int timelines = 0;
  while (timelines < 20'000) {
    const auto txn = workload.next_txn();
    if (txn.type != RetwisTxnType::kLoadTimeline) continue;
    timelines++;
    gets_hist[static_cast<int>(txn.ops.size())]++;
  }
  for (int n = 1; n <= 10; ++n) {
    EXPECT_NEAR(gets_hist[n] / double(timelines), 0.1, 0.02) << "n=" << n;
  }
}

TEST(Retwis, ReadModifyWritePairsShareKeys) {
  RetwisWorkload workload(RetwisConfig{}, 17);
  for (int i = 0; i < 1000; ++i) {
    const auto txn = workload.next_txn();
    if (txn.type != RetwisTxnType::kFollow) continue;
    // Follow/Unfollow: get(k1) put(k1) get(k2) put(k2).
    ASSERT_EQ(txn.ops.size(), 4u);
    EXPECT_TRUE(txn.ops[0].is_read);
    EXPECT_FALSE(txn.ops[1].is_read);
    EXPECT_EQ(txn.ops[0].key, txn.ops[1].key);
    EXPECT_EQ(txn.ops[2].key, txn.ops[3].key);
  }
}

TEST(Workloads, DeterministicPerSeed) {
  YcsbtConfig config{5, 0.5, 0.75, 1000, 8};
  YcsbtWorkload a(config, 42);
  YcsbtWorkload b(config, 42);
  for (int i = 0; i < 20; ++i) {
    const auto ta = a.next_txn();
    const auto tb = b.next_txn();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].key, tb[j].key);
      EXPECT_EQ(ta[j].is_read, tb[j].is_read);
    }
  }
}

}  // namespace
}  // namespace srpc::wl
