// Overload protection (DESIGN.md §11): speculation-budget exhaustion
// degrading to TradRPC, per-method QoS tier ordering, the admission
// ladder's hysteresis, accuracy-driven demotion, monotone shed deltas, and
// a multi-threaded admission storm (run under TSan to be meaningful).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "predict/accuracy.h"
#include "predict/admission.h"
#include "specrpc/engine.h"
#include "stats/monotone.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

using namespace std::chrono_literals;
using predict::AdmissionConfig;
using predict::AdmissionController;
using predict::AdmissionLevel;
using predict::PressureSample;

CallbackFactory passthrough_factory() {
  return []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
  };
}

/// Client/server pair over a SimNetwork; the client takes the test's
/// SpecConfig (budget, supplier) verbatim.
struct Harness {
  explicit Harness(SpecConfig client_config) {
    SimConfig config;
    config.executor_threads = 8;
    config.default_delay = std::chrono::milliseconds(1);
    net = std::make_unique<SimNetwork>(config);
    client = std::make_unique<SpecEngine>(net->add_node("client"),
                                          net->executor(), net->wheel(),
                                          client_config);
    server = std::make_unique<SpecEngine>(net->add_node("server"),
                                          net->executor(), net->wheel(),
                                          SpecConfig{});
  }

  ~Harness() {
    client->begin_shutdown();
    server->begin_shutdown();
    net->executor().shutdown();
  }

  std::unique_ptr<SimNetwork> net;
  std::unique_ptr<SpecEngine> client;
  std::unique_ptr<SpecEngine> server;
};

// ------------------------------------------------------ speculation budget

// With the budget exhausted, calls must still complete with correct results
// (TradRPC semantics: supplier skipped, no speculative branch), not queue
// or fail — and the wasted-work counter (callbacks_spawned) stays bounded
// by calls + admitted predictions instead of 2x calls.
TEST(SpecBudget, ExhaustionDegradesToTradRpc) {
  constexpr int kCalls = 48;
  constexpr std::size_t kBudget = 4;

  std::atomic<std::uint64_t> supplier_calls{0};
  SpecConfig config;
  config.budget.max_inflight = kBudget;
  config.prediction_supplier = [&](const std::string&,
                                   const ValueList&) -> ValueList {
    supplier_calls.fetch_add(1);
    return {Value(std::int64_t{-1})};  // always wrong
  };
  Harness h(std::move(config));
  // kCritical: tier_frac 1.0, so the cap is exactly kBudget.
  h.client->set_method_qos("slow", {QosPriority::kCritical, Duration::zero()});
  h.server->register_method("slow", Handler([](const ServerCallPtr& c) {
    c->finish_after(500ms, Value(c->args()[0].as_int() + 1));
  }));

  std::vector<SpecFuturePtr> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(h.client->call("server", "slow", make_args(i), {},
                                     passthrough_factory()));
  }
  // The responses all land ~500ms out, so while issuing, at most kBudget
  // tokens ever free up; almost every later call must be denied.
  for (int i = 0; i < kCalls; ++i) {
    EXPECT_EQ(futures[i]->get(), Value(i + 1));
  }

  const SpecStats s = h.client->stats();
  EXPECT_GT(s.budget_denied, 0u);
  EXPECT_LE(s.predictions_made, 2 * kBudget);  // slack for token turnover
  EXPECT_EQ(s.predictions_made, supplier_calls.load());
  // Bounded wasted work: one on-actual run per call plus one speculative
  // run per admitted prediction — not the 2x of unbounded always-speculate.
  EXPECT_EQ(s.callbacks_spawned, kCalls + s.predictions_made);
  // Exactly-once token accounting, after everything drained.
  EXPECT_EQ(s.budget_acquired, s.predictions_made);
  EXPECT_EQ(s.budget_released, s.budget_acquired);
  EXPECT_EQ(h.client->spec_inflight(), 0);
}

// Tier caps: lower-priority methods run out of budget first. With 7 of 10
// tokens held, a best-effort method (cap 6) is denied while a critical
// method (cap 10) still speculates.
TEST(SpecBudget, QosTiersShedLowPriorityFirst) {
  SpecConfig config;
  config.budget.max_inflight = 10;  // caps: crit 10, normal 8, best-effort 6
  Harness h(std::move(config));
  h.client->set_method_qos("hold", {QosPriority::kCritical, Duration::zero()});
  h.client->set_method_qos("be_probe",
                           {QosPriority::kBestEffort, Duration::zero()});
  h.client->set_method_qos("crit_probe",
                           {QosPriority::kCritical, Duration::zero()});
  h.server->register_method("hold", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::seconds(30), Value(0));
  }));
  const Handler echo([](const ServerCallPtr& c) {
    c->finish(Value(c->args()[0].as_int() + 1));
  });
  h.server->register_method("be_probe", echo);
  h.server->register_method("crit_probe", echo);

  // Park 7 tokens on long-lived speculative branches.
  std::vector<SpecFuturePtr> parked;
  for (int i = 0; i < 7; ++i) {
    parked.push_back(h.client->call("server", "hold", make_args(i),
                                    {Value(std::int64_t{-1})},
                                    passthrough_factory()));
  }
  EXPECT_EQ(h.client->spec_inflight(), 7);
  EXPECT_FALSE(h.client->spec_budget_headroom("be_probe"));
  EXPECT_TRUE(h.client->spec_budget_headroom("crit_probe"));

  const std::uint64_t made_before = h.client->stats().predictions_made;
  auto be = h.client->call("server", "be_probe", make_args(100),
                           {Value(std::int64_t{-1})}, passthrough_factory());
  EXPECT_EQ(be->get(), Value(101));  // shed speculation, correct result
  EXPECT_EQ(h.client->stats().predictions_made, made_before);
  EXPECT_GT(h.client->stats().budget_denied, 0u);

  auto crit = h.client->call("server", "crit_probe", make_args(200),
                             {Value(std::int64_t{-1})}, passthrough_factory());
  EXPECT_EQ(crit->get(), Value(201));
  EXPECT_EQ(h.client->stats().predictions_made, made_before + 1);
  EXPECT_EQ(h.client->spec_inflight(), 7);  // probes released their tokens
}

// --------------------------------------------------------- admission ladder

struct FakeSource {
  std::atomic<std::size_t> depth{0};
  std::atomic<std::uint64_t> sheds{0};

  predict::PressureSource source() {
    return [this] {
      PressureSample s;
      s.queue_depth = depth.load();
      s.sheds = sheds.load();
      return s;
    };
  }
};

AdmissionConfig tick_driven_config() {
  AdmissionConfig cfg;
  cfg.queue_hi = 100;
  cfg.queue_lo = 10;
  cfg.calm_polls_to_step_down = 3;
  // admit() never polls on its own; every poll in the test is an explicit
  // tick(), so the ladder moves deterministically.
  cfg.poll_interval = std::chrono::hours(1);
  return cfg;
}

TEST(Admission, LadderEscalatesImmediatelyAndReopensWithHysteresis) {
  FakeSource src;
  AdmissionController ctl(tick_driven_config());
  ctl.add_source(src.source());
  ctl.set_method_priority("crit", QosPriority::kCritical);
  ctl.set_method_priority("norm", QosPriority::kNormal);
  ctl.set_method_priority("be", QosPriority::kBestEffort);
  ctl.tick();  // baseline the poll clock so admit() stays passive

  EXPECT_EQ(ctl.level(), AdmissionLevel::kOpen);
  EXPECT_TRUE(ctl.admit("be"));
  EXPECT_TRUE(ctl.admit("norm"));
  EXPECT_TRUE(ctl.admit("crit"));

  // One hot poll per step up: best-effort goes first, critical last.
  src.depth.store(500);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedBestEffort);
  EXPECT_FALSE(ctl.admit("be"));
  EXPECT_TRUE(ctl.admit("norm"));
  EXPECT_TRUE(ctl.admit("crit"));
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedNormal);
  EXPECT_FALSE(ctl.admit("norm"));
  EXPECT_TRUE(ctl.admit("crit"));
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);
  EXPECT_FALSE(ctl.admit("crit"));
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);  // capped

  // The hysteresis band (lo < depth < hi) holds the level indefinitely.
  src.depth.store(50);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);

  // Calm polls step down only after a sustained run...
  src.depth.store(5);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedNormal);
  // ...and a mid-streak excursion both escalates and forfeits calm credit.
  ctl.tick();
  ctl.tick();  // two calm polls banked toward the next step-down
  src.depth.store(500);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);
  src.depth.store(5);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedAll);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedNormal);

  const auto s = ctl.stats();
  EXPECT_EQ(s.escalations, 4u);
  EXPECT_EQ(s.deescalations, 2u);
}

// Shed counters are cumulative; the controller must read them as monotone
// deltas so a counter that goes backwards (transport restart, stats reset)
// reads as zero pressure for one poll — never as perpetual heat or a
// negative that wraps to astronomically hot.
TEST(Admission, ShedCounterResetReadsAsZeroPressure) {
  FakeSource src;
  AdmissionController ctl(tick_driven_config());
  ctl.add_source(src.source());
  ctl.tick();
  EXPECT_EQ(ctl.level(), AdmissionLevel::kOpen);

  src.sheds.store(10);  // 10 new sheds since baseline: hot
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedBestEffort);
  EXPECT_EQ(ctl.stats().shed_delta_last, 10u);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedBestEffort);  // no new sheds

  // Transport restart: the counter re-reads as 2 (< 10). Pre-fix an
  // unsigned subtraction here read as ~2^64 sheds and pinned the ladder at
  // kShedAll; post-fix it re-baselines to zero and the calm run reopens.
  src.sheds.store(2);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kShedBestEffort);
  EXPECT_EQ(ctl.stats().shed_delta_last, 0u);
  EXPECT_EQ(ctl.tick(), AdmissionLevel::kOpen);
  EXPECT_EQ(ctl.stats().escalations, 1u);
}

TEST(Admission, LowAccuracyMethodsDemotedOnlyUnderPressure) {
  predict::AccuracyTracker tracker;
  for (int i = 0; i < 20; ++i) {
    tracker.record("bad", true, false);
    tracker.record("good", true, true);
  }
  FakeSource src;
  AdmissionController ctl(tick_driven_config(), &tracker);
  ctl.add_source(src.source());
  ctl.set_method_priority("bad", QosPriority::kNormal);
  ctl.set_method_priority("good", QosPriority::kNormal);
  ctl.tick();

  // No pressure: accuracy is the adaptive gate's business, not admission's.
  EXPECT_TRUE(ctl.admit("bad"));
  EXPECT_TRUE(ctl.admit("good"));

  src.depth.store(500);
  ASSERT_EQ(ctl.tick(), AdmissionLevel::kShedBestEffort);
  // Under pressure the sub-break-even method drops a tier and sheds with
  // the best-effort class; the accurate one keeps its nominal tier.
  EXPECT_FALSE(ctl.admit("bad"));
  EXPECT_TRUE(ctl.admit("good"));
  EXPECT_GT(ctl.stats().demotions, 0u);
}

TEST(Stats, MonotoneDeltaRebaselinesOnBackwardsCounter) {
  stats::MonotoneDelta d;
  EXPECT_EQ(d.advance(100), 100u);
  EXPECT_EQ(d.advance(130), 30u);
  EXPECT_EQ(d.advance(5), 0u);  // reset upstream: zero, not 2^64 - 125
  EXPECT_EQ(d.advance(7), 2u);  // and deltas resume from the new baseline
}

// 8 threads hammer admit() with polling enabled while pressure flaps and
// the shed counter occasionally resets; a sampler thread reads stats().
// Run under TSan: the admit fast path, the try_lock poll, and tick() must
// be data-race free. Accounting must balance exactly at the end.
TEST(Admission, AdmitStormIsRaceFreeAndBalanced) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 20'000;

  FakeSource src;
  AdmissionConfig cfg;
  cfg.queue_hi = 100;
  cfg.queue_lo = 10;
  cfg.poll_interval = std::chrono::microseconds(50);
  cfg.calm_polls_to_step_down = 2;
  AdmissionController ctl(cfg);
  ctl.add_source(src.source());
  ctl.set_method_priority("m", QosPriority::kNormal);

  std::atomic<bool> done{false};
  std::thread churn([&] {
    std::uint64_t sheds = 0;
    int round = 0;
    while (!done.load()) {
      src.depth.store((round % 2 == 0) ? 1000 : 0);
      sheds = (round % 7 == 6) ? 0 : sheds + 3;  // periodic reset
      src.sheds.store(sheds);
      if (round % 3 == 0) ctl.tick();
      ++round;
      std::this_thread::sleep_for(200us);
    }
  });
  std::thread sampler([&] {
    while (!done.load()) {
      const auto s = ctl.stats();
      EXPECT_GE(static_cast<int>(s.level), 0);
      EXPECT_LE(static_cast<int>(s.level),
                static_cast<int>(AdmissionLevel::kShedAll));
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) ctl.admit("m");
    });
  }
  for (auto& w : workers) w.join();
  done.store(true);
  churn.join();
  sampler.join();

  const auto s = ctl.stats();
  EXPECT_EQ(s.admitted + s.shed,
            static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
  EXPECT_GT(s.polls, 0u);
  EXPECT_GE(s.escalations, s.deescalations);  // quiesced: exact invariant
}

}  // namespace
}  // namespace srpc::spec
