// SpecPipeline (§4.2 application library): correctness at every hand-off
// point, and agreement between the empirical behaviour and the §4.2
// analytical model.
#include <gtest/gtest.h>

#include <cmath>

#include "optmodel/model.h"
#include "optmodel/spec_pipeline.h"

namespace srpc::opt {
namespace {

TEST(SpecPipeline, AlwaysComputesTheExactSolution) {
  // Whatever the hand-off (and hence hit rate), results must be exact.
  for (double handoff : {0.05, 0.3, 0.9}) {
    PipelineConfig config;
    config.stages = 3;
    config.stage_time = std::chrono::milliseconds(15);
    config.handoff_fraction = handoff;
    config.seed = 11;
    SpecPipeline pipeline(config);
    for (int i = 0; i < 5; ++i) {
      const auto result = pipeline.run_once(i);
      EXPECT_EQ(result.solution.as_int(), pipeline.expected_solution(i))
          << "handoff=" << handoff << " input=" << i;
    }
  }
}

TEST(SpecPipeline, HitRateTracksExponentialModel) {
  PipelineConfig config;
  config.stages = 2;
  config.stage_time = std::chrono::milliseconds(10);
  config.lambda_per_T = 3.0;
  config.handoff_fraction = 0.5;
  config.seed = 23;
  SpecPipeline pipeline(config);
  const auto result = pipeline.run(120);
  const double expected = exp_prediction_rate(3.0, 0.5, 1.0);  // ~0.78
  EXPECT_NEAR(result.hit_rate(), expected, 0.12);
}

TEST(SpecPipeline, LatencyBetweenIdealAndSequential) {
  PipelineConfig config;
  config.stages = 4;
  config.stage_time = std::chrono::milliseconds(25);
  config.lambda_per_T = 8.0;   // converges fast: predictions mostly right
  config.handoff_fraction = 0.4;
  config.seed = 5;
  SpecPipeline pipeline(config);
  const auto result = pipeline.run(20);
  const double seq_ms = 4 * 25.0;
  const double ideal_ms = 25.0 + 3 * 25.0 * 0.4;  // T + (n-1) * t
  const double measured = to_ms(result.latency);
  EXPECT_GT(measured, ideal_ms * 0.9);
  EXPECT_LT(measured, seq_ms * 0.95);  // clearly better than sequential
}

TEST(SpecPipeline, EarlierHandoffFasterButLessAccurate) {
  auto run_with_handoff = [](double handoff) {
    PipelineConfig config;
    config.stages = 3;
    config.stage_time = std::chrono::milliseconds(20);
    config.lambda_per_T = 2.0;
    config.handoff_fraction = handoff;
    config.seed = 7;
    SpecPipeline pipeline(config);
    return pipeline.run(60);
  };
  const auto early = run_with_handoff(0.15);
  const auto late = run_with_handoff(0.85);
  // Later hand-off: higher hit rate (more convergence time)...
  EXPECT_GT(late.hit_rate(), early.hit_rate());
  // ...while the early hand-off pays re-execution but gains overlap; at
  // lambda=2 the model's optimum is ~0.4T, so both ends trade differently.
  // Neither may regress much past sequential (model cost <= n*T; allow
  // ~15% for per-hop scheduling overhead on this single-core host).
  const double seq_ms = 3 * 20.0;
  EXPECT_LT(to_ms(early.latency), seq_ms * 1.15);
  EXPECT_LT(to_ms(late.latency), seq_ms * 1.15);
}

TEST(SpecPipeline, SpeedupOrderingFollowsFigure7InLambda) {
  // Higher lambda (faster convergence) => more measured speedup at the
  // model-optimal hand-off, mirroring Figure 7's monotonicity.
  auto measure = [](double lambda) {
    PipelineConfig config;
    config.stages = 3;
    config.stage_time = std::chrono::milliseconds(20);
    config.lambda_per_T = lambda;
    config.handoff_fraction = optimal_handoff(lambda, 1.0);
    config.seed = 13;
    SpecPipeline pipeline(config);
    const auto result = pipeline.run(60);
    return 3 * 20.0 / to_ms(result.latency);
  };
  const double slow = measure(0.75);
  const double fast = measure(6.0);
  EXPECT_GT(fast, slow);
}

}  // namespace
}  // namespace srpc::opt
