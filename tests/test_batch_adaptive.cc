// Adaptive batching (DESIGN.md §14): AdaptiveBatchController gate
// hysteresis (no thrash on boundary workloads), probing reopening the
// speculative gate after accuracy recovers, the conflict/pressure size
// reflexes + goodput hill climber, SeedStore slot-diff invalidation on view
// refresh, serial-replay state equality across controller-driven mode
// switches, and a multi-client storm with live phase shifts (the TSan
// configuration of scripts/check.sh runs this suite).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batch/adaptive.h"
#include "batch/client.h"
#include "batch/seed.h"
#include "rc/cluster.h"
#include "rc/view.h"
#include "workload/qstream.h"
#include "workload/runner.h"

namespace srpc::batch {
namespace {

// ------------------------------------------------------------ controller

/// Synthetic epoch feedback: `txns - aborted` committed, fixed wall time.
EpochFeedback fb(BatchMode mode, std::size_t txns, std::size_t aborted,
                 double time_ms = 10.0, std::uint64_t checked = 0,
                 std::uint64_t correct = 0, bool probe = false,
                 int pressure = 0) {
  EpochFeedback f;
  f.mode = mode;
  f.probe = probe;
  f.txns = txns;
  f.committed = txns - aborted;
  f.aborted = aborted;
  f.epoch_time = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(time_ms));
  f.seed_checked = checked;
  f.seed_correct = correct;
  f.pressure_level = pressure;
  return f;
}

/// Gate-focused config: the huge hold_epochs freezes the goodput climber and
/// shrink_above parks the conflict size reflex, so mode transitions are the
/// only moving part.
AdaptiveBatchConfig gate_config() {
  AdaptiveBatchConfig c;
  c.initial_epoch = 16;
  c.min_samples = 1;
  c.window = 4;
  c.conflict_hi = 0.5;
  c.conflict_lo = 0.2;
  c.shrink_above = 10.0;
  c.release_streak = 3;
  c.probe_every = 2;
  c.hold_epochs = 100000;
  return c;
}

TEST(AdaptiveController, PerTxnGateHysteresisDoesNotThrash) {
  AdaptiveBatchConfig c = gate_config();
  c.allow_speculative = false;  // isolate the conflict gate
  c.initial_mode = BatchMode::kGroupCommit;
  AdaptiveBatchController ctl(c);

  // Below the engage threshold: conflict 0.375 < hi 0.5, no flip ever.
  for (int i = 0; i < 10; ++i) {
    ctl.observe(fb(BatchMode::kGroupCommit, 16, 6));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kGroupCommit);
  EXPECT_EQ(ctl.stats().mode_flips, 0u);

  // A real storm engages the gate once the window crosses hi.
  for (int i = 0; i < 4; ++i) {
    ctl.observe(fb(BatchMode::kGroupCommit, 16, 15));  // conflict ~0.94
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kPerTxn2pc);
  EXPECT_EQ(ctl.stats().mode_flips, 1u);

  // Mid-band probes (lo < conflict < hi) must NOT release: that band is
  // the hysteresis. 0.3125 > conflict_lo resets the calm streak each time.
  for (int i = 0; i < 10; ++i) {
    ctl.observe(fb(BatchMode::kGroupCommit, 16, 5, 10.0, 0, 0,
                   /*probe=*/true));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kPerTxn2pc);
  EXPECT_EQ(ctl.stats().mode_flips, 1u);

  // release_streak consecutive calm probes release it — exactly one more
  // transition, no oscillation on the way.
  for (int i = 0; i < 3; ++i) {
    ctl.observe(fb(BatchMode::kGroupCommit, 16, 0, 10.0, 0, 0,
                   /*probe=*/true));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kGroupCommit);
  EXPECT_EQ(ctl.stats().mode_flips, 2u);

  // Back in the mid-band from below: still no engage, still two flips.
  for (int i = 0; i < 10; ++i) {
    ctl.observe(fb(BatchMode::kGroupCommit, 16, 6));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kGroupCommit);
  EXPECT_EQ(ctl.stats().mode_flips, 2u);
}

TEST(AdaptiveController, ProbingReopensSpeculationAfterAccuracyRecovers) {
  AdaptiveBatchConfig c = gate_config();
  c.initial_mode = BatchMode::kSpeculative;
  c.release_streak = 2;
  c.probe_every = 3;
  AdaptiveBatchController ctl(c);
  // misspec_cost 0.25 -> break-even 0.2, off < 0.1, on >= 0.3.
  EXPECT_NEAR(ctl.accuracy_off_threshold(), 0.1, 1e-9);
  EXPECT_NEAR(ctl.accuracy_on_threshold(), 0.3, 1e-9);

  // Accurate speculative epochs: gate stays open.
  for (int i = 0; i < 4; ++i) {
    (void)ctl.next();
    ctl.observe(fb(BatchMode::kSpeculative, 16, 0, 10.0, 8, 8));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kSpeculative);

  // Accuracy collapses below break-even: gate closes (one flip).
  for (int i = 0; i < 4; ++i) {
    (void)ctl.next();
    ctl.observe(fb(BatchMode::kSpeculative, 16, 0, 10.0, 8, 0));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kGroupCommit);
  EXPECT_EQ(ctl.stats().mode_flips, 1u);

  // Drive the decision loop: steady epochs run group commit (no seeds, no
  // accuracy signal); every probe_every-th epoch probes speculative. Feed
  // the probes recovered accuracy — release_streak of them reopen the gate.
  int probes_seen = 0;
  int epochs = 0;
  while (ctl.stats().mode != BatchMode::kSpeculative && epochs < 30) {
    const BatchDecision d = ctl.next();
    ++epochs;
    if (d.probe) {
      EXPECT_EQ(d.mode, BatchMode::kSpeculative);
      ++probes_seen;
      ctl.observe(fb(BatchMode::kSpeculative, 16, 0, 10.0, 8, 8,
                     /*probe=*/true));
    } else {
      EXPECT_EQ(d.mode, BatchMode::kGroupCommit);
      ctl.observe(fb(BatchMode::kGroupCommit, 16, 0));
    }
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kSpeculative);
  EXPECT_EQ(probes_seen, 2);  // exactly release_streak accurate probes
  EXPECT_LE(epochs, 3 * 2 + 2);
  EXPECT_EQ(ctl.stats().mode_flips, 2u);
}

TEST(AdaptiveController, ClimberTracksGoodputPeakAndReflexCutsOnStorm) {
  AdaptiveBatchConfig c;
  c.min_epoch = 4;
  c.max_epoch = 64;
  c.initial_epoch = 32;
  c.min_samples = 1;
  c.window = 4;
  c.hold_epochs = 2;
  c.probe_every = 0;       // no probing: size dynamics only
  c.conflict_hi = 100.0;   // park the mode gates
  AdaptiveBatchController ctl(c);

  // Calm workload whose goodput peaks at epoch size 32: committed scales
  // with size while epoch time grows away from the peak. The climber must
  // orbit the peak, not collapse onto a rail.
  const auto calm_epoch = [&ctl] {
    const auto size = static_cast<double>(ctl.stats().epoch_size);
    ctl.observe(fb(BatchMode::kSpeculative, static_cast<std::size_t>(size), 0,
                   /*time_ms=*/1.0 + 0.5 * std::abs(size - 32.0)));
  };
  // Storm: conflict ~0.9 and goodput strictly decreasing in size (3 of 32
  // commit; the epoch still pays wall time per queued transaction), so
  // smaller epochs genuinely win and the climber should ride to the floor.
  const auto storm_epoch = [&ctl] {
    const auto size = static_cast<double>(ctl.stats().epoch_size);
    ctl.observe(fb(BatchMode::kSpeculative, 32, 29, /*time_ms=*/size));
  };

  for (int i = 0; i < 40; ++i) calm_epoch();
  const AdaptiveBatchStats calm = ctl.stats();
  EXPECT_GT(calm.grows, 0u);
  EXPECT_GE(calm.epoch_size, 20u);  // orbiting 32, not stuck on a rail
  EXPECT_LE(calm.epoch_size, 48u);

  // Conflict regime shift: the windowed signal crossing shrink_above takes
  // ONE immediate multiplicative cut within the first couple of epochs...
  const std::uint64_t shrinks_before = calm.shrinks;
  storm_epoch();
  storm_epoch();
  const std::size_t after_reflex = ctl.stats().epoch_size;
  EXPECT_LE(after_reflex, (calm.epoch_size + 1) / 2);
  EXPECT_GT(ctl.stats().shrinks, shrinks_before);

  // ...and with goodput now favouring tiny epochs, the climber keeps
  // walking down instead of regrowing into the storm.
  for (int i = 0; i < 20; ++i) storm_epoch();
  EXPECT_LE(ctl.stats().epoch_size, after_reflex);

  // Conflict subsides: the climber regrows back toward the calm peak.
  for (int i = 0; i < 60; ++i) calm_epoch();
  EXPECT_GE(ctl.stats().epoch_size, 20u);
  EXPECT_LE(ctl.stats().epoch_size, 64u);
}

TEST(AdaptiveController, AdmissionPressureShrinksEveryEpochAndCapsGrowth) {
  AdaptiveBatchConfig c;
  c.min_epoch = 4;
  c.max_epoch = 64;
  c.initial_epoch = 64;
  c.min_samples = 1;
  c.hold_epochs = 2;
  c.probe_every = 0;
  AdaptiveBatchController ctl(c);

  // Shedding: a cut per epoch straight down to min_epoch.
  for (int i = 0; i < 5; ++i) {
    ctl.observe(fb(BatchMode::kSpeculative, 16, 0, 10.0, 0, 0, false,
                   /*pressure=*/2));
  }
  EXPECT_EQ(ctl.stats().epoch_size, 4u);

  // Pressure clears: growth resumes.
  for (int i = 0; i < 20; ++i) {
    ctl.observe(fb(BatchMode::kSpeculative, 16, 0));
  }
  EXPECT_GT(ctl.stats().epoch_size, 4u);
}

TEST(AdaptiveController, PerTxnEpochsCarryNoConflictSignalAndFreezeSize) {
  AdaptiveBatchConfig c = gate_config();
  c.allow_speculative = false;
  c.initial_mode = BatchMode::kPerTxn2pc;
  c.hold_epochs = 2;
  AdaptiveBatchController ctl(c);
  const std::size_t size0 = ctl.stats().epoch_size;

  // Per-txn epochs: near-zero aborts by construction. They must neither
  // release the gate (blind release would thrash against re-engagement)
  // nor walk the size.
  for (int i = 0; i < 12; ++i) {
    ctl.observe(fb(BatchMode::kPerTxn2pc, 16, 0));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kPerTxn2pc);
  EXPECT_EQ(ctl.stats().epoch_size, size0);
  EXPECT_EQ(ctl.stats().grows, 0u);
  EXPECT_DOUBLE_EQ(ctl.stats().conflict_windowed, 0.0);

  // Calm batched probes do release it.
  for (int i = 0; i < 3; ++i) {
    ctl.observe(fb(BatchMode::kGroupCommit, 16, 0, 10.0, 0, 0, true));
  }
  EXPECT_EQ(ctl.stats().mode, BatchMode::kGroupCommit);
}

// ------------------------------------------------- seed slot-diff refresh

TEST(SeedStoreView, InvalidateMovedDropsOnlyMigratedSlots) {
  const rc::ClusterView from = rc::ClusterView::make_static();
  // Move two slots owned by shard 0 onto shard 1.
  std::vector<int> moved_slots;
  for (int slot = 0; slot < rc::kViewSlots && moved_slots.size() < 2; ++slot) {
    if (from.slot_owner[static_cast<std::size_t>(slot)] == 0) {
      moved_slots.push_back(slot);
    }
  }
  ASSERT_EQ(moved_slots.size(), 2u);
  const rc::ClusterView to = from.with_slots_moved(moved_slots, 1);

  // Seed keys until both populations exist.
  SeedStore seeds;
  std::vector<std::string> on_moved, on_stayed;
  for (std::uint64_t i = 0; on_moved.size() < 3 || on_stayed.size() < 3;
       ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08llu",
                  static_cast<unsigned long long>(i));
    const int slot = rc::slot_of_key(key);
    const bool moved = slot == moved_slots[0] || slot == moved_slots[1];
    if (moved && on_moved.size() < 3) {
      on_moved.push_back(key);
    } else if (!moved && on_stayed.size() < 3) {
      on_stayed.push_back(key);
    } else {
      continue;
    }
    seeds.put(key, "v", static_cast<std::int64_t>(100 + i));
  }

  const std::size_t dropped = seeds.invalidate_moved(from, to);
  EXPECT_EQ(dropped, 3u);
  for (const auto& key : on_moved) EXPECT_FALSE(seeds.get(key).has_value());
  for (const auto& key : on_stayed) EXPECT_TRUE(seeds.get(key).has_value());

  // No slots moved: nothing dropped.
  EXPECT_EQ(seeds.invalidate_moved(to, to), 0u);
  EXPECT_EQ(seeds.size(), 3u);

  // A view without a full slot table degrades to the conservative clear.
  rc::ClusterView bogus = to;
  bogus.slot_owner.clear();
  EXPECT_EQ(seeds.invalidate_moved(to, bogus), 3u);
  EXPECT_EQ(seeds.size(), 0u);
}

// ---------------------------------------------- cluster-level correctness

BatchOp read_op(std::string key) {
  BatchOp op;
  op.kind = OpKind::kRead;
  op.key = std::move(key);
  return op;
}

BatchOp write_op(std::string key, std::string value) {
  BatchOp op;
  op.kind = OpKind::kWrite;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

BatchOp incr_op(std::string key) {
  BatchOp op;
  op.kind = OpKind::kRmw;
  op.key = std::move(key);
  op.value = "1";
  op.transform = Transform::kIncrement;
  return op;
}

/// Serial-execution reference (same rules as test_batch.cc / perf_batch).
class SerialReplay {
 public:
  explicit SerialReplay(std::string initial) : initial_(std::move(initial)) {}

  void apply(const BatchTxn& txn) {
    std::map<std::string, std::string> buffer;
    for (const auto& op : txn.ops) {
      if (op.kind == OpKind::kWrite) {
        buffer[op.key] = op.value;
        continue;
      }
      const std::string current = [&] {
        auto bit = buffer.find(op.key);
        if (bit != buffer.end()) return bit->second;
        auto it = state_.find(op.key);
        return it != state_.end() ? it->second : initial_;
      }();
      if (op.kind == OpKind::kRmw) {
        buffer[op.key] = apply_transform(op.transform, current, op.value);
      }
    }
    for (auto& [key, value] : buffer) state_[key] = value;
  }

  const std::map<std::string, std::string>& state() const { return state_; }

 private:
  std::string initial_;
  std::map<std::string, std::string> state_;
};

void expect_converged(rc::RcCluster& cluster,
                      const std::map<std::string, std::string>& expected) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  const auto view = cluster.view();
  for (const auto& [key, value] : expected) {
    const int shard = view->shard_of(key);
    for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
      for (;;) {
        auto got = cluster.store(dc, shard).get(key);
        if (got.has_value() && got->value == value) break;
        if (Clock::now() > deadline) {
          FAIL() << "replica dc" << dc << " shard" << shard << " key " << key
                 << " = '" << (got ? got->value : "<missing>")
                 << "', expected '" << value << "'";
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
}

rc::ClusterConfig adaptive_cluster(BatchMode initial_mode, int clients_per_dc,
                                   const AdaptiveBatchConfig& acfg) {
  rc::ClusterConfig config;
  config.flavor = Flavor::kSpec;
  config.geo = uniform_geo(/*rtt_ms=*/4.0);
  config.geo.lan_rtt_ms = 0.2;
  config.clients_per_dc = clients_per_dc;
  config.num_keys = 2000;
  config.executor_threads = 8;
  config.batch_clients = true;
  config.batch_mode = initial_mode;
  config.batch_txns_per_epoch = acfg.initial_epoch;
  config.adaptive_batch = true;
  config.adaptive_batch_config = acfg;
  return config;
}

TEST(BatchAdaptiveCluster, SerialReplayEqualityAcrossModeSwitches) {
  // Aggressive controller: starts per-txn engaged, calm probes release it
  // within a few epochs, speculation reopens through accurate probes, then
  // poisoned seeds slam the accuracy gate shut again — one single-client
  // stream crosses all three commit modes and the replicated state must
  // equal the serial replay throughout.
  AdaptiveBatchConfig acfg;
  acfg.min_epoch = 4;
  acfg.max_epoch = 8;
  acfg.initial_epoch = 6;
  acfg.initial_mode = BatchMode::kPerTxn2pc;
  acfg.min_samples = 1;
  acfg.window = 2;
  acfg.probe_every = 2;
  acfg.release_streak = 1;
  // Wide accuracy band (off < 0.3, on >= 0.7): poisoned epochs still score
  // the occasional lucky rmw seed, so their accuracy floats around ~0.15 —
  // well inside this close region, while healthy epochs sit at ~1.0.
  acfg.misspec_cost = 1.0;
  acfg.hysteresis = 0.2;
  rc::RcCluster cluster(
      adaptive_cluster(BatchMode::kPerTxn2pc, /*clients_per_dc=*/1, acfg));
  auto& client = cluster.batch_client(0, 0);
  ASSERT_NE(client.controller(), nullptr);

  // Disjoint key roles keep seed accuracy meaningful: `reads` are never
  // written (their seeds stay exactly right until poisoned), `writes` are
  // never read except through the in-epoch overlay / rmw path.
  const std::vector<std::string> reads = {"k00000000", "k00000001",
                                          "k00000002", "k00000003"};
  const std::vector<std::string> writes = {"k00000004", "k00000005",
                                           "k00000006", "k00000007"};
  SerialReplay replay(std::string(16, 'v'));
  std::uint64_t next_id = 1;
  std::size_t total_committed = 0;

  const auto run_epochs = [&](int count) {
    for (int e = 0; e < count; ++e) {
      const std::size_t n = client.next_epoch_size();
      ASSERT_GE(n, acfg.min_epoch);
      ASSERT_LE(n, acfg.max_epoch);
      std::vector<BatchTxn> txns;
      for (std::size_t i = 0; i < n; ++i) {
        BatchTxn txn;
        txn.id = next_id++;
        txn.ops = {read_op(reads[(txn.id * 3) % reads.size()]),
                   read_op(reads[(txn.id * 7 + 2) % reads.size()]),
                   write_op(writes[(txn.id * 2 + 1) % writes.size()],
                            "t" + std::to_string(txn.id)),
                   incr_op(writes[(txn.id * 3 + 2) % writes.size()])};
        txns.push_back(txn);
      }
      const auto reference = txns;
      const EpochResult result = client.run_epoch(std::move(txns));
      if (std::getenv("SPECRPC_TEST_TRACE")) {
        const auto s = client.controller()->stats();
        std::fprintf(stderr,
                     "epoch %llu ran=%d steady=%d flips=%llu acc_obs=%llu "
                     "acc_win=%.2f n=%zu\n",
                     static_cast<unsigned long long>(s.epochs),
                     static_cast<int>(result.mode), static_cast<int>(s.mode),
                     static_cast<unsigned long long>(s.mode_flips),
                     static_cast<unsigned long long>(s.accuracy_epochs),
                     s.accuracy_windowed, n);
      }
      ASSERT_EQ(result.decisions.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        // Single client: every transaction must commit, poisoned seeds or
        // not (mispredictions roll back and re-execute, they never decide).
        ASSERT_TRUE(result.decisions[i]) << "txn " << i << " aborted";
        replay.apply(reference[i]);
        ++total_committed;
      }
    }
  };

  run_epochs(10);  // per-txn start -> calm probes release -> spec reopens

  // Poison the stable read keys' seeds with a version high enough that real
  // learn()-backs can't overwrite it (the store is version-monotone):
  // accuracy collapses, the speculation gate closes, and the stream keeps
  // running — correctly — through group commit.
  for (const auto& key : reads) {
    client.seeds()->put(key, "poisoned", 9'000'000'000'000'000LL);
  }
  run_epochs(10);

  const AdaptiveBatchStats stats = cluster.adaptive_batch_stats();
  EXPECT_GE(stats.mode_flips, 3u);  // 2pc -> group -> spec -> group at least
  EXPECT_GT(stats.mode_epochs[0], 0u);
  EXPECT_GT(stats.mode_epochs[1], 0u);
  EXPECT_GT(stats.mode_epochs[2], 0u);
  EXPECT_GT(total_committed, 0u);
  expect_converged(cluster, replay.state());
}

TEST(BatchAdaptiveCluster, MultiClientStormWithPhaseShifts) {
  // Six clients under a qstream whose conflict dial flips mid-run; the
  // aggressive controller settings force mode churn while TSan watches the
  // controller/client/seed interactions.
  AdaptiveBatchConfig acfg;
  acfg.min_epoch = 4;
  acfg.max_epoch = 16;
  acfg.initial_epoch = 8;
  acfg.initial_mode = BatchMode::kSpeculative;
  acfg.min_samples = 1;
  acfg.window = 4;
  acfg.hold_epochs = 2;
  acfg.probe_every = 2;
  acfg.release_streak = 1;
  acfg.conflict_hi = 0.6;
  acfg.conflict_lo = 0.2;
  rc::RcCluster cluster(
      adaptive_cluster(BatchMode::kSpeculative, /*clients_per_dc=*/2, acfg));
  const int total_clients = cluster.num_dcs() * 2;

  wl::QStreamConfig wc;
  wc.ops_per_txn = 3;
  wc.num_keys = 2000;
  wc.hot_keys = 64;
  wc.hot_fraction = 0.2;
  wc.cross_partition_fraction = 0.3;
  std::vector<std::shared_ptr<wl::QStreamWorkload>> streams;
  for (int i = 0; i < total_clients; ++i) {
    streams.push_back(std::make_shared<wl::QStreamWorkload>(
        wc, 77 + static_cast<std::uint64_t>(i)));
  }
  wl::SizedBatchWorkloadFactory factory = [&streams](int client_index) {
    auto w = streams[static_cast<std::size_t>(client_index)];
    return [w](std::size_t n) { return w->next_txns(n); };
  };

  const auto bout = std::chrono::milliseconds(150);
  std::uint64_t committed = 0;
  // calm -> storm (tiny moved hot set) -> calm (moved again)
  const wl::QStreamPhase phases[] = {
      {64, 0, 0.2, 0.3}, {2, 500, 0.9, 0.6}, {64, 1000, 0.2, 0.3}};
  for (const auto& phase : phases) {
    for (auto& s : streams) s->set_phase(phase);
    const wl::BatchRunResult r =
        wl::run_batch_closed_loop(cluster, factory, Duration::zero(), bout);
    committed += r.committed;
  }
  EXPECT_GT(committed, 0u);

  const AdaptiveBatchStats stats = cluster.adaptive_batch_stats();
  EXPECT_GT(stats.epochs, 0u);
  EXPECT_EQ(stats.epochs, stats.mode_epochs[0] + stats.mode_epochs[1] +
                              stats.mode_epochs[2]);
  for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
    for (int i = 0; i < 2; ++i) {
      auto* ctl = cluster.batch_controller(dc, i);
      ASSERT_NE(ctl, nullptr);
      const AdaptiveBatchStats s = ctl->stats();
      EXPECT_GE(s.epoch_size, acfg.min_epoch);
      EXPECT_LE(s.epoch_size, acfg.max_epoch);
    }
  }
}

}  // namespace
}  // namespace srpc::batch
