// TradRPC engine (and the GrpcSim flavour): async calls, futures,
// continuations, handler errors, timeouts, server-to-server calls,
// simulated service time, and the GrpcSim overhead/codec deltas.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>

#include "grpcsim/grpcsim.h"
#include "rpc/node.h"
#include "transport/sim_network.h"

namespace srpc::rpc {
namespace {

class RpcNodeTest : public ::testing::Test {
 protected:
  RpcNodeTest() {
    SimConfig config;
    config.default_delay = std::chrono::milliseconds(1);
    net_ = std::make_unique<SimNetwork>(config);
    server_ = std::make_unique<Node>(net_->add_node("server"),
                                     net_->executor(), net_->wheel());
    client_ = std::make_unique<Node>(net_->add_node("client"),
                                     net_->executor(), net_->wheel());
    server_->register_method(
        "plus", [](const CallContext&, ValueList args, Responder responder) {
          responder.finish(Value(args.at(0).as_int() + args.at(1).as_int()));
        });
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<Node> server_;
  std::unique_ptr<Node> client_;
};

TEST_F(RpcNodeTest, SyncCall) {
  EXPECT_EQ(client_->call_sync("server", "plus", {Value(2), Value(3)}),
            Value(5));
}

TEST_F(RpcNodeTest, AsyncCallReturnsImmediately) {
  const auto t0 = Clock::now();
  auto future = client_->call("server", "plus", {Value(1), Value(1)});
  EXPECT_LT(to_ms(Clock::now() - t0), 5.0);  // no blocking on issue
  EXPECT_EQ(future->get(), Value(2));
}

TEST_F(RpcNodeTest, ContinuationRunsOnResolution) {
  Value seen;
  std::atomic<bool> ran{false};
  auto future = client_->call("server", "plus", {Value(4), Value(6)});
  future->then([&](const Outcome& outcome) {
    seen = outcome.value;
    ran.store(true);
  });
  future->get();
  for (int i = 0; i < 100 && !ran.load(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(seen, Value(10));
}

TEST_F(RpcNodeTest, ContinuationOnAlreadyResolvedFutureRunsInline) {
  auto future = client_->call("server", "plus", {Value(1), Value(2)});
  future->get();
  bool ran = false;
  future->then([&](const Outcome&) { ran = true; });
  EXPECT_TRUE(ran);
}

TEST_F(RpcNodeTest, UnknownMethodFails) {
  auto future = client_->call("server", "nope", {});
  EXPECT_THROW(future->get(), RpcError);
}

TEST_F(RpcNodeTest, HandlerExceptionReportsError) {
  server_->register_method(
      "boom", [](const CallContext&, ValueList, Responder responder) {
        throw std::runtime_error("bad");
      });
  auto future = client_->call("server", "boom", {});
  EXPECT_THROW(future->get(), RpcError);  // dropped responder -> error reply
}

TEST_F(RpcNodeTest, ExplicitFailure) {
  server_->register_method(
      "fail", [](const CallContext&, ValueList, Responder responder) {
        responder.fail("nope");
      });
  auto future = client_->call("server", "fail", {});
  try {
    future->get();
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_STREQ(e.what(), "nope");
  }
}

TEST_F(RpcNodeTest, FinishAfterSimulatesServiceTime) {
  server_->register_method(
      "slow", [](const CallContext& ctx, ValueList, Responder responder) {
        ctx.finish_after(std::chrono::milliseconds(30), std::move(responder),
                         Value("done"));
      });
  const auto t0 = Clock::now();
  EXPECT_EQ(client_->call_sync("server", "slow", {}), Value("done"));
  EXPECT_GE(to_ms(Clock::now() - t0), 30.0);
}

TEST_F(RpcNodeTest, ServerToServerCalls) {
  // A handler that itself calls another node (RC coordinator pattern).
  auto relay = std::make_unique<Node>(net_->add_node("relay"),
                                      net_->executor(), net_->wheel());
  relay->register_method(
      "relay_plus",
      [&](const CallContext&, ValueList args, Responder responder) {
        auto shared = std::make_shared<Responder>(std::move(responder));
        relay->call("server", "plus", std::move(args))
            ->then([shared](const Outcome& outcome) {
              if (outcome.ok) {
                shared->finish(outcome.value);
              } else {
                shared->fail(outcome.error);
              }
            });
      });
  EXPECT_EQ(client_->call_sync("relay", "relay_plus", {Value(7), Value(8)}),
            Value(15));
}

TEST_F(RpcNodeTest, CallTimeoutFiresWhenServerSilent) {
  server_->register_method(
      "blackhole", [](const CallContext&, ValueList, Responder responder) {
        // Park the responder so no reply is ever sent (and no drop error).
        static std::vector<Responder> parked;
        parked.push_back(std::move(responder));
      });
  NodeConfig config;
  config.call_timeout = std::chrono::milliseconds(100);
  Node impatient(net_->add_node("impatient"), net_->executor(), net_->wheel(),
                 config);
  const auto t0 = Clock::now();
  auto future = impatient.call("server", "blackhole", {});
  EXPECT_THROW(future->get(), RpcError);
  EXPECT_GE(to_ms(Clock::now() - t0), 95.0);
}

TEST_F(RpcNodeTest, ConcurrentCallsAllComplete) {
  std::vector<Future::Ptr> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(client_->call("server", "plus", {Value(i), Value(1)}));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)]->get(), Value(i + 1));
  }
}

TEST(GrpcSim, OverheadSlowsCallsDown) {
  SimConfig sim_config;
  sim_config.default_delay = std::chrono::microseconds(100);
  SimNetwork net(sim_config);

  Node trad_server(net.add_node("ts"), net.executor(), net.wheel());
  Node trad_client(net.add_node("tc"), net.executor(), net.wheel());
  grpcsim::GrpcSimConfig grpc_config;
  grpc_config.per_message_overhead = std::chrono::milliseconds(10);
  grpcsim::GrpcNode grpc_server(net.add_node("gs"), net.executor(),
                                net.wheel(), grpc_config);
  grpcsim::GrpcNode grpc_client(net.add_node("gc"), net.executor(),
                                net.wheel(), grpc_config);
  auto echo = [](const CallContext&, ValueList args, Responder responder) {
    responder.finish(args.empty() ? Value() : args[0]);
  };
  trad_server.register_method("echo", echo);
  grpc_server.register_method("echo", echo);

  // Min-of-5 rather than mean: scheduler noise on a loaded machine only
  // inflates samples, so the min tracks the modeled cost.
  auto time_call = [](Node& node, const Address& dst) {
    double best = std::numeric_limits<double>::max();
    for (int i = 0; i < 5; ++i) {
      const auto t0 = Clock::now();
      node.call_sync(dst, "echo", {Value(i)});
      best = std::min(best, to_ms(Clock::now() - t0));
    }
    return best;
  };
  const double trad_ms = time_call(trad_client, "ts");
  const double grpc_ms = time_call(grpc_client, "gs");
  // 10 ms per message, 2 messages per RPC: ~20 ms extra.
  EXPECT_GT(grpc_ms, trad_ms + 15.0);
}

TEST(GrpcSim, UsesCompactCodec) {
  auto config = grpcsim::to_node_config(grpcsim::GrpcSimConfig{});
  EXPECT_EQ(config.codec->name(), "tagged");
  EXPECT_EQ(NodeConfig{}.codec->name(), "binary");
}

}  // namespace
}  // namespace srpc::rpc
