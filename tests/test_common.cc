// Substrate tests: executor, strand, timer wheel, RNG/Zipfian, CPU model,
// synchronization helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/cpu_model.h"
#include "common/executor.h"
#include "common/rng.h"
#include "common/strand.h"
#include "common/sync.h"
#include "common/timer_wheel.h"

namespace srpc {
namespace {

TEST(Executor, RunsAllTasks) {
  Executor executor(4, "test");
  std::atomic<int> count{0};
  WaitGroup wg;
  for (int i = 0; i < 200; ++i) {
    wg.add();
    ASSERT_TRUE(executor.post([&] {
      count.fetch_add(1);
      wg.done();
    }));
  }
  wg.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(Executor, ShutdownDrainsQueueAndRejectsNewWork) {
  auto executor = std::make_unique<Executor>(2, "test");
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    executor->post([&] { count.fetch_add(1); });
  }
  executor->shutdown();
  EXPECT_EQ(count.load(), 50);
  EXPECT_FALSE(executor->post([] {}));
}

TEST(Executor, SurvivesThrowingTasks) {
  Executor executor(2, "test");
  Event done;
  executor.post([] { throw std::runtime_error("boom"); });
  executor.post([&] { done.set(); });
  EXPECT_TRUE(done.wait_for(std::chrono::seconds(5)));
}

TEST(Strand, SerializesAndPreservesOrder) {
  Executor executor(4, "test");
  auto strand = Strand::create(executor);
  std::vector<int> order;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add();
    strand->post([&, i] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = max_concurrent.load();
      while (now > expected &&
             !max_concurrent.compare_exchange_weak(expected, now)) {
      }
      order.push_back(i);  // safe: strand serializes
      concurrent.fetch_sub(1);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(max_concurrent.load(), 1);
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  std::mutex mu;
  WaitGroup wg;
  const auto now = Clock::now();
  for (int i : {5, 1, 3, 2, 4}) {
    wg.add();
    wheel.schedule_at(now + std::chrono::milliseconds(10 * i), [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      fired.push_back(i);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(TimerWheel, EqualDeadlinesFireFifo) {
  TimerWheel wheel;
  std::vector<int> fired;
  std::mutex mu;
  WaitGroup wg;
  const auto deadline = Clock::now() + std::chrono::milliseconds(20);
  for (int i = 0; i < 20; ++i) {
    wg.add();
    wheel.schedule_at(deadline, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      fired.push_back(i);
      wg.done();
    });
  }
  wg.wait();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  std::atomic<bool> fired{false};
  const TimerId id = wheel.schedule_after(std::chrono::milliseconds(50),
                                          [&] { fired.store(true); });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // second cancel is a no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(fired.load());
}

TEST(TimerWheel, ImmediateDeadlineFires) {
  TimerWheel wheel;
  Event done;
  wheel.schedule_after(Duration::zero(), [&] { done.set(); });
  EXPECT_TRUE(done.wait_for(std::chrono::seconds(5)));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(7), 7u);
    const auto v = rng.uniform_range(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, FlipMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.flip(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.3, 0.01);
}

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, HotKeysDominateProportionally) {
  const double alpha = GetParam();
  Zipf zipf(10000, alpha);
  Rng rng(5);
  constexpr int kSamples = 200000;
  std::vector<int> counts(10000, 0);
  for (int i = 0; i < kSamples; ++i) counts[zipf.sample(rng)]++;
  // Rank 0 must be the most frequent, and the frequency ratio between rank
  // 0 and rank 9 should approximate (10/1)^alpha.
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  EXPECT_EQ(counts[0], max_count);
  const double expected_ratio = std::pow(10.0, alpha);
  const double measured_ratio =
      static_cast<double>(counts[0]) / std::max(1, counts[9]);
  EXPECT_NEAR(measured_ratio, expected_ratio, expected_ratio * 0.35);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.5, 0.75, 0.9, 1.1, 1.3));

TEST(Zipf, ScrambleSpreadsAndStaysInRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto s = fnv_scramble(i, 100000);
    EXPECT_LT(s, 100000u);
    seen.insert(s);
  }
  EXPECT_GT(seen.size(), 950u);  // few collisions
}

TEST(CpuModel, SingleCoreSerializesWork) {
  TimerWheel wheel;
  CpuModel cpu(wheel, 1);
  const auto t0 = Clock::now();
  WaitGroup wg;
  for (int i = 0; i < 5; ++i) {
    wg.add();
    cpu.execute(std::chrono::milliseconds(20), [&] { wg.done(); });
  }
  wg.wait();
  // 5 x 20ms on one core: at least ~100ms of virtual serialization.
  EXPECT_GE(to_ms(Clock::now() - t0), 90.0);
}

TEST(CpuModel, MoreCoresMoreThroughput) {
  TimerWheel wheel;
  CpuModel cpu2(wheel, 2);
  const auto t0 = Clock::now();
  WaitGroup wg;
  for (int i = 0; i < 6; ++i) {
    wg.add();
    cpu2.execute(std::chrono::milliseconds(20), [&] { wg.done(); });
  }
  wg.wait();
  const double two_core_ms = to_ms(Clock::now() - t0);
  // 6 x 20ms over 2 cores ~ 60ms; must be well under the 120ms 1-core time.
  EXPECT_LT(two_core_ms, 100.0);
  EXPECT_GE(two_core_ms, 50.0);
}

TEST(WaitGroupAndEvent, Basics) {
  WaitGroup wg;
  wg.add(2);
  std::thread t1([&] { wg.done(); });
  std::thread t2([&] { wg.done(); });
  EXPECT_TRUE(wg.wait_for(std::chrono::seconds(5)));
  t1.join();
  t2.join();

  Event e;
  EXPECT_FALSE(e.is_set());
  EXPECT_FALSE(e.wait_for(std::chrono::milliseconds(10)));
  e.set();
  EXPECT_TRUE(e.is_set());
  e.wait();  // returns immediately
}

}  // namespace
}  // namespace srpc
