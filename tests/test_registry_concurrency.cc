// Registry under concurrent publish/lookup/bind, and stub behaviour as the
// registry evolves (bind snapshots; later publishes don't move a stub).
#include <gtest/gtest.h>

#include <thread>

#include "specrpc/registry.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

TEST(RegistryConcurrency, ParallelPublishAndLookup) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 500; ++i) {
        RpcSignature sig{"Svc" + std::to_string(t),
                         "m" + std::to_string(i % 20), 1};
        registry.publish(sig, "host" + std::to_string(t));
        auto entry = registry.lookup(sig.qualified());
        ASSERT_TRUE(entry.has_value());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.size(), 4u * 20u);
}

TEST(RegistryConcurrency, RepublishMovesService) {
  SimNetwork net;
  SpecEngine old_server(net.add_node("old"), net.executor(), net.wheel());
  SpecEngine new_server(net.add_node("new"), net.executor(), net.wheel());
  SpecEngine client(net.add_node("client"), net.executor(), net.wheel());
  const RpcSignature sig{"Svc", "who", 0};
  register_signature(old_server, sig, Handler([](const ServerCallPtr& c) {
    c->finish(Value("old"));
  }));
  register_signature(new_server, sig, Handler([](const ServerCallPtr& c) {
    c->finish(Value("new"));
  }));

  Registry registry;
  registry.publish(sig, "old");
  SpecStub stub_before = registry.bind(client, "Svc", "who");
  registry.publish(sig, "new");  // service moved
  SpecStub stub_after = registry.bind(client, "Svc", "who");

  // A stub is a snapshot of the registry at bind time.
  EXPECT_EQ(stub_before.call_plain()->get(), Value("old"));
  EXPECT_EQ(stub_after.call_plain()->get(), Value("new"));

  client.begin_shutdown();
  old_server.begin_shutdown();
  new_server.begin_shutdown();
}

}  // namespace
}  // namespace srpc::spec
