// Value semantics and codec round-trips, including randomized
// property-style sweeps over deep value trees and codec size comparisons
// (the Figure 8c premise: tagged < binary on the wire).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rpc/wire.h"
#include "serde/buffer_pool.h"
#include "serde/codec.h"
#include "serde/io.h"
#include "specrpc/wire.h"

namespace srpc {
namespace {

TEST(Value, TypeAccessorsAndErrors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_THROW(Value(42).as_string(), ValueTypeError);
  EXPECT_THROW(Value("hi").as_int(), ValueTypeError);
  EXPECT_THROW(Value().as_list(), ValueTypeError);
}

TEST(Value, DeepEqualityDecidesPredictions) {
  // Prediction correctness is deep structural equality (§3.3).
  Value a = vlist("key", 42, vlist(1.5, false));
  Value b = vlist("key", 42, vlist(1.5, false));
  Value c = vlist("key", 42, vlist(1.5, true));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ValueMap m1{{"x", Value(1)}, {"y", Value("z")}};
  ValueMap m2{{"y", Value("z")}, {"x", Value(1)}};
  EXPECT_EQ(Value(m1), Value(m2));  // map order canonical
}

TEST(Value, ToStringRendersAllTypes) {
  Value v = vlist(Value(), true, 7, "s", Value(Bytes{1, 2, 3}));
  EXPECT_EQ(v.to_string(), "[null, true, 7, \"s\", bytes[3]]");
  ValueMap m{{"k", Value(1)}};
  EXPECT_EQ(Value(m).to_string(), "{k: 1}");
}

TEST(IoPrimitives, VarintBoundaries) {
  Bytes buf;
  Writer w(buf);
  const std::uint64_t cases[] = {0, 1, 127, 128, 16383, 16384,
                                 ~0ULL, 1ULL << 63};
  for (auto v : cases) w.varint(v);
  Reader r(buf);
  for (auto v : cases) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(IoPrimitives, ZigZagRoundTrip) {
  Bytes buf;
  Writer w(buf);
  const std::int64_t cases[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (auto v : cases) w.svarint(v);
  Reader r(buf);
  for (auto v : cases) EXPECT_EQ(r.svarint(), v);
}

TEST(IoPrimitives, TruncatedInputThrows) {
  Bytes buf;
  Writer w(buf);
  w.str32("hello");
  buf.resize(buf.size() - 2);
  Reader r(buf);
  EXPECT_THROW(r.str32(), DecodeError);
}

class CodecTest : public ::testing::TestWithParam<const Codec*> {};

TEST_P(CodecTest, ScalarRoundTrips) {
  const Codec& codec = *GetParam();
  for (const Value& v :
       {Value(), Value(true), Value(false), Value(0), Value(-1),
        Value(INT64_MAX), Value(INT64_MIN), Value(3.14159), Value(-0.0),
        Value(""), Value(std::string(1000, 'x')), Value(Bytes{}),
        Value(Bytes{0, 255, 128})}) {
    EXPECT_EQ(codec.decode(codec.encode(v)), v) << v.to_string();
  }
}

TEST_P(CodecTest, NestedRoundTrips) {
  const Codec& codec = *GetParam();
  ValueMap inner{{"a", Value(1)}, {"b", vlist(2, 3)}};
  Value v = vlist("txn", 42, Value(inner), vlist(vlist(vlist(0))));
  EXPECT_EQ(codec.decode(codec.encode(v)), v);
}

TEST_P(CodecTest, RejectsTrailingGarbage) {
  const Codec& codec = *GetParam();
  Bytes encoded = codec.encode(Value(7));
  encoded.push_back(0x00);
  EXPECT_THROW(codec.decode(encoded), DecodeError);
}

TEST_P(CodecTest, RejectsTruncation) {
  const Codec& codec = *GetParam();
  Bytes encoded = codec.encode(vlist("hello", 12345));
  for (std::size_t cut = 1; cut < encoded.size(); cut += 3) {
    Bytes truncated(encoded.begin(), encoded.begin() + cut);
    EXPECT_THROW(codec.decode(truncated), DecodeError) << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(BothCodecs, CodecTest,
                         ::testing::Values(&binary_codec(), &tagged_codec()),
                         [](const auto& info) {
                           return info.param->name();
                         });

// Random value generator for property sweeps.
Value random_value(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform(depth > 0 ? 8 : 6));
  switch (kind) {
    case 0:
      return Value();
    case 1:
      return Value(rng.flip(0.5));
    case 2:
      return Value(static_cast<std::int64_t>(rng.next()));
    case 3:
      return Value(rng.uniform01() * 1e9 - 5e8);
    case 4: {
      std::string s(rng.uniform(40), 'a');
      for (auto& c : s) c = static_cast<char>('a' + rng.uniform(26));
      return Value(std::move(s));
    }
    case 5: {
      Bytes b(rng.uniform(40));
      for (auto& x : b) x = static_cast<std::uint8_t>(rng.uniform(256));
      return Value(std::move(b));
    }
    case 6: {
      ValueList list;
      const auto n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i)
        list.push_back(random_value(rng, depth - 1));
      return Value(std::move(list));
    }
    default: {
      ValueMap map;
      const auto n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i)
        map.emplace("k" + std::to_string(i), random_value(rng, depth - 1));
      return Value(std::move(map));
    }
  }
}

TEST_P(CodecTest, PropertyRandomRoundTrips) {
  const Codec& codec = *GetParam();
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const Value v = random_value(rng, 3);
    EXPECT_EQ(codec.decode(codec.encode(v)), v) << "case " << i;
  }
}

TEST(CodecComparison, TaggedIsNoLargerThanBinary) {
  // The premise behind GrpcSim's bandwidth advantage (Figure 8c): the
  // tagged codec never encodes common payloads larger than the binary one.
  Rng rng(7);
  std::uint64_t binary_total = 0;
  std::uint64_t tagged_total = 0;
  for (int i = 0; i < 300; ++i) {
    const Value v = random_value(rng, 3);
    binary_total += binary_codec().encode(v).size();
    tagged_total += tagged_codec().encode(v).size();
  }
  EXPECT_LT(tagged_total, binary_total);
}

TEST(CodecComparison, CrossCodecEquivalence) {
  // Both codecs must represent the same value space.
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const Value v = random_value(rng, 3);
    EXPECT_EQ(binary_codec().decode(binary_codec().encode(v)),
              tagged_codec().decode(tagged_codec().encode(v)));
  }
}

TEST(Value, TakeAccessorsMoveOutHeapPayloads) {
  Value s(std::string(100, 'x'));
  std::string moved = s.take_string();
  EXPECT_EQ(moved, std::string(100, 'x'));
  EXPECT_EQ(s.as_string(), "");  // valid-but-empty, still a string

  Value b(Bytes{1, 2, 3});
  Bytes taken = b.take_bytes();
  EXPECT_EQ(taken, (Bytes{1, 2, 3}));
  EXPECT_TRUE(b.as_bytes().empty());

  Value lst = vlist(1, "two", 3.0);
  ValueList items = lst.take_list();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[1], Value("two"));
  EXPECT_TRUE(lst.as_list().empty());

  ValueMap m{{"k", Value(7)}};
  Value vm(m);
  ValueMap taken_map = vm.take_map();
  EXPECT_EQ(taken_map.at("k"), Value(7));
  EXPECT_TRUE(vm.as_map().empty());
}

TEST(Value, TakeAccessorsThrowOnTypeMismatch) {
  EXPECT_THROW(Value(42).take_string(), ValueTypeError);
  EXPECT_THROW(Value("s").take_bytes(), ValueTypeError);
  EXPECT_THROW(Value().take_list(), ValueTypeError);
  EXPECT_THROW(Value(true).take_map(), ValueTypeError);
}

TEST(WireEncodeInto, ReusedBufferYieldsIdenticalBytes) {
  rpc::Request req;
  req.call_id = 99;
  req.method = "put";
  req.args = {Value("key"), vlist(1, 2, 3)};
  const Bytes fresh = rpc::encode_request(req, binary_codec());
  EXPECT_EQ(rpc::decode_request(fresh, binary_codec()).args, req.args);

  Bytes reused;
  reused.reserve(1024);
  for (int i = 0; i < 3; ++i) {
    reused.clear();
    rpc::encode_request_into(req, binary_codec(), reused);
    EXPECT_EQ(reused, fresh) << "iteration " << i;
  }

  rpc::Response rsp;
  rsp.call_id = 99;
  rsp.result = vlist("ok", 1);
  const Bytes rsp_fresh = rpc::encode_response(rsp, binary_codec());
  reused.clear();
  rpc::encode_response_into(rsp, binary_codec(), reused);
  EXPECT_EQ(reused, rsp_fresh);
}

TEST(WireEncodeInto, AppendsWithoutClearing) {
  // encode_*_into is documented as append-only: framing layers can write a
  // header first and encode the payload behind it.
  rpc::Response rsp;
  rsp.call_id = 5;
  rsp.result = Value("payload");
  Bytes buf{0xAA, 0xBB};
  rpc::encode_response_into(rsp, binary_codec(), buf);
  ASSERT_GT(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xAA);
  EXPECT_EQ(buf[1], 0xBB);
  const Bytes payload(buf.begin() + 2, buf.end());
  EXPECT_EQ(rpc::decode_response(payload, binary_codec()).result,
            Value("payload"));
}

TEST(WireEncodeInto, SpecMessagesRoundTripThroughReusedBuffer) {
  spec::RequestMsg m;
  m.call_id = 7;
  m.caller_speculative = true;
  m.method = "lookup";
  m.args = {Value("k"), Value(123)};
  const Bytes fresh = spec::encode(m, tagged_codec());

  Bytes reused = BufferPool::acquire(256);
  spec::encode_into(m, tagged_codec(), reused);
  EXPECT_EQ(reused, fresh);

  const spec::RequestMsg back = spec::decode_request(reused, tagged_codec());
  EXPECT_EQ(back.call_id, 7u);
  EXPECT_TRUE(back.caller_speculative);
  EXPECT_EQ(back.method, "lookup");
  EXPECT_EQ(back.args, m.args);
  BufferPool::release(std::move(reused));
}

TEST(BufferPool, RecirculatesCapacityWithinThread) {
  // Drain whatever earlier tests parked so counts below are exact.
  while (BufferPool::local_size() > 0) (void)BufferPool::acquire();

  Bytes b = BufferPool::acquire(4096);
  b.assign(100, 0x42);
  const std::size_t cap = b.capacity();
  BufferPool::release(std::move(b));
  EXPECT_EQ(BufferPool::local_size(), 1u);

  Bytes again = BufferPool::acquire();
  EXPECT_EQ(BufferPool::local_size(), 0u);
  EXPECT_TRUE(again.empty());          // cleared on acquire
  EXPECT_EQ(again.capacity(), cap);    // capacity survived the round trip

  // Zero-capacity and oversized buffers are dropped, not pooled.
  BufferPool::release(Bytes{});
  EXPECT_EQ(BufferPool::local_size(), 0u);
  Bytes huge;
  huge.reserve(BufferPool::kMaxPooledCapacity + 1);
  BufferPool::release(std::move(huge));
  EXPECT_EQ(BufferPool::local_size(), 0u);
}

}  // namespace
}  // namespace srpc
