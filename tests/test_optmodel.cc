// Optimizer speedup model (§4.2, Equations (1)-(5), Figure 7): closed-form
// checks, optimality properties, and the paper's qualitative claims.
#include <gtest/gtest.h>

#include <cmath>

#include "optmodel/model.h"

namespace srpc::opt {
namespace {

TEST(OptModel, PredictionRateIsCdfShaped) {
  EXPECT_DOUBLE_EQ(exp_prediction_rate(3.0, 0.0, 1.0), 0.0);
  EXPECT_NEAR(exp_prediction_rate(3.0, 1.0, 1.0), 1.0 - std::exp(-3.0), 1e-12);
  // Monotone in t.
  double prev = 0;
  for (double t = 0; t <= 1.0; t += 0.05) {
    const double p = exp_prediction_rate(2.0, t, 1.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(OptModel, StageCostBoundaries) {
  // h(0) = T (prediction never made => full re-execution... actually
  // P(0)=0 so cost = T); h(T) = T (hand-off at completion buys nothing).
  EXPECT_DOUBLE_EQ(stage_cost(3.0, 0.0, 1.0), 1.0);
  EXPECT_NEAR(stage_cost(3.0, 1.0, 1.0), 1.0, 1e-12);
  // Interior hand-off is strictly cheaper for lambda > 0.
  EXPECT_LT(stage_cost(3.0, 0.4, 1.0), 1.0);
}

TEST(OptModel, OptimalHandoffSolvesEquation5) {
  for (double lambda : {0.5, 1.0, 3.0, 6.0, 9.0}) {
    const double t = optimal_handoff(lambda, 1.0);
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1.0);
    EXPECT_NEAR(equation5_lhs(lambda, t, 1.0), 0.0, 1e-6) << lambda;
  }
}

TEST(OptModel, OptimalHandoffShrinksWithLambda) {
  // Faster convergence => earlier profitable hand-off.
  double prev = 1.0;
  for (double lambda : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double t = optimal_handoff(lambda, 1.0);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(OptModel, Figure7Anchors) {
  // Values read off Figure 7: ~1.5x for 2 stages at lambda=9; ~2.1-2.2x for
  // 5 stages at lambda=9; all curves near 1 at small lambda.
  EXPECT_NEAR(max_speedup(2, 9.0), 1.5, 0.07);
  EXPECT_NEAR(max_speedup(5, 9.0), 2.15, 0.12);
  EXPECT_NEAR(max_speedup(2, 0.1), 1.0, 0.03);
  EXPECT_NEAR(max_speedup(5, 0.1), 1.0, 0.06);
}

TEST(OptModel, SpeedupIncreasesWithStagesAndLambda) {
  for (double lambda : {1.0, 3.0, 9.0}) {
    double prev = 1.0;
    for (int stages = 2; stages <= 5; ++stages) {
      const double s = max_speedup(stages, lambda);
      EXPECT_GT(s, prev) << "stages=" << stages << " lambda=" << lambda;
      prev = s;
    }
  }
  for (int stages = 2; stages <= 5; ++stages) {
    double prev = 1.0;
    for (double lambda : {0.5, 1.0, 2.0, 4.0, 9.0}) {
      const double s = max_speedup(stages, lambda);
      EXPECT_GT(s, prev * 0.999) << "stages=" << stages;
      prev = s;
    }
  }
}

TEST(OptModel, SpeedupBoundedByStageStructure) {
  // Even with perfect prediction, stage i still costs t_i > 0, so speedup
  // is below n (and below n*T / (T + (n-1)*t*)).
  for (int stages = 2; stages <= 5; ++stages) {
    EXPECT_LT(max_speedup(stages, 9.0), stages);
  }
}

TEST(OptModel, MaxBeatsArbitraryHandoffs) {
  const double best = max_speedup(3, 4.0);
  for (double t : {0.05, 0.2, 0.5, 0.8, 0.99}) {
    EXPECT_GE(best + 1e-9, speedup(3, 4.0, t));
  }
}

TEST(OptModel, GeneralizedModelMatchesUniformCase) {
  std::vector<Stage> stages(4, Stage{1.0, 3.0});
  EXPECT_NEAR(max_speedup_general(stages), max_speedup(4, 3.0), 1e-9);
}

TEST(OptModel, GeneralizedModelHandlesHeterogeneousStages) {
  // A slow, well-predicted stage followed by fast, poorly-predicted ones.
  std::vector<Stage> stages = {{4.0, 8.0}, {1.0, 0.5}, {1.0, 0.5}};
  const double s = max_speedup_general(stages);
  EXPECT_GT(s, 1.0);
  EXPECT_LT(s, 3.0);
  // Degenerate single stage: no speculation possible.
  EXPECT_DOUBLE_EQ(max_speedup_general({Stage{2.0, 5.0}}), 1.0);
}

TEST(OptModel, ScaleInvarianceInT) {
  // Speedup depends on lambda (in 1/T units), not on absolute T.
  EXPECT_NEAR(max_speedup(3, 5.0, 1.0), max_speedup(3, 5.0, 40.0), 1e-9);
}

}  // namespace
}  // namespace srpc::opt
