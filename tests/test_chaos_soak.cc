// Chaos soak: Replicated Commit transactions while the network drops,
// duplicates, and reorders messages and one cross-DC link flaps. The bar:
// no client ever hangs (every run() returns within its deadline budget),
// no torn values (every read is some value a transaction actually wrote),
// and once the chaos stops all three datacentres agree on every key —
// i.e. commit decisions never diverged.
//
// Iteration count scales with SPECRPC_CHAOS_TXNS (default 50) so sanitizer
// runs (scripts/check.sh) can bound it.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/rng.h"
#include "common/sync.h"
#include "rc/cluster.h"

namespace srpc::rc {
namespace {

ClusterConfig chaos_cluster(Flavor flavor) {
  ClusterConfig config;
  config.flavor = flavor;
  config.geo = uniform_geo(/*rtt_ms=*/10.0);
  config.geo.lan_rtt_ms = 0.5;
  config.clients_per_dc = 1;
  config.num_keys = 500;
  config.call_timeout = std::chrono::seconds(2);
  config.retry.max_attempts = 4;
  config.retry.attempt_timeout = std::chrono::milliseconds(300);
  config.retry.initial_backoff = std::chrono::milliseconds(20);
  return config;
}

class ChaosSoakTest : public ::testing::TestWithParam<Flavor> {};

TEST_P(ChaosSoakTest, TransactionsStayConsistentUnderFaults) {
  const int txns_per_client =
      static_cast<int>(env_long("SPECRPC_CHAOS_TXNS", 50));
  RcCluster cluster(chaos_cluster(GetParam()));
  const auto topo = cluster.view();

  // ISSUE acceptance profile: 5% drop, 2% dup, reorder window 3, plus one
  // flapping cross-DC link.
  FaultCfg chaos;
  chaos.drop_prob = 0.05;
  chaos.dup_prob = 0.02;
  chaos.reorder_window = 3;
  chaos.reorder_slack = std::chrono::microseconds(200);
  cluster.net().set_faults_all(chaos);
  cluster.net().flap_link(topo->coord_addr(0), topo->shard_addr(1, 0),
                          /*up_for=*/std::chrono::milliseconds(60),
                          /*down_for=*/std::chrono::milliseconds(40));

  // A handful of hot keys so transactions actually contend.
  const std::vector<std::string> keys = {"k00000100", "k00000101",
                                         "k00000102", "k00000103"};
  const std::string initial(16, 'v');  // dataset load value

  std::mutex mu;
  std::map<std::string, std::set<std::string>> written;  // all attempted
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> torn_reads{0};
  WaitGroup wg;
  wg.add(3);

  auto worker = [&](int dc) {
    auto& client = cluster.client(dc, 0);
    Rng rng(static_cast<std::uint64_t>(dc) * 977 + 11);
    for (int t = 0; t < txns_per_client; ++t) {
      const auto& key = keys[rng.uniform(keys.size())];
      const std::string value =
          "dc" + std::to_string(dc) + "-t" + std::to_string(t);
      {
        std::lock_guard<std::mutex> lock(mu);
        written[key].insert(value);
      }
      std::vector<Op> ops;
      ops.push_back(Op{true, key, {}});
      ops.push_back(Op{false, key, value});
      try {
        TxnResult r = client.run(ops);
        if (r.committed) {
          committed.fetch_add(1);
        } else {
          aborted.fetch_add(1);
        }
        if (r.committed && !r.reads.empty()) {
          // Every observed value must be something some txn wrote (or the
          // initial load) — a torn/corrupted value fails the run.
          const std::string& seen = r.reads.at(0).value;
          std::lock_guard<std::mutex> lock(mu);
          if (seen != initial && written[key].count(seen) == 0)
            torn_reads.fetch_add(1);
        }
      } catch (const rpc::RpcError&) {
        aborted.fetch_add(1);  // quorum never assembled within the deadline
      }
    }
    wg.done();
  };

  std::vector<std::thread> threads;
  for (int dc = 0; dc < 3; ++dc) threads.emplace_back(worker, dc);
  // Hang detector: with a 2s overall deadline per call and bounded retries,
  // every transaction terminates; budget generously for sanitizer builds.
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(240)))
      << "chaos clients hung: " << committed.load() << " committed, "
      << aborted.load() << " aborted";
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_GT(committed.load(), 0);  // chaos must not stall all progress
  const auto faults = cluster.net().fault_stats();
  EXPECT_GT(faults.dropped, 0u);
  EXPECT_GT(faults.duplicated, 0u);
  EXPECT_GT(faults.reordered, 0u);

  // End of chaos: heal everything, then prove the cluster converged.
  cluster.net().stop_flaps();
  cluster.net().set_faults_all(FaultCfg{});

  // Lock recovery: fail-fast write locks have no expiry in this
  // reproduction, so a replica whose decide message lost every retry (all
  // attempts dropped, or the deadline blown on an overloaded sanitizer run)
  // would hold its key forever and block the sealing writes below. Let the
  // still-pending retries drain, then release whatever survived — the role
  // the per-DC Paxos log plays in the paper's deployment (§5.2).
  std::this_thread::sleep_for(std::chrono::seconds(2));
  for (const auto& key : keys) {
    // Locks may sit on either side of any epoch flip that happened; sweep
    // every shard rather than trusting one view's owner.
    for (int shard = 0; shard < cluster.total_shards(); ++shard) {
      for (int dc = 0; dc < 3; ++dc) {
        auto& store = cluster.store(dc, shard);
        if (auto holder = store.lock_holder(key)) store.abort(*holder);
      }
    }
  }

  for (const auto& key : keys) {
    // Sealing write: a fresh committed value closes any in-flight races on
    // the key (a few tries in case a stale fail-fast lock needs the lagging
    // decide to land first).
    const std::string sealed = "sealed-" + key;
    bool sealed_ok = false;
    for (int attempt = 0; attempt < 20 && !sealed_ok; ++attempt) {
      std::vector<Op> seal;
      seal.push_back(Op{false, key, sealed});
      try {
        sealed_ok = cluster.client(0, 0).run(seal).committed;
      } catch (const rpc::RpcError&) {
      }
      if (!sealed_ok)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ASSERT_TRUE(sealed_ok) << "could not seal " << key << " after chaos";
    // Divergence check: all three DCs' quorum reads agree on the sealed
    // value. A replica that applied a different decision for any earlier
    // txn on this key would surface here as a version/value mismatch.
    for (int dc = 0; dc < 3; ++dc) {
      std::vector<Op> verify;
      verify.push_back(Op{true, key, {}});
      TxnResult v = cluster.client(dc, 0).run(verify);
      ASSERT_TRUE(v.committed) << "post-chaos read failed in dc " << dc;
      EXPECT_EQ(v.reads.at(0).value, sealed)
          << "dc " << dc << " diverged on " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Flavors, ChaosSoakTest,
                         ::testing::Values(Flavor::kTrad, Flavor::kSpec),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(ChaosSoakTest, EpochFlipsMidTwoPhaseCommitStayConsistent) {
  // PR 9 variant: the same drop/dup/reorder/flap chaos, but a background
  // reconfigurer keeps flipping the hot keys' slots between shards while
  // transactions are mid-2PC. The bar is unchanged (no hangs, no torn
  // values, full convergence after healing) plus the cross-epoch invariant:
  // a prepare under epoch N resolves in epoch N or aborts, and the engine's
  // prediction counters stay consistent — no speculative branch opened
  // under an old view is ever validated against a new one.
  const int txns_per_client =
      static_cast<int>(env_long("SPECRPC_CHAOS_TXNS", 50));
  RcCluster cluster(chaos_cluster(GetParam()));
  const auto topo = cluster.view();

  FaultCfg chaos;
  chaos.drop_prob = 0.05;
  chaos.dup_prob = 0.02;
  chaos.reorder_window = 3;
  chaos.reorder_slack = std::chrono::microseconds(200);
  cluster.net().set_faults_all(chaos);
  cluster.net().flap_link(topo->coord_addr(0), topo->shard_addr(1, 0),
                          /*up_for=*/std::chrono::milliseconds(60),
                          /*down_for=*/std::chrono::milliseconds(40));

  const std::vector<std::string> keys = {"k00000100", "k00000101",
                                         "k00000102", "k00000103"};
  const std::string initial(16, 'v');

  std::mutex mu;
  std::map<std::string, std::set<std::string>> written;
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> torn_reads{0};
  WaitGroup wg;
  wg.add(3);

  auto worker = [&](int dc) {
    auto& client = cluster.client(dc, 0);
    Rng rng(static_cast<std::uint64_t>(dc) * 1977 + 13);
    for (int t = 0; t < txns_per_client; ++t) {
      const auto& key = keys[rng.uniform(keys.size())];
      const std::string value =
          "dc" + std::to_string(dc) + "-t" + std::to_string(t);
      {
        std::lock_guard<std::mutex> lock(mu);
        written[key].insert(value);
      }
      std::vector<Op> ops;
      ops.push_back(Op{true, key, {}});
      ops.push_back(Op{false, key, value});
      try {
        TxnResult r = client.run(ops);
        (r.committed ? committed : aborted).fetch_add(1);
        if (r.committed && !r.reads.empty()) {
          const std::string& seen = r.reads.at(0).value;
          std::lock_guard<std::mutex> lock(mu);
          if (seen != initial && written[key].count(seen) == 0)
            torn_reads.fetch_add(1);
        }
      } catch (const rpc::RpcError&) {
        aborted.fetch_add(1);
      }
    }
    wg.done();
  };

  // Background reconfigurer: every round, move the slot of one hot key to
  // the next shard over — transactions prepared under epoch N keep racing
  // installs of epoch N+1.
  std::atomic<bool> stop_flips{false};
  std::thread flipper([&] {
    std::size_t round = 0;
    while (!stop_flips.load()) {
      const auto view = cluster.view();
      const int slot = slot_of_key(keys[round % keys.size()]);
      const int owner = view->slot_owner[static_cast<std::size_t>(slot)];
      const int target = (owner + 1) % cluster.num_shards();
      cluster.view_coordinator().migrate_slots(
          {slot}, target, /*timeout=*/std::chrono::seconds(3));
      round++;
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  });

  std::vector<std::thread> threads;
  for (int dc = 0; dc < 3; ++dc) threads.emplace_back(worker, dc);
  ASSERT_TRUE(wg.wait_for(std::chrono::seconds(240)))
      << "chaos clients hung under epoch flips: " << committed.load()
      << " committed, " << aborted.load() << " aborted";
  for (auto& t : threads) t.join();
  stop_flips.store(true);
  flipper.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_GT(committed.load(), 0);

  // Heal, then run one null reconfiguration over the healthy network: every
  // server acks the same terminal epoch, so stragglers that missed an
  // install mid-chaos reconverge before the divergence check.
  cluster.net().stop_flaps();
  cluster.net().set_faults_all(FaultCfg{});
  std::this_thread::sleep_for(std::chrono::seconds(2));
  ASSERT_TRUE(cluster.view_coordinator().propose(
      cluster.view()->with_slots_moved({}, 0)))
      << "post-chaos null reconfiguration did not converge";
  ASSERT_TRUE(cluster.view_coordinator().wait_ready(std::chrono::seconds(10)));

  // Lock sweep across every shard: an in-flight 2PC that lost its decide to
  // chaos (on either side of an epoch flip) may hold fail-fast locks.
  for (const auto& key : keys) {
    for (int shard = 0; shard < cluster.total_shards(); ++shard) {
      for (int dc = 0; dc < 3; ++dc) {
        auto& store = cluster.store(dc, shard);
        if (auto holder = store.lock_holder(key)) store.abort(*holder);
      }
    }
  }

  for (const auto& key : keys) {
    const std::string sealed = "sealed-" + key;
    bool sealed_ok = false;
    for (int attempt = 0; attempt < 20 && !sealed_ok; ++attempt) {
      std::vector<Op> seal;
      seal.push_back(Op{false, key, sealed});
      try {
        sealed_ok = cluster.client(0, 0).run(seal).committed;
      } catch (const rpc::RpcError&) {
      }
      if (!sealed_ok)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ASSERT_TRUE(sealed_ok) << "could not seal " << key << " after epoch flips";
    for (int dc = 0; dc < 3; ++dc) {
      std::vector<Op> verify;
      verify.push_back(Op{true, key, {}});
      TxnResult v = cluster.client(dc, 0).run(verify);
      ASSERT_TRUE(v.committed) << "post-chaos read failed in dc " << dc;
      EXPECT_EQ(v.reads.at(0).value, sealed)
          << "dc " << dc << " diverged on " << key;
    }
  }

  // Cross-epoch speculation invariant: every prediction the engines ever
  // validated resolved to exactly one verdict — a branch validated twice
  // (once per epoch) would push correct+incorrect past made.
  const auto stats = cluster.spec_stats();
  EXPECT_LE(stats.predictions_correct + stats.predictions_incorrect,
            stats.predictions_made);
}

}  // namespace
}  // namespace srpc::rc
