// SpecTrace: the developer-facing speculation event log.
#include <gtest/gtest.h>

#include "specrpc/trace.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

class SpecTraceTest : public ::testing::Test {
 protected:
  SpecTraceTest() {
    net_ = std::make_unique<SimNetwork>();
    server_ = std::make_unique<SpecEngine>(net_->add_node("server"),
                                           net_->executor(), net_->wheel());
    client_ = std::make_unique<SpecEngine>(net_->add_node("client"),
                                           net_->executor(), net_->wheel());
    server_->register_method("slow_inc", Handler([](const ServerCallPtr& c) {
      c->finish_after(std::chrono::milliseconds(10),
                      Value(c->args().at(0).as_int() + 1));
    }));
  }

  ~SpecTraceTest() override {
    client_->begin_shutdown();
    server_->begin_shutdown();
    net_->executor().shutdown();
  }

  void settle() {
    // Let deferred observer actions drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SpecEngine> server_;
  std::unique_ptr<SpecEngine> client_;
};

TEST_F(SpecTraceTest, CorrectPredictionTimeline) {
  SpecTrace trace;
  trace.attach(*client_);
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
  };
  auto future = client_->call("server", "slow_inc", make_args(1), {Value(2)},
                              factory);
  EXPECT_EQ(future->get(), Value(2));
  settle();
  // The speculative callback must end SpeculationCorrect; nothing abandoned.
  EXPECT_GE(trace.count_into(SpecState::kCorrect), 1u);
  EXPECT_EQ(trace.count_into(SpecState::kIncorrect), 0u);
  const std::string rendered = trace.render();
  EXPECT_NE(rendered.find("callback"), std::string::npos);
  EXPECT_NE(rendered.find("SpeculationCorrect"), std::string::npos);
}

TEST_F(SpecTraceTest, MispredictionShowsAbandonment) {
  SpecTrace trace;
  trace.attach(*client_);
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
  };
  auto future = client_->call("server", "slow_inc", make_args(1),
                              {Value(99)} /* wrong */, factory);
  EXPECT_EQ(future->get(), Value(2));
  settle();
  EXPECT_GE(trace.count_into(SpecState::kIncorrect), 1u);
  EXPECT_NE(trace.render().find("SpeculationIncorrect"), std::string::npos);
}

TEST_F(SpecTraceTest, EventsCarryMonotoneTimestamps) {
  SpecTrace trace;
  trace.attach(*client_);
  for (int i = 0; i < 5; ++i) {
    client_
        ->call("server", "slow_inc", make_args(i), {Value(i + 1)},
               []() -> CallbackFn {
                 return [](SpecContext&, const Value& v) -> CallbackResult {
                   return v;
                 };
               })
        ->get();
  }
  settle();
  const auto events = trace.events();
  ASSERT_GE(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST_F(SpecTraceTest, ReattachWhileEventsFlowIsSafeAndResetsOrigin) {
  // Regression: attach() used to write the timestamp origin outside the
  // lock, racing observer callbacks from a previous attach. Re-attach
  // repeatedly while calls complete; under TSan this must stay clean, and
  // every recorded timestamp must still be non-negative.
  SpecTrace trace;
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
  };
  for (int round = 0; round < 10; ++round) {
    trace.attach(*client_);
    client_->call("server", "slow_inc", make_args(round), {Value(round + 1)},
                  factory);
    // No settling on purpose: the next attach lands while transitions from
    // this round's call are still being observed.
  }
  settle();
  const auto events = trace.events();
  ASSERT_GE(events.size(), 1u);  // re-attach keeps already-recorded events
  for (const auto& e : events) {
    EXPECT_GE(e.at, Duration::zero() - std::chrono::milliseconds(1));
  }
}

TEST_F(SpecTraceTest, SecondTraceReplacesFirst) {
  SpecTrace first;
  SpecTrace second;
  first.attach(*client_);
  second.attach(*client_);  // documented: replaces the first observer
  auto factory = []() -> CallbackFn {
    return [](SpecContext&, const Value& v) -> CallbackResult { return v; };
  };
  client_->call("server", "slow_inc", make_args(1), {Value(2)}, factory)
      ->get();
  settle();
  EXPECT_EQ(first.size(), 0u);
  EXPECT_GE(second.size(), 1u);
}

}  // namespace
}  // namespace srpc::spec
