// Histogram/percentile/CDF statistics used by the benchmark harness.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "stats/ewma.h"
#include "stats/histogram.h"

namespace srpc::stats {
namespace {

TEST(Histogram, EmptyIsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_us(), 0.0);
  EXPECT_EQ(h.percentile_us(50), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record_us(100);
  h.record_us(200);
  h.record_us(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 200.0);
  EXPECT_EQ(h.min_us(), 100.0);
  EXPECT_EQ(h.max_us(), 300.0);
}

TEST(Histogram, PercentilesWithinBucketResolution) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record_us(i);
  // Log buckets with 128 sub-buckets: <1% relative error at these scales.
  EXPECT_NEAR(h.percentile_us(50), 5000, 60);
  EXPECT_NEAR(h.percentile_us(99), 9900, 110);
  EXPECT_NEAR(h.percentile_us(1), 100, 3);
}

TEST(Histogram, RecordDurationConverts) {
  Histogram h;
  h.record(std::chrono::milliseconds(5));
  EXPECT_NEAR(h.mean_ms(), 5.0, 0.1);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) h.record_us(rng.exponential(1000.0));
  const auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev_x = 0;
  double prev_f = 0;
  for (const auto& [x, f] : cdf) {
    EXPECT_GT(x, prev_x);
    EXPECT_GE(f, prev_f);
    prev_x = x;
    prev_f = f;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.record_us(100);
  b.record_us(300);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_us(), 200.0);
  EXPECT_EQ(a.min_us(), 100.0);
  EXPECT_EQ(a.max_us(), 300.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record_us(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, CopySnapshotsIndependently) {
  Histogram a;
  a.record_us(10);
  Histogram b = a;
  a.record_us(20);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, ExtremeValuesClampSafely) {
  Histogram h;
  h.record_us(-5);        // clamps to 0
  h.record_us(0);
  h.record_us(1e12);      // beyond top range: clamps to last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.percentile_us(99), 1e6);
}

TEST(Histogram, ConcurrentRecording) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 10000; ++i)
        h.record_us(static_cast<double>(t * 10000 + i));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), 40000u);
}

TEST(Ewma, FirstSampleInitializesExactly) {
  Ewma e(0.2);
  EXPECT_EQ(e.count(), 0u);
  EXPECT_DOUBLE_EQ(e.value(0.75), 0.75);  // fallback before any sample
  e.observe(0.5);
  EXPECT_DOUBLE_EQ(e.value(), 0.5);  // no bias toward a zero prior
  EXPECT_EQ(e.count(), 1u);
}

TEST(Ewma, ConvergesToSteadyStream) {
  Ewma e(0.2);
  for (int i = 0; i < 100; ++i) e.observe(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);
  // A step change converges geometrically: after n samples the residual is
  // (1 - alpha)^n of the step.
  for (int i = 0; i < 50; ++i) e.observe(0.0);
  EXPECT_LT(e.value(), 1e-4);
  EXPECT_GT(e.value(), 0.0);
}

TEST(Ewma, TracksAlternatingStreamToMean) {
  Ewma e(0.1);
  for (int i = 0; i < 1000; ++i) e.observe(i % 2 == 0 ? 1.0 : 0.0);
  EXPECT_NEAR(e.value(), 0.5, 0.06);
}

TEST(WindowedRate, ExactOverPartialWindow) {
  WindowedRate w(8);
  EXPECT_DOUBLE_EQ(w.rate(0.9), 0.9);  // fallback when empty
  w.record(true);
  w.record(false);
  w.record(true);
  EXPECT_EQ(w.occupied(), 3u);
  EXPECT_DOUBLE_EQ(w.rate(), 2.0 / 3.0);
}

TEST(WindowedRate, EvictsOldestOnceFull) {
  WindowedRate w(4);
  for (int i = 0; i < 4; ++i) w.record(true);
  EXPECT_DOUBLE_EQ(w.rate(), 1.0);
  // Four misses push every hit out of the window.
  for (int i = 0; i < 4; ++i) w.record(false);
  EXPECT_DOUBLE_EQ(w.rate(), 0.0);
  EXPECT_EQ(w.occupied(), 4u);
  EXPECT_EQ(w.total(), 8u);
}

TEST(WindowedRate, ForgetsFullyUnlikeEwma) {
  // The motivating property: after a misspeculation storm, the windowed
  // estimate reflects only recent outcomes regardless of history length.
  WindowedRate w(16);
  Ewma e(0.05);
  for (int i = 0; i < 1000; ++i) {
    w.record(true);
    e.observe(1.0);
  }
  for (int i = 0; i < 16; ++i) {
    w.record(false);
    e.observe(0.0);
  }
  EXPECT_DOUBLE_EQ(w.rate(), 0.0);
  EXPECT_GT(e.value(), 0.3);  // the EWMA still remembers the good past
}

TEST(RunStats, ThroughputFromWindow) {
  RunStats run;
  run.start();
  for (int i = 0; i < 100; ++i) run.record(std::chrono::microseconds(10));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  run.stop();
  EXPECT_GE(run.elapsed_s(), 0.09);
  EXPECT_GT(run.throughput_per_s(), 100.0);   // 100 in ~0.1s
  EXPECT_LT(run.throughput_per_s(), 1200.0);
}

}  // namespace
}  // namespace srpc::stats
