// Replicated Commit under failure injection: datacentre partitions.
// RC tolerates one unreachable DC by construction (majority quorums for
// both reads and commit votes); these tests check the reproduction does
// too, and that healing restores full operation.
#include <gtest/gtest.h>

#include "rc/cluster.h"

namespace srpc::rc {
namespace {

ClusterConfig failover_cluster(Flavor flavor) {
  ClusterConfig config;
  config.flavor = flavor;
  config.geo = uniform_geo(10.0);
  config.clients_per_dc = 1;
  config.num_keys = 500;
  config.call_timeout = std::chrono::seconds(2);  // fail fast when cut off
  return config;
}

/// Cuts every link between machines of `dc` and everything in other DCs
/// (clients of `dc` included — they move with their datacentre).
void partition_dc(RcCluster& cluster, int dc, bool blocked) {
  const auto view = cluster.view();
  std::vector<Address> in_dc;
  for (int shard = 0; shard < cluster.total_shards(); ++shard)
    in_dc.push_back(view->shard_addr(dc, shard));
  in_dc.push_back(view->coord_addr(dc));
  for (int i = 0; i < cluster.clients_per_dc(); ++i)
    in_dc.push_back(view->dc_names[static_cast<std::size_t>(dc)] + ".client" +
                    std::to_string(i));

  std::vector<Address> outside;
  for (int other = 0; other < cluster.num_dcs(); ++other) {
    if (other == dc) continue;
    for (int shard = 0; shard < cluster.total_shards(); ++shard)
      outside.push_back(view->shard_addr(other, shard));
    outside.push_back(view->coord_addr(other));
    for (int i = 0; i < cluster.clients_per_dc(); ++i)
      outside.push_back(view->dc_names[static_cast<std::size_t>(other)] +
                        ".client" + std::to_string(i));
  }
  for (const auto& a : in_dc) {
    for (const auto& b : outside) cluster.net().partition(a, b, blocked);
  }
}

class RcFailureTest : public ::testing::TestWithParam<Flavor> {};

TEST_P(RcFailureTest, SurvivesMinorityDcPartition) {
  RcCluster cluster(failover_cluster(GetParam()));
  partition_dc(cluster, 2, true);  // Seoul goes dark

  // A client in a connected DC: reads (quorum 2/3) and commits (2/3 votes)
  // must still succeed.
  auto& client = cluster.client(0, 0);
  std::vector<Op> ops;
  ops.push_back(Op{true, "k00000010", {}});
  ops.push_back(Op{false, "k00000010", "survived"});
  TxnResult r = client.run(ops);
  EXPECT_TRUE(r.committed);

  std::vector<Op> verify;
  verify.push_back(Op{true, "k00000010", {}});
  TxnResult v = cluster.client(1, 0).run(verify);
  ASSERT_TRUE(v.committed);
  EXPECT_EQ(v.reads.at(0).value, "survived");
}

TEST_P(RcFailureTest, PartitionedClientCannotCommitButHealsCleanly) {
  RcCluster cluster(failover_cluster(GetParam()));
  partition_dc(cluster, 2, true);

  // The client inside the partitioned DC can reach only its local replicas:
  // no read quorum, no commit majority.
  auto& stranded = cluster.client(2, 0);
  std::vector<Op> ops;
  ops.push_back(Op{false, "k00000011", "doomed"});
  TxnResult r = stranded.run(ops);
  EXPECT_FALSE(r.committed);

  // Heal; the same client commits now.
  partition_dc(cluster, 2, false);
  TxnResult r2 = stranded.run(ops);
  EXPECT_TRUE(r2.committed);
}

TEST_P(RcFailureTest, WritesDuringPartitionReachLaggingDcAfterHeal) {
  RcCluster cluster(failover_cluster(GetParam()));
  const std::string key = "k00000012";
  partition_dc(cluster, 2, true);

  std::vector<Op> ops;
  ops.push_back(Op{false, key, "majority-write"});
  ASSERT_TRUE(cluster.client(0, 0).run(ops).committed);

  // DC 2 missed the decide; after healing, a fresh commit on the key (or a
  // quorum read, which always includes a majority replica) still serves the
  // committed value everywhere.
  partition_dc(cluster, 2, false);
  std::vector<Op> verify;
  verify.push_back(Op{true, key, {}});
  TxnResult v = cluster.client(2, 0).run(verify);
  ASSERT_TRUE(v.committed);
  EXPECT_EQ(v.reads.at(0).value, "majority-write");
}

INSTANTIATE_TEST_SUITE_P(Flavors, RcFailureTest,
                         ::testing::Values(Flavor::kTrad, Flavor::kSpec),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace srpc::rc
