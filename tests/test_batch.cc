// Queue-oriented batch transactions (DESIGN.md §12): planner decomposition,
// store-level batch prepare/commit, group log appends, suffix rollback on
// misspeculation, cross-partition straddle atomicity, dependency-closure
// aborts, the batch-queue pressure source, and a multi-client batch storm
// checking the budget and prediction-accuracy invariants under load.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <thread>

#include "batch/client.h"
#include "batch/planner.h"
#include "batch/pressure.h"
#include "batch/seed.h"
#include "kvstore/txn_log.h"
#include "rc/cluster.h"
#include "workload/qstream.h"
#include "workload/runner.h"

namespace srpc::batch {
namespace {

// ------------------------------------------------------------------ helpers

/// The static N=3 view these tests run under (no reconfiguration here; the
/// view-change paths have their own suite in test_reconfig.cc).
const rc::ClusterView& static_view() {
  static const rc::ClusterView view = rc::ClusterView::make_static();
  return view;
}

/// The `skip`-th preloaded dataset key living on `shard`.
std::string key_on_shard(int shard, int skip = 0) {
  for (std::uint64_t i = 0;; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08llu",
                  static_cast<unsigned long long>(i));
    if (static_view().shard_of(key) == shard && skip-- == 0) return key;
  }
}

BatchOp read_op(std::string key) {
  BatchOp op;
  op.kind = OpKind::kRead;
  op.key = std::move(key);
  return op;
}

BatchOp write_op(std::string key, std::string value) {
  BatchOp op;
  op.kind = OpKind::kWrite;
  op.key = std::move(key);
  op.value = std::move(value);
  return op;
}

BatchOp incr_op(std::string key) {
  BatchOp op;
  op.kind = OpKind::kRmw;
  op.key = std::move(key);
  op.value = "1";
  op.transform = Transform::kIncrement;
  return op;
}

BatchTxn txn_of(std::uint64_t id, std::vector<BatchOp> ops) {
  BatchTxn txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

rc::ClusterConfig batch_cluster(Flavor flavor, BatchMode mode,
                                int clients_per_dc = 1) {
  rc::ClusterConfig config;
  config.flavor = flavor;
  config.geo = uniform_geo(/*rtt_ms=*/4.0);
  config.geo.lan_rtt_ms = 0.2;
  config.clients_per_dc = clients_per_dc;
  config.num_keys = 1000;
  config.executor_threads = 8;
  config.batch_clients = true;
  config.batch_mode = mode;
  return config;
}

/// Serial reference execution: replays the committed transactions in batch
/// order against a map primed with the dataset's initial value, using the
/// same transform rules as the client. The real cluster must end in exactly
/// this state — in every mode.
class SerialReplay {
 public:
  explicit SerialReplay(std::string initial) : initial_(std::move(initial)) {}

  void apply(const BatchTxn& txn) {
    std::map<std::string, std::string> buffer;
    for (const auto& op : txn.ops) {
      if (op.kind == OpKind::kWrite) {
        buffer[op.key] = op.value;
        continue;
      }
      const std::string current = [&] {
        auto bit = buffer.find(op.key);
        if (bit != buffer.end()) return bit->second;
        auto it = state_.find(op.key);
        return it != state_.end() ? it->second : initial_;
      }();
      if (op.kind == OpKind::kRmw) {
        buffer[op.key] = apply_transform(op.transform, current, op.value);
      }
    }
    for (auto& [key, value] : buffer) state_[key] = value;
  }

  const std::map<std::string, std::string>& state() const { return state_; }

 private:
  std::string initial_;
  std::map<std::string, std::string> state_;
};

/// Waits until every replica of every touched key converged to `expected`
/// (decide broadcasts are asynchronous), then asserts equality.
void expect_converged(rc::RcCluster& cluster,
                      const std::map<std::string, std::string>& expected) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  const auto view = cluster.view();
  for (const auto& [key, value] : expected) {
    const int shard = view->shard_of(key);
    for (int dc = 0; dc < cluster.num_dcs(); ++dc) {
      for (;;) {
        auto got = cluster.store(dc, shard).get(key);
        if (got.has_value() && got->value == value) break;
        if (Clock::now() > deadline) {
          FAIL() << "replica dc" << dc << " shard" << shard << " key " << key
                 << " = '" << (got ? got->value : "<missing>")
                 << "', expected '" << value << "'";
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
}

// ------------------------------------------------------------------ planner

TEST(TxnPlanner, DecomposesIntoShardQueuesAndClassifiesReads) {
  const std::string a0 = key_on_shard(0, 0);
  const std::string a1 = key_on_shard(0, 1);
  const std::string b0 = key_on_shard(1, 0);

  TxnPlanner planner;
  std::vector<BatchTxn> txns;
  txns.push_back(txn_of(0, {read_op(a0), write_op(a1, "x")}));
  txns.push_back(txn_of(1, {read_op(a1), write_op(b0, "y")}));  // overlay read
  txns.push_back(txn_of(2, {read_op(b0), read_op(a0)}));        // overlay + wire
  BatchPlan plan = planner.plan(static_view(), std::move(txns));

  EXPECT_EQ(plan.epoch, 1u);
  ASSERT_EQ(plan.txns.size(), 3u);

  // Wire reads: txn0's a0 read, txn2's a0 read. txn1's a1 read and txn2's
  // b0 read are overlays (written earlier in the batch).
  EXPECT_EQ(plan.total_wire_reads(), 2u);
  ASSERT_EQ(plan.wire_reads[0].size(), 2u);
  EXPECT_EQ(plan.wire_reads[0][0].key, a0);
  EXPECT_EQ(plan.wire_reads[0][0].txn_pos, 0u);
  EXPECT_EQ(plan.wire_reads[0][1].key, a0);
  EXPECT_EQ(plan.wire_reads[0][1].txn_pos, 2u);
  EXPECT_TRUE(plan.wire_reads[1].empty());

  // Dependencies follow the overlay edges.
  EXPECT_TRUE(plan.txns[0].deps.empty());
  ASSERT_EQ(plan.txns[1].deps.size(), 1u);
  EXPECT_EQ(plan.txns[1].deps[0], 0u);
  ASSERT_EQ(plan.txns[2].deps.size(), 1u);
  EXPECT_EQ(plan.txns[2].deps[0], 1u);

  // Txn ids are stamped in batch order.
  EXPECT_LT(plan.txns[0].txn_id, plan.txns[1].txn_id);
  EXPECT_LT(plan.txns[1].txn_id, plan.txns[2].txn_id);

  // Cross-partition flags.
  EXPECT_FALSE(plan.txns[0].cross_partition);
  EXPECT_TRUE(plan.txns[1].cross_partition);
  EXPECT_TRUE(plan.txns[2].cross_partition);

  // Epoch counter advances.
  EXPECT_EQ(planner.plan(static_view(), {}).epoch, 2u);
}

// -------------------------------------------------------------- store level

TEST(StoreBatch, QueueOrderPrepareVotesSuffixOnly) {
  kv::VersionedStore store;
  store.load("a", "init", 1);
  store.load("b", "init", 1);

  std::vector<kv::BatchEntry> entries(3);
  entries[0] = {101, 0, {{"a", 1}}, {{"a", "v0"}}};
  entries[1] = {102, 1, {{"b", 99}}, {{"b", "v1"}}};  // stale read: no
  entries[2] = {103, 2, {}, {{"a", "v2"}}};  // overlaps entry 0: fine in-batch

  const auto votes = store.prepare_batch(/*batch_id=*/500, entries);
  ASSERT_EQ(votes.size(), 3u);
  EXPECT_TRUE(votes[0]);
  EXPECT_FALSE(votes[1]);  // only the bad entry votes no
  EXPECT_TRUE(votes[2]);

  // Yes-entries' write keys are locked under the batch id; b is untouched.
  EXPECT_TRUE(store.is_locked("a"));
  EXPECT_FALSE(store.is_locked("b"));
  EXPECT_EQ(store.lock_holder("a").value_or(0), 500u);

  // Commit applies decided entries at version_base + txn; later entries in
  // the queue win on overlapping keys.
  store.commit_batch(500, entries, {true, false, true}, 1000);
  EXPECT_FALSE(store.is_locked("a"));
  EXPECT_EQ(store.get("a")->value, "v2");
  EXPECT_EQ(store.get("a")->version, 1000 + 103);
  EXPECT_EQ(store.get("b")->value, "init");
}

TEST(StoreBatch, ForeignLockBlocksEntryAndAbortReleases) {
  kv::VersionedStore store;
  store.load("a", "init", 1);
  store.load("b", "init", 1);
  ASSERT_TRUE(store.prepare(/*txn=*/42, {}, {{"a", "other"}}));

  std::vector<kv::BatchEntry> entries(2);
  entries[0] = {201, 0, {}, {{"a", "x"}}};  // foreign lock: no
  entries[1] = {202, 1, {{"b", 1}}, {{"b", "y"}}};
  const auto votes = store.prepare_batch(600, entries);
  EXPECT_FALSE(votes[0]);
  EXPECT_TRUE(votes[1]);

  store.abort_batch(600);
  EXPECT_FALSE(store.is_locked("b"));
  EXPECT_EQ(store.lock_holder("a").value_or(0), 42u);  // untouched
  EXPECT_EQ(store.get("b")->value, "init");
}

TEST(TxnLogBatch, GroupAppendPersistsAllRecords) {
  const std::string path =
      testing::TempDir() + "/batch_group_append.rclog";
  std::remove(path.c_str());
  {
    kv::TxnLog log(path);
    std::vector<kv::CommitRecord> records(3);
    for (std::size_t i = 0; i < records.size(); ++i) {
      records[i].txn = 100 + i;
      records[i].commit_version = static_cast<std::int64_t>(1000 + i);
      records[i].writes = {{"k" + std::to_string(i), "v" + std::to_string(i)}};
    }
    log.append_batch(std::move(records));
    log.flush();
    EXPECT_EQ(log.appended(), 3u);
    EXPECT_EQ(log.flushed(), 3u);
  }
  std::vector<kv::CommitRecord> seen;
  EXPECT_EQ(kv::TxnLog::replay(path,
                               [&](const kv::CommitRecord& r) {
                                 seen.push_back(r);
                               }),
            3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].txn, 100u);
  EXPECT_EQ(seen[2].writes[0].value, "v2");
  std::remove(path.c_str());
}

// ------------------------------------------------------------- end to end

class BatchModeTest : public ::testing::TestWithParam<BatchMode> {};

TEST_P(BatchModeTest, EpochMatchesSerialReplay) {
  rc::RcCluster cluster(batch_cluster(Flavor::kSpec, GetParam()));
  auto& client = cluster.batch_client(0, 0);

  // A deterministic ordered stream: hot-key increments with overlay chains
  // plus cross-partition writes, over three epochs.
  wl::QStreamConfig wc;
  wc.txns_per_epoch = 12;
  wc.ops_per_txn = 3;
  wc.num_keys = 1000;
  wc.hot_keys = 4;
  wc.hot_fraction = 0.7;
  wc.cross_partition_fraction = 0.5;
  wl::QStreamWorkload workload(wc, /*seed=*/7);

  SerialReplay replay(std::string(16, 'v'));
  std::size_t total = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto txns = workload.next_epoch();
    const auto reference = txns;  // run_epoch consumes the batch
    EpochResult result = client.run_epoch(std::move(txns));
    ASSERT_EQ(result.decisions.size(), reference.size());
    // Single client, no foreign locks: everything must commit.
    EXPECT_EQ(result.committed, reference.size());
    EXPECT_EQ(result.aborted, 0u);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(result.decisions[i]) << "txn " << i << " aborted";
      replay.apply(reference[i]);
    }
    total += reference.size();
  }
  EXPECT_EQ(client.stats().committed.load(), total);
  expect_converged(cluster, replay.state());
}

INSTANTIATE_TEST_SUITE_P(AllModes, BatchModeTest,
                         ::testing::Values(BatchMode::kPerTxn2pc,
                                           BatchMode::kGroupCommit,
                                           BatchMode::kSpeculative));

TEST(BatchSpeculative, QueueSeedsFlowThroughPredictionHooks) {
  rc::RcCluster cluster(
      batch_cluster(Flavor::kSpec, BatchMode::kSpeculative));
  auto& client = cluster.batch_client(0, 0);
  const std::string k0 = key_on_shard(0);
  const std::string k1 = key_on_shard(1);

  // Epoch 1 warms the seeds (reads learn through the observer), epoch 2
  // reads the same keys — now predicted from the seeded values.
  for (int round = 0; round < 2; ++round) {
    std::vector<BatchTxn> txns;
    txns.push_back(txn_of(0, {read_op(k0), read_op(k1)}));
    txns.push_back(txn_of(1, {incr_op(k0)}));
    EpochResult r = client.run_epoch(std::move(txns));
    EXPECT_EQ(r.aborted, 0u);
  }

  ASSERT_NE(client.predictor(), nullptr);
  EXPECT_GT(client.predictor()->primed_total(), 0u);
  EXPECT_GT(client.seeds()->size(), 0u);

  const auto predict = cluster.predict_stats();
  EXPECT_GT(predict.supplier_calls, 0u);
  EXPECT_GT(predict.predictions_supplied, 0u);
  EXPECT_GT(predict.learned, 0u);

  const auto spec = cluster.spec_stats();
  EXPECT_GT(spec.predictions_made, 0u);
  EXPECT_GT(spec.predictions_correct, 0u);
}

TEST(BatchSpeculative, MisspeculationRollsBackSuffixAndStaysCorrect) {
  rc::RcCluster cluster(
      batch_cluster(Flavor::kSpec, BatchMode::kSpeculative));
  auto& client = cluster.batch_client(0, 0);
  const std::string k0 = key_on_shard(0, 0);
  const std::string k1 = key_on_shard(0, 1);
  const std::string k2 = key_on_shard(0, 2);

  // Poison the seeds: predictions for all three queue positions will be
  // wrong, so the chain mispredicts, abandons its suffix branches, and
  // re-executes on the actual values — and must still produce the correct
  // final state.
  client.seeds()->put(k0, "bogus0", 999);
  client.seeds()->put(k1, "bogus1", 999);
  client.seeds()->put(k2, "bogus2", 999);

  std::vector<BatchTxn> txns;
  txns.push_back(txn_of(0, {read_op(k0), incr_op(k1)}));
  txns.push_back(txn_of(1, {read_op(k2), incr_op(k1)}));  // overlay on k1
  const auto reference = txns;
  EpochResult r = client.run_epoch(std::move(txns));
  EXPECT_EQ(r.committed, 2u);

  // The poisoned predictions fail validation and the branches speculated on
  // them (the queue suffix) are abandoned with their rollbacks run. The
  // chain itself is rescued by the engine's first-response speculation
  // (§4.1), so no full re-execution is needed — but never by the poisoned
  // branch surviving.
  const auto spec = cluster.spec_stats();
  EXPECT_GT(spec.predictions_incorrect, 0u);
  EXPECT_GT(spec.branches_abandoned, 0u);
  EXPECT_GT(spec.rollbacks_run, 0u);

  SerialReplay replay(std::string(16, 'v'));
  for (const auto& txn : reference) replay.apply(txn);
  expect_converged(cluster, replay.state());
}

TEST(BatchAtomicity, CrossPartitionStraddleAbortsWhole) {
  rc::RcCluster cluster(
      batch_cluster(Flavor::kSpec, BatchMode::kGroupCommit));
  auto& client = cluster.batch_client(0, 0);
  const std::string blocked = key_on_shard(0);
  const std::string other = key_on_shard(1);

  // A phantom transaction write-locks `blocked` in 2 of 3 DCs: the straddle
  // cannot gather a majority for that entry anywhere it matters.
  for (int dc = 0; dc < 2; ++dc) {
    ASSERT_TRUE(cluster.store(dc, 0).prepare(
        /*txn=*/999999, {}, {kv::WriteOp{blocked, "locked"}}));
  }

  std::vector<BatchTxn> txns;
  txns.push_back(
      txn_of(0, {write_op(blocked, "lost"), write_op(other, "lost")}));
  txns.push_back(txn_of(1, {write_op(key_on_shard(2), "kept")}));
  EpochResult r = client.run_epoch(std::move(txns));

  ASSERT_EQ(r.decisions.size(), 2u);
  EXPECT_FALSE(r.decisions[0]);  // aborted atomically, both shards
  EXPECT_TRUE(r.decisions[1]);   // independent txn unaffected

  // The straddle's write on the *unblocked* shard must not survive.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  for (int dc = 0; dc < 3; ++dc) {
    EXPECT_EQ(cluster.store(dc, 1).get(other)->value, std::string(16, 'v'));
  }
  expect_converged(cluster, {{key_on_shard(2), "kept"}});
}

TEST(BatchAtomicity, DependencyClosureAbortsOverlayReaders) {
  rc::RcCluster cluster(
      batch_cluster(Flavor::kSpec, BatchMode::kGroupCommit));
  auto& client = cluster.batch_client(0, 0);
  const std::string ka = key_on_shard(0);
  const std::string kb = key_on_shard(1);

  for (int dc = 0; dc < 2; ++dc) {
    ASSERT_TRUE(cluster.store(dc, 0).prepare(
        /*txn=*/999998, {}, {kv::WriteOp{ka, "locked"}}));
  }

  // txn0 writes ka (will abort); txn1 only *reads* ka (an overlay read —
  // its own write set touches kb alone, so its own vote is yes) and must
  // abort transitively through the dependency closure.
  std::vector<BatchTxn> txns;
  txns.push_back(txn_of(0, {write_op(ka, "new")}));
  txns.push_back(txn_of(1, {read_op(ka), write_op(kb, "tainted")}));
  EpochResult r = client.run_epoch(std::move(txns));

  EXPECT_FALSE(r.decisions[0]);
  EXPECT_FALSE(r.decisions[1]);
  EXPECT_EQ(client.stats().dep_aborts.load(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  for (int dc = 0; dc < 3; ++dc) {
    EXPECT_EQ(cluster.store(dc, 1).get(kb)->value, std::string(16, 'v'));
  }
}

// ---------------------------------------------------------------- pressure

TEST(BatchPressure, GaugeTracksPlannedOpsAndFeedsAdmission) {
  auto gauge = std::make_shared<BatchQueueGauge>(static_view().num_shards);
  auto source = batch_pressure_source(gauge);
  EXPECT_EQ(source().queue_depth, 0u);

  TxnPlanner planner;
  std::vector<BatchTxn> txns;
  txns.push_back(txn_of(0, {read_op(key_on_shard(0)),
                            write_op(key_on_shard(1), "x")}));
  BatchPlan plan = planner.plan(static_view(), std::move(txns));
  gauge->on_plan(plan);
  EXPECT_EQ(gauge->total(), plan.queue_ops());
  EXPECT_EQ(source().queue_depth, plan.queue_ops());
  gauge->on_complete(plan);
  EXPECT_EQ(source().queue_depth, 0u);
}

// ---------------------------------------------------------------- the storm

TEST(BatchStorm, MultiShardConcurrentEpochsHoldBudgetAndAccuracyInvariants) {
  auto config = batch_cluster(Flavor::kSpec, BatchMode::kSpeculative,
                              /*clients_per_dc=*/2);
  config.spec_budget = 64;
  config.admission_control = true;
  rc::RcCluster cluster(config);

  wl::QStreamConfig wc;
  wc.txns_per_epoch = 8;
  wc.ops_per_txn = 3;
  wc.num_keys = 1000;
  wc.hot_keys = 8;
  wc.hot_fraction = 0.6;
  wc.cross_partition_fraction = 0.4;
  wl::BatchWorkloadFactory factory = [wc](int client_index) {
    auto w = std::make_shared<wl::QStreamWorkload>(
        wc, 100 + static_cast<std::uint64_t>(client_index));
    return [w] { return w->next_epoch(); };
  };
  const auto run = wl::run_batch_closed_loop(
      cluster, factory, std::chrono::milliseconds(100),
      std::chrono::milliseconds(800));

  EXPECT_GT(run.epochs, 0u);
  EXPECT_GT(run.committed, 0u);

  // Queue-order seeding flowed through the prediction hooks.
  const auto predict = cluster.predict_stats();
  EXPECT_GT(predict.supplier_calls, 0u);
  EXPECT_GT(predict.learned, 0u);

  // Budget invariant: exactly one release per acquired token once the storm
  // has quiesced (closed loop joined; allow stragglers to drain).
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  for (;;) {
    const auto spec = cluster.spec_stats();
    if (spec.budget_acquired == spec.budget_released) {
      SUCCEED();
      break;
    }
    if (Clock::now() > deadline) {
      const auto s = cluster.spec_stats();
      FAIL() << "budget leak: acquired=" << s.budget_acquired
             << " released=" << s.budget_released;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // All replicas converge: same (value, version) at every DC for every hot
  // key once the asynchronous decide broadcasts have drained.
  for (std::size_t i = 0; i < wc.hot_keys; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08llu",
                  static_cast<unsigned long long>(i));
    const int shard = cluster.view()->shard_of(key);
    const auto key_deadline = Clock::now() + std::chrono::seconds(10);
    for (;;) {
      const auto v0 = cluster.store(0, shard).get(key);
      const auto v1 = cluster.store(1, shard).get(key);
      const auto v2 = cluster.store(2, shard).get(key);
      ASSERT_TRUE(v0 && v1 && v2);
      if (v0->version == v1->version && v1->version == v2->version) {
        EXPECT_EQ(v0->value, v1->value) << "key " << key;
        EXPECT_EQ(v1->value, v2->value) << "key " << key;
        break;
      }
      ASSERT_LT(Clock::now(), key_deadline)
          << "replicas never converged on " << key;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace
}  // namespace srpc::batch
