// Figure 5 state-machine legality and dependency-tree properties, enforced
// with the engine's transition observer over randomized workloads.
//
// DESIGN.md invariants: (2) only Figure 5 transitions occur, (1) final
// results equal sequential execution for any prediction accuracy,
// (3) isolation of discarded branches, (5) forward progress.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>

#include "common/rng.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

/// Chain-builder state shared by value into callbacks (no stack refs, no
/// self-referencing std::function cycles).
struct ChainSpec {
  int chain_len = 0;
  double accuracy = 0;
  std::function<bool(double)> flip;  // thread-safe by construction
};

CallbackFactory chain_factory(ChainSpec spec, int level) {
  // `level` is the 1-based index of the next call to issue.
  return [spec, level]() -> CallbackFn {
    return [spec, level](SpecContext& ctx,
                         const Value& v) -> CallbackResult {
      if (level > spec.chain_len) return v;
      ValueList predictions;
      const std::int64_t correct = v.as_int() * 2;
      predictions.emplace_back(spec.flip(spec.accuracy) ? correct
                                                        : correct + 1);
      return ctx.call("server", "double", make_args(v.as_int()),
                      std::move(predictions), chain_factory(spec, level + 1));
    };
  };
}

/// Records every transition and checks legality per node kind.
class TransitionAuditor {
 public:
  SpecEngine::TransitionObserver observer() {
    return [this](SpecNode::Kind kind, std::uint64_t id, SpecState from,
                  SpecState to) {
      std::lock_guard<std::mutex> lock(mu_);
      transitions_.push_back({kind, id, from, to});
      check(kind, id, from, to);
    };
  }

  int violations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_;
  }
  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return transitions_.size();
  }

  std::string first_violation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_violation_;
  }

 private:
  struct Transition {
    SpecNode::Kind kind;
    std::uint64_t id;
    SpecState from;
    SpecState to;
  };

  void check(SpecNode::Kind kind, std::uint64_t id, SpecState from,
             SpecState to) {
    bool legal = true;
    // Terminal states are absorbing for every kind.
    if (is_terminal(from)) legal = false;
    switch (kind) {
      case SpecNode::Kind::kRoot:
        legal = false;  // the root never transitions
        break;
      case SpecNode::Kind::kCall:
      case SpecNode::Kind::kMirror:
        // Figure 5a: CallerSpeculative -> {Correct, Incorrect} only.
        if (from != SpecState::kCallerSpeculative) legal = false;
        if (!is_terminal(to)) legal = false;
        break;
      case SpecNode::Kind::kCallback:
        // Figure 5b: CalleeSpeculative -> {CallerSpeculative, Correct,
        // Incorrect}; CallerSpeculative -> {Correct, Incorrect}.
        if (from == SpecState::kCalleeSpeculative) {
          if (to == SpecState::kCalleeSpeculative) legal = false;
        } else if (from == SpecState::kCallerSpeculative) {
          if (!is_terminal(to)) legal = false;
        } else {
          legal = false;
        }
        break;
    }
    // Exactly one terminal transition per node.
    if (is_terminal(to) && !terminal_seen_.insert(id).second) legal = false;
    if (!legal) {
      violations_++;
      if (first_violation_.empty()) {
        first_violation_ = "node " + std::to_string(id) + " kind " +
                           std::to_string(static_cast<int>(kind)) + ": " +
                           to_string(from) + " -> " + to_string(to);
      }
    }
  }

  mutable std::mutex mu_;
  std::vector<Transition> transitions_;
  std::set<std::uint64_t> terminal_seen_;
  int violations_ = 0;
  std::string first_violation_;
};

class StateMachineTest : public ::testing::TestWithParam<double> {
 protected:
  StateMachineTest() {
    SimConfig config;
    config.executor_threads = 6;
    config.default_delay = std::chrono::microseconds(500);
    net_ = std::make_unique<SimNetwork>(config);
    client_ = std::make_unique<SpecEngine>(net_->add_node("client"),
                                           net_->executor(), net_->wheel());
    server_ = std::make_unique<SpecEngine>(net_->add_node("server"),
                                           net_->executor(), net_->wheel());
    client_->set_transition_observer(client_audit_.observer());
    server_->set_transition_observer(server_audit_.observer());
    server_->register_method("double", Handler([](const ServerCallPtr& c) {
      c->finish(Value(c->args().at(0).as_int() * 2));
    }));
  }

  ~StateMachineTest() override {
    client_->begin_shutdown();
    server_->begin_shutdown();
    net_->executor().shutdown();
  }

  std::unique_ptr<SimNetwork> net_;
  TransitionAuditor client_audit_;
  TransitionAuditor server_audit_;
  std::unique_ptr<SpecEngine> client_;
  std::unique_ptr<SpecEngine> server_;
};

TEST_P(StateMachineTest, RandomChainsObeyFigure5AndMatchSequential) {
  const double accuracy = GetParam();
  Rng rng(static_cast<std::uint64_t>(accuracy * 1000) + 5);

  // Callbacks of abandoned branches can outlive a round: everything they
  // touch is shared by value (chain state) or lives for the whole test
  // (rng + its lock).
  auto rng_mu = std::make_shared<std::mutex>();
  auto shared_rng = std::make_shared<Rng>(rng.next());
  auto flip = [rng_mu, shared_rng](double p) {
    std::lock_guard<std::mutex> lock(*rng_mu);
    return shared_rng->flip(p);
  };
  for (int round = 0; round < 30; ++round) {
    const int chain_len = 1 + static_cast<int>(rng.uniform(4));
    const std::int64_t x0 = static_cast<std::int64_t>(rng.uniform(100));

    // Expected value of the chain: x_{i+1} = 2 * x_i.
    std::int64_t expected = x0;
    for (int i = 0; i < chain_len; ++i) expected *= 2;

    // Build the factory chain with per-level randomized predictions.
    ChainSpec spec{chain_len, accuracy, flip};

    ValueList first_predictions;
    first_predictions.emplace_back(flip(accuracy) ? x0 * 2 : x0 * 2 + 1);
    auto future = client_->call("server", "double", make_args(x0),
                                std::move(first_predictions),
                                chain_len > 1 ? chain_factory(spec, 2)
                                              : nullptr);
    if (chain_len > 1) {
      EXPECT_EQ(future->get().as_int(), expected);
    } else {
      EXPECT_EQ(future->get().as_int(), x0 * 2);
    }
  }

  EXPECT_EQ(client_audit_.violations(), 0) << client_audit_.first_violation();
  EXPECT_EQ(server_audit_.violations(), 0) << server_audit_.first_violation();
  EXPECT_GT(client_audit_.count() + server_audit_.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Accuracies, StateMachineTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                         [](const auto& info) {
                           return "acc" + std::to_string(static_cast<int>(
                                              info.param * 100));
                         });

TEST_F(StateMachineTest, DiscardedBranchNeverLeaksIntoResult) {
  // Isolation (invariant 3): values computed in abandoned branches must not
  // surface. The callback tags its output with the value it ran on; only
  // the actual-value tag may appear.
  server_->register_method("slow_id", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::milliseconds(20), c->args().at(0));
  }));
  for (int i = 0; i < 10; ++i) {
    auto factory = []() -> CallbackFn {
      return [](SpecContext&, const Value& v) -> CallbackResult {
        return Value("from:" + std::to_string(v.as_int()));
      };
    };
    auto future = client_->call("server", "slow_id", make_args(i),
                                {Value(i + 1000)} /* always wrong */,
                                factory);
    EXPECT_EQ(future->get().as_string(), "from:" + std::to_string(i));
  }
}

TEST_F(StateMachineTest, AbandonedBranchCannotIssueNewCalls) {
  // §3.3: a speculation-incorrect computation is terminated at its next
  // framework operation.
  server_->register_method("slow_id", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::milliseconds(30), c->args().at(0));
  }));
  std::atomic<int> abandoned{0};
  auto factory = [&]() -> CallbackFn {
    return [&](SpecContext& ctx, const Value& v) -> CallbackResult {
      // Wait until the actual arrives and this branch is known dead...
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      try {
        return ctx.call("server", "double", make_args(v.as_int()), {},
                        nullptr);
      } catch (const SpeculationAbandoned&) {
        abandoned.fetch_add(1);
        throw;
      }
    };
  };
  auto future = client_->call("server", "slow_id", make_args(5),
                              {Value(999)} /* wrong */, factory);
  EXPECT_EQ(future->get().as_int(), 10);  // re-executed chain: double(5)
  EXPECT_EQ(abandoned.load(), 1);
}

}  // namespace
}  // namespace srpc::spec
