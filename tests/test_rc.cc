// Replicated Commit integration tests: protocol correctness on all three
// framework flavours, quorum-read semantics, conflict aborts, replica
// convergence, and the SpecRPC read chain's equivalence to sequential
// execution.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "rc/cluster.h"
#include "workload/retwis.h"
#include "workload/runner.h"
#include "workload/ycsbt.h"

namespace srpc::rc {
namespace {

ClusterConfig small_cluster(Flavor flavor, int clients_per_dc = 2) {
  ClusterConfig config;
  config.flavor = flavor;
  config.geo = uniform_geo(/*rtt_ms=*/10.0);
  config.geo.lan_rtt_ms = 0.5;
  config.clients_per_dc = clients_per_dc;
  config.num_keys = 1000;
  config.executor_threads = 8;
  return config;
}

class RcFlavorTest : public ::testing::TestWithParam<Flavor> {};

TEST_P(RcFlavorTest, WriteThenReadBack) {
  RcCluster cluster(small_cluster(GetParam()));
  auto& client = cluster.client(0, 0);

  // Txn 1: read-modify-write.
  std::vector<Op> ops;
  ops.push_back(Op{true, "k00000001", {}});
  ops.push_back(Op{false, "k00000001", "hello"});
  TxnResult r1 = client.run(ops);
  ASSERT_TRUE(r1.committed);
  ASSERT_EQ(r1.reads.size(), 1u);
  EXPECT_EQ(r1.reads[0].value, std::string(16, 'v'));  // initial load

  // Txn 2 (different client, different DC): must see the committed write.
  auto& client2 = cluster.client(1, 0);
  std::vector<Op> ops2;
  ops2.push_back(Op{true, "k00000001", {}});
  TxnResult r2 = client2.run(ops2);
  ASSERT_TRUE(r2.committed);
  EXPECT_TRUE(r2.read_only);
  ASSERT_EQ(r2.reads.size(), 1u);
  EXPECT_EQ(r2.reads[0].value, "hello");
  EXPECT_GT(r2.reads[0].version, r1.reads[0].version);
}

TEST_P(RcFlavorTest, ReadYourOwnBufferedWrite) {
  RcCluster cluster(small_cluster(GetParam()));
  auto& client = cluster.client(0, 0);
  std::vector<Op> ops;
  ops.push_back(Op{false, "k00000002", "mine"});
  ops.push_back(Op{true, "k00000002", {}});
  TxnResult r = client.run(ops);
  ASSERT_TRUE(r.committed);
  ASSERT_EQ(r.reads.size(), 1u);  // served from the write buffer
  EXPECT_EQ(r.reads[0].value, "mine");
}

TEST_P(RcFlavorTest, ConflictOnMajorityAborts) {
  RcCluster cluster(small_cluster(GetParam()));
  const std::string key = "k00000003";
  const int shard = cluster.view()->shard_of(key);
  // A phantom transaction holds the write lock in 2 of 3 DCs: the commit
  // cannot gather a majority of yes votes.
  for (int dc = 0; dc < 2; ++dc) {
    ASSERT_TRUE(cluster.store(dc, shard).prepare(
        /*txn=*/999999, {}, {kv::WriteOp{key, "blocked"}}));
  }
  auto& client = cluster.client(0, 0);
  std::vector<Op> ops;
  ops.push_back(Op{false, key, "loser"});
  TxnResult r = client.run(ops);
  EXPECT_FALSE(r.committed);
}

TEST_P(RcFlavorTest, ConflictOnMinorityStillCommits) {
  RcCluster cluster(small_cluster(GetParam()));
  const std::string key = "k00000004";
  const int shard = cluster.view()->shard_of(key);
  ASSERT_TRUE(cluster.store(2, shard).prepare(
      /*txn=*/999998, {}, {kv::WriteOp{key, "blocked"}}));
  auto& client = cluster.client(0, 0);
  std::vector<Op> ops;
  ops.push_back(Op{false, key, "winner"});
  TxnResult r = client.run(ops);
  EXPECT_TRUE(r.committed);
}

TEST_P(RcFlavorTest, QuorumReadSeesMajorityVersion) {
  RcCluster cluster(small_cluster(GetParam()));
  const std::string key = "k00000005";
  const int shard = cluster.view()->shard_of(key);
  // A committed write reaches a majority (DCs 0 and 1); DC 2 lags.
  cluster.store(0, shard).load(key, "new", 50);
  cluster.store(1, shard).load(key, "new", 50);
  // Any 2-of-3 read quorum must include at least one updated replica.
  for (int dc = 0; dc < 3; ++dc) {
    auto& client = cluster.client(dc, 0);
    std::vector<Op> ops;
    ops.push_back(Op{true, key, {}});
    TxnResult r = client.run(ops);
    ASSERT_TRUE(r.committed);
    EXPECT_EQ(r.reads[0].value, "new") << "reader in dc " << dc;
    EXPECT_EQ(r.reads[0].version, 50);
  }
}

TEST_P(RcFlavorTest, ClosedLoopRunCommitsAndReplicasConverge) {
  auto config = small_cluster(GetParam());
  RcCluster cluster(config);
  wl::RcRunResult result = wl::run_rc_closed_loop(
      cluster,
      [&](int client_index) {
        auto workload = std::make_shared<wl::YcsbtWorkload>(
            wl::YcsbtConfig{5, 0.5, 0.9, config.num_keys, 8},
            1000 + static_cast<std::uint64_t>(client_index));
        return [workload] { return workload->next_txn(); };
      },
      /*warmup=*/std::chrono::milliseconds(200),
      /*measure=*/std::chrono::seconds(2));
  EXPECT_GT(result.committed, 20u);
  EXPECT_LT(result.abort_rate(), 0.5);
  // Quiesce: let asynchronous applies drain, then check every shard's three
  // replicas converged to identical contents.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (int shard = 0; shard < cluster.num_shards(); ++shard) {
    auto& reference = cluster.store(0, shard);
    for (int dc = 1; dc < 3; ++dc) {
      EXPECT_EQ(cluster.store(dc, shard).size(), reference.size());
    }
    EXPECT_EQ(reference.locked_keys(), 0u) << "locks leaked on shard" << shard;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, RcFlavorTest,
                         ::testing::Values(Flavor::kGrpc, Flavor::kTrad,
                                           Flavor::kSpec),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(RcFlavorTest, ConcurrentIncrementsAreSerializable) {
  // Classic serializability probe: many clients perform read-modify-write
  // increments of one hot counter key via run_transform. The commit
  // validates the exact read each transform consumed, so every *committed*
  // increment is reflected exactly once — no lost updates.
  auto config = small_cluster(GetParam(), /*clients_per_dc=*/2);
  RcCluster cluster(config);
  const std::string key = "k00000042";
  const std::string initial(16, 'v');  // the loaded dataset value
  auto increment = [initial](const std::string& current) {
    const int n = current == initial ? 0 : std::stoi(current);
    return std::to_string(n + 1);
  };
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int dc = 0; dc < 3; ++dc) {
    for (int i = 0; i < 2; ++i) {
      threads.emplace_back([&, dc, i] {
        auto& client = cluster.client(dc, i);
        Rng rng(static_cast<std::uint64_t>(dc * 16 + i + 1));
        for (int round = 0; round < 8; ++round) {
          TxnResult w = client.run_transform(key, increment);
          if (w.committed) committed.fetch_add(1);
          // Randomized backoff: six clients in lockstep on one key can
          // livelock (each DC's fail-fast lock goes to a different txn, so
          // none reaches a majority) — as in any real deployment, jittered
          // retry breaks the symmetry.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(rng.uniform_range(1, 25)));
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));  // applies

  std::vector<Op> verify;
  verify.push_back(Op{true, key, {}});
  TxnResult final_read = cluster.client(0, 0).run(verify);
  ASSERT_TRUE(final_read.committed);
  ASSERT_GT(committed.load(), 0);
  EXPECT_EQ(std::stoi(final_read.reads.at(0).value), committed.load());
}

TEST(RcSpeculation, SpecChainMatchesSequentialResults) {
  // The same transaction executed speculatively and sequentially (on the
  // same cluster state) must return identical reads — the paper's
  // correctness bar (§3: equivalent to a traditional RPC framework).
  RcCluster cluster(small_cluster(Flavor::kSpec));
  auto& client = cluster.client(0, 0);
  std::vector<Op> ops;
  for (int i = 10; i < 15; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%08d", i);
    ops.push_back(Op{true, key, {}});
  }
  TxnResult spec = client.run_speculative(ops);
  TxnResult seq = client.run_sequential(ops);
  ASSERT_TRUE(spec.committed);
  ASSERT_TRUE(seq.committed);
  ASSERT_EQ(spec.reads.size(), seq.reads.size());
  for (std::size_t i = 0; i < spec.reads.size(); ++i) {
    EXPECT_EQ(spec.reads[i].key, seq.reads[i].key);
    EXPECT_EQ(spec.reads[i].value, seq.reads[i].value);
    EXPECT_EQ(spec.reads[i].version, seq.reads[i].version);
  }
}

TEST(RcSpeculation, SpeculativeReadsOverlapInTime) {
  // 5 dependent quorum reads at 40 ms RTT: sequential needs ~5 RTTs; the
  // speculative chain should complete in little more than one RTT.
  auto config = small_cluster(Flavor::kSpec);
  config.geo = uniform_geo(40.0);
  RcCluster cluster(config);
  auto& client = cluster.client(0, 0);
  std::vector<Op> ops;
  for (int i = 20; i < 25; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%08d", i);
    ops.push_back(Op{true, key, {}});
  }
  TxnResult spec = client.run_speculative(ops);
  TxnResult seq = client.run_sequential(ops);
  ASSERT_TRUE(spec.committed);
  ASSERT_TRUE(seq.committed);
  // Sequential: ~5 * 40ms = 200ms. Speculative: ~1 RTT + slack.
  EXPECT_GT(to_ms(seq.total), 150.0);
  EXPECT_LT(to_ms(spec.total), to_ms(seq.total) * 0.6);
  const auto stats = cluster.spec_stats();
  EXPECT_EQ(stats.quorum_calls_issued, 5u);  // only the spec run
  EXPECT_GT(stats.predictions_correct, 0u);
}

}  // namespace
}  // namespace srpc::rc
