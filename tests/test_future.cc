// rpc::Future semantics (shared by TradRPC and SpecRPC futures).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rpc/future.h"

namespace srpc::rpc {
namespace {

TEST(Future, GetBlocksUntilResolved) {
  auto future = Future::create();
  // t0 before spawning: on a loaded machine the new thread can start its
  // sleep before this thread is rescheduled, which would shrink the
  // measured wait below the resolver's sleep.
  const auto t0 = Clock::now();
  std::thread resolver([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    future->resolve(Outcome::success(Value(7)));
  });
  EXPECT_EQ(future->get(), Value(7));
  EXPECT_GE(to_ms(Clock::now() - t0), 25.0);
  resolver.join();
}

TEST(Future, GetThrowsOnFailure) {
  auto future = Future::create();
  future->resolve(Outcome::failure("nope"));
  EXPECT_THROW(future->get(), RpcError);
}

TEST(Future, FirstResolutionWins) {
  auto future = Future::create();
  future->resolve(Outcome::success(Value(1)));
  future->resolve(Outcome::success(Value(2)));
  future->resolve(Outcome::failure("late"));
  EXPECT_EQ(future->get(), Value(1));
}

TEST(Future, MultipleContinuationsAllFire) {
  auto future = Future::create();
  std::atomic<int> fired{0};
  for (int i = 0; i < 5; ++i) {
    future->then([&](const Outcome& o) {
      EXPECT_TRUE(o.ok);
      fired.fetch_add(1);
    });
  }
  future->resolve(Outcome::success(Value(1)));
  EXPECT_EQ(fired.load(), 5);
}

TEST(Future, ContinuationAfterResolveRunsInline) {
  auto future = Future::create();
  future->resolve(Outcome::success(Value(3)));
  bool ran = false;
  future->then([&](const Outcome& o) {
    ran = true;
    EXPECT_EQ(o.value, Value(3));
  });
  EXPECT_TRUE(ran);
}

TEST(Future, GetForTimesOut) {
  auto future = Future::create();
  const auto t0 = Clock::now();
  auto outcome = future->get_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(outcome.has_value());
  EXPECT_GE(to_ms(Clock::now() - t0), 35.0);
  future->resolve(Outcome::success(Value(9)));
  outcome = future->get_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->value, Value(9));
}

TEST(Future, ReadyReflectsState) {
  auto future = Future::create();
  EXPECT_FALSE(future->ready());
  future->resolve(Outcome::success(Value(0)));
  EXPECT_TRUE(future->ready());
}

TEST(Future, ConcurrentThenAndResolveIsSafe) {
  for (int round = 0; round < 50; ++round) {
    auto future = Future::create();
    std::atomic<int> fired{0};
    std::thread a([&] {
      for (int i = 0; i < 10; ++i)
        future->then([&](const Outcome&) { fired.fetch_add(1); });
    });
    std::thread b([&] { future->resolve(Outcome::success(Value(1))); });
    a.join();
    b.join();
    EXPECT_EQ(fired.load(), 10);
  }
}

TEST(Future, ConcurrentResolversFirstWriterWins) {
  // The retry layer can race a late first-attempt reply against a retried
  // attempt's reply and against the timeout path; whichever resolver wins,
  // the outcome must be exactly one of the candidates and every observer
  // must agree on it.
  for (int round = 0; round < 100; ++round) {
    auto future = Future::create();
    constexpr int kResolvers = 4;
    std::vector<std::thread> resolvers;
    resolvers.reserve(kResolvers);
    for (int i = 0; i < kResolvers; ++i) {
      resolvers.emplace_back([&, i] {
        if (i == kResolvers - 1) {
          future->resolve(Outcome::failure("timed out"));
        } else {
          future->resolve(Outcome::success(Value(i)));
        }
      });
    }
    std::atomic<int> continuation_value{-2};
    future->then([&](const Outcome& o) {
      continuation_value.store(o.ok ? static_cast<int>(o.value.as_int())
                                    : -1);
    });
    for (auto& t : resolvers) t.join();
    Outcome seen;
    try {
      seen = Outcome::success(Value(future->get()));
    } catch (const RpcError&) {
      seen = Outcome::failure("timed out");
    }
    // get() and the continuation observed the same single winner.
    const int got = seen.ok ? static_cast<int>(seen.value.as_int()) : -1;
    EXPECT_GE(got, -1);
    EXPECT_LT(got, kResolvers - 1);
    EXPECT_EQ(continuation_value.load(), got);
  }
}

TEST(Future, ChainingThroughThen) {
  // The pattern the spec engine uses to link nested chain futures.
  auto inner = Future::create();
  auto outer = Future::create();
  inner->then([outer](const Outcome& o) { outer->resolve(o); });
  inner->resolve(Outcome::success(Value("chained")));
  EXPECT_EQ(outer->get(), Value("chained"));
}

}  // namespace
}  // namespace srpc::rpc
