// Error propagation through speculative chains — the less-travelled paths:
// a handler failing from within a speculative callback (the error must wait
// for value resolution, §3.4's actual-response discipline applies to errors
// too), fail() from abandoned branches, and chains that mix predictions
// with failures.
#include <gtest/gtest.h>

#include <atomic>

#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::spec {
namespace {

class SpecErrorTest : public ::testing::Test {
 protected:
  SpecErrorTest() {
    SimConfig config;
    config.executor_threads = 6;
    config.default_delay = std::chrono::milliseconds(1);
    net_ = std::make_unique<SimNetwork>(config);
    client_ = std::make_unique<SpecEngine>(net_->add_node("client"),
                                           net_->executor(), net_->wheel());
    front_ = std::make_unique<SpecEngine>(net_->add_node("front"),
                                          net_->executor(), net_->wheel());
    back_ = std::make_unique<SpecEngine>(net_->add_node("back"),
                                         net_->executor(), net_->wheel());
  }

  ~SpecErrorTest() override {
    client_->begin_shutdown();
    front_->begin_shutdown();
    back_->begin_shutdown();
    net_->executor().shutdown();
  }

  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<SpecEngine> client_;
  std::unique_ptr<SpecEngine> front_;
  std::unique_ptr<SpecEngine> back_;
};

TEST_F(SpecErrorTest, FailFromCorrectlySpeculativeBranchReachesCaller) {
  // front's handler consumes back's result speculatively and *fails* based
  // on it. The prediction is correct, so the failure is genuine and must
  // reach the client as an actual error — but only after the value chain
  // resolves (errors are never sent speculatively).
  back_->register_method("check", Handler([](const ServerCallPtr& c) {
    c->spec_return(Value(false));  // correct prediction: not allowed
    c->finish_after(std::chrono::milliseconds(20), Value(false));
  }));
  front_->register_method("guarded", Handler([](const ServerCallPtr& c) {
    auto factory = [c]() -> CallbackFn {
      return [c](SpecContext&, const Value& allowed) -> CallbackResult {
        if (!allowed.as_bool()) {
          c->fail("permission denied");
          return Value();
        }
        c->finish(Value("ok"));
        return Value("ok");
      };
    };
    c->call("back", "check", make_args("user"), {}, factory);
  }));
  auto future = client_->call("front", "guarded", make_args());
  try {
    future->get();
    FAIL() << "expected RpcError";
  } catch (const rpc::RpcError& e) {
    EXPECT_STREQ(e.what(), "permission denied");
  }
}

TEST_F(SpecErrorTest, FailFromMispredictedBranchIsDiscarded) {
  // The speculative branch fails, but its prediction was wrong: the failure
  // belongs to an abandoned world and must NOT reach the client; the
  // re-executed branch succeeds.
  back_->register_method("check", Handler([](const ServerCallPtr& c) {
    c->spec_return(Value(false));  // wrong prediction
    c->finish_after(std::chrono::milliseconds(20), Value(true));
  }));
  front_->register_method("guarded", Handler([](const ServerCallPtr& c) {
    auto factory = [c]() -> CallbackFn {
      return [c](SpecContext&, const Value& allowed) -> CallbackResult {
        if (!allowed.as_bool()) {
          c->fail("permission denied");  // speculative-world failure
          return Value();
        }
        c->finish(Value("ok"));
        return Value("ok");
      };
    };
    c->call("back", "check", make_args("user"), {}, factory);
  }));
  auto future = client_->call("front", "guarded", make_args());
  EXPECT_EQ(future->get(), Value("ok"));
}

TEST_F(SpecErrorTest, NestedCallFailureFailsTheWholeChain) {
  // callback issues a nested call to a method that fails: the chain future
  // must carry the nested error.
  back_->register_method("boom", Handler([](const ServerCallPtr& c) {
    c->fail("backend down");
  }));
  front_->register_method("ok", Handler([](const ServerCallPtr& c) {
    c->finish(Value(1));
  }));
  auto factory = []() -> CallbackFn {
    return [](SpecContext& ctx, const Value&) -> CallbackResult {
      return ctx.call("back", "boom", make_args());
    };
  };
  auto future = client_->call("front", "ok", make_args(), {Value(1)},
                              factory);
  EXPECT_THROW(future->get(), rpc::RpcError);
}

TEST_F(SpecErrorTest, PredictionsOnFailingCallAreAbandoned) {
  // Client predicts a value, but the RPC fails: every prediction branch is
  // abandoned (rollbacks run) and the error is delivered.
  front_->register_method("boom", Handler([](const ServerCallPtr& c) {
    c->fail("nope");
  }));
  std::atomic<int> rollbacks{0};
  auto factory = [&]() -> CallbackFn {
    return [&](SpecContext& ctx, const Value& v) -> CallbackResult {
      ctx.set_rollback([&] { rollbacks.fetch_add(1); });
      return v;
    };
  };
  auto future = client_->call("front", "boom", make_args(), {Value(42)},
                              factory);
  EXPECT_THROW(future->get(), rpc::RpcError);
  for (int i = 0; i < 200 && rollbacks.load() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(rollbacks.load(), 1);
  EXPECT_EQ(client_->stats().predictions_incorrect, 1u);
}

TEST_F(SpecErrorTest, HandlerThrowBecomesErrorResponse) {
  front_->register_method("throws", Handler([](const ServerCallPtr& c) {
    throw std::runtime_error("handler exploded");
  }));
  auto future = client_->call("front", "throws", make_args());
  try {
    future->get();
    FAIL() << "expected RpcError";
  } catch (const rpc::RpcError& e) {
    EXPECT_STREQ(e.what(), "handler exploded");
  }
}

TEST_F(SpecErrorTest, ErrorsNeverDeliverSpeculatively) {
  // Even while the caller's own chain is speculative, a failing nested call
  // must not resolve the top-level future until the branch is confirmed.
  back_->register_method("slowboom", Handler([](const ServerCallPtr& c) {
    auto self = c;
    c->engine().wheel().schedule_after(std::chrono::milliseconds(5),
                                       [self] { self->fail("late boom"); });
  }));
  front_->register_method("slow_id", Handler([](const ServerCallPtr& c) {
    c->finish_after(std::chrono::milliseconds(40), c->args().at(0));
  }));
  auto inner = []() -> CallbackFn {
    return [](SpecContext& ctx, const Value&) -> CallbackResult {
      return ctx.call("back", "slowboom", make_args());
    };
  };
  // Correct prediction: the branch is confirmed when slow_id completes and
  // the nested failure is genuinely the chain's outcome.
  auto future = client_->call("front", "slow_id", make_args(7), {Value(7)},
                              inner);
  const auto t0 = Clock::now();
  EXPECT_THROW(future->get(), rpc::RpcError);
  // The failure was known after ~8 ms, but delivery had to wait for the
  // caller branch to be validated (~40 ms).
  EXPECT_GE(to_ms(Clock::now() - t0), 35.0);
}

}  // namespace
}  // namespace srpc::spec
