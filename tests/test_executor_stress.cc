// Stress tests for the work-stealing Executor: task conservation under
// producer/worker/steal churn, strand FIFO on top of the pool, the
// before_block() batch-republish protocol, and shutdown drain semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/strand.h"
#include "common/sync.h"

namespace srpc {
namespace {

TEST(ExecutorStress, NoTaskLostOrDuplicatedAcrossProducersAndSteals) {
  // Every (producer, sequence) cell must be bumped exactly once. External
  // posts round-robin across worker deques and workers steal from each
  // other, so cells exercise cross-queue movement heavily.
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 20000;
  Executor exec(8, "stress");
  std::vector<std::vector<std::atomic<int>>> cells(kProducers);
  for (auto& row : cells) {
    row = std::vector<std::atomic<int>>(kPerProducer);
  }
  std::atomic<int> remaining{kProducers * kPerProducer};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(exec.post([&, p, i] {
          cells[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)]
              .fetch_add(1, std::memory_order_relaxed);
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }));
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (remaining.load(std::memory_order_acquire) != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "tasks lost: " << remaining.load();
    std::this_thread::yield();
  }
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      const int n =
          cells[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)]
              .load(std::memory_order_relaxed);
      ASSERT_EQ(n, 1) << "producer " << p << " task " << i << " ran " << n
                      << " times";
    }
  }
  EXPECT_EQ(exec.queue_depth(), 0u);
}

TEST(ExecutorStress, WorkerSelfPostsAreConserved) {
  // Chains reposting from inside workers land on the posting worker's own
  // deque; with thieves active this exercises the owner-pop/steal interplay.
  constexpr int kChains = 16;
  constexpr int kHops = 5000;
  Executor exec(8, "stress");
  std::atomic<std::uint64_t> hops{0};
  std::atomic<int> live{kChains};
  std::function<void(int)> hop = [&](int depth) {
    hops.fetch_add(1, std::memory_order_relaxed);
    if (depth + 1 < kHops) {
      exec.post([&, depth] { hop(depth + 1); });
    } else {
      live.fetch_sub(1, std::memory_order_acq_rel);
    }
  };
  for (int c = 0; c < kChains; ++c) exec.post([&] { hop(0); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (live.load(std::memory_order_acquire) != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::yield();
  }
  EXPECT_EQ(hops.load(), static_cast<std::uint64_t>(kChains) * kHops);
}

TEST(ExecutorStress, StrandStaysFifoOnWorkStealingPool) {
  // Strand order must match post order even though the underlying pool
  // moves its pump tasks between worker deques. Several strands run
  // concurrently to keep all workers busy and stealing.
  constexpr int kStrands = 4;
  constexpr int kPerStrand = 20000;
  Executor exec(8, "stress");
  struct Seq {
    std::shared_ptr<Strand> strand;
    std::vector<int> order;  // appended by strand tasks, serially
    std::atomic<bool> done{false};
  };
  std::vector<Seq> seqs(kStrands);
  for (auto& s : seqs) {
    s.strand = Strand::create(exec);
    s.order.reserve(kPerStrand);
  }
  std::vector<std::thread> posters;
  posters.reserve(kStrands);
  for (int si = 0; si < kStrands; ++si) {
    posters.emplace_back([&, si] {
      Seq& s = seqs[static_cast<std::size_t>(si)];
      for (int i = 0; i < kPerStrand; ++i) {
        s.strand->post([&s, i] { s.order.push_back(i); });
      }
      s.strand->post([&s] { s.done.store(true, std::memory_order_release); });
    });
  }
  for (auto& t : posters) t.join();
  for (auto& s : seqs) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    while (!s.done.load(std::memory_order_acquire)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::yield();
    }
    ASSERT_EQ(s.order.size(), static_cast<std::size_t>(kPerStrand));
    for (int i = 0; i < kPerStrand; ++i) {
      ASSERT_EQ(s.order[static_cast<std::size_t>(i)], i)
          << "strand executed out of order at position " << i;
    }
  }
}

TEST(ExecutorStress, BeforeBlockRepublishesClaimedBatch) {
  // A worker task parks on an Event whose set() is enqueued BEHIND it from
  // the same thread, so both tasks start on one deque and are likely
  // claimed in one batch. Without before_block() republishing the claimed
  // remainder, the setter could stay invisible to the other worker and the
  // waiter would park forever.
  for (int round = 0; round < 50; ++round) {
    Executor exec(2, "stress");
    Event released;
    Event finished;
    exec.post([&] {
      // Both tasks below go to this worker's own deque back-to-back.
      exec.post([&] {
        released.wait();  // Event::wait calls Executor::before_block()
        finished.set();
      });
      exec.post([&] { released.set(); });
    });
    ASSERT_TRUE(finished.wait_for(std::chrono::seconds(30)))
        << "round " << round << ": setter task stranded behind parked waiter";
    exec.shutdown();
  }
}

TEST(ExecutorStress, ShutdownRunsQueuedAndWorkerPostedTasks) {
  std::atomic<int> ran{0};
  std::atomic<bool> rejected_seen{false};
  {
    Executor exec(4, "stress");
    Event primed;
    for (int i = 0; i < 1000; ++i) {
      exec.post([&] {
        ran.fetch_add(1, std::memory_order_relaxed);
        // Worker-posted continuation during/after drain must still run.
        exec.post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    exec.post([&] { primed.set(); });
    ASSERT_TRUE(primed.wait_for(std::chrono::seconds(30)));
    exec.shutdown();
    // After shutdown, external posts are rejected (and reported), never
    // silently dropped.
    const bool accepted = exec.post([&] {
      rejected_seen.store(true, std::memory_order_release);
    });
    EXPECT_FALSE(accepted);
  }
  EXPECT_EQ(ran.load(), 2000);
  EXPECT_FALSE(rejected_seen.load());
}

}  // namespace
}  // namespace srpc
