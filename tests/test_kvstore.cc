// VersionedStore: reads, prepare/commit/abort lock discipline, version
// validation, and concurrency properties.
#include <gtest/gtest.h>

#include <thread>

#include "kvstore/store.h"

namespace srpc::kv {
namespace {

TEST(VersionedStore, LoadAndGet) {
  VersionedStore store;
  EXPECT_FALSE(store.get("missing").has_value());
  store.load("k", "v", 3);
  auto vv = store.get("k");
  ASSERT_TRUE(vv.has_value());
  EXPECT_EQ(vv->value, "v");
  EXPECT_EQ(vv->version, 3);
  EXPECT_EQ(store.size(), 1u);
}

TEST(VersionedStore, PrepareCommitAppliesWrites) {
  VersionedStore store;
  store.load("k", "old", 1);
  ASSERT_TRUE(store.prepare(7, {{"k", 1}}, {{"k", "new"}}));
  EXPECT_TRUE(store.is_locked("k"));
  store.commit(7, {{"k", "new"}}, 5);
  EXPECT_FALSE(store.is_locked("k"));
  EXPECT_EQ(store.get("k")->value, "new");
  EXPECT_EQ(store.get("k")->version, 5);
}

TEST(VersionedStore, AbortReleasesWithoutApplying) {
  VersionedStore store;
  store.load("k", "old", 1);
  ASSERT_TRUE(store.prepare(7, {}, {{"k", "new"}}));
  store.abort(7);
  EXPECT_FALSE(store.is_locked("k"));
  EXPECT_EQ(store.get("k")->value, "old");
}

TEST(VersionedStore, StaleReadVersionFailsPrepare) {
  VersionedStore store;
  store.load("k", "v", 2);
  EXPECT_FALSE(store.prepare(7, {{"k", 1}}, {}));  // version moved on
  EXPECT_TRUE(store.prepare(8, {{"k", 2}}, {}));
}

TEST(VersionedStore, MissingKeyReadsValidateAsVersionZero) {
  VersionedStore store;
  EXPECT_TRUE(store.prepare(7, {{"nope", 0}}, {}));
  store.abort(7);
  EXPECT_FALSE(store.prepare(8, {{"nope", 1}}, {}));
}

TEST(VersionedStore, WriteConflictFailsCleanly) {
  VersionedStore store;
  ASSERT_TRUE(store.prepare(1, {}, {{"a", "x"}, {"b", "x"}}));
  // Txn 2 conflicts on "b": must fail and leave nothing locked of its own.
  EXPECT_FALSE(store.prepare(2, {}, {{"c", "y"}, {"b", "y"}}));
  EXPECT_FALSE(store.is_locked("c"));
  EXPECT_TRUE(store.is_locked("a"));
  EXPECT_TRUE(store.is_locked("b"));
  store.abort(1);
  EXPECT_EQ(store.locked_keys(), 0u);
}

TEST(VersionedStore, ReadOfLockedKeyFailsPrepare) {
  VersionedStore store;
  store.load("k", "v", 1);
  ASSERT_TRUE(store.prepare(1, {}, {{"k", "new"}}));
  EXPECT_FALSE(store.prepare(2, {{"k", 1}}, {}));  // k locked by txn 1
}

TEST(VersionedStore, CommitOnUnpreparedReplicaStillApplies) {
  // RC: a DC that voted no still applies once the global commit is known.
  VersionedStore store;
  store.load("k", "old", 1);
  store.commit(99, {{"k", "new"}}, 7);
  EXPECT_EQ(store.get("k")->value, "new");
}

TEST(VersionedStore, VersionsOnlyMoveForward) {
  VersionedStore store;
  store.load("k", "newer", 10);
  store.commit(99, {{"k", "older"}}, 5);  // late, lower version: ignored
  EXPECT_EQ(store.get("k")->value, "newer");
  EXPECT_EQ(store.get("k")->version, 10);
}

TEST(VersionedStore, SameTxnRepreparesIdempotently) {
  VersionedStore store;
  ASSERT_TRUE(store.prepare(1, {}, {{"a", "x"}}));
  ASSERT_TRUE(store.prepare(1, {}, {{"a", "x"}}));  // own lock is fine
  store.commit(1, {{"a", "x"}}, 2);
  EXPECT_EQ(store.locked_keys(), 0u);
}

TEST(VersionedStore, ConcurrentPreparesNeverDoubleLock) {
  VersionedStore store;
  constexpr int kThreads = 8;
  constexpr int kRounds = 300;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const TxnId txn = static_cast<TxnId>(t * kRounds + r + 1);
        if (store.prepare(txn, {}, {{"hot", "x"}})) {
          successes.fetch_add(1);
          store.abort(txn);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.locked_keys(), 0u);
  EXPECT_GT(successes.load(), 0);
}

}  // namespace
}  // namespace srpc::kv
