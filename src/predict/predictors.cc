#include "predict/predictors.h"

#include <stdexcept>

namespace srpc::predict {

std::string key_of(const std::string& method, const ValueList& args) {
  // \x1f (unit separator) cannot appear in Value::to_string's rendering of
  // printable payloads framed with quotes/brackets, and a length prefix per
  // component removes any remaining ambiguity.
  std::string key = method;
  for (const auto& arg : args) {
    const std::string rendered = arg.to_string();
    key += '\x1f';
    key += std::to_string(rendered.size());
    key += ':';
    key += rendered;
  }
  return key;
}

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kLastValue:
      return "last";
    case Kind::kTopK:
      return "topk";
    case Kind::kMarkov:
      return "markov";
    case Kind::kCache:
      return "cache";
  }
  return "?";
}

Kind parse_kind(const std::string& name) {
  if (name == "none" || name.empty()) return Kind::kNone;
  if (name == "last") return Kind::kLastValue;
  if (name == "topk") return Kind::kTopK;
  if (name == "markov") return Kind::kMarkov;
  if (name == "cache") return Kind::kCache;
  throw std::invalid_argument("unknown predictor kind: " + name);
}

PredictorPtr make_predictor(Kind kind, PredictorConfig config) {
  switch (kind) {
    case Kind::kNone:
      return nullptr;
    case Kind::kLastValue:
      return std::make_shared<LastValuePredictor>(config);
    case Kind::kTopK:
      return std::make_shared<TopKFrequencyPredictor>(config);
    case Kind::kMarkov:
      return std::make_shared<MarkovPredictor>(config);
    case Kind::kCache:
      return std::make_shared<CachePredictor>(config);
  }
  return nullptr;
}

}  // namespace srpc::predict
