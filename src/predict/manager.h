// SpeculationManager — wires a Predictor, an AccuracyTracker and (optionally)
// an AdaptiveSpeculationController into one SpecEngine (DESIGN.md §8.3).
//
// Data flow, per speculation-capable call:
//
//   call()/call_quorum() ──supplier──► gate? ──► Predictor::predict
//        │                                             │
//        ▼                                             ▼
//   actual arrives ──observer──► shadow-evaluate ► AccuracyTracker
//                                └► Predictor::learn   │
//                                                      ▼
//                                        AdaptiveSpeculationController
//
// The installed hooks capture the manager's state by shared_ptr, so a
// SpecConfig (and the engines built from it) stays valid even if the
// manager object itself is destroyed first.
//
// Shadow evaluation: calls that carried no prediction (gate closed, or the
// predictor had nothing) still report through the observer; the manager
// asks the predictor what it *would* have predicted, scores it against the
// actual, and records that. Accuracy therefore keeps tracking the workload
// while speculation is off — the gate can re-open without waiting for
// probe traffic alone.
#pragma once

#include <atomic>
#include <memory>

#include "predict/admission.h"
#include "predict/controller.h"
#include "predict/predictor.h"
#include "specrpc/engine.h"

namespace srpc::predict {

struct ManagerConfig {
  AccuracyConfig accuracy;
  /// nullopt-style toggle: when false, every call with a warm predictor
  /// speculates (the "always" mode of the benches).
  bool adaptive = false;
  AdaptiveConfig adaptive_config;
  /// Optional overload admission controller (DESIGN.md §11), consulted
  /// before the adaptive gate and the predictor: under pressure the
  /// supplier returns no predictions at all and the call runs as TradRPC.
  /// Shared so one controller can govern every client of a process.
  std::shared_ptr<AdmissionController> admission;
};

/// Aggregate counters for benches/tests (snapshot; internally consistent
/// per counter, not across counters).
struct ManagerStats {
  std::uint64_t supplier_calls = 0;
  std::uint64_t predictions_supplied = 0;  // calls given >= 1 prediction
  std::uint64_t gate_suppressed = 0;       // calls the controller declined
  std::uint64_t admission_shed = 0;        // calls the overload ladder shed
  std::uint64_t predictor_empty = 0;       // gate open but predictor cold
  std::uint64_t learned = 0;               // actuals fed to the predictor
};

class SpeculationManager {
 public:
  explicit SpeculationManager(PredictorPtr predictor,
                              ManagerConfig config = {});

  /// Sets `config.prediction_supplier` / `config.prediction_observer`.
  /// Install before constructing the engine; one manager may serve several
  /// engines (its components are thread-safe).
  void install(spec::SpecConfig& config);

  /// The supplier/observer as bare hooks (for engines configured by hand).
  spec::PredictionSupplier supplier();
  spec::PredictionObserver observer();

  Predictor& predictor() { return *state_->predictor; }
  AccuracyTracker& tracker() { return state_->tracker; }
  /// nullptr unless config.adaptive.
  AdaptiveSpeculationController* controller() {
    return state_->controller.get();
  }
  /// nullptr unless config.admission was set.
  const std::shared_ptr<AdmissionController>& admission() const {
    return state_->admission;
  }
  /// Late-binds the admission controller (it often needs this manager's
  /// tracker(), which exists only after construction). Wire before traffic
  /// starts; not synchronized against a concurrently running supplier.
  void set_admission(std::shared_ptr<AdmissionController> admission) {
    state_->admission = std::move(admission);
  }
  ManagerStats stats() const;

 private:
  struct State {
    State(PredictorPtr p, const ManagerConfig& c)
        : predictor(std::move(p)), tracker(c.accuracy), admission(c.admission) {
      if (c.adaptive) {
        controller = std::make_unique<AdaptiveSpeculationController>(
            tracker, c.adaptive_config);
      }
    }
    PredictorPtr predictor;
    AccuracyTracker tracker;
    std::unique_ptr<AdaptiveSpeculationController> controller;
    std::shared_ptr<AdmissionController> admission;
    std::atomic<std::uint64_t> supplier_calls{0};
    std::atomic<std::uint64_t> predictions_supplied{0};
    std::atomic<std::uint64_t> gate_suppressed{0};
    std::atomic<std::uint64_t> admission_shed{0};
    std::atomic<std::uint64_t> predictor_empty{0};
    std::atomic<std::uint64_t> learned{0};
  };

  std::shared_ptr<State> state_;
};

}  // namespace srpc::predict
