// Predictor — the pluggable prediction interface of the speculation
// subsystem (DESIGN.md §8).
//
// SpecRPC's benefit curve hinges entirely on prediction accuracy (paper
// §2.2, Figure 8a): correct predictions collapse dependent-RPC chains to
// roughly one RPC time, incorrect ones cost wasted work. The paper treats
// the prediction source as application-supplied; this module packages the
// recurring strategies — last value, top-k frequency, Markov transitions,
// TTL cache — behind one thread-safe interface so applications, the RC
// client, and the workload drivers can swap them with a flag.
//
// A predictor is keyed by (method, args): predict() returns zero or more
// candidate return values to speculate on, learn() feeds back the actual
// result once the framework validated the call. Both may be called
// concurrently from many client threads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serde/value.h"

namespace srpc::predict {

/// Canonical map key for one (method, args) call site. Deterministic and
/// injective enough for prediction purposes: components are joined with a
/// separator that cannot appear in the rendered values' framing.
std::string key_of(const std::string& method, const ValueList& args);

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Candidate return values for `method(args)`, best first. Empty when the
  /// predictor has nothing (yet) — the engine then simply does not
  /// speculate this call (§3.3: forward progress never depends on it).
  virtual ValueList predict(const std::string& method,
                            const ValueList& args) = 0;

  /// Feeds back the actual, validated return value of `method(args)`.
  virtual void learn(const std::string& method, const ValueList& args,
                     const Value& actual) = 0;

  /// Drops any state derived from `method(args)` (rollback hook for
  /// speculative learns; see examples/spec_cache.cpp).
  virtual void forget(const std::string& method, const ValueList& args) {}

  /// Number of retained entries (capacity/eviction tests, diagnostics).
  virtual std::size_t size() const = 0;

  virtual const char* name() const = 0;
};

using PredictorPtr = std::shared_ptr<Predictor>;

/// The built-in predictor families, selectable by workload-runner flags.
enum class Kind {
  kNone,       // no predictor: SpecRPC runs without client predictions
  kLastValue,  // last observed result per (method, args)
  kTopK,       // k most frequent results per (method, args)
  kMarkov,     // previous-result -> next-result transitions per method
  kCache,      // TTL-bounded cache of results per (method, args)
};

const char* to_string(Kind kind);

/// Parses "none" / "last" / "topk" / "markov" / "cache" (case-sensitive).
/// Throws std::invalid_argument on anything else.
Kind parse_kind(const std::string& name);

/// Shared construction knobs; each predictor uses the subset that applies.
struct PredictorConfig {
  std::size_t capacity = 4096;  // max retained keys (LRU eviction)
  int top_k = 2;                // kTopK: candidates returned per key
  std::size_t values_per_key = 8;  // kTopK: distinct values tracked per key
  Duration ttl = std::chrono::seconds(10);  // kCache: entry lifetime
};

/// nullptr for Kind::kNone.
PredictorPtr make_predictor(Kind kind, PredictorConfig config = {});

}  // namespace srpc::predict
