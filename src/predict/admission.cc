#include "predict/admission.h"

#include <algorithm>

#include "optmodel/model.h"

namespace srpc::predict {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         const AccuracyTracker* tracker)
    : config_(config),
      tracker_(tracker),
      demote_below_(config.demote_below_accuracy >= 0.0
                        ? config.demote_below_accuracy
                        : opt::break_even_accuracy(1.0)) {}

void AdmissionController::add_source(PressureSource source) {
  std::lock_guard<std::mutex> lock(poll_mu_);
  sources_.push_back(std::move(source));
  shed_deltas_.emplace_back();
}

void AdmissionController::set_method_priority(const std::string& method,
                                              spec::QosPriority priority) {
  std::lock_guard<std::mutex> lock(methods_mu_);
  priorities_[method] = priority;
}

bool AdmissionController::admit(const std::string& method) {
  maybe_poll();
  const int level = level_.load(std::memory_order_acquire);
  int pri = static_cast<int>(spec::QosPriority::kNormal);
  {
    std::lock_guard<std::mutex> lock(methods_mu_);
    auto it = priorities_.find(method);
    if (it != priorities_.end()) pri = static_cast<int>(it->second);
  }
  // Accuracy-driven demotion, only under pressure: low-accuracy speculation
  // is the least valuable work in flight, so it falls off the ladder one
  // level early. Cold methods (too few samples) keep their nominal tier.
  if (level > 0 && tracker_ != nullptr &&
      pri + 1 < static_cast<int>(spec::kNumQosPriorities) &&
      tracker_->samples(method) >= config_.demote_min_samples &&
      tracker_->hit_rate(method, 1.0) < demote_below_) {
    pri += 1;
    demotions_.fetch_add(1, std::memory_order_relaxed);
  }
  // Level L sheds the lowest L tiers: admit iff the (possibly demoted)
  // priority is still above the water line.
  const bool ok = pri < static_cast<int>(spec::kNumQosPriorities) - level;
  (ok ? admitted_ : shed_).fetch_add(1, std::memory_order_relaxed);
  return ok;
}

AdmissionLevel AdmissionController::tick() {
  std::lock_guard<std::mutex> lock(poll_mu_);
  poll_locked();
  last_poll_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count(),
      std::memory_order_release);
  return level();
}

void AdmissionController::maybe_poll() {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  const std::int64_t interval_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          config_.poll_interval)
          .count();
  if (now_ns - last_poll_ns_.load(std::memory_order_acquire) < interval_ns) {
    return;
  }
  // One poller at a time; everyone else proceeds on the published level.
  std::unique_lock<std::mutex> lock(poll_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (now_ns - last_poll_ns_.load(std::memory_order_acquire) < interval_ns) {
    return;  // someone polled while we took the lock
  }
  poll_locked();
  last_poll_ns_.store(now_ns, std::memory_order_release);
}

void AdmissionController::poll_locked() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  bool hot = false;
  bool calm = true;
  std::uint64_t shed_delta_total = 0;
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const PressureSample s = sources_[i]();
    // Monotone delta-since-last-poll: a cumulative counter that went
    // *backwards* (stats reset, transport restart) re-baselines to zero
    // pressure instead of reading as negative.
    const std::uint64_t shed_delta = shed_deltas_[i].advance(s.sheds);
    shed_delta_total += shed_delta;
    if (shed_delta >= config_.shed_hi || s.queue_depth >= config_.queue_hi ||
        s.outbuf_occupancy >= config_.outbuf_hi) {
      hot = true;
    }
    if (shed_delta != 0 || s.queue_depth > config_.queue_lo ||
        s.outbuf_occupancy > config_.outbuf_lo) {
      calm = false;
    }
  }
  shed_delta_last_.store(shed_delta_total, std::memory_order_relaxed);

  const int level = level_.load(std::memory_order_relaxed);
  if (hot) {
    // Escalate immediately: overload compounds, the ladder must not lag it.
    calm_streak_ = 0;
    if (level < static_cast<int>(AdmissionLevel::kShedAll)) {
      level_.store(level + 1, std::memory_order_release);
      escalations_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (calm && level > 0) {
    // De-escalate only after a sustained calm run — the reopen half of the
    // hysteresis, mirroring the adaptive gate's on-threshold band.
    if (++calm_streak_ >= config_.calm_polls_to_step_down) {
      calm_streak_ = 0;
      level_.store(level - 1, std::memory_order_release);
      deescalations_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // The hysteresis band (between lo and hi): hold the level, and don't
    // bank calm credit from before the excursion.
    calm_streak_ = 0;
  }
}

AdmissionController::Snapshot AdmissionController::stats() const {
  Snapshot out;
  out.level = level();
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.demotions = demotions_.load(std::memory_order_relaxed);
  out.polls = polls_.load(std::memory_order_relaxed);
  out.escalations = escalations_.load(std::memory_order_relaxed);
  out.deescalations = deescalations_.load(std::memory_order_relaxed);
  out.shed_delta_last = shed_delta_last_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace srpc::predict
