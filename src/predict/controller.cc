#include "predict/controller.h"

#include <algorithm>

#include "optmodel/model.h"

namespace srpc::predict {

AdaptiveSpeculationController::AdaptiveSpeculationController(
    const AccuracyTracker& tracker, AdaptiveConfig config)
    : tracker_(tracker),
      config_(config),
      break_even_(opt::break_even_accuracy(config.misspec_cost)) {}

double AdaptiveSpeculationController::off_threshold() const {
  return std::max(0.0, break_even_ - config_.hysteresis);
}

double AdaptiveSpeculationController::on_threshold() const {
  return std::min(1.0, break_even_ + config_.hysteresis);
}

bool AdaptiveSpeculationController::should_speculate(
    const std::string& method) {
  // Estimator reads happen before taking our lock (the tracker has its
  // own); the decision below is a heuristic, momentary staleness is fine.
  const std::uint64_t samples = tracker_.samples(method);
  const double windowed = tracker_.windowed_hit_rate(method, 1.0);
  const double smoothed = tracker_.hit_rate(method, 1.0);

  std::lock_guard<std::mutex> lock(mu_);
  Gate& g = gate(method);
  if (samples >= config_.min_samples) {
    if (g.open && windowed < off_threshold()) {
      g.open = false;
      g.flips++;
      g.calls_since_probe = 0;
    } else if (!g.open && windowed >= on_threshold() &&
               smoothed >= on_threshold()) {
      g.open = true;
      g.flips++;
    }
  }
  if (g.open) {
    g.allowed++;
    return true;
  }
  if (config_.probe_every > 0 &&
      ++g.calls_since_probe >= config_.probe_every) {
    g.calls_since_probe = 0;
    g.probes++;
    g.allowed++;
    return true;
  }
  g.suppressed++;
  return false;
}

bool AdaptiveSpeculationController::gate_open(const std::string& method) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gates_.find(method);
  return it == gates_.end() ? true : it->second.open;
}

AdaptiveSpeculationController::Gate& AdaptiveSpeculationController::gate(
    const std::string& method) {
  return gates_[method];
}

AdaptiveSpeculationController::MethodDecisionStats
AdaptiveSpeculationController::stats(const std::string& method) const {
  std::lock_guard<std::mutex> lock(mu_);
  MethodDecisionStats out;
  out.method = method;
  auto it = gates_.find(method);
  if (it == gates_.end()) return out;
  const Gate& g = it->second;
  out.open = g.open;
  out.allowed = g.allowed;
  out.suppressed = g.suppressed;
  out.probes = g.probes;
  out.flips = g.flips;
  return out;
}

std::vector<AdaptiveSpeculationController::MethodDecisionStats>
AdaptiveSpeculationController::stats_all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MethodDecisionStats> out;
  out.reserve(gates_.size());
  for (const auto& [method, g] : gates_) {
    MethodDecisionStats m;
    m.method = method;
    m.open = g.open;
    m.allowed = g.allowed;
    m.suppressed = g.suppressed;
    m.probes = g.probes;
    m.flips = g.flips;
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace srpc::predict
