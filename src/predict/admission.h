// AdmissionController — load-sheds speculation toward TradRPC under
// pressure (DESIGN.md §11).
//
// The speculation budget (SpecBudget) bounds how much speculative work can
// be in flight; the admission controller decides whether speculation should
// be *attempted at all* given system-wide pressure the budget cannot see:
// transport backpressure (shed frames, outbound-buffer occupancy) and
// executor queue depth. It escalates through a degradation ladder
//
//   kOpen            every tier may speculate
//   kShedBestEffort  best-effort speculation off
//   kShedNormal      normal traffic off too — only critical speculates
//   kShedAll         nobody speculates (pure TradRPC)
//
// with the same hysteresis shape as the AdaptiveSpeculationController's
// accuracy gate: one hot poll escalates a level immediately, but stepping
// back down requires `calm_polls_to_step_down` consecutive calm polls, and
// readings between the lo and hi thresholds hold the current level (the
// hysteresis band). Shed counters are read as monotone deltas-since-last-
// poll (stats::MonotoneDelta), so a counter reset upstream — a transport
// restart — reads as zero pressure for one interval, never as negative.
//
// Accuracy-driven demotion: under pressure (any level above kOpen), a
// method whose tracked hit-rate sits below the break-even accuracy is
// demoted one priority tier before the ladder check — low-accuracy
// speculation is the least valuable work in the system, so it loses budget
// eligibility before high-accuracy speculation at the same nominal
// priority.
//
// Threading: admit() is the hot path — one relaxed atomic load plus a
// rate-limited poll attempt (try_lock; contenders skip). Pressure sources
// are sampled only inside the poll, at most once per poll_interval.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "predict/accuracy.h"
#include "specrpc/qos.h"
#include "stats/monotone.h"

namespace srpc::predict {

/// One reading from a pressure source. `sheds` is a CUMULATIVE counter
/// (e.g. TrafficStats::send_shed + send_drops); the controller converts it
/// to a delta internally. The other two are instantaneous gauges.
struct PressureSample {
  std::uint64_t sheds = 0;        // cumulative shed/dropped frames
  double outbuf_occupancy = 0.0;  // 0..1 of the outbound watermark
  std::size_t queue_depth = 0;    // executor tasks waiting
};

using PressureSource = std::function<PressureSample()>;

struct AdmissionConfig {
  /// Queue-depth thresholds: >= hi is hot, <= lo is calm, between holds.
  std::size_t queue_hi = 512;
  std::size_t queue_lo = 128;
  /// Outbound-buffer occupancy thresholds (fraction of the watermark).
  double outbuf_hi = 0.75;
  double outbuf_lo = 0.25;
  /// Shed frames per poll interval that count as hot. Calm requires zero.
  std::uint64_t shed_hi = 1;
  /// Minimum spacing between source polls; admit() calls in between reuse
  /// the last level.
  Duration poll_interval = std::chrono::milliseconds(2);
  /// Consecutive calm polls required to step the ladder down one level
  /// (the reopen half of the hysteresis).
  int calm_polls_to_step_down = 4;
  /// Accuracy below which a method is demoted one tier under pressure;
  /// negative = use the optmodel break-even at misspec_cost 1.0 (0.5).
  double demote_below_accuracy = -1.0;
  /// Don't demote on accuracy until the tracker has this many samples.
  std::uint64_t demote_min_samples = 8;
};

enum class AdmissionLevel : int {
  kOpen = 0,
  kShedBestEffort = 1,
  kShedNormal = 2,
  kShedAll = 3,
};

inline constexpr const char* to_string(AdmissionLevel l) {
  switch (l) {
    case AdmissionLevel::kOpen: return "open";
    case AdmissionLevel::kShedBestEffort: return "shed-best-effort";
    case AdmissionLevel::kShedNormal: return "shed-normal";
    case AdmissionLevel::kShedAll: return "shed-all";
  }
  return "?";
}

class AdmissionController {
 public:
  /// `tracker` may be null (no accuracy-driven demotion); if set it must
  /// outlive the controller (SpeculationManager owns its tracker and holds
  /// the controller by shared_ptr alongside it).
  explicit AdmissionController(AdmissionConfig config = {},
                               const AccuracyTracker* tracker = nullptr);

  /// Registers a pressure source. Not thread-safe against concurrent
  /// admit(); wire sources up before traffic starts.
  void add_source(PressureSource source);

  /// Assigns a method's nominal priority (default kNormal). Usually fed
  /// from the registry's QoS columns.
  void set_method_priority(const std::string& method,
                           spec::QosPriority priority);

  /// The per-call decision: may speculation for `method` be attempted
  /// right now? Polls the pressure sources if poll_interval has elapsed.
  bool admit(const std::string& method);

  /// Forces a pressure poll regardless of the interval (tests, shutdown
  /// drains). Returns the level after the poll.
  AdmissionLevel tick();

  AdmissionLevel level() const {
    return static_cast<AdmissionLevel>(
        level_.load(std::memory_order_acquire));
  }

  struct Snapshot {
    AdmissionLevel level = AdmissionLevel::kOpen;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;          // admit() == false
    std::uint64_t demotions = 0;     // accuracy-driven tier demotions
    std::uint64_t polls = 0;
    std::uint64_t escalations = 0;   // level steps up
    std::uint64_t deescalations = 0; // level steps down
    std::uint64_t shed_delta_last = 0;  // sheds seen in the last poll
  };
  Snapshot stats() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  void maybe_poll();
  void poll_locked();

  AdmissionConfig config_;
  const AccuracyTracker* tracker_;
  double demote_below_;

  /// The ladder level, lock-free for the admit() fast path.
  std::atomic<int> level_{0};
  std::atomic<std::int64_t> last_poll_ns_{0};

  /// Guards the poll state (sources, deltas, streaks). admit() only
  /// try_locks it; the losing caller proceeds on the last published level.
  std::mutex poll_mu_;
  std::vector<PressureSource> sources_;
  std::vector<stats::MonotoneDelta> shed_deltas_;
  int calm_streak_ = 0;

  mutable std::mutex methods_mu_;
  std::unordered_map<std::string, spec::QosPriority> priorities_;

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<std::uint64_t> deescalations_{0};
  std::atomic<std::uint64_t> shed_delta_last_{0};
};

}  // namespace srpc::predict
