// AccuracyTracker — per-method online prediction-accuracy measurement
// (DESIGN.md §8.3).
//
// Fed from the engine's prediction-validation feedback (the
// SpecConfig::prediction_observer hook; SpeculationManager wires it): every
// speculation-capable call reports whether a prediction was supplied and
// whether it matched the actual result. Two estimators run side by side:
//
//   * an EWMA hit-rate (stats::Ewma) — the controller's primary signal;
//     recent behaviour dominates so accuracy shifts are tracked quickly,
//   * an exact windowed rate over the last `window` outcomes
//     (stats::WindowedRate) — fully forgets old history, so a
//     misspeculation storm is visible at full strength even after a long
//     correct prefix.
//
// Calls for which the predictor supplied nothing can be recorded as
// "shadow" outcomes (predicted=false): they count samples (the predictor
// had its chance and declined) without polluting the hit-rate of actually
// issued predictions — see record()'s contract below.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/ewma.h"

namespace srpc::predict {

struct AccuracyConfig {
  double ewma_alpha = 0.2;
  std::size_t window = 64;
};

/// One method's accuracy snapshot.
struct MethodAccuracy {
  std::string method;
  double ewma_hit_rate = 0.0;      // over issued predictions
  double windowed_hit_rate = 0.0;  // over the last `window` issued predictions
  std::uint64_t predictions = 0;   // outcomes with predicted=true
  std::uint64_t hits = 0;
  std::uint64_t no_prediction = 0;  // outcomes with predicted=false
};

class AccuracyTracker {
 public:
  explicit AccuracyTracker(AccuracyConfig config = {}) : config_(config) {}

  /// Records one validated call. `predicted` — a prediction was issued (or
  /// would have been, for shadow evaluation); `correct` — it matched the
  /// actual result. predicted=false outcomes only bump the no-prediction
  /// counter: the hit-rate estimators measure the quality of predictions
  /// the predictor actually stands behind.
  void record(const std::string& method, bool predicted, bool correct) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entry(method);
    if (!predicted) {
      e.no_prediction++;
      return;
    }
    e.predictions++;
    e.hits += correct ? 1 : 0;
    e.ewma.observe(correct ? 1.0 : 0.0);
    e.window.record(correct);
  }

  /// EWMA hit-rate for `method`; `fallback` when it has no samples yet.
  double hit_rate(const std::string& method, double fallback = 0.0) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(method);
    return it != entries_.end() ? it->second.ewma.value(fallback) : fallback;
  }

  /// Exact hit-rate over the last `window` issued predictions.
  double windowed_hit_rate(const std::string& method,
                           double fallback = 0.0) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(method);
    return it != entries_.end() ? it->second.window.rate(fallback) : fallback;
  }

  /// Number of issued-prediction outcomes recorded for `method`.
  std::uint64_t samples(const std::string& method) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(method);
    return it != entries_.end() ? it->second.predictions : 0;
  }

  MethodAccuracy snapshot(const std::string& method) const {
    std::lock_guard<std::mutex> lock(mu_);
    MethodAccuracy out;
    out.method = method;
    auto it = entries_.find(method);
    if (it == entries_.end()) return out;
    fill(out, it->second);
    return out;
  }

  std::vector<MethodAccuracy> snapshot_all() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MethodAccuracy> out;
    out.reserve(entries_.size());
    for (const auto& [method, e] : entries_) {
      MethodAccuracy m;
      m.method = method;
      fill(m, e);
      out.push_back(std::move(m));
    }
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  struct Entry {
    explicit Entry(const AccuracyConfig& c)
        : ewma(c.ewma_alpha), window(c.window) {}
    stats::Ewma ewma;
    stats::WindowedRate window;
    std::uint64_t predictions = 0;
    std::uint64_t hits = 0;
    std::uint64_t no_prediction = 0;
  };

  Entry& entry(const std::string& method) {
    auto it = entries_.find(method);
    if (it == entries_.end()) {
      it = entries_.emplace(method, Entry(config_)).first;
    }
    return it->second;
  }

  static void fill(MethodAccuracy& out, const Entry& e) {
    out.ewma_hit_rate = e.ewma.value();
    out.windowed_hit_rate = e.window.rate();
    out.predictions = e.predictions;
    out.hits = e.hits;
    out.no_prediction = e.no_prediction;
  }

  AccuracyConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace srpc::predict
