// AdaptiveSpeculationController — per-call speculate / don't-speculate
// decisions from observed accuracy + the optmodel cost model (DESIGN.md
// §8.3).
//
// The paper's §4 optimizer picks hand-off times offline from a known
// prediction-rate curve; this controller closes the same cost/benefit loop
// online. Speculating one call at accuracy p saves ~p*T of chain latency
// and wastes (1-p)*misspec_cost*T of work (opt::speculation_benefit), so
// speculation pays iff p exceeds the break-even accuracy
// opt::break_even_accuracy(misspec_cost). Around that threshold sits a
// hysteresis band: the gate turns OFF when the *windowed* hit-rate (which
// fully forgets old history — a misspeculation storm shows at full
// strength) drops below `break_even - hysteresis`, and back ON only when
// both estimators clear `break_even + hysteresis`. Without the band, a
// method hovering at the threshold would thrash between modes every few
// calls; with it, storms throttle speculation and stay throttled until the
// predictor demonstrably recovers.
//
// While a method's gate is off, every `probe_every`-th call is still
// allowed to speculate. Combined with the engine's shadow feedback
// (predictions_made == 0 calls still report to the observer), this keeps
// the accuracy estimate live so the gate can re-open.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "predict/accuracy.h"

namespace srpc::predict {

struct AdaptiveConfig {
  /// Relative cost of one incorrect speculation, in units of one call time
  /// (wasted callback work + wrong-branch RPC load). 1.0 puts break-even at
  /// 50% accuracy.
  double misspec_cost = 1.0;
  /// Half-width of the hysteresis band around the break-even accuracy.
  double hysteresis = 0.15;
  /// Trust the estimators only after this many issued-prediction samples;
  /// until then the gate stays in its initial (open) state.
  std::uint64_t min_samples = 8;
  /// While off, let every Nth call speculate anyway (0 disables probing).
  std::uint64_t probe_every = 16;
};

class AdaptiveSpeculationController {
 public:
  /// `tracker` must outlive the controller (SpeculationManager owns both).
  AdaptiveSpeculationController(const AccuracyTracker& tracker,
                                AdaptiveConfig config = {});

  /// The per-call decision. Not const: advances probe counters and may flip
  /// the gate. Thread-safe.
  bool should_speculate(const std::string& method);

  /// Current gate state (true = speculating) without advancing anything.
  bool gate_open(const std::string& method) const;

  /// The accuracy below/above which the gate closes/opens.
  double off_threshold() const;
  double on_threshold() const;

  struct MethodDecisionStats {
    std::string method;
    bool open = true;
    std::uint64_t allowed = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t probes = 0;  // allowed while the gate was closed
    std::uint64_t flips = 0;   // gate transitions (both directions)
  };
  MethodDecisionStats stats(const std::string& method) const;
  std::vector<MethodDecisionStats> stats_all() const;

  const AdaptiveConfig& config() const { return config_; }

 private:
  struct Gate {
    bool open = true;
    std::uint64_t allowed = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t probes = 0;
    std::uint64_t flips = 0;
    std::uint64_t calls_since_probe = 0;
  };

  Gate& gate(const std::string& method);

  const AccuracyTracker& tracker_;
  AdaptiveConfig config_;
  double break_even_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Gate> gates_;
};

}  // namespace srpc::predict
