#include "predict/manager.h"

#include <cassert>

namespace srpc::predict {

SpeculationManager::SpeculationManager(PredictorPtr predictor,
                                       ManagerConfig config)
    : state_(std::make_shared<State>(std::move(predictor), config)) {
  assert(state_->predictor != nullptr);
}

spec::PredictionSupplier SpeculationManager::supplier() {
  return [state = state_](const std::string& method,
                          const ValueList& args) -> ValueList {
    state->supplier_calls.fetch_add(1, std::memory_order_relaxed);
    // Overload admission first (DESIGN.md §11): system pressure trumps
    // accuracy — a shed call skips the adaptive gate and the predictor
    // entirely and runs as TradRPC.
    if (state->admission && !state->admission->admit(method)) {
      state->admission_shed.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    if (state->controller && !state->controller->should_speculate(method)) {
      state->gate_suppressed.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    ValueList predictions = state->predictor->predict(method, args);
    if (predictions.empty()) {
      state->predictor_empty.fetch_add(1, std::memory_order_relaxed);
    } else {
      state->predictions_supplied.fetch_add(1, std::memory_order_relaxed);
    }
    return predictions;
  };
}

spec::PredictionObserver SpeculationManager::observer() {
  return [state = state_](const std::string& method, const ValueList& args,
                          const spec::Outcome& actual,
                          std::size_t predictions_made, bool any_correct) {
    if (predictions_made > 0) {
      state->tracker.record(method, true, actual.ok && any_correct);
    } else if (actual.ok) {
      // Shadow evaluation: score what the predictor would have predicted,
      // so accuracy keeps tracking while the gate is closed. Evaluate
      // before learning — learn() may make the prediction trivially right.
      ValueList would = state->predictor->predict(method, args);
      bool hit = false;
      for (const auto& p : would) {
        if (p == actual.value) {
          hit = true;
          break;
        }
      }
      state->tracker.record(method, !would.empty(), hit);
    }
    if (actual.ok) {
      state->predictor->learn(method, args, actual.value);
      state->learned.fetch_add(1, std::memory_order_relaxed);
    }
  };
}

void SpeculationManager::install(spec::SpecConfig& config) {
  config.prediction_supplier = supplier();
  config.prediction_observer = observer();
}

ManagerStats SpeculationManager::stats() const {
  ManagerStats out;
  out.supplier_calls = state_->supplier_calls.load(std::memory_order_relaxed);
  out.predictions_supplied =
      state_->predictions_supplied.load(std::memory_order_relaxed);
  out.gate_suppressed =
      state_->gate_suppressed.load(std::memory_order_relaxed);
  out.admission_shed =
      state_->admission_shed.load(std::memory_order_relaxed);
  out.predictor_empty =
      state_->predictor_empty.load(std::memory_order_relaxed);
  out.learned = state_->learned.load(std::memory_order_relaxed);
  return out;
}

}  // namespace srpc::predict
