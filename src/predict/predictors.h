// The built-in Predictor implementations (DESIGN.md §8.1).
//
// All four are thread-safe (one mutex each; predictors sit on the client
// call path but do constant work per operation) and bounded: keyed state
// lives in an LRU-evicting map so a predictor never grows past
// PredictorConfig::capacity entries regardless of workload key churn.
//
//   LastValuePredictor  — predicts the last observed result per key. The
//     right default for read-mostly workloads (the paper's RC quorum reads:
//     a key's (value, version) pair is stable between writes).
//   TopKFrequencyPredictor — tracks per-key result frequencies and predicts
//     the k most frequent, exploiting SpecRPC's support for *multiple*
//     simultaneous predictions (§2.1: each distinct value speculatively
//     executes a fresh callback).
//   MarkovPredictor     — learns previous-result -> next-result transitions
//     per method and predicts the most likely successor of the last result
//     seen, for flows whose results form sequences independent of args.
//   CachePredictor      — LastValue with a TTL: entries expire after
//     `ttl`, generalizing the web-service-chain cache of the paper's §7
//     Discussion (see examples/spec_cache.cpp).
#pragma once

#include <algorithm>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "predict/predictor.h"

namespace srpc::predict {

namespace detail {

/// Minimal LRU map: unordered_map over a recency list. Not thread-safe;
/// owners lock. Touch-on-read so hot keys survive capacity pressure.
template <typename V>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Returns the value for `key` (touching it) or nullptr.
  V* find(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites, touching the entry; evicts the coldest entry
  /// beyond capacity.
  V& put(const std::string& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return it->second->second;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    return order_.front().second;
  }

  void erase(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  std::size_t size() const { return index_.size(); }

 private:
  using Entry = std::pair<std::string, V>;
  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
};

}  // namespace detail

class LastValuePredictor final : public Predictor {
 public:
  explicit LastValuePredictor(PredictorConfig config = {})
      : entries_(config.capacity) {}

  ValueList predict(const std::string& method, const ValueList& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (Value* v = entries_.find(key_of(method, args))) return {*v};
    return {};
  }

  void learn(const std::string& method, const ValueList& args,
             const Value& actual) override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.put(key_of(method, args), actual);
  }

  void forget(const std::string& method, const ValueList& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(key_of(method, args));
  }

  std::size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  const char* name() const override { return "last"; }

 private:
  mutable std::mutex mu_;
  detail::LruMap<Value> entries_;
};

class TopKFrequencyPredictor final : public Predictor {
 public:
  explicit TopKFrequencyPredictor(PredictorConfig config = {})
      : config_(config), entries_(config.capacity) {}

  ValueList predict(const std::string& method, const ValueList& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    Counts* counts = entries_.find(key_of(method, args));
    if (counts == nullptr) return {};
    // Partial selection of the k most frequent values; ties break toward
    // the smaller Value (operator<) so prediction order is deterministic.
    std::vector<std::pair<const Value*, std::uint64_t>> ranked;
    ranked.reserve(counts->size());
    for (const auto& [value, count] : *counts) ranked.emplace_back(&value, count);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    ValueList out;
    const std::size_t k = static_cast<std::size_t>(std::max(config_.top_k, 1));
    for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
      out.push_back(*ranked[i].first);
    }
    return out;
  }

  void learn(const std::string& method, const ValueList& args,
             const Value& actual) override {
    std::lock_guard<std::mutex> lock(mu_);
    Counts& counts = [&]() -> Counts& {
      if (Counts* c = entries_.find(key_of(method, args))) return *c;
      return entries_.put(key_of(method, args), Counts{});
    }();
    counts[actual]++;
    if (counts.size() > std::max<std::size_t>(config_.values_per_key, 1)) {
      // Evict the least frequent distinct value (first in Value order among
      // minima, deterministically).
      auto victim = counts.begin();
      for (auto it = counts.begin(); it != counts.end(); ++it) {
        if (it->second < victim->second) victim = it;
      }
      counts.erase(victim);
    }
  }

  void forget(const std::string& method, const ValueList& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(key_of(method, args));
  }

  std::size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  const char* name() const override { return "topk"; }

 private:
  using Counts = std::map<Value, std::uint64_t>;  // Value's operator< orders
  mutable std::mutex mu_;
  PredictorConfig config_;
  detail::LruMap<Counts> entries_;
};

class MarkovPredictor final : public Predictor {
 public:
  explicit MarkovPredictor(PredictorConfig config = {})
      : config_(config), methods_(config.capacity) {}

  ValueList predict(const std::string& method, const ValueList& args) override {
    (void)args;  // transitions are a per-method result sequence model
    std::lock_guard<std::mutex> lock(mu_);
    MethodState* state = methods_.find(method);
    if (state == nullptr || !state->has_last) return {};
    auto it = state->transitions.find(state->last);
    if (it == state->transitions.end() || it->second.empty()) return {};
    const auto* best = &*it->second.begin();
    for (const auto& candidate : it->second) {
      if (candidate.second > best->second) best = &candidate;
    }
    return {best->first};
  }

  void learn(const std::string& method, const ValueList& args,
             const Value& actual) override {
    (void)args;
    std::lock_guard<std::mutex> lock(mu_);
    MethodState& state = [&]() -> MethodState& {
      if (MethodState* s = methods_.find(method)) return *s;
      return methods_.put(method, MethodState{});
    }();
    if (state.has_last) {
      auto& nexts = state.transitions[state.last];
      nexts[actual]++;
      if (state.transitions.size() >
          std::max<std::size_t>(config_.values_per_key, 1)) {
        // Bound the per-method transition table: drop the state with the
        // fewest observed exits (deterministic: first minimum in key order).
        auto victim = state.transitions.begin();
        for (auto it = state.transitions.begin();
             it != state.transitions.end(); ++it) {
          if (weight(it->second) < weight(victim->second)) victim = it;
        }
        state.transitions.erase(victim);
      }
    }
    state.last = actual;
    state.has_last = true;
  }

  void forget(const std::string& method, const ValueList& args) override {
    (void)args;
    std::lock_guard<std::mutex> lock(mu_);
    methods_.erase(method);
  }

  std::size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return methods_.size();
  }

  const char* name() const override { return "markov"; }

 private:
  using Counts = std::map<Value, std::uint64_t>;
  struct MethodState {
    std::map<Value, Counts> transitions;
    Value last;
    bool has_last = false;
  };
  static std::uint64_t weight(const Counts& c) {
    std::uint64_t w = 0;
    for (const auto& [_, n] : c) w += n;
    return w;
  }

  mutable std::mutex mu_;
  PredictorConfig config_;
  detail::LruMap<MethodState> methods_;
};

class CachePredictor final : public Predictor {
 public:
  explicit CachePredictor(PredictorConfig config = {})
      : config_(config), entries_(config.capacity) {}

  ValueList predict(const std::string& method, const ValueList& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* e = entries_.find(key_of(method, args));
    if (e == nullptr) return {};
    if (Clock::now() >= e->expires) {
      entries_.erase(key_of(method, args));
      return {};
    }
    return {e->value};
  }

  void learn(const std::string& method, const ValueList& args,
             const Value& actual) override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.put(key_of(method, args), Entry{actual, Clock::now() + config_.ttl});
  }

  void forget(const std::string& method, const ValueList& args) override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(key_of(method, args));
  }

  std::size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  const char* name() const override { return "cache"; }

 private:
  struct Entry {
    Value value;
    TimePoint expires;
  };
  mutable std::mutex mu_;
  PredictorConfig config_;
  detail::LruMap<Entry> entries_;
};

}  // namespace srpc::predict
