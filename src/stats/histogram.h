// Latency statistics for the benchmark harness.
//
// Histogram: log-bucketed (HDR-flavoured) over microseconds; supports mean,
// arbitrary percentiles and CDF extraction — the evaluation reports means
// (Figures 8, 9, 13), medians and p99s (Figure 10) and full CDFs (Figure 11).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace srpc::stats {

class Histogram {
 public:
  Histogram();

  /// Copy/move snapshot the source under its lock; the mutex itself is not
  /// transferred (results structs are returned by value from run drivers).
  Histogram(const Histogram& other);
  Histogram(Histogram&& other) noexcept;
  Histogram& operator=(const Histogram& other);

  void record(Duration latency);
  void record_us(double us);

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

  std::uint64_t count() const;
  double mean_us() const;
  double percentile_us(double p) const;  // p in [0, 100]
  double min_us() const;
  double max_us() const;

  double mean_ms() const { return mean_us() / 1000.0; }
  double percentile_ms(double p) const { return percentile_us(p) / 1000.0; }

  /// (latency_us, cumulative_fraction) pairs, one per non-empty bucket.
  std::vector<std::pair<double, double>> cdf() const;

  void reset();

 private:
  // Buckets: 128 per power of two, covering 1us .. ~1200s.
  static constexpr int kSubBuckets = 128;
  static constexpr int kRanges = 40;

  static int bucket_for(double us);
  static double bucket_mid_us(int bucket);

  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_us_ = 0;
  double min_us_ = 0;
  double max_us_ = 0;
};

/// Convenience: throughput + latency accumulator for one closed-loop run.
class RunStats {
 public:
  void record(Duration latency) { hist_.record(latency); }
  Histogram& histogram() { return hist_; }
  const Histogram& histogram() const { return hist_; }

  void start() { start_ = Clock::now(); }
  void stop() { stop_ = Clock::now(); }
  double elapsed_s() const {
    return std::chrono::duration<double>(stop_ - start_).count();
  }
  double throughput_per_s() const {
    const double s = elapsed_s();
    return s > 0 ? static_cast<double>(hist_.count()) / s : 0.0;
  }

 private:
  Histogram hist_;
  TimePoint start_{};
  TimePoint stop_{};
};

}  // namespace srpc::stats
