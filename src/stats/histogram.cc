#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace srpc::stats {

Histogram::Histogram() : buckets_(kSubBuckets * kRanges, 0) {}

Histogram::Histogram(const Histogram& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  buckets_ = other.buckets_;
  count_ = other.count_;
  sum_us_ = other.sum_us_;
  min_us_ = other.min_us_;
  max_us_ = other.max_us_;
}

Histogram::Histogram(Histogram&& other) noexcept : Histogram(other) {}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  Histogram snapshot(other);
  std::lock_guard<std::mutex> lock(mu_);
  buckets_ = std::move(snapshot.buckets_);
  count_ = snapshot.count_;
  sum_us_ = snapshot.sum_us_;
  min_us_ = snapshot.min_us_;
  max_us_ = snapshot.max_us_;
  return *this;
}

int Histogram::bucket_for(double us) {
  if (us < 1.0) us = 1.0;
  const int range = std::min(kRanges - 1, static_cast<int>(std::log2(us)));
  const double lo = std::pow(2.0, range);
  int sub = static_cast<int>((us - lo) / lo * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return range * kSubBuckets + sub;
}

double Histogram::bucket_mid_us(int bucket) {
  const int range = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  const double lo = std::pow(2.0, range);
  return lo + (sub + 0.5) * lo / kSubBuckets;
}

void Histogram::record(Duration latency) {
  record_us(std::chrono::duration<double, std::micro>(latency).count());
}

void Histogram::record_us(double us) {
  if (us < 0) us = 0;
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[static_cast<std::size_t>(bucket_for(us))]++;
  if (count_ == 0 || us < min_us_) min_us_ = us;
  if (count_ == 0 || us > max_us_) max_us_ = us;
  count_++;
  sum_us_ += us;
}

void Histogram::merge(const Histogram& other) {
  // Lock ordering by address avoids deadlock on concurrent cross-merges.
  if (this == &other) return;
  const Histogram* first = this < &other ? this : &other;
  const Histogram* second = this < &other ? &other : this;
  std::lock_guard<std::mutex> lock1(first->mu_);
  std::lock_guard<std::mutex> lock2(second->mu_);
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_us_ < min_us_) min_us_ = other.min_us_;
    if (count_ == 0 || other.max_us_ > max_us_) max_us_ = other.max_us_;
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::mean_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
}

double Histogram::min_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_us_;
}

double Histogram::max_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_us_;
}

double Histogram::percentile_us(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0)
      return bucket_mid_us(static_cast<int>(i));
  }
  return max_us_;
}

std::vector<std::pair<double, double>> Histogram::cdf() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<double, double>> out;
  if (count_ == 0) return out;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    out.emplace_back(bucket_mid_us(static_cast<int>(i)),
                     static_cast<double>(seen) / static_cast<double>(count_));
  }
  return out;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_us_ = 0;
  min_us_ = 0;
  max_us_ = 0;
}

}  // namespace srpc::stats
