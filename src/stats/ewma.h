// Small online-rate estimators shared by the prediction subsystem and the
// benchmark harness.
//
// Ewma: exponentially weighted moving average over a stream of samples —
// the estimator behind per-method prediction hit-rates (recent behaviour
// dominates, old history decays geometrically). WindowedRate: exact hit
// fraction over the last `window` boolean outcomes (a ring buffer), used
// where a bounded, fully-forgetting counter is wanted (misspeculation-storm
// detection must not be diluted by a long correct history).
//
// Neither class locks; owners that share instances across threads guard
// them externally (see predict::AccuracyTracker).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace srpc::stats {

class Ewma {
 public:
  /// `alpha` is the weight of each new sample, in (0, 1]. The first sample
  /// initializes the average exactly (no bias toward a zero prior).
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void observe(double sample) {
    if (count_ == 0) {
      value_ = sample;
    } else {
      value_ += alpha_ * (sample - value_);
    }
    ++count_;
  }

  /// Current average; `fallback` when no sample has been observed yet.
  double value(double fallback = 0.0) const {
    return count_ > 0 ? value_ : fallback;
  }
  std::uint64_t count() const { return count_; }
  double alpha() const { return alpha_; }

  void reset() {
    value_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  std::uint64_t count_ = 0;
};

class WindowedRate {
 public:
  explicit WindowedRate(std::size_t window = 64)
      : slots_(window > 0 ? window : 1, false) {}

  void record(bool hit) {
    if (filled_ == slots_.size()) {
      // Evict the slot we are about to overwrite.
      hits_ -= slots_[next_] ? 1 : 0;
    } else {
      ++filled_;
    }
    slots_[next_] = hit;
    hits_ += hit ? 1 : 0;
    next_ = (next_ + 1) % slots_.size();
    ++total_;
  }

  /// Hit fraction over the retained window; `fallback` when empty.
  double rate(double fallback = 0.0) const {
    return filled_ > 0 ? static_cast<double>(hits_) /
                             static_cast<double>(filled_)
                       : fallback;
  }
  std::size_t window() const { return slots_.size(); }
  std::size_t occupied() const { return filled_; }
  /// Lifetime count of recorded outcomes (not bounded by the window).
  std::uint64_t total() const { return total_; }
  std::uint64_t hits_in_window() const { return hits_; }

  void reset() {
    std::fill(slots_.begin(), slots_.end(), false);
    filled_ = 0;
    hits_ = 0;
    next_ = 0;
    total_ = 0;
  }

 private:
  std::vector<bool> slots_;
  std::size_t filled_ = 0;
  std::size_t next_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

/// Exact mean over the last `window` real-valued samples (ring buffer) —
/// the fully-forgetting counterpart of Ewma for non-boolean signals, used
/// by the adaptive batch controller where a conflict spike must show at
/// full strength even after a long calm history (the WindowedRate idea,
/// lifted from booleans to means).
class WindowedMean {
 public:
  explicit WindowedMean(std::size_t window = 16)
      : slots_(window > 0 ? window : 1, 0.0) {}

  void observe(double sample) {
    if (filled_ == slots_.size()) {
      sum_ -= slots_[next_];
    } else {
      ++filled_;
    }
    slots_[next_] = sample;
    sum_ += sample;
    next_ = (next_ + 1) % slots_.size();
    ++total_;
  }

  /// Mean over the retained window; `fallback` when empty.
  double mean(double fallback = 0.0) const {
    return filled_ > 0 ? sum_ / static_cast<double>(filled_) : fallback;
  }
  std::size_t window() const { return slots_.size(); }
  std::size_t occupied() const { return filled_; }
  std::uint64_t total() const { return total_; }

  void reset() {
    std::fill(slots_.begin(), slots_.end(), 0.0);
    filled_ = 0;
    next_ = 0;
    sum_ = 0.0;
    total_ = 0;
  }

 private:
  std::vector<double> slots_;
  std::size_t filled_ = 0;
  std::size_t next_ = 0;
  double sum_ = 0.0;
  std::uint64_t total_ = 0;
};

}  // namespace srpc::stats
