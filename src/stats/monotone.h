// MonotoneDelta — delta-since-last-poll view of a cumulative counter
// (DESIGN.md §11).
//
// Pollers of relaxed monotone counters (TrafficStats::send_shed, executor
// queue totals) must never interpret a counter that moved *backwards* — a
// stats reset, a transport restart, a counter re-zeroed by a reconnect — as
// negative pressure. Same pattern as SimNetwork::fault_stats consumers:
// when the current reading is below the remembered baseline, re-baseline
// and report zero for that interval.
#pragma once

#include <cstdint>

namespace srpc::stats {

class MonotoneDelta {
 public:
  /// Returns current - last reading, clamped to >= 0. A reading below the
  /// previous one (counter reset upstream) re-baselines and returns 0.
  std::uint64_t advance(std::uint64_t current) {
    const std::uint64_t delta = current >= last_ ? current - last_ : 0;
    last_ = current;
    return delta;
  }

  std::uint64_t last() const { return last_; }

 private:
  std::uint64_t last_ = 0;
};

}  // namespace srpc::stats
