// Real TCP transport (epoll, non-blocking, length-prefixed frames).
//
// Used by the examples and integration tests to show the frameworks running
// over genuine sockets; benches use SimNetwork for controlled latency.
//
// Frame format: u32 little-endian payload length, then payload bytes. The
// first frame on every outbound connection is a handshake that announces the
// sender's listening address ("host:port"), so the receiver can attribute
// inbound frames and reuse the connection for replies.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/executor.h"
#include "common/strand.h"
#include "transport/transport.h"

namespace srpc {

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on 127.0.0.1:`port` (port 0 picks a free port).
  /// Receiver callbacks run on `executor`, serialized per peer.
  explicit TcpTransport(Executor& executor, std::uint16_t port = 0);
  ~TcpTransport() override;

  const Address& address() const override { return addr_; }
  void send(const Address& dst, Bytes payload) override;
  void set_receiver(Receiver receiver) override;

  TrafficStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    Address peer;        // empty until handshake received (inbound conns)
    Bytes inbuf;
    Bytes outbuf;
    std::size_t out_off = 0;
    bool want_write = false;
    std::shared_ptr<Strand> strand;
  };

  void io_loop();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void close_conn(int fd);
  Conn* connect_to(const Address& dst);  // caller holds mu_
  void queue_frame(Conn& conn, const Bytes& payload);  // caller holds mu_
  void wake();

  Executor& executor_;
  Address addr_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread io_thread_;

  mutable std::mutex mu_;
  Receiver receiver_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;       // by fd
  std::unordered_map<Address, int> by_peer_;                   // peer -> fd
  TrafficStats stats_;
};

}  // namespace srpc
