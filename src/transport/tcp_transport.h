// Real TCP transport (epoll, non-blocking, length-prefixed frames).
//
// Used by the examples and integration tests to show the frameworks running
// over genuine sockets; benches use SimNetwork for controlled latency.
//
// Frame format: u32 little-endian payload length, then payload bytes. The
// first frame on every outbound connection is a handshake that announces the
// sender's listening address ("host:port"), so the receiver can attribute
// inbound frames and reuse the connection for replies.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/executor.h"
#include "common/strand.h"
#include "transport/transport.h"

namespace srpc {

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on 127.0.0.1:`port` (port 0 picks a free port).
  /// Receiver callbacks run on `executor`, serialized per peer.
  explicit TcpTransport(Executor& executor, std::uint16_t port = 0);
  ~TcpTransport() override;

  const Address& address() const override { return addr_; }
  void send(const Address& dst, Bytes payload) override;
  void set_receiver(Receiver receiver) override;
  void quiesce() override;

  TrafficStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    Address peer;        // empty until handshake received (inbound conns)
    Bytes inbuf;
    Bytes outbuf;
    std::size_t out_off = 0;
    bool want_write = false;
    std::shared_ptr<Strand> strand;
  };

  void io_loop();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void close_conn(int fd);
  Conn* connect_to(const Address& dst);  // caller holds mu_
  /// Appends a length-prefixed data frame (0x00 marker + payload) to conn's
  /// outbuf in place and accounts the payload bytes (framing/marker bytes
  /// are not counted). Caller holds mu_. The handshake frame (0x01 marker)
  /// is built by connect_to directly and is not stats-accounted.
  void queue_frame(Conn& conn, const Bytes& payload);
  void wake();

  Executor& executor_;
  Address addr_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread io_thread_;

  /// Receiver slot shared with queued strand tasks: tasks re-read the
  /// current receiver at run time (never a stale copy) and count themselves
  /// in flight, so set_receiver(nullptr) + quiesce() is a real barrier even
  /// for deliveries still queued on the executor. shared_ptr because those
  /// tasks may run after ~TcpTransport when the executor outlives it.
  struct RecvGate {
    std::mutex mu;
    std::condition_variable cv;
    Receiver receiver;
    int in_flight = 0;
  };
  std::shared_ptr<RecvGate> gate_ = std::make_shared<RecvGate>();

  mutable std::mutex mu_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;       // by fd
  std::unordered_map<Address, int> by_peer_;                   // peer -> fd

  // Relaxed atomics (like SimNetwork's per-endpoint counters) so stats()
  // never depends on the mu_ discipline of the send and io paths.
  std::atomic<std::uint64_t> msgs_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> msgs_recv_{0};
  std::atomic<std::uint64_t> bytes_recv_{0};
};

}  // namespace srpc
