// Real TCP transport: sharded multi-reactor epoll, write coalescing,
// bounded outbound buffers with backpressure.
//
// Architecture (DESIGN.md §10):
//
//   * N reactor threads, each with its own epoll instance and eventfd.
//     Connections are assigned to a reactor by fd hash at creation and
//     never migrate; all epoll_ctl calls and ::close for a connection
//     happen on its owning reactor thread, so fd lifecycle is single-
//     threaded and interest is updated with targeted epoll_ctl on state
//     change (edge-triggered), never a full per-tick re-arm.
//
//   * send() appends a frame (header + payload, payload moved not copied)
//     to the connection's pending queue under that connection's own mutex,
//     then marks the connection dirty with its reactor. The eventfd is
//     written only when the owning reactor may actually be sleeping in
//     epoll_wait and no wake is already pending (dirty-flag + pending-wake
//     bit), so a burst of sends costs one wakeup syscall, not one per
//     message. The global mutex survives only for the by_peer_ routing
//     map and is taken briefly, never across a syscall.
//
//   * The reactor drains a connection by swapping the pending queue for
//     its private draining queue (double buffering: senders never wait on
//     the syscall) and gathering up to TcpConfig::coalesce_bytes of frame
//     headers + payloads into one writev. On EAGAIN it arms EPOLLOUT for
//     that connection only; once drained it disarms.
//
//   * Inbound bytes are read into a BufferPool-recycled buffer and frames
//     are consumed by offset; compaction is deferred until the consumed
//     prefix dominates the buffer. The 4-byte frame length is validated
//     against max_frame_bytes before any buffering — a corrupt or hostile
//     length closes the connection (counted in TrafficStats::
//     frames_rejected) instead of driving an unbounded allocation.
//
//   * Outbound queues are bounded by a high watermark. A sender that
//     overflows it either blocks until the reactor drains below the low
//     watermark (kBlock, the default — closed-loop callers self-clock) or
//     sheds the frame with a counter (kShed, for fire-and-forget traffic
//     where the retry layer owns reliability).
//
// Frame format (unchanged from the single-reactor transport): u32
// little-endian length covering a 1-byte marker + payload. Marker 0x00 is
// data; 0x01 is the handshake announcing the dialer's listening address,
// sent first on every outbound connection.
//
// Simultaneous connect: when two nodes dial each other concurrently the
// handshake can discover a second connection for the same peer. Both sides
// deterministically route to the connection whose *dialer* has the
// lexicographically lower address; the loser is demoted (no new sends),
// flushed, and closed by the side that dialed it. Frames already queued on
// the loser still arrive, but ordering between the last loser frames and
// the first winner frames is not guaranteed — the same transient the
// retry/dedup layer already tolerates from SimNetwork's reorder faults.
//
// Lock order: a reactor's registry mutex and the global by_peer_ mutex are
// never held together; a connection's send mutex is a leaf (no other lock
// is ever taken under it).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/strand.h"
#include "transport/transport.h"

namespace srpc {

struct TcpConfig {
  /// Listening port; 0 picks a free port on 127.0.0.1.
  std::uint16_t port = 0;
  /// Reactor (epoll) threads. 0 = auto: min(4, hardware_concurrency).
  int reactors = 0;
  /// Upper bound on one frame's payload. Inbound violations close the
  /// connection (frames_rejected); oversized send() payloads are refused
  /// and counted as send_drops.
  std::size_t max_frame_bytes = 64u << 20;
  /// Max bytes gathered into a single writev (frame boundaries respected).
  std::size_t coalesce_bytes = 256u << 10;
  /// SO_SNDBUF for every connection; 0 = kernel default/autotuning. Tests
  /// set this small so the outbuf watermark — not megabytes of kernel
  /// buffer — absorbs a slow peer.
  std::size_t so_sndbuf = 0;
  /// Outbound queue high watermark per connection (pending + draining
  /// bytes). 0 = unbounded (no backpressure, the historical behaviour).
  std::size_t outbuf_hi_watermark = 0;
  /// Blocked senders resume below this; 0 = half of the high watermark.
  std::size_t outbuf_lo_watermark = 0;
  enum class OverflowPolicy {
    kBlock,  // send() blocks until the queue drains (or the conn dies)
    kShed,   // send() drops the frame and counts it in send_shed
  };
  OverflowPolicy overflow = OverflowPolicy::kBlock;
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on 127.0.0.1:`port` (port 0 picks a free port).
  /// Receiver callbacks run on `executor`, serialized per connection.
  explicit TcpTransport(Executor& executor, std::uint16_t port = 0);
  TcpTransport(Executor& executor, TcpConfig config);
  ~TcpTransport() override;

  const Address& address() const override { return addr_; }
  bool send(const Address& dst, Bytes payload) override;
  void set_receiver(Receiver receiver) override;
  void quiesce() override;

  TrafficStats stats() const;
  int reactor_count() const { return static_cast<int>(reactors_.size()); }

 private:
  /// One length-prefixed frame awaiting transmission. The header (length +
  /// marker) lives inline; the payload is the caller's Bytes, moved — the
  /// writev gather is the first and only time the bytes are walked.
  struct OutFrame {
    std::array<std::uint8_t, 5> header;
    Bytes payload;
  };

  struct Conn {
    int fd = -1;
    std::size_t reactor = 0;   // owning reactor index (fd-hash assigned)
    bool outbound = false;     // we dialed it (vs accepted)
    std::shared_ptr<Strand> strand;

    // ---- send side, guarded by send_mu (leaf lock) ----
    std::mutex send_mu;
    std::condition_variable send_cv;  // backpressure waiters
    std::vector<OutFrame> pending;    // writers append here
    std::size_t pending_bytes = 0;    // wire bytes represented by `pending`
    std::size_t draining_bytes = 0;   // wire bytes left in `draining`
    bool scheduled = false;  // reactor attention requested (dirty/EPOLLOUT)
    bool demoted = false;    // lost simultaneous-connect dedup: flush, stop
    bool closed = false;
    int block_waiters = 0;
    Address peer;  // empty until handshake received (inbound conns)

    // ---- reactor-private state (owning reactor thread only) ----
    std::vector<OutFrame> draining;
    std::size_t drain_frame = 0;  // first unsent frame in draining
    std::size_t drain_off = 0;    // bytes of that frame already written
    Bytes stage;  // small-frame coalescing buffer for the writev gather
    bool epoll_added = false;
    bool epollout_armed = false;
    /// Receive buffer. inbuf.size() is allocated space (grown, never shrunk
    /// per read — a per-read resize() would memset the whole chunk);
    /// in_len is the valid prefix, in_off the consumed prefix.
    Bytes inbuf;
    std::size_t in_len = 0;
    std::size_t in_off = 0;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  struct Reactor {
    int epfd = -1;
    int wakefd = -1;
    std::thread thread;
    /// True while the reactor may be blocked in epoll_wait. Paired with
    /// wake_pending: a sender writes the eventfd only when it wins the
    /// pending bit *and* the reactor might be asleep.
    std::atomic<bool> sleeping{false};
    std::atomic<bool> wake_pending{false};
    std::mutex mu;  // guards conns + dirty
    std::unordered_map<int, ConnPtr> conns;
    std::vector<ConnPtr> dirty;
  };

  void start(TcpConfig config);
  void reactor_loop(Reactor& r);
  void handle_accept();
  void handle_readable(Reactor& r, const ConnPtr& conn);
  void drain_conn(Reactor& r, const ConnPtr& conn);
  void close_conn(Reactor& r, const ConnPtr& conn);
  /// Hands every data payload parsed from one read pass to the receiver as
  /// a single strand task: the task, allocation, and gate costs are per
  /// read batch, not per frame. Drops the batch if the peer is still
  /// unhandshaken (nothing to attribute it to).
  void deliver_batch(const ConnPtr& conn, std::vector<Bytes>&& payloads,
                     std::size_t payload_bytes);
  /// Routes handshake dedup: returns the surviving mapping for `peer`.
  void on_handshake(Reactor& r, const ConnPtr& conn, Address peer);

  ConnPtr lookup_or_connect(const Address& dst);
  Reactor& reactor_of(const Conn& conn) { return *reactors_[conn.reactor]; }
  /// Marks `conn` dirty with its reactor and wakes it if it may be asleep.
  void schedule_conn(const ConnPtr& conn);
  void enqueue_dirty(Reactor& r, ConnPtr conn);
  void maybe_wake(Reactor& r);
  /// Reactor-thread only: set or clear EPOLLOUT interest via targeted
  /// epoll_ctl (MOD with ADD fallback for not-yet-registered conns).
  void update_interest(Reactor& r, Conn& conn, bool want_out);

  Executor& executor_;
  TcpConfig config_;
  Address addr_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Reactor>> reactors_;

  /// Receiver slot shared with queued strand tasks: tasks re-read the
  /// current receiver at run time (never a stale copy) and count themselves
  /// in flight, so set_receiver(nullptr) + quiesce() is a real barrier even
  /// for deliveries still queued on the executor. shared_ptr because those
  /// tasks may run after ~TcpTransport when the executor outlives it.
  struct RecvGate {
    std::mutex mu;
    std::condition_variable cv;
    Receiver receiver;
    int in_flight = 0;
  };
  std::shared_ptr<RecvGate> gate_ = std::make_shared<RecvGate>();

  /// Guards by_peer_ only. Taken briefly for routing lookups, handshake
  /// dedup, and close-time unmapping — never across a syscall.
  mutable std::mutex mu_;
  std::unordered_map<Address, ConnPtr> by_peer_;

  // Relaxed atomics so stats() never depends on any lock discipline.
  std::atomic<std::uint64_t> msgs_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> msgs_recv_{0};
  std::atomic<std::uint64_t> bytes_recv_{0};
  std::atomic<std::uint64_t> send_drops_{0};
  std::atomic<std::uint64_t> send_shed_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> wakeups_{0};
};

}  // namespace srpc
