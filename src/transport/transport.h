// Abstract message transport.
//
// Both RPC engines (TradRPC/GrpcSim and SpecRPC) are written against this
// interface, so they run unchanged over the in-process simulated network
// (benches, deterministic tests) and over real TCP (examples, integration
// tests).
#pragma once

#include <functional>
#include <string>

#include "common/types.h"

namespace srpc {

/// Opaque node address. SimNetwork uses logical names ("dc0.server1");
/// TcpTransport uses "host:port".
using Address = std::string;

class Transport {
 public:
  /// Delivery callback: (source address, payload). Implementations invoke
  /// receivers serially per transport (FIFO per source under the hood).
  using Receiver = std::function<void(const Address& src, Bytes payload)>;

  virtual ~Transport() = default;

  virtual const Address& address() const = 0;

  /// Fire-and-forget datagram-with-TCP-semantics: reliable, FIFO per
  /// (src,dst) pair. `payload` is moved out.
  ///
  /// Returns false when the transport refused the frame *locally* — connect
  /// failure, connection already closed, outbound watermark shed, oversized
  /// payload — i.e. the bytes never left this process and waiting out an
  /// attempt timeout for them is pure latency. Callers that own retries
  /// (rpc::Node, SpecEngine) fail the attempt fast on false. Modeled
  /// in-network loss (SimNetwork faults) still returns true: those frames
  /// did leave, and the timeout path is the correct detector. Not
  /// [[nodiscard]] on purpose: fire-and-forget senders (state propagation,
  /// responses) legitimately ignore the result.
  virtual bool send(const Address& dst, Bytes payload) = 0;

  /// Must be set before the first message can be delivered.
  virtual void set_receiver(Receiver receiver) = 0;

  /// Blocks until no receiver invocation is in flight. Call after
  /// `set_receiver(nullptr)`: once quiesce() returns, the previous receiver
  /// — and everything it captures — can safely be destroyed. Without it a
  /// delivery that copied the receiver just before the swap may still be
  /// executing (DESIGN.md §7.4). Default is a no-op for transports that
  /// never invoke receivers concurrently with set_receiver.
  virtual void quiesce() {}
};

/// Byte/message counters per transport endpoint, split by direction.
/// Figure 8c reports exactly the first four series; the rest are loss /
/// protection counters a real transport needs to make drops observable
/// (SimNetwork models loss separately via FaultStats and leaves them 0).
struct TrafficStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  /// send() could not reach the peer (connect failed / connection already
  /// closed): the frame was dropped after a WARN. The retry layer turns
  /// these into timeouts; the counter makes them visible without log
  /// scraping.
  std::uint64_t send_drops = 0;
  /// Frames shed by the outbound watermark (TcpConfig::OverflowPolicy::
  /// kShed, or a blocked sender released by shutdown/close).
  std::uint64_t send_shed = 0;
  /// Inbound frames whose length prefix failed validation (0 or larger
  /// than max_frame_bytes); the connection is closed when this trips.
  std::uint64_t frames_rejected = 0;
  /// Reactor wakeup syscalls issued by senders (eventfd writes). The wake
  /// protocol coalesces many send() calls into one wakeup; the bench
  /// reports msgs_sent / wakeups as the batching factor.
  std::uint64_t wakeups = 0;

  TrafficStats& operator+=(const TrafficStats& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    send_drops += o.send_drops;
    send_shed += o.send_shed;
    frames_rejected += o.frames_rejected;
    wakeups += o.wakeups;
    return *this;
  }
};

}  // namespace srpc
