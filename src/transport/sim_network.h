// In-process simulated network.
//
// Models the paper's testbed: machines connected by links with configurable
// one-way delay and jitter (the paper injects WAN RTTs with `tc`, Table 1).
// Each registered node gets a Transport endpoint; send() accounts bytes,
// draws a link delay, and schedules delivery through the shared TimerWheel.
// Delivery runs on a per-destination Strand, preserving FIFO order per
// directed pair — the same guarantee TCP gives the original system.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/executor.h"
#include "common/rng.h"
#include "common/strand.h"
#include "common/timer_wheel.h"
#include "transport/transport.h"

namespace srpc {

struct SimConfig {
  int executor_threads = 8;
  /// Link delay when no explicit entry exists (one-way).
  Duration default_delay = std::chrono::microseconds(50);
  /// Uniform jitter in [0, jitter] added per message.
  Duration default_jitter = Duration::zero();
  std::uint64_t seed = 1;
};

class SimNetwork {
 public:
  using Config = SimConfig;

  explicit SimNetwork(Config config = Config());
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a node; the returned Transport is owned by the network and
  /// valid until the network is destroyed.
  Transport& add_node(const Address& addr);

  /// Sets the one-way delay (and optional jitter) for messages a -> b only.
  void set_one_way(const Address& a, const Address& b, Duration delay,
                   Duration jitter = Duration::zero());

  /// Symmetric helper: RTT/2 each way.
  void set_rtt(const Address& a, const Address& b, Duration rtt,
               Duration jitter = Duration::zero());

  TrafficStats stats(const Address& addr) const;
  TrafficStats total_stats() const;
  void reset_stats();

  /// Drops all queued-but-undelivered messages (fault injection in tests).
  void partition(const Address& a, const Address& b, bool blocked);

  TimerWheel& wheel() { return wheel_; }
  Executor& executor() { return executor_; }

 private:
  class Node;
  struct Link {
    Duration delay;
    Duration jitter;
    bool blocked = false;
    TimePoint last_delivery{};  // enforces per-pair FIFO
  };

  void do_send(Node& src, const Address& dst, Bytes payload);
  Link& link_for(const Address& a, const Address& b);

  Config config_;
  Executor executor_;
  TimerWheel wheel_;
  mutable std::mutex mu_;
  Rng rng_;
  std::unordered_map<Address, std::unique_ptr<Node>> nodes_;
  std::map<std::pair<Address, Address>, Link> links_;
};

}  // namespace srpc
