// In-process simulated network.
//
// Models the paper's testbed: machines connected by links with configurable
// one-way delay and jitter (the paper injects WAN RTTs with `tc`, Table 1).
// Each registered node gets a Transport endpoint; send() accounts bytes,
// draws a link delay, and schedules delivery through the shared TimerWheel.
// Delivery runs on a per-destination Strand, preserving FIFO order per
// directed pair — the same guarantee TCP gives the original system.
//
// Locking model (hot path takes no network-global mutex):
//   - Link state is sharded by source endpoint: each Node owns its outbound
//     peer table (destination pointer, delay/jitter/partition, FIFO clamp,
//     jitter Rng) under a per-node mutex. send() takes only that per-source
//     lock plus the destination's atomic stats — never a network-wide one.
//   - The node directory is guarded by a shared_mutex: exclusive for
//     add_node(), shared for cold-path lookups (first message to a peer,
//     control-plane calls, stats aggregation). Nodes are never removed, so
//     cached Node pointers stay valid for the network's lifetime.
//   - Link configuration set before traffic flows (or before the endpoints
//     exist) lives in link_cfg_ under cfg_mu_; it is consulted only when a
//     Node first materializes a peer entry. Control-plane updates
//     (set_one_way, partition) write link_cfg_ and then patch any live peer
//     entry, each under its own lock, never nested.
//   - Per-endpoint traffic counters are relaxed atomics; stats() aggregates
//     them on read.
//
// Fault injection: each link additionally carries a FaultCfg (probabilistic
// drop, duplication, and a bounded reordering window) that rides the same
// LinkCfg/peer-entry path as delay and partition state, so the hot path
// still takes only the per-source lock. Scheduled link flaps toggle the
// partition bit on the timer wheel. All fault decisions draw from the
// per-source deterministic Rng, so a fixed seed reproduces a fault schedule.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "common/strand.h"
#include "common/timer_wheel.h"
#include "transport/transport.h"

namespace srpc {

/// Per-link fault injection knobs. All default to "no faults".
struct FaultCfg {
  /// Probability a message is silently dropped.
  double drop_prob = 0.0;
  /// Probability a message is delivered twice (second copy arrives slightly
  /// later, outside the FIFO order).
  double dup_prob = 0.0;
  /// When > 0, each message may be held back by up to `reorder_window`
  /// extra slots of `reorder_slack` each and is exempted from the per-pair
  /// FIFO clamp, so later messages can overtake it.
  int reorder_window = 0;
  Duration reorder_slack = std::chrono::microseconds(100);

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || reorder_window > 0;
  }
};

/// Aggregate counts of injected faults (monotone, relaxed atomics inside).
struct FaultStats {
  std::uint64_t dropped = 0;     // includes messages eaten by partitions
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
};

struct SimConfig {
  int executor_threads = 8;
  /// Link delay when no explicit entry exists (one-way).
  Duration default_delay = std::chrono::microseconds(50);
  /// Uniform jitter in [0, jitter] added per message.
  Duration default_jitter = Duration::zero();
  /// Faults applied to links with no explicit per-link entry.
  FaultCfg default_faults;
  std::uint64_t seed = 1;
};

class SimNetwork {
 public:
  using Config = SimConfig;

  explicit SimNetwork(Config config = Config());
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a node; the returned Transport is owned by the network and
  /// valid until the network is destroyed.
  Transport& add_node(const Address& addr);

  /// Sets the one-way delay (and optional jitter) for messages a -> b only.
  void set_one_way(const Address& a, const Address& b, Duration delay,
                   Duration jitter = Duration::zero());

  /// Symmetric helper: RTT/2 each way.
  void set_rtt(const Address& a, const Address& b, Duration rtt,
               Duration jitter = Duration::zero());

  TrafficStats stats(const Address& addr) const;
  TrafficStats total_stats() const;
  void reset_stats();

  /// Drops all queued-but-undelivered messages (fault injection in tests).
  void partition(const Address& a, const Address& b, bool blocked);

  /// Sets the fault profile for messages a -> b only.
  void set_faults(const Address& a, const Address& b, FaultCfg faults);

  /// Sets the fault profile on every link, existing and future (becomes the
  /// new default for links materialized later).
  void set_faults_all(FaultCfg faults);

  /// Starts flapping the (symmetric) link a <-> b: up for `up_for`, then
  /// blocked for `down_for`, repeating until stop_flaps(). The link starts
  /// in whatever state it is in now and first toggles after `up_for`.
  void flap_link(const Address& a, const Address& b, Duration up_for,
                 Duration down_for);

  /// Stops all scheduled flaps and heals every flapped link.
  void stop_flaps();

  FaultStats fault_stats() const;

  TimerWheel& wheel() { return wheel_; }
  Executor& executor() { return executor_; }

 private:
  class Node;

  /// Control-plane link settings, applied to peer entries on first use.
  struct LinkCfg {
    Duration delay;
    Duration jitter;
    bool blocked = false;
    FaultCfg faults;
  };

  void do_send(Node& src, const Address& dst, Bytes payload);
  Node* find_node(const Address& addr) const;
  LinkCfg cfg_for(const Address& a, const Address& b) const;
  void update_link(const Address& a, const Address& b,
                   const std::function<void(LinkCfg&)>& mutate);
  void schedule_flap(Address a, Address b, Duration up_for, Duration down_for,
                     bool currently_up);
  void schedule_delivery(Node* dst_node, const Address& src_addr,
                         TimePoint deliver_at,
                         std::shared_ptr<Bytes> payload);

  Config config_;  // default_faults mutated under cfg_mu_ by set_faults_all
  Executor executor_;
  TimerWheel wheel_;

  mutable std::shared_mutex nodes_mu_;  // exclusive: add_node; shared: lookup
  std::unordered_map<Address, std::unique_ptr<Node>> nodes_;

  mutable std::mutex cfg_mu_;
  std::map<std::pair<Address, Address>, LinkCfg> link_cfg_;

  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> reordered_{0};

  mutable std::mutex flap_mu_;
  bool flaps_stopped_ = false;
  std::vector<std::pair<Address, Address>> flapping_;
};

}  // namespace srpc
