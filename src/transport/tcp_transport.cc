#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/logging.h"
#include "serde/buffer_pool.h"

namespace srpc {
namespace {

constexpr std::uint8_t kDataMarker = 0x00;
constexpr std::uint8_t kHandshakeMarker = 0x01;
constexpr std::size_t kReadChunk = 64 * 1024;
/// Consumed-prefix compaction threshold: move bytes only once the dead
/// prefix is both sizeable and the majority of the buffer.
constexpr std::size_t kCompactBytes = 64 * 1024;
/// iovec slots per writev (2 per frame: header + payload).
constexpr int kMaxIov = 64;
/// Frames with payloads at or below this are memcpy'd into the connection's
/// stage buffer and share one iovec: a burst of tiny frames then costs one
/// writev regardless of count, instead of hitting the kMaxIov ceiling at 32
/// frames. Larger payloads keep their zero-copy iovec.
constexpr std::size_t kSmallFrameBytes = 4096;

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_sndbuf(int fd, std::size_t bytes) {
  if (bytes == 0) return;
  int sz = static_cast<int>(bytes);
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
}

std::pair<std::string, std::uint16_t> split_addr(const Address& addr) {
  const auto pos = addr.find_last_of(':');
  if (pos == std::string::npos)
    throw std::invalid_argument("bad address: " + addr);
  return {addr.substr(0, pos),
          static_cast<std::uint16_t>(std::stoi(addr.substr(pos + 1)))};
}

void put_frame_header(std::array<std::uint8_t, 5>& out, std::uint32_t len,
                      std::uint8_t marker) {
  for (int i = 0; i < 4; ++i)
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  out[4] = marker;
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

TcpTransport::TcpTransport(Executor& executor, std::uint16_t port)
    : TcpTransport(executor, TcpConfig{.port = port}) {}

TcpTransport::TcpTransport(Executor& executor, TcpConfig config)
    : executor_(executor) {
  start(config);
}

void TcpTransport::start(TcpConfig config) {
  config_ = config;
  if (config_.outbuf_lo_watermark == 0)
    config_.outbuf_lo_watermark = config_.outbuf_hi_watermark / 2;

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(config_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0)
    throw std::runtime_error("bind() failed");
  if (listen(listen_fd_, 128) != 0) throw std::runtime_error("listen() failed");

  socklen_t len = sizeof(sa);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  addr_ = "127.0.0.1:" + std::to_string(ntohs(sa.sin_port));
  set_nonblocking(listen_fd_);

  int n = config_.reactors;
  if (n <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(std::min(4u, std::max(1u, hw)));
  }
  reactors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto r = std::make_unique<Reactor>();
    r->epfd = epoll_create1(0);
    r->wakefd = eventfd(0, EFD_NONBLOCK);
    if (r->epfd < 0 || r->wakefd < 0)
      throw std::runtime_error("epoll/eventfd setup failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wakefd;
    epoll_ctl(r->epfd, EPOLL_CTL_ADD, r->wakefd, &ev);
    reactors_.push_back(std::move(r));
  }
  // The accept socket lives on reactor 0 (level-triggered: a backlog that
  // outlives one accept sweep simply re-fires).
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(reactors_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);

  for (auto& r : reactors_)
    r->thread = std::thread([this, rp = r.get()] { reactor_loop(*rp); });
}

TcpTransport::~TcpTransport() {
  stopping_.store(true, std::memory_order_seq_cst);
  for (auto& r : reactors_) {
    std::uint64_t one = 1;
    [[maybe_unused]] auto w = write(r->wakefd, &one, sizeof(one));
  }
  // Release senders blocked on the outbound watermark before joining; their
  // wait predicate re-checks stopping_.
  for (auto& r : reactors_) {
    std::lock_guard<std::mutex> lock(r->mu);
    for (auto& [fd, conn] : r->conns) {
      std::lock_guard<std::mutex> send_lock(conn->send_mu);
      conn->send_cv.notify_all();
    }
  }
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  for (auto& r : reactors_) {
    for (auto& [fd, conn] : r->conns) ::close(fd);
    ::close(r->epfd);
    ::close(r->wakefd);
  }
  ::close(listen_fd_);
}

void TcpTransport::set_receiver(Receiver receiver) {
  std::lock_guard<std::mutex> lock(gate_->mu);
  gate_->receiver = std::move(receiver);
}

void TcpTransport::quiesce() {
  std::unique_lock<std::mutex> lock(gate_->mu);
  gate_->cv.wait(lock, [&] { return gate_->in_flight == 0; });
}

TrafficStats TcpTransport::stats() const {
  TrafficStats s;
  s.msgs_sent = msgs_sent_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.msgs_recv = msgs_recv_.load(std::memory_order_relaxed);
  s.bytes_recv = bytes_recv_.load(std::memory_order_relaxed);
  s.send_drops = send_drops_.load(std::memory_order_relaxed);
  s.send_shed = send_shed_.load(std::memory_order_relaxed);
  s.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------- send path

TcpTransport::ConnPtr TcpTransport::lookup_or_connect(const Address& dst) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_peer_.find(dst);
    if (it != by_peer_.end()) return it->second;
  }
  // Dial outside the routing lock: connect() is a syscall and may take a
  // while for non-loopback peers.
  const auto [host, port] = split_addr(dst);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  inet_pton(AF_INET, host.c_str(), &sa.sin_addr);
  set_nonblocking(fd);
  set_nodelay(fd);
  set_sndbuf(fd, config_.so_sndbuf);
  // Non-blocking connect: EINPROGRESS is fine, frames queue until writable.
  if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->reactor = static_cast<std::size_t>(fd) % reactors_.size();
  conn->outbound = true;
  conn->peer = dst;
  conn->strand = Strand::create(executor_);
  // Handshake: announce our listening address so the peer can attribute and
  // reply on this connection. Not stats-accounted (framing overhead).
  OutFrame hello;
  put_frame_header(hello.header,
                   static_cast<std::uint32_t>(addr_.size() + 1),
                   kHandshakeMarker);
  hello.payload.assign(addr_.begin(), addr_.end());
  conn->pending_bytes += hello.header.size() + hello.payload.size();
  conn->pending.push_back(std::move(hello));

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = by_peer_.emplace(dst, conn);
    if (!inserted) {
      // Lost a dial race with another sender; use theirs.
      ::close(fd);
      return it->second;
    }
  }
  Reactor& r = reactor_of(*conn);
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.conns.emplace(fd, conn);
  }
  return conn;
}

bool TcpTransport::send(const Address& dst, Bytes payload) {
  if (payload.size() > config_.max_frame_bytes) {
    send_drops_.fetch_add(1, std::memory_order_relaxed);
    SRPC_LOG(WARN) << addr_ << ": send to " << dst << " exceeds max frame ("
                   << payload.size() << " bytes)";
    return false;
  }
  // Per-thread routing cache: the common case (steady traffic to a handful
  // of peers) skips the global mu_ + hash lookup entirely. Entries are
  // validated under the connection's send mutex below — a cached
  // connection that closed or lost simultaneous-connect dedup falls back
  // to the authoritative map.
  struct CacheSlot {
    const TcpTransport* transport = nullptr;
    Address dst;
    std::weak_ptr<Conn> conn;
  };
  constexpr std::size_t kCacheSlots = 8;
  static thread_local CacheSlot s_cache[kCacheSlots];
  static thread_local std::size_t s_cache_next = 0;
  CacheSlot* slot = nullptr;
  ConnPtr conn;
  for (auto& candidate : s_cache) {
    if (candidate.transport == this && candidate.dst == dst) {
      slot = &candidate;
      conn = candidate.conn.lock();
      break;
    }
  }
  bool from_cache = conn != nullptr;

  const std::size_t payload_size = payload.size();
  const std::size_t wire_size = payload_size + 5;
  bool need_schedule = false;
  for (;;) {
    if (conn == nullptr) {
      conn = lookup_or_connect(dst);
      if (conn == nullptr) {
        send_drops_.fetch_add(1, std::memory_order_relaxed);
        SRPC_LOG(WARN) << addr_ << ": connect to " << dst << " failed";
        return false;
      }
      if (slot == nullptr) slot = &s_cache[s_cache_next++ % kCacheSlots];
      slot->transport = this;
      slot->dst = dst;
      slot->conn = conn;
      from_cache = false;
    }
    std::unique_lock<std::mutex> lock(conn->send_mu);
    if (from_cache && (conn->closed || conn->demoted)) {
      // Stale cache entry: the live mapping (if any) is in by_peer_.
      lock.unlock();
      slot->transport = nullptr;
      conn = nullptr;
      from_cache = false;
      continue;
    }
    const std::size_t hi = config_.outbuf_hi_watermark;
    if (hi > 0 && !conn->closed &&
        conn->pending_bytes + conn->draining_bytes + wire_size > hi) {
      if (config_.overflow == TcpConfig::OverflowPolicy::kShed) {
        send_shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      Executor::before_block();
      const std::size_t lo = config_.outbuf_lo_watermark;
      ++conn->block_waiters;
      conn->send_cv.wait(lock, [&] {
        return conn->closed || stopping_.load(std::memory_order_relaxed) ||
               conn->pending_bytes + conn->draining_bytes <= lo;
      });
      --conn->block_waiters;
      if (stopping_.load(std::memory_order_relaxed) && !conn->closed &&
          conn->pending_bytes + conn->draining_bytes > lo) {
        // Released by shutdown, not by drainage: shed instead of wedging.
        send_shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    if (conn->closed) {
      lock.unlock();
      send_drops_.fetch_add(1, std::memory_order_relaxed);
      SRPC_LOG(WARN) << addr_ << ": send to " << dst
                     << " dropped (connection closed)";
      return false;
    }
    OutFrame frame;
    put_frame_header(frame.header,
                     static_cast<std::uint32_t>(payload_size + 1),
                     kDataMarker);
    frame.payload = std::move(payload);
    conn->pending_bytes += wire_size;
    conn->pending.push_back(std::move(frame));
    if (!conn->scheduled) {
      conn->scheduled = true;
      need_schedule = true;
    }
    break;
  }
  msgs_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(payload_size, std::memory_order_relaxed);
  if (need_schedule) schedule_conn(conn);
  return true;
}

void TcpTransport::schedule_conn(const ConnPtr& conn) {
  Reactor& r = reactor_of(*conn);
  enqueue_dirty(r, conn);
  maybe_wake(r);
}

void TcpTransport::enqueue_dirty(Reactor& r, ConnPtr conn) {
  std::lock_guard<std::mutex> lock(r.mu);
  r.dirty.push_back(std::move(conn));
}

void TcpTransport::maybe_wake(Reactor& r) {
  // Dirty-flag + pending-wake bit: only the sender that flips the pending
  // bit considers the syscall, and only when the reactor may actually be
  // parked in epoll_wait. The reactor clears the bit at the top of its loop
  // and re-checks it after announcing sleep, so a wake can be deferred but
  // never lost (seq_cst keeps the two-variable handshake sound).
  if (!r.wake_pending.exchange(true, std::memory_order_seq_cst)) {
    if (r.sleeping.load(std::memory_order_seq_cst)) {
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t one = 1;
      [[maybe_unused]] auto w = write(r.wakefd, &one, sizeof(one));
    }
  }
}

// ------------------------------------------------------------ reactor side

void TcpTransport::reactor_loop(Reactor& r) {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  std::vector<ConnPtr> dirty;
  while (!stopping_.load(std::memory_order_seq_cst)) {
    r.wake_pending.store(false, std::memory_order_seq_cst);
    dirty.clear();
    {
      std::lock_guard<std::mutex> lock(r.mu);
      dirty.swap(r.dirty);
    }
    for (const auto& conn : dirty) drain_conn(r, conn);
    dirty.clear();  // release conn refs before parking

    r.sleeping.store(true, std::memory_order_seq_cst);
    const int timeout =
        (r.wake_pending.load(std::memory_order_seq_cst) ||
         stopping_.load(std::memory_order_seq_cst))
            ? 0
            : -1;
    const int n = epoll_wait(r.epfd, events, kMaxEvents, timeout);
    r.sleeping.store(false, std::memory_order_seq_cst);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == r.wakefd) {
        std::uint64_t buf;
        [[maybe_unused]] auto rd = read(r.wakefd, &buf, sizeof(buf));
        continue;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      ConnPtr conn;
      {
        std::lock_guard<std::mutex> lock(r.mu);
        auto it = r.conns.find(fd);
        if (it == r.conns.end()) continue;
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(r, conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) drain_conn(r, conn);
      if (events[i].events & EPOLLIN) handle_readable(r, conn);
    }
  }
}

void TcpTransport::handle_accept() {
  for (;;) {
    const int cfd = accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) break;
    set_nonblocking(cfd);
    set_nodelay(cfd);
    set_sndbuf(cfd, config_.so_sndbuf);
    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    conn->reactor = static_cast<std::size_t>(cfd) % reactors_.size();
    conn->strand = Strand::create(executor_);
    Reactor& owner = reactor_of(*conn);
    {
      std::lock_guard<std::mutex> lock(owner.mu);
      owner.conns.emplace(cfd, conn);
    }
    {
      // Mark scheduled so the owner's first drain performs the epoll ADD
      // (all epoll_ctl for a connection happens on its owning reactor).
      std::lock_guard<std::mutex> lock(conn->send_mu);
      conn->scheduled = true;
    }
    schedule_conn(conn);
  }
}

void TcpTransport::update_interest(Reactor& r, Conn& conn, bool want_out) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | (want_out ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  if (epoll_ctl(r.epfd, EPOLL_CTL_MOD, conn.fd, &ev) != 0 &&
      errno == ENOENT) {
    epoll_ctl(r.epfd, EPOLL_CTL_ADD, conn.fd, &ev);
  }
  conn.epoll_added = true;
  conn.epollout_armed = want_out;
}

void TcpTransport::drain_conn(Reactor& r, const ConnPtr& connp) {
  Conn& conn = *connp;
  if (conn.fd < 0) return;  // closed earlier in this event batch
  if (!conn.epoll_added) update_interest(r, conn, false);
  for (;;) {
    if (conn.drain_frame == conn.draining.size()) {
      // Refill: recycle spent payload buffers, then swap in the pending
      // queue (double buffering — senders appended to it lock-free w.r.t.
      // the writev below).
      for (auto& frame : conn.draining)
        BufferPool::release(std::move(frame.payload));
      conn.draining.clear();
      conn.drain_frame = 0;
      conn.drain_off = 0;
      bool finished = false;
      bool close_demoted = false;
      {
        std::lock_guard<std::mutex> lock(conn.send_mu);
        conn.draining_bytes = 0;
        if (conn.pending.empty()) {
          conn.scheduled = false;
          finished = true;
          close_demoted = conn.demoted && conn.outbound;
        } else {
          conn.draining.swap(conn.pending);
          conn.draining_bytes = conn.pending_bytes;
          conn.pending_bytes = 0;
        }
        if (conn.block_waiters > 0) conn.send_cv.notify_all();
      }
      if (finished) {
        if (conn.epollout_armed) update_interest(r, conn, false);
        // A demoted connection we dialed is closed once flushed (the
        // simultaneous-connect loser; see header).
        if (close_demoted) close_conn(r, connp);
        return;
      }
    }
    // Gather up to coalesce_bytes of frames into one writev. Small frames
    // are memcpy'd into the stage buffer (contiguous spans, one iovec per
    // span); large payloads go zero-copy with their own iovecs. The stage
    // is rebuilt from (drain_frame, drain_off) on every attempt, so a
    // partial write needs no stage-resume bookkeeping — the source frames
    // stay in `draining` until fully written.
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t batch = 0;
    std::size_t fi = conn.drain_frame;
    std::size_t off = conn.drain_off;
    Bytes& stage = conn.stage;
    stage.clear();
    // Reserve once: appends must never reallocate, or open-span iov_base
    // pointers into the stage would dangle.
    const std::size_t stage_cap =
        config_.coalesce_bytes + kSmallFrameBytes + sizeof(OutFrame().header);
    if (stage.capacity() < stage_cap) stage.reserve(stage_cap);
    int stage_iov = -1;  // open stage-span iovec, -1 = none
    while (fi < conn.draining.size() && iovcnt + 2 <= kMaxIov &&
           batch < config_.coalesce_bytes) {
      OutFrame& frame = conn.draining[fi];
      const std::size_t header_size = frame.header.size();
      if (frame.payload.size() <= kSmallFrameBytes) {
        const std::size_t span_start = stage.size();
        if (off < header_size) {
          stage.insert(stage.end(), frame.header.begin() +
                                        static_cast<std::ptrdiff_t>(off),
                       frame.header.end());
          stage.insert(stage.end(), frame.payload.begin(),
                       frame.payload.end());
        } else {
          stage.insert(stage.end(),
                       frame.payload.begin() +
                           static_cast<std::ptrdiff_t>(off - header_size),
                       frame.payload.end());
        }
        const std::size_t added = stage.size() - span_start;
        if (stage_iov < 0) {
          stage_iov = iovcnt++;
          iov[stage_iov].iov_base = stage.data() + span_start;
          iov[stage_iov].iov_len = 0;
        }
        iov[stage_iov].iov_len += added;
        batch += added;
      } else {
        stage_iov = -1;  // a zero-copy frame closes the open span
        if (off < header_size) {
          iov[iovcnt].iov_base = frame.header.data() + off;
          iov[iovcnt].iov_len = header_size - off;
          batch += iov[iovcnt].iov_len;
          ++iovcnt;
          iov[iovcnt].iov_base = frame.payload.data();
          iov[iovcnt].iov_len = frame.payload.size();
          batch += iov[iovcnt].iov_len;
          ++iovcnt;
        } else {
          const std::size_t payload_off = off - header_size;
          iov[iovcnt].iov_base = frame.payload.data() + payload_off;
          iov[iovcnt].iov_len = frame.payload.size() - payload_off;
          batch += iov[iovcnt].iov_len;
          ++iovcnt;
        }
      }
      ++fi;
      off = 0;
    }
    const ssize_t n = writev(conn.fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOTCONN) {
        // Socket (or in-progress connect) not writable: arm EPOLLOUT for
        // this connection only and let readiness call us back.
        if (!conn.epollout_armed) update_interest(r, conn, true);
        return;
      }
      close_conn(r, connp);
      return;
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      OutFrame& frame = conn.draining[conn.drain_frame];
      const std::size_t remaining =
          frame.header.size() + frame.payload.size() - conn.drain_off;
      if (left >= remaining) {
        left -= remaining;
        conn.drain_off = 0;
        ++conn.drain_frame;
      } else {
        conn.drain_off += left;
        left = 0;
      }
    }
    {
      std::lock_guard<std::mutex> lock(conn.send_mu);
      conn.draining_bytes -= static_cast<std::size_t>(n);
      if (conn.block_waiters > 0 &&
          conn.pending_bytes + conn.draining_bytes <=
              config_.outbuf_lo_watermark) {
        conn.send_cv.notify_all();
      }
    }
  }
}

void TcpTransport::handle_readable(Reactor& r, const ConnPtr& connp) {
  Conn& conn = *connp;
  if (conn.fd < 0) return;
  bool peer_gone = false;
  for (;;) {
    // Grow-only sizing: inbuf.size() is allocated space and in_len the
    // valid prefix, so the zero-fill a per-read resize() would do happens
    // only when the buffer actually grows.
    if (conn.inbuf.size() - conn.in_len < kReadChunk) {
      if (conn.inbuf.capacity() == 0)
        conn.inbuf = BufferPool::acquire(kReadChunk);
      conn.inbuf.resize(conn.in_len + kReadChunk);
    }
    const ssize_t n = ::read(conn.fd, conn.inbuf.data() + conn.in_len,
                             conn.inbuf.size() - conn.in_len);
    if (n > 0) {
      conn.in_len += static_cast<std::size_t>(n);
      continue;  // edge-triggered: drain until EAGAIN
    }
    if (n == 0) {
      peer_gone = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    peer_gone = true;
    break;
  }
  // Extract complete frames from the consumed offset onward. Data payloads
  // accumulate into one batch per read pass (see deliver_batch).
  std::vector<Bytes> batch;
  std::size_t batch_bytes = 0;
  auto flush_batch = [&] {
    if (batch.empty()) return;
    deliver_batch(connp, std::move(batch), batch_bytes);
    batch.clear();
    batch_bytes = 0;
  };
  for (;;) {
    const std::size_t avail = conn.in_len - conn.in_off;
    if (avail < 4) break;
    const std::uint32_t len = get_u32(conn.inbuf.data() + conn.in_off);
    if (len == 0 || static_cast<std::size_t>(len) - 1 > config_.max_frame_bytes) {
      // Corrupt or hostile length: closing beats buffering an unbounded
      // allocation on its behalf.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      SRPC_LOG(WARN) << addr_ << ": rejecting frame of claimed length " << len
                     << " from " << (conn.peer.empty() ? "<unknown>" : conn.peer);
      flush_batch();
      close_conn(r, connp);
      return;
    }
    if (avail - 4 < len) break;
    const std::uint8_t* frame = conn.inbuf.data() + conn.in_off + 4;
    conn.in_off += 4 + len;
    const std::uint8_t marker = frame[0];
    if (marker == kHandshakeMarker) {
      // Flush first: frames parsed before this point belong to the old
      // (possibly empty) peer identity, not the one being announced.
      flush_batch();
      on_handshake(r, connp,
                   Address(reinterpret_cast<const char*>(frame + 1), len - 1));
      continue;
    }
    Bytes payload = BufferPool::acquire(len - 1);
    payload.assign(frame + 1, frame + len);
    batch_bytes += payload.size();
    batch.push_back(std::move(payload));
  }
  flush_batch();
  // Deferred compaction: drop the whole buffer when fully consumed; move
  // the tail down only once the dead prefix dominates.
  if (conn.in_off == conn.in_len) {
    conn.in_off = 0;
    conn.in_len = 0;
    if (conn.inbuf.capacity() > BufferPool::kMaxPooledCapacity) {
      Bytes().swap(conn.inbuf);  // don't pin a huge buffer on an idle conn
    }
  } else if (conn.in_off >= kCompactBytes &&
             conn.in_off > conn.in_len - conn.in_off) {
    std::memmove(conn.inbuf.data(), conn.inbuf.data() + conn.in_off,
                 conn.in_len - conn.in_off);
    conn.in_len -= conn.in_off;
    conn.in_off = 0;
  }
  if (peer_gone) close_conn(r, connp);
}

void TcpTransport::deliver_batch(const ConnPtr& conn,
                                 std::vector<Bytes>&& payloads,
                                 std::size_t payload_bytes) {
  msgs_recv_.fetch_add(payloads.size(), std::memory_order_relaxed);
  bytes_recv_.fetch_add(payload_bytes, std::memory_order_relaxed);
  const Address& src = conn->peer;  // reactor-thread owned
  if (src.empty()) return;  // data before handshake: nothing to attribute
  auto shared = std::make_shared<std::vector<Bytes>>(std::move(payloads));
  conn->strand->post([gate = gate_, src, shared]() mutable {
    // Resolve the receiver at run time, not post time: a stale copy would
    // outlive set_receiver(nullptr) and defeat quiesce().
    Receiver receiver;
    {
      std::lock_guard<std::mutex> lock(gate->mu);
      if (!gate->receiver) return;  // detached: drop
      receiver = gate->receiver;
      ++gate->in_flight;
    }
    for (Bytes& payload : *shared) receiver(src, std::move(payload));
    {
      std::lock_guard<std::mutex> lock(gate->mu);
      --gate->in_flight;
    }
    gate->cv.notify_all();
  });
}

void TcpTransport::on_handshake(Reactor& r, const ConnPtr& connp,
                                Address peer) {
  Conn& conn = *connp;
  conn.peer = peer;
  ConnPtr loser;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_peer_.find(peer);
    if (it == by_peer_.end()) {
      by_peer_.emplace(std::move(peer), connp);
      return;
    }
    if (it->second == connp) return;
    // Simultaneous connect: both nodes dialed each other, so two TCP
    // connections exist for one peer. Both sides deterministically keep the
    // one dialed by the lexicographically lower address; the dialer of the
    // losing connection flushes and closes it (see header).
    const ConnPtr& existing = it->second;
    const Address& winner_dialer = std::min(addr_, it->first);
    const Address& new_dialer = conn.outbound ? addr_ : it->first;
    const Address& old_dialer = existing->outbound ? addr_ : it->first;
    if (new_dialer == winner_dialer && old_dialer != winner_dialer) {
      loser = existing;
      it->second = connp;
    } else {
      loser = connp;
    }
  }
  {
    std::lock_guard<std::mutex> lock(loser->send_mu);
    loser->demoted = true;
    if (!loser->scheduled) loser->scheduled = true;
  }
  // Only the dialer closes the losing connection (after flushing); the
  // accepting side keeps receiving until the peer's close arrives as EOF.
  if (loser->outbound) schedule_conn(loser);
}

void TcpTransport::close_conn(Reactor& r, const ConnPtr& connp) {
  Conn& conn = *connp;
  if (conn.fd < 0) return;
  const int fd = conn.fd;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.conns.erase(fd);
  }
  if (conn.epoll_added) epoll_ctl(r.epfd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn.fd = -1;
  if (!conn.peer.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_peer_.find(conn.peer);
    // Only erase the mapping if it still points at *this* connection: after
    // simultaneous-connect dedup the peer may be mapped to the surviving
    // connection, which must not be unrouted by the loser's close.
    if (it != by_peer_.end() && it->second == connp) by_peer_.erase(it);
  }
  std::uint64_t undelivered = 0;
  {
    std::lock_guard<std::mutex> lock(conn.send_mu);
    conn.closed = true;
    // Queued data frames die with the connection; count them so the loss
    // is observable (the retry layer sees it as a timeout).
    for (std::size_t i = conn.drain_frame; i < conn.draining.size(); ++i)
      if (conn.draining[i].header[4] == kDataMarker) ++undelivered;
    for (const auto& frame : conn.pending)
      if (frame.header[4] == kDataMarker) ++undelivered;
    conn.draining.clear();
    conn.pending.clear();
    conn.drain_frame = 0;
    conn.drain_off = 0;
    conn.pending_bytes = 0;
    conn.draining_bytes = 0;
    conn.send_cv.notify_all();
  }
  if (undelivered > 0)
    send_drops_.fetch_add(undelivered, std::memory_order_relaxed);
  if (conn.inbuf.capacity() > 0) BufferPool::release(std::move(conn.inbuf));
}

}  // namespace srpc
