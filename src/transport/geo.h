// Geo-distributed topology presets.
//
// Table 1 of the paper gives the emulated RTTs between the three datacentres
// of the Replicated Commit evaluation (taken from Mu et al. [28]):
//
//              Ireland   Seoul
//   Oregon       140      122      (ms, round trip)
//   Ireland       -       243
//
// GeoTopology wires a SimNetwork accordingly: every machine in a datacentre
// shares the DC's WAN coordinates; intra-DC hops cost `lan_rtt`.
#pragma once

#include <string>
#include <vector>

#include "transport/sim_network.h"

namespace srpc {

struct GeoConfig {
  std::vector<std::string> dc_names = {"oregon", "ireland", "seoul"};
  /// dc_rtt[i][j] = RTT between DC i and DC j (ms before scaling).
  std::vector<std::vector<double>> dc_rtt_ms = {
      {0.0, 140.0, 122.0},
      {140.0, 0.0, 243.0},
      {122.0, 243.0, 0.0},
  };
  double lan_rtt_ms = 0.5;   // machine <-> machine inside one DC
  double jitter_ms = 0.05;   // per message, uniform
  /// All latencies are multiplied by this factor (see DESIGN.md §3).
  double scale = 1.0;
};

/// Uniform 3-DC topology with the same RTT everywhere (used by Figure 13's
/// 5 ms-RTT saturation experiment).
GeoConfig uniform_geo(double rtt_ms, int num_dcs = 3);

class GeoTopology {
 public:
  GeoTopology(SimNetwork& net, GeoConfig config);

  /// Registers a machine in datacentre `dc`; returns its transport.
  Transport& add_machine(int dc, const std::string& name);

  int num_dcs() const { return static_cast<int>(config_.dc_names.size()); }
  const GeoConfig& config() const { return config_; }

  /// Address of a machine previously added as (dc, name).
  Address address(int dc, const std::string& name) const;

  /// Effective (scaled) RTT between two DCs.
  Duration rtt(int dc_a, int dc_b) const;

 private:
  SimNetwork& net_;
  GeoConfig config_;
  std::vector<std::vector<Address>> machines_;  // per DC
};

}  // namespace srpc
