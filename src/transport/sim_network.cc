#include "transport/sim_network.h"

#include <atomic>
#include <condition_variable>
#include <stdexcept>

#include "common/logging.h"

namespace srpc {

namespace {
// FNV-1a, used to derive a per-node jitter Rng stream from the global seed
// so delay draws are deterministic per endpoint regardless of how sends
// interleave across endpoints.
std::uint64_t hash_addr(const Address& addr) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : addr) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

class SimNetwork::Node final : public Transport {
 public:
  Node(SimNetwork& net, Address addr, Executor& executor, std::uint64_t seed)
      : net_(net),
        addr_(std::move(addr)),
        strand_(Strand::create(executor)),
        rng_(seed ^ hash_addr(addr_)) {}  // rng_ declared last: addr_ is set

  const Address& address() const override { return addr_; }

  bool send(const Address& dst, Bytes payload) override {
    // Injected faults (drops, dups, reorders) model *in-network* loss: the
    // frame left this endpoint, so the retry layer's timeout — not a local
    // refusal — is the correct detector. Always accepted.
    net_.do_send(*this, dst, std::move(payload));
    return true;
  }

  void set_receiver(Receiver receiver) override {
    std::lock_guard<std::mutex> lock(recv_mu_);
    receiver_ = std::move(receiver);
  }

  void quiesce() override {
    std::unique_lock<std::mutex> lock(recv_mu_);
    recv_cv_.wait(lock, [&] { return delivering_ == 0; });
  }

  /// Called (via strand) when a message arrives.
  void deliver(const Address& src, Bytes payload) {
    msgs_recv_.fetch_add(1, std::memory_order_relaxed);
    bytes_recv_.fetch_add(payload.size(), std::memory_order_relaxed);
    Receiver receiver;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      if (receiver_) {
        receiver = receiver_;
        // Counted under recv_mu_ so set_receiver(nullptr) + quiesce() is a
        // true barrier: a delivery that copied the old receiver is counted
        // before the swap can complete; one that misses the copy sees null.
        ++delivering_;
      }
    }
    if (receiver) {
      receiver(src, std::move(payload));
      {
        std::lock_guard<std::mutex> lock(recv_mu_);
        --delivering_;
      }
      recv_cv_.notify_all();
    } else {
      // Normal during teardown: engines detach before the network drains.
      SRPC_LOG(DEBUG) << addr_ << ": dropping message from " << src
                      << " (no receiver installed)";
    }
  }

  void account_send(std::size_t bytes) {
    msgs_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }

  TrafficStats stats() const {
    TrafficStats s;
    s.msgs_sent = msgs_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.msgs_recv = msgs_recv_.load(std::memory_order_relaxed);
    s.bytes_recv = bytes_recv_.load(std::memory_order_relaxed);
    return s;
  }

  void reset_stats() {
    msgs_sent_.store(0, std::memory_order_relaxed);
    bytes_sent_.store(0, std::memory_order_relaxed);
    msgs_recv_.store(0, std::memory_order_relaxed);
    bytes_recv_.store(0, std::memory_order_relaxed);
  }

  Strand& strand() { return *strand_; }

  /// Outbound link state toward one destination; lives in the source
  /// node's peer table, so all of send()'s mutable state is behind the
  /// per-source peer_mu_.
  struct Peer {
    Node* dst = nullptr;
    Duration delay;
    Duration jitter;
    bool blocked = false;
    FaultCfg faults;
    TimePoint last_delivery{};  // enforces per-pair FIFO
  };

 private:
  SimNetwork& net_;
  Address addr_;
  std::shared_ptr<Strand> strand_;
  mutable std::mutex recv_mu_;
  std::condition_variable recv_cv_;  // wakes quiesce() when delivering_ drops
  Receiver receiver_;
  int delivering_ = 0;  // receiver invocations in flight (strand-serial: ≤1)
  std::atomic<std::uint64_t> msgs_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> msgs_recv_{0};
  std::atomic<std::uint64_t> bytes_recv_{0};

 public:
  std::mutex peer_mu_;
  std::unordered_map<Address, Peer> peers_;
  Rng rng_;  // jitter draws; guarded by peer_mu_
};

SimNetwork::SimNetwork(Config config)
    : config_(config), executor_(config.executor_threads, "simnet") {}

SimNetwork::~SimNetwork() {
  // Stop timers first so no delivery fires into a dying executor.
  wheel_.shutdown();
  executor_.shutdown();
}

Transport& SimNetwork::add_node(const Address& addr) {
  std::unique_lock<std::shared_mutex> lock(nodes_mu_);
  auto [it, inserted] = nodes_.emplace(
      addr, std::make_unique<Node>(*this, addr, executor_, config_.seed));
  if (!inserted) throw std::invalid_argument("duplicate node: " + addr);
  return *it->second;
}

SimNetwork::Node* SimNetwork::find_node(const Address& addr) const {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

SimNetwork::LinkCfg SimNetwork::cfg_for(const Address& a,
                                        const Address& b) const {
  std::lock_guard<std::mutex> lock(cfg_mu_);
  auto it = link_cfg_.find(std::make_pair(a, b));
  if (it != link_cfg_.end()) return it->second;
  return LinkCfg{config_.default_delay, config_.default_jitter, false,
                 config_.default_faults};
}

void SimNetwork::update_link(const Address& a, const Address& b,
                             const std::function<void(LinkCfg&)>& mutate) {
  // Record the setting for peers not yet materialized...
  {
    std::lock_guard<std::mutex> lock(cfg_mu_);
    auto [it, inserted] = link_cfg_.try_emplace(
        std::make_pair(a, b),
        LinkCfg{config_.default_delay, config_.default_jitter, false,
                config_.default_faults});
    mutate(it->second);
  }
  // ...then patch the live peer entry, if the source already resolved one.
  // Locks are taken one at a time (cfg_mu_, then nodes_mu_ inside
  // find_node, then peer_mu_), never nested, so no ordering cycle with the
  // send path exists.
  Node* src = find_node(a);
  if (src == nullptr) return;
  std::lock_guard<std::mutex> lock(src->peer_mu_);
  auto it = src->peers_.find(b);
  if (it != src->peers_.end()) {
    LinkCfg patched{it->second.delay, it->second.jitter, it->second.blocked,
                    it->second.faults};
    mutate(patched);
    it->second.delay = patched.delay;
    it->second.jitter = patched.jitter;
    it->second.blocked = patched.blocked;
    it->second.faults = patched.faults;
  }
}

void SimNetwork::set_one_way(const Address& a, const Address& b,
                             Duration delay, Duration jitter) {
  update_link(a, b, [&](LinkCfg& cfg) {
    cfg.delay = delay;
    cfg.jitter = jitter;
  });
}

void SimNetwork::set_rtt(const Address& a, const Address& b, Duration rtt,
                         Duration jitter) {
  set_one_way(a, b, rtt / 2, jitter);
  set_one_way(b, a, rtt / 2, jitter);
}

void SimNetwork::partition(const Address& a, const Address& b, bool blocked) {
  update_link(a, b, [&](LinkCfg& cfg) { cfg.blocked = blocked; });
  update_link(b, a, [&](LinkCfg& cfg) { cfg.blocked = blocked; });
}

void SimNetwork::set_faults(const Address& a, const Address& b,
                            FaultCfg faults) {
  update_link(a, b, [&](LinkCfg& cfg) { cfg.faults = faults; });
}

void SimNetwork::set_faults_all(FaultCfg faults) {
  {
    std::lock_guard<std::mutex> lock(cfg_mu_);
    config_.default_faults = faults;
    for (auto& [_, cfg] : link_cfg_) cfg.faults = faults;
  }
  // Patch every live peer entry. Lock order matches the send cold path and
  // update_link (nodes_mu_ shared, then one peer_mu_ at a time; peer_mu_ is
  // never held while acquiring nodes_mu_), so no cycle.
  std::shared_lock<std::shared_mutex> nodes_lock(nodes_mu_);
  for (auto& [_, node] : nodes_) {
    std::lock_guard<std::mutex> lock(node->peer_mu_);
    for (auto& [_2, peer] : node->peers_) peer.faults = faults;
  }
}

void SimNetwork::flap_link(const Address& a, const Address& b,
                           Duration up_for, Duration down_for) {
  {
    std::lock_guard<std::mutex> lock(flap_mu_);
    flaps_stopped_ = false;
    flapping_.emplace_back(a, b);
  }
  schedule_flap(a, b, up_for, down_for, /*currently_up=*/true);
}

void SimNetwork::schedule_flap(Address a, Address b, Duration up_for,
                               Duration down_for, bool currently_up) {
  // `this` capture is safe: ~SimNetwork shuts the wheel down (dropping all
  // pending callbacks and joining the timer thread) before members die.
  const Duration wait = currently_up ? up_for : down_for;
  wheel_.schedule_after(wait, [this, a = std::move(a), b = std::move(b),
                               up_for, down_for, currently_up] {
    {
      std::lock_guard<std::mutex> lock(flap_mu_);
      if (flaps_stopped_) return;
    }
    partition(a, b, /*blocked=*/currently_up);
    schedule_flap(a, b, up_for, down_for, !currently_up);
  });
}

void SimNetwork::stop_flaps() {
  std::vector<std::pair<Address, Address>> pairs;
  {
    std::lock_guard<std::mutex> lock(flap_mu_);
    flaps_stopped_ = true;
    pairs.swap(flapping_);
  }
  for (const auto& [a, b] : pairs) partition(a, b, /*blocked=*/false);
}

FaultStats SimNetwork::fault_stats() const {
  FaultStats s;
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.duplicated = duplicated_.load(std::memory_order_relaxed);
  s.reordered = reordered_.load(std::memory_order_relaxed);
  return s;
}

void SimNetwork::do_send(Node& src, const Address& dst, Bytes payload) {
  Node* dst_node = nullptr;
  TimePoint deliver_at;
  bool duplicate = false;
  TimePoint dup_deliver_at;
  {
    std::unique_lock<std::mutex> lock(src.peer_mu_);
    auto it = src.peers_.find(dst);
    if (it == src.peers_.end()) {
      // Cold path: resolve the destination and link config, then re-check
      // under the peer lock (it was dropped in between, so a racing send
      // may have materialized the entry first).
      lock.unlock();
      Node* resolved = find_node(dst);
      if (resolved == nullptr) {
        SRPC_LOG(WARN) << src.address() << ": send to unknown node " << dst;
        return;
      }
      const LinkCfg cfg = cfg_for(src.address(), dst);
      lock.lock();
      it = src.peers_
               .try_emplace(dst, Node::Peer{resolved, cfg.delay, cfg.jitter,
                                            cfg.blocked, cfg.faults,
                                            TimePoint{}})
               .first;
    }
    Node::Peer& peer = it->second;
    if (peer.blocked) {  // partitioned: silently dropped
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const FaultCfg& faults = peer.faults;
    if (faults.drop_prob > 0.0 && src.rng_.flip(faults.drop_prob)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    dst_node = peer.dst;
    Duration delay = peer.delay;
    if (peer.jitter > Duration::zero()) {
      delay += Duration(static_cast<Duration::rep>(src.rng_.uniform(
          static_cast<std::uint64_t>(peer.jitter.count()) + 1)));
    }
    // Reordering: hold the message back by up to `reorder_window` slack
    // slots and exempt it from the FIFO clamp, so messages sent after it
    // (with smaller or no holdback) can overtake it.
    bool exempt_from_fifo = false;
    if (faults.reorder_window > 0) {
      const auto slots = src.rng_.uniform(
          static_cast<std::uint64_t>(faults.reorder_window) + 1);
      if (slots > 0) {
        delay += faults.reorder_slack * static_cast<Duration::rep>(slots);
        exempt_from_fifo = true;
        reordered_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    deliver_at = Clock::now() + delay;
    if (!exempt_from_fifo) {
      // FIFO per directed pair: never schedule before an earlier message.
      if (deliver_at <= peer.last_delivery) {
        deliver_at = peer.last_delivery + std::chrono::nanoseconds(1);
      }
      peer.last_delivery = deliver_at;
    }
    if (faults.dup_prob > 0.0 && src.rng_.flip(faults.dup_prob)) {
      // The copy trails the original by 1-100us and skips the FIFO clamp —
      // duplicates arriving out of order is exactly the hazard upper layers
      // must tolerate.
      duplicate = true;
      dup_deliver_at = deliver_at + std::chrono::microseconds(
                                        1 + src.rng_.uniform(100));
      duplicated_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  src.account_send(payload.size());
  const Address src_addr = src.address();
  if (duplicate) {
    schedule_delivery(dst_node, src_addr, dup_deliver_at,
                      std::make_shared<Bytes>(payload));  // own copy
  }
  schedule_delivery(dst_node, src_addr, deliver_at,
                    std::make_shared<Bytes>(std::move(payload)));
}

void SimNetwork::schedule_delivery(Node* dst_node, const Address& src_addr,
                                   TimePoint deliver_at,
                                   std::shared_ptr<Bytes> payload) {
  wheel_.schedule_at(deliver_at, [dst_node, src_addr,
                                  payload = std::move(payload)] {
    dst_node->strand().post([dst_node, src_addr, payload]() mutable {
      dst_node->deliver(src_addr, std::move(*payload));
    });
  });
}

TrafficStats SimNetwork::stats(const Address& addr) const {
  Node* node = find_node(addr);
  return node == nullptr ? TrafficStats{} : node->stats();
}

TrafficStats SimNetwork::total_stats() const {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  TrafficStats total;
  for (const auto& [_, node] : nodes_) total += node->stats();
  return total;
}

void SimNetwork::reset_stats() {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  for (auto& [_, node] : nodes_) node->reset_stats();
}

}  // namespace srpc
