#include "transport/sim_network.h"

#include <stdexcept>

#include "common/logging.h"

namespace srpc {

class SimNetwork::Node final : public Transport {
 public:
  Node(SimNetwork& net, Address addr, Executor& executor)
      : net_(net), addr_(std::move(addr)), strand_(Strand::create(executor)) {}

  const Address& address() const override { return addr_; }

  void send(const Address& dst, Bytes payload) override {
    net_.do_send(*this, dst, std::move(payload));
  }

  void set_receiver(Receiver receiver) override {
    std::lock_guard<std::mutex> lock(mu_);
    receiver_ = std::move(receiver);
  }

  /// Called (via strand) when a message arrives.
  void deliver(const Address& src, Bytes payload) {
    Receiver receiver;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.msgs_recv++;
      stats_.bytes_recv += payload.size();
      receiver = receiver_;
    }
    if (receiver) {
      receiver(src, std::move(payload));
    } else {
      // Normal during teardown: engines detach before the network drains.
      SRPC_LOG(DEBUG) << addr_ << ": dropping message from " << src
                      << " (no receiver installed)";
    }
  }

  void account_send(std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.msgs_sent++;
    stats_.bytes_sent += bytes;
  }

  TrafficStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  void reset_stats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = {};
  }

  Strand& strand() { return *strand_; }

 private:
  SimNetwork& net_;
  Address addr_;
  std::shared_ptr<Strand> strand_;
  mutable std::mutex mu_;
  Receiver receiver_;
  TrafficStats stats_;
};

SimNetwork::SimNetwork(Config config)
    : config_(config),
      executor_(config.executor_threads, "simnet"),
      rng_(config.seed) {}

SimNetwork::~SimNetwork() {
  // Stop timers first so no delivery fires into a dying executor.
  wheel_.shutdown();
  executor_.shutdown();
}

Transport& SimNetwork::add_node(const Address& addr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      nodes_.emplace(addr, std::make_unique<Node>(*this, addr, executor_));
  if (!inserted) throw std::invalid_argument("duplicate node: " + addr);
  return *it->second;
}

void SimNetwork::set_one_way(const Address& a, const Address& b,
                             Duration delay, Duration jitter) {
  std::lock_guard<std::mutex> lock(mu_);
  Link& link = link_for(a, b);
  link.delay = delay;
  link.jitter = jitter;
}

void SimNetwork::set_rtt(const Address& a, const Address& b, Duration rtt,
                         Duration jitter) {
  set_one_way(a, b, rtt / 2, jitter);
  set_one_way(b, a, rtt / 2, jitter);
}

void SimNetwork::partition(const Address& a, const Address& b, bool blocked) {
  std::lock_guard<std::mutex> lock(mu_);
  link_for(a, b).blocked = blocked;
  link_for(b, a).blocked = blocked;
}

SimNetwork::Link& SimNetwork::link_for(const Address& a, const Address& b) {
  auto key = std::make_pair(a, b);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(std::move(key),
                      Link{config_.default_delay, config_.default_jitter})
             .first;
  }
  return it->second;
}

void SimNetwork::do_send(Node& src, const Address& dst, Bytes payload) {
  Node* dst_node = nullptr;
  TimePoint deliver_at;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(dst);
    if (it == nodes_.end()) {
      SRPC_LOG(WARN) << src.address() << ": send to unknown node " << dst;
      return;
    }
    dst_node = it->second.get();
    Link& link = link_for(src.address(), dst);
    if (link.blocked) return;  // partitioned: silently dropped
    Duration delay = link.delay;
    if (link.jitter > Duration::zero()) {
      delay += Duration(static_cast<Duration::rep>(
          rng_.uniform(static_cast<std::uint64_t>(link.jitter.count()) + 1)));
    }
    deliver_at = Clock::now() + delay;
    // FIFO per directed pair: never schedule before an earlier message.
    if (deliver_at <= link.last_delivery) {
      deliver_at = link.last_delivery + std::chrono::nanoseconds(1);
    }
    link.last_delivery = deliver_at;
  }
  src.account_send(payload.size());
  const Address src_addr = src.address();
  auto shared = std::make_shared<Bytes>(std::move(payload));
  wheel_.schedule_at(deliver_at, [dst_node, src_addr, shared] {
    dst_node->strand().post([dst_node, src_addr, shared]() mutable {
      dst_node->deliver(src_addr, std::move(*shared));
    });
  });
}

TrafficStats SimNetwork::stats(const Address& addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(addr);
  if (it == nodes_.end()) return {};
  return it->second->stats();
}

TrafficStats SimNetwork::total_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TrafficStats total;
  for (const auto& [_, node] : nodes_) total += node->stats();
  return total;
}

void SimNetwork::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, node] : nodes_) node->reset_stats();
}

}  // namespace srpc
