#include "transport/geo.h"

#include <stdexcept>

namespace srpc {

GeoConfig uniform_geo(double rtt_ms, int num_dcs) {
  GeoConfig config;
  config.dc_names.clear();
  config.dc_rtt_ms.assign(num_dcs, std::vector<double>(num_dcs, rtt_ms));
  for (int i = 0; i < num_dcs; ++i) {
    config.dc_names.push_back("dc" + std::to_string(i));
    config.dc_rtt_ms[i][i] = 0.0;
  }
  return config;
}

GeoTopology::GeoTopology(SimNetwork& net, GeoConfig config)
    : net_(net), config_(std::move(config)) {
  machines_.resize(config_.dc_names.size());
}

Address GeoTopology::address(int dc, const std::string& name) const {
  return config_.dc_names.at(dc) + "." + name;
}

Duration GeoTopology::rtt(int dc_a, int dc_b) const {
  return from_ms(config_.dc_rtt_ms.at(dc_a).at(dc_b) * config_.scale);
}

Transport& GeoTopology::add_machine(int dc, const std::string& name) {
  if (dc < 0 || dc >= num_dcs()) throw std::out_of_range("bad dc index");
  const Address addr = address(dc, name);
  Transport& transport = net_.add_node(addr);
  const Duration jitter = from_ms(config_.jitter_ms * config_.scale);
  // Wire this machine to every machine already registered.
  for (int other_dc = 0; other_dc < num_dcs(); ++other_dc) {
    for (const Address& peer : machines_[other_dc]) {
      const double rtt_ms = (other_dc == dc)
                                ? config_.lan_rtt_ms
                                : config_.dc_rtt_ms[dc][other_dc];
      net_.set_rtt(addr, peer, from_ms(rtt_ms * config_.scale), jitter);
    }
  }
  machines_[dc].push_back(addr);
  return transport;
}

}  // namespace srpc
