#include "workload/microbench.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "grpcsim/grpcsim.h"
#include "rpc/node.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::wl {
namespace {

/// The deterministic server function: flips the first byte of the payload.
/// Pure, so clients can predict results exactly when they choose to.
std::string work_fn(const std::string& arg) {
  std::string out = arg;
  if (!out.empty()) out[0] = 'R';
  return out;
}

/// Argument for chain step `idx`, derived from the previous step's result —
/// this is what makes the RPCs *dependent*.
std::string next_arg(const std::string& prev_result, int idx,
                     std::size_t payload_size) {
  std::string arg = prev_result;
  arg.resize(payload_size, 'p');
  arg[0] = 'a';
  if (payload_size > 1) arg[1] = static_cast<char>('0' + (idx % 10));
  return arg;
}

std::string initial_arg(int client, std::uint64_t seq,
                        std::size_t payload_size) {
  char head[48];
  std::snprintf(head, sizeof(head), "a0c%dq%llu-", client,
                static_cast<unsigned long long>(seq));
  std::string arg = head;
  arg.resize(payload_size, 'p');
  return arg;
}

std::string wrong_value(const std::string& correct) {
  std::string out = correct;
  if (!out.empty()) out[0] = 'W';
  return out;
}

/// Deterministic per-request accuracy draw for server-side prediction.
bool server_flip(const std::string& arg, double rate, std::uint64_t seed) {
  std::uint64_t h = seed * 0x9E3779B97F4A7C15ULL;
  for (char ch : arg) h = (h ^ static_cast<std::uint8_t>(ch)) * 0x100000001B3ULL;
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < rate;
}

/// Predictor wrapper over the deterministic oracle: predicts work_fn(arg)
/// but deliberately corrupts it at rate 1 - correct_rate. Gives the fig8a
/// adaptive series a predictor with a *controlled* accuracy.
class OraclePredictor : public predict::Predictor {
 public:
  OraclePredictor(double correct_rate, std::uint64_t seed)
      : correct_rate_(correct_rate), rng_(seed) {}

  ValueList predict(const std::string& method, const ValueList& args) override {
    if (method != "work" || args.empty()) return {};
    const std::string correct = work_fn(args.at(0).as_string());
    bool flip;
    {
      std::lock_guard<std::mutex> lock(mu_);
      flip = rng_.flip(correct_rate_);
    }
    ValueList out;
    out.emplace_back(flip ? correct : wrong_value(correct));
    return out;
  }

  void learn(const std::string&, const ValueList&, const Value&) override {}
  void forget(const std::string&, const ValueList&) override {}
  std::size_t size() const override { return 0; }
  const char* name() const override { return "oracle"; }

 private:
  const double correct_rate_;
  std::mutex mu_;
  Rng rng_;
};

/// Per-server mutable state for the predictor-mode twists.
struct ServerState {
  std::mutex mu;
  TimePoint busy_until{};                 // server_serial occupancy timeline
  std::atomic<std::uint64_t> counter{0};  // volatile_results phase
};

struct Fixture {
  ~Fixture() {
    // Stop engines (wakes spec_block waiters), drain their executor, then
    // destroy them, then the network. See RcCluster::~RcCluster.
    for (auto& e : spec_servers) e->begin_shutdown();
    for (auto& e : spec_clients) e->begin_shutdown();
    work_executor->shutdown();
    spec_servers.clear();
    spec_clients.clear();
    rpc_servers.clear();
    rpc_clients.clear();
    net.reset();
    work_executor.reset();
  }

  explicit Fixture(const MicroConfig& config) : config(config) {
    SimConfig sim_config;
    sim_config.executor_threads = config.executor_threads;
    sim_config.default_delay = config.link_delay;
    sim_config.seed = config.seed;
    net = std::make_unique<SimNetwork>(sim_config);
    // Callbacks may park in spec_block; keep them off the delivery executor.
    work_executor = std::make_unique<Executor>(
        config.num_clients * 3 + config.num_servers + 8, "micro-work");

    for (int s = 0; s < config.num_servers; ++s) {
      const Address addr = "server" + std::to_string(s);
      Transport& transport = net->add_node(addr);
      server_addrs.push_back(addr);
      server_states.push_back(std::make_unique<ServerState>());
      ServerState* state = server_states.back().get();
      if (config.flavor == Flavor::kSpec) {
        auto engine = std::make_unique<spec::SpecEngine>(
            transport, *work_executor, net->wheel());
        engine->register_method(
            "work",
            spec::Handler([this, state](const spec::ServerCallPtr& call) {
              const std::string arg = call->args().at(0).as_string();
              const std::string result = twist(*state, work_fn(arg));
              if (this->config.server_side_prediction) {
                // Figure 2c: the server predicts its own result partway
                // through execution. Accuracy is drawn deterministically
                // from the request payload so reruns are reproducible.
                const bool correct =
                    server_flip(arg, this->config.correct_rate,
                                this->config.seed);
                const std::string predicted =
                    correct ? result : wrong_value(result);
                const auto handoff = std::chrono::duration_cast<Duration>(
                    this->config.service_time *
                    this->config.server_handoff_fraction);
                net->wheel().schedule_after(handoff, [call, predicted] {
                  try {
                    call->spec_return(Value(predicted));
                  } catch (const spec::SpeculationAbandoned&) {
                  }
                });
              }
              call->finish_after(service_delay(*state), Value(result));
            }));
        spec_servers.push_back(std::move(engine));
      } else {
        auto node = std::make_unique<rpc::Node>(transport, *work_executor,
                                                net->wheel(), node_config());
        node->register_method(
            "work", [this, state](const rpc::CallContext& ctx, ValueList args,
                                  rpc::Responder responder) {
              ctx.finish_after(
                  service_delay(*state), std::move(responder),
                  Value(twist(*state, work_fn(args.at(0).as_string()))));
            });
        rpc_servers.push_back(std::move(node));
      }
    }
    for (int c = 0; c < config.num_clients; ++c) {
      const Address addr = "client" + std::to_string(c);
      Transport& transport = net->add_node(addr);
      client_addrs.push_back(addr);
      if (config.flavor == Flavor::kSpec) {
        spec::SpecConfig spec_config;
        if (predictor_mode()) {
          predict::ManagerConfig mgr_config;
          mgr_config.adaptive = config.predict.adaptive;
          mgr_config.adaptive_config = config.predict.adaptive_config;
          predict::PredictorPtr predictor =
              config.predict.oracle
                  ? std::make_shared<OraclePredictor>(
                        config.correct_rate,
                        config.seed * 104729 +
                            static_cast<std::uint64_t>(c))
                  : predict::make_predictor(config.predict.kind,
                                            config.predict.predictor);
          predict_managers.push_back(
              std::make_unique<predict::SpeculationManager>(
                  std::move(predictor), mgr_config));
          predict_managers.back()->install(spec_config);
        }
        spec_clients.push_back(std::make_unique<spec::SpecEngine>(
            transport, *work_executor, net->wheel(), spec_config));
      } else {
        rpc_clients.push_back(std::make_unique<rpc::Node>(
            transport, *work_executor, net->wheel(), node_config()));
      }
    }
  }

  rpc::NodeConfig node_config() const {
    if (config.flavor == Flavor::kGrpc) {
      return grpcsim::to_node_config(grpcsim::GrpcSimConfig{});
    }
    return rpc::NodeConfig{};
  }

  const Address& server_for(int chain_idx) const {
    return server_addrs[static_cast<std::size_t>(chain_idx) %
                        server_addrs.size()];
  }

  /// True when client-side predictions come from an installed supplier
  /// (predict module or wrapped oracle) instead of inline oracle values.
  bool predictor_mode() const {
    return (config.predict.kind != predict::Kind::kNone ||
            config.predict.oracle) &&
           !config.server_side_prediction;
  }

  std::string twist(ServerState& state, std::string result) const {
    if (config.predict.volatile_results && !result.empty()) {
      result[0] = static_cast<char>(
          'A' + state.counter.fetch_add(1, std::memory_order_relaxed) % 7);
    }
    return result;
  }

  /// Completion delay for one RPC: the fixed service time, or — with
  /// server_serial — that time booked on the server's occupancy timeline,
  /// so concurrent (and misspeculated) calls queue.
  Duration service_delay(ServerState& state) const {
    if (!config.predict.server_serial) return config.service_time;
    const TimePoint now = Clock::now();
    std::lock_guard<std::mutex> lock(state.mu);
    const TimePoint start = std::max(now, state.busy_until);
    state.busy_until = start + config.service_time;
    return state.busy_until - now;
  }

  MicroConfig config;
  std::unique_ptr<SimNetwork> net;
  std::unique_ptr<Executor> work_executor;
  std::vector<Address> server_addrs;
  std::vector<Address> client_addrs;
  std::vector<std::unique_ptr<spec::SpecEngine>> spec_servers;
  std::vector<std::unique_ptr<spec::SpecEngine>> spec_clients;
  std::vector<std::unique_ptr<rpc::Node>> rpc_servers;
  std::vector<std::unique_ptr<rpc::Node>> rpc_clients;
  std::vector<std::unique_ptr<ServerState>> server_states;
  /// One per spec client in predictor mode (same order as spec_clients).
  std::vector<std::unique_ptr<predict::SpeculationManager>> predict_managers;
};

/// One SpecRPC request: the whole chain is expressed as nested callbacks so
/// every level can be speculated on (§2: "a sequence of dependent RPCs ...
/// a chain of callback functions").
spec::CallbackFactory chain_factory(Fixture& fixture,
                                    std::shared_ptr<std::vector<bool>> flips,
                                    int idx) {
  return [&fixture, flips, idx]() -> spec::CallbackFn {
    return [&fixture, flips, idx](spec::SpecContext& ctx,
                                  const Value& v) -> spec::CallbackResult {
      const int next = idx + 1;
      if (next >= fixture.config.rpcs_per_request) return v;
      const std::string arg =
          next_arg(v.as_string(), next, fixture.config.payload_size);
      ValueList predictions;
      if (!fixture.config.server_side_prediction &&
          !fixture.predictor_mode()) {
        const std::string correct = work_fn(arg);
        predictions.emplace_back((*flips)[static_cast<std::size_t>(next)]
                                     ? correct
                                     : wrong_value(correct));
      }
      // Predictor mode: leave predictions empty — the engine consults the
      // client's installed prediction supplier.
      ValueList args;
      args.emplace_back(arg);
      return ctx.call(fixture.server_for(next), "work", std::move(args),
                      std::move(predictions),
                      chain_factory(fixture, flips, next));
    };
  };
}

Duration run_one_request_spec(Fixture& fixture, int client, std::uint64_t seq,
                              Rng& rng) {
  auto& engine = *fixture.spec_clients[static_cast<std::size_t>(client)];
  const int n = fixture.config.rpcs_per_request;
  auto flips = std::make_shared<std::vector<bool>>();
  flips->reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    flips->push_back(rng.flip(fixture.config.correct_rate));

  const TimePoint t0 = Clock::now();
  const int key_space = fixture.config.predict.key_space;
  const std::uint64_t key = key_space > 0
                                ? seq % static_cast<std::uint64_t>(key_space)
                                : seq;
  const std::string arg0 = initial_arg(client, key, fixture.config.payload_size);
  ValueList predictions;
  if (!fixture.config.server_side_prediction && !fixture.predictor_mode()) {
    const std::string correct0 = work_fn(arg0);
    predictions.emplace_back((*flips)[0] ? correct0 : wrong_value(correct0));
  }
  ValueList args;
  args.emplace_back(arg0);
  auto future = engine.call(fixture.server_for(0), "work", std::move(args),
                            std::move(predictions),
                            chain_factory(fixture, flips, 0));
  future->get();
  return Clock::now() - t0;
}

Duration run_one_request_sync(Fixture& fixture, int client,
                              std::uint64_t seq) {
  auto& node = *fixture.rpc_clients[static_cast<std::size_t>(client)];
  const TimePoint t0 = Clock::now();
  const int key_space = fixture.config.predict.key_space;
  const std::uint64_t key = key_space > 0
                                ? seq % static_cast<std::uint64_t>(key_space)
                                : seq;
  std::string arg = initial_arg(client, key, fixture.config.payload_size);
  for (int i = 0; i < fixture.config.rpcs_per_request; ++i) {
    ValueList args;
    args.emplace_back(arg);
    const Value result =
        node.call_sync(fixture.server_for(i), "work", std::move(args));
    if (i + 1 < fixture.config.rpcs_per_request) {
      arg = next_arg(result.as_string(), i + 1, fixture.config.payload_size);
    }
  }
  return Clock::now() - t0;
}

}  // namespace

MicroResult run_microbench(const MicroConfig& config, Duration warmup,
                           Duration measure) {
  Fixture fixture(config);
  MicroResult result;
  std::mutex mu;

  const TimePoint start = Clock::now();
  const TimePoint measure_from = start + warmup;
  const TimePoint measure_until = measure_from + measure;
  const auto period = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(1.0 / config.requests_per_s));

  // Traffic accounting covers exactly the measurement window.
  std::thread stats_reset([&] {
    std::this_thread::sleep_until(measure_from);
    fixture.net->reset_stats();
  });

  std::vector<std::thread> threads;
  for (int c = 0; c < config.num_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(config.seed * 7919 + static_cast<std::uint64_t>(c));
      std::uint64_t seq = 0;
      TimePoint next_slot = start + period * c / config.num_clients;
      while (Clock::now() < measure_until) {
        std::this_thread::sleep_until(next_slot);
        next_slot += period;
        const TimePoint t0 = Clock::now();
        if (t0 >= measure_until) break;
        Duration latency;
        try {
          latency = (config.flavor == Flavor::kSpec)
                        ? run_one_request_spec(fixture, c, seq, rng)
                        : run_one_request_sync(fixture, c, seq);
        } catch (const std::exception& e) {
          SRPC_LOG(WARN) << "microbench request failed: " << e.what();
          continue;
        }
        ++seq;
        if (t0 < measure_from) continue;
        std::lock_guard<std::mutex> lock(mu);
        result.latency.record(latency);
        result.requests++;
      }
    });
  }
  for (auto& t : threads) t.join();
  stats_reset.join();

  result.elapsed_s = std::chrono::duration<double>(measure).count();
  for (const auto& addr : fixture.client_addrs)
    result.client_traffic += fixture.net->stats(addr);
  for (const auto& addr : fixture.server_addrs)
    result.server_traffic += fixture.net->stats(addr);
  for (const auto& engine : fixture.spec_clients) {
    const auto s = engine->stats();
    result.spec.calls_issued += s.calls_issued;
    result.spec.callbacks_spawned += s.callbacks_spawned;
    result.spec.reexecutions += s.reexecutions;
    result.spec.predictions_made += s.predictions_made;
    result.spec.predictions_correct += s.predictions_correct;
    result.spec.predictions_incorrect += s.predictions_incorrect;
    result.spec.branches_abandoned += s.branches_abandoned;
    result.spec.rollbacks_run += s.rollbacks_run;
  }
  for (const auto& mgr : fixture.predict_managers) {
    const auto s = mgr->stats();
    result.managers.supplier_calls += s.supplier_calls;
    result.managers.predictions_supplied += s.predictions_supplied;
    result.managers.gate_suppressed += s.gate_suppressed;
    result.managers.predictor_empty += s.predictor_empty;
    result.managers.learned += s.learned;
  }
  return result;
}

}  // namespace srpc::wl
