#include "workload/microbench.h"

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "grpcsim/grpcsim.h"
#include "rpc/node.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::wl {
namespace {

/// The deterministic server function: flips the first byte of the payload.
/// Pure, so clients can predict results exactly when they choose to.
std::string work_fn(const std::string& arg) {
  std::string out = arg;
  if (!out.empty()) out[0] = 'R';
  return out;
}

/// Argument for chain step `idx`, derived from the previous step's result —
/// this is what makes the RPCs *dependent*.
std::string next_arg(const std::string& prev_result, int idx,
                     std::size_t payload_size) {
  std::string arg = prev_result;
  arg.resize(payload_size, 'p');
  arg[0] = 'a';
  if (payload_size > 1) arg[1] = static_cast<char>('0' + (idx % 10));
  return arg;
}

std::string initial_arg(int client, std::uint64_t seq,
                        std::size_t payload_size) {
  char head[48];
  std::snprintf(head, sizeof(head), "a0c%dq%llu-", client,
                static_cast<unsigned long long>(seq));
  std::string arg = head;
  arg.resize(payload_size, 'p');
  return arg;
}

std::string wrong_value(const std::string& correct) {
  std::string out = correct;
  if (!out.empty()) out[0] = 'W';
  return out;
}

/// Deterministic per-request accuracy draw for server-side prediction.
bool server_flip(const std::string& arg, double rate, std::uint64_t seed) {
  std::uint64_t h = seed * 0x9E3779B97F4A7C15ULL;
  for (char ch : arg) h = (h ^ static_cast<std::uint8_t>(ch)) * 0x100000001B3ULL;
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < rate;
}

struct Fixture {
  ~Fixture() {
    // Stop engines (wakes spec_block waiters), drain their executor, then
    // destroy them, then the network. See RcCluster::~RcCluster.
    for (auto& e : spec_servers) e->begin_shutdown();
    for (auto& e : spec_clients) e->begin_shutdown();
    work_executor->shutdown();
    spec_servers.clear();
    spec_clients.clear();
    rpc_servers.clear();
    rpc_clients.clear();
    net.reset();
    work_executor.reset();
  }

  explicit Fixture(const MicroConfig& config) : config(config) {
    SimConfig sim_config;
    sim_config.executor_threads = config.executor_threads;
    sim_config.default_delay = config.link_delay;
    sim_config.seed = config.seed;
    net = std::make_unique<SimNetwork>(sim_config);
    // Callbacks may park in spec_block; keep them off the delivery executor.
    work_executor = std::make_unique<Executor>(
        config.num_clients * 3 + config.num_servers + 8, "micro-work");

    for (int s = 0; s < config.num_servers; ++s) {
      const Address addr = "server" + std::to_string(s);
      Transport& transport = net->add_node(addr);
      server_addrs.push_back(addr);
      if (config.flavor == Flavor::kSpec) {
        auto engine = std::make_unique<spec::SpecEngine>(
            transport, *work_executor, net->wheel());
        engine->register_method(
            "work", spec::Handler([this](const spec::ServerCallPtr& call) {
              const std::string arg = call->args().at(0).as_string();
              const std::string result = work_fn(arg);
              if (this->config.server_side_prediction) {
                // Figure 2c: the server predicts its own result partway
                // through execution. Accuracy is drawn deterministically
                // from the request payload so reruns are reproducible.
                const bool correct =
                    server_flip(arg, this->config.correct_rate,
                                this->config.seed);
                const std::string predicted =
                    correct ? result : wrong_value(result);
                const auto handoff = std::chrono::duration_cast<Duration>(
                    this->config.service_time *
                    this->config.server_handoff_fraction);
                net->wheel().schedule_after(handoff, [call, predicted] {
                  try {
                    call->spec_return(Value(predicted));
                  } catch (const spec::SpeculationAbandoned&) {
                  }
                });
              }
              call->finish_after(this->config.service_time, Value(result));
            }));
        spec_servers.push_back(std::move(engine));
      } else {
        auto node = std::make_unique<rpc::Node>(transport, *work_executor,
                                                net->wheel(), node_config());
        node->register_method(
            "work", [this](const rpc::CallContext& ctx, ValueList args,
                           rpc::Responder responder) {
              ctx.finish_after(this->config.service_time, std::move(responder),
                               Value(work_fn(args.at(0).as_string())));
            });
        rpc_servers.push_back(std::move(node));
      }
    }
    for (int c = 0; c < config.num_clients; ++c) {
      const Address addr = "client" + std::to_string(c);
      Transport& transport = net->add_node(addr);
      client_addrs.push_back(addr);
      if (config.flavor == Flavor::kSpec) {
        spec_clients.push_back(std::make_unique<spec::SpecEngine>(
            transport, *work_executor, net->wheel()));
      } else {
        rpc_clients.push_back(std::make_unique<rpc::Node>(
            transport, *work_executor, net->wheel(), node_config()));
      }
    }
  }

  rpc::NodeConfig node_config() const {
    if (config.flavor == Flavor::kGrpc) {
      return grpcsim::to_node_config(grpcsim::GrpcSimConfig{});
    }
    return rpc::NodeConfig{};
  }

  const Address& server_for(int chain_idx) const {
    return server_addrs[static_cast<std::size_t>(chain_idx) %
                        server_addrs.size()];
  }

  MicroConfig config;
  std::unique_ptr<SimNetwork> net;
  std::unique_ptr<Executor> work_executor;
  std::vector<Address> server_addrs;
  std::vector<Address> client_addrs;
  std::vector<std::unique_ptr<spec::SpecEngine>> spec_servers;
  std::vector<std::unique_ptr<spec::SpecEngine>> spec_clients;
  std::vector<std::unique_ptr<rpc::Node>> rpc_servers;
  std::vector<std::unique_ptr<rpc::Node>> rpc_clients;
};

/// One SpecRPC request: the whole chain is expressed as nested callbacks so
/// every level can be speculated on (§2: "a sequence of dependent RPCs ...
/// a chain of callback functions").
spec::CallbackFactory chain_factory(Fixture& fixture,
                                    std::shared_ptr<std::vector<bool>> flips,
                                    int idx) {
  return [&fixture, flips, idx]() -> spec::CallbackFn {
    return [&fixture, flips, idx](spec::SpecContext& ctx,
                                  const Value& v) -> spec::CallbackResult {
      const int next = idx + 1;
      if (next >= fixture.config.rpcs_per_request) return v;
      const std::string arg =
          next_arg(v.as_string(), next, fixture.config.payload_size);
      ValueList predictions;
      if (!fixture.config.server_side_prediction) {
        const std::string correct = work_fn(arg);
        predictions.emplace_back((*flips)[static_cast<std::size_t>(next)]
                                     ? correct
                                     : wrong_value(correct));
      }
      ValueList args;
      args.emplace_back(arg);
      return ctx.call(fixture.server_for(next), "work", std::move(args),
                      std::move(predictions),
                      chain_factory(fixture, flips, next));
    };
  };
}

Duration run_one_request_spec(Fixture& fixture, int client, std::uint64_t seq,
                              Rng& rng) {
  auto& engine = *fixture.spec_clients[static_cast<std::size_t>(client)];
  const int n = fixture.config.rpcs_per_request;
  auto flips = std::make_shared<std::vector<bool>>();
  flips->reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    flips->push_back(rng.flip(fixture.config.correct_rate));

  const TimePoint t0 = Clock::now();
  const std::string arg0 =
      initial_arg(client, seq, fixture.config.payload_size);
  ValueList predictions;
  if (!fixture.config.server_side_prediction) {
    const std::string correct0 = work_fn(arg0);
    predictions.emplace_back((*flips)[0] ? correct0 : wrong_value(correct0));
  }
  ValueList args;
  args.emplace_back(arg0);
  auto future = engine.call(fixture.server_for(0), "work", std::move(args),
                            std::move(predictions),
                            chain_factory(fixture, flips, 0));
  future->get();
  return Clock::now() - t0;
}

Duration run_one_request_sync(Fixture& fixture, int client,
                              std::uint64_t seq) {
  auto& node = *fixture.rpc_clients[static_cast<std::size_t>(client)];
  const TimePoint t0 = Clock::now();
  std::string arg = initial_arg(client, seq, fixture.config.payload_size);
  for (int i = 0; i < fixture.config.rpcs_per_request; ++i) {
    ValueList args;
    args.emplace_back(arg);
    const Value result =
        node.call_sync(fixture.server_for(i), "work", std::move(args));
    if (i + 1 < fixture.config.rpcs_per_request) {
      arg = next_arg(result.as_string(), i + 1, fixture.config.payload_size);
    }
  }
  return Clock::now() - t0;
}

}  // namespace

MicroResult run_microbench(const MicroConfig& config, Duration warmup,
                           Duration measure) {
  Fixture fixture(config);
  MicroResult result;
  std::mutex mu;

  const TimePoint start = Clock::now();
  const TimePoint measure_from = start + warmup;
  const TimePoint measure_until = measure_from + measure;
  const auto period = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(1.0 / config.requests_per_s));

  // Traffic accounting covers exactly the measurement window.
  std::thread stats_reset([&] {
    std::this_thread::sleep_until(measure_from);
    fixture.net->reset_stats();
  });

  std::vector<std::thread> threads;
  for (int c = 0; c < config.num_clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(config.seed * 7919 + static_cast<std::uint64_t>(c));
      std::uint64_t seq = 0;
      TimePoint next_slot = start + period * c / config.num_clients;
      while (Clock::now() < measure_until) {
        std::this_thread::sleep_until(next_slot);
        next_slot += period;
        const TimePoint t0 = Clock::now();
        if (t0 >= measure_until) break;
        Duration latency;
        try {
          latency = (config.flavor == Flavor::kSpec)
                        ? run_one_request_spec(fixture, c, seq, rng)
                        : run_one_request_sync(fixture, c, seq);
        } catch (const std::exception& e) {
          SRPC_LOG(WARN) << "microbench request failed: " << e.what();
          continue;
        }
        ++seq;
        if (t0 < measure_from) continue;
        std::lock_guard<std::mutex> lock(mu);
        result.latency.record(latency);
        result.requests++;
      }
    });
  }
  for (auto& t : threads) t.join();
  stats_reset.join();

  result.elapsed_s = std::chrono::duration<double>(measure).count();
  for (const auto& addr : fixture.client_addrs)
    result.client_traffic += fixture.net->stats(addr);
  for (const auto& addr : fixture.server_addrs)
    result.server_traffic += fixture.net->stats(addr);
  return result;
}

}  // namespace srpc::wl
