// The §5.1 microbenchmark: 16 clients each issuing requests, where a request
// is a chain of dependent RPCs (default 4) to multiple servers, each RPC
// exchanging 64-byte payloads and taking 10 ms of service time. Clients
// issue 10 requests/s, and for SpecRPC predict every RPC result with a
// configurable per-RPC correct-prediction rate (the Figure 8a x-axis).
//
// Result determinism: server method "work" computes a pure function of its
// argument, so the client can construct either the exactly-correct
// prediction or a deliberately wrong one, realizing the target rate.
#pragma once

#include <string>

#include "common/flavor.h"
#include "predict/manager.h"
#include "predict/predictor.h"
#include "specrpc/engine.h"
#include "stats/histogram.h"
#include "transport/transport.h"

namespace srpc::wl {

struct MicroConfig {
  Flavor flavor = Flavor::kSpec;
  int num_clients = 16;
  int num_servers = 4;
  int rpcs_per_request = 4;
  Duration service_time = std::chrono::milliseconds(10);
  std::size_t payload_size = 64;
  double correct_rate = 1.0;         // per-RPC prediction accuracy
  /// false (default): client-side prediction (Figure 2b) — the client
  /// supplies a predicted result with each call. true: server-side
  /// prediction (Figure 2c) — the server specReturns its prediction after
  /// `server_handoff_fraction` of the service time.
  bool server_side_prediction = false;
  double server_handoff_fraction = 0.1;
  double requests_per_s = 10.0;      // per client
  Duration link_delay = std::chrono::microseconds(100);  // one-way LAN
  int executor_threads = 8;
  std::uint64_t seed = 1;

  /// Real-predictor mode (src/predict). When `kind != kNone` the oracle
  /// above (correct_rate flips) is bypassed: clients issue calls with *no*
  /// inline predictions and each client engine carries a SpeculationManager
  /// whose predictor supplies them from learned state.
  struct PredictMode {
    predict::Kind kind = predict::Kind::kNone;
    predict::PredictorConfig predictor;
    /// Use the deterministic oracle as a *predictor*: predictions still
    /// realize `correct_rate`, but flow through the supplier hook (and the
    /// adaptive gate) instead of being passed inline with each call. Lets
    /// the Figure 8a sweep add an adaptive series at a controlled accuracy.
    bool oracle = false;
    /// Gate speculation on observed accuracy instead of always speculating.
    bool adaptive = false;
    predict::AdaptiveConfig adaptive_config;
    /// >0: initial args are drawn from a per-client pool of this many keys,
    /// so predictor state recurs and can become accurate. 0 = every request
    /// uses a fresh key (predictor stays cold).
    int key_space = 0;
    /// Adversarial twist: servers mix a per-server counter into the first
    /// result byte, so the same argument yields a different result on every
    /// call — predictions learned from history are almost always wrong.
    /// Chain structure is unaffected (next_arg overwrites that byte).
    bool volatile_results = false;
    /// Servers serialize work on a busy-until timeline instead of completing
    /// all in-flight requests concurrently. Misspeculated (and re-executed)
    /// calls then queue behind real work, giving wrong speculation a cost.
    bool server_serial = false;
  };
  PredictMode predict;
};

struct MicroResult {
  stats::Histogram latency;  // request completion time
  std::uint64_t requests = 0;
  double elapsed_s = 0;
  TrafficStats client_traffic;  // summed over client nodes, measure window
  TrafficStats server_traffic;
  spec::SpecStats spec;            // summed over client engines (kSpec only)
  predict::ManagerStats managers;  // summed; zeroes unless predict.kind set

  double prediction_hit_rate() const {
    const auto total = spec.predictions_correct + spec.predictions_incorrect;
    return total > 0
               ? static_cast<double>(spec.predictions_correct) /
                     static_cast<double>(total)
               : 0;
  }

  double mean_ms() const { return latency.mean_ms(); }
  double client_send_kbps() const {
    return elapsed_s > 0 ? client_traffic.bytes_sent * 8.0 / 1000.0 / elapsed_s
                         : 0;
  }
  double client_recv_kbps() const {
    return elapsed_s > 0 ? client_traffic.bytes_recv * 8.0 / 1000.0 / elapsed_s
                         : 0;
  }
  double server_send_kbps() const {
    return elapsed_s > 0 ? server_traffic.bytes_sent * 8.0 / 1000.0 / elapsed_s
                         : 0;
  }
  double server_recv_kbps() const {
    return elapsed_s > 0 ? server_traffic.bytes_recv * 8.0 / 1000.0 / elapsed_s
                         : 0;
  }
};

MicroResult run_microbench(const MicroConfig& config, Duration warmup,
                           Duration measure);

}  // namespace srpc::wl
