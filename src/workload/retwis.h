// Retwis workload — the Twitter-like transaction mix of Table 2 (taken from
// Zhang et al., TAPIR [46]):
//
//   Transaction type   #gets  #puts  share
//   Add User             1      3      5%
//   Follow/Unfollow      2      2     15%
//   Post Tweet           3      5     30%
//   Load Timeline    rand(1,10)  0    50%
//
// Gets and puts pair up as read-modify-write where counts allow, matching
// the usual Retwis implementation.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rc/common.h"

namespace srpc::wl {

enum class RetwisTxnType : int {
  kAddUser = 0,
  kFollow = 1,
  kPostTweet = 2,
  kLoadTimeline = 3,
};

inline const char* to_string(RetwisTxnType t) {
  switch (t) {
    case RetwisTxnType::kAddUser:
      return "AddUser";
    case RetwisTxnType::kFollow:
      return "Follow/Unfollow";
    case RetwisTxnType::kPostTweet:
      return "PostTweet";
    case RetwisTxnType::kLoadTimeline:
      return "LoadTimeline";
  }
  return "?";
}

struct RetwisTxn {
  RetwisTxnType type = RetwisTxnType::kLoadTimeline;
  std::vector<rc::Op> ops;
};

struct RetwisConfig {
  double zipf_alpha = 0.75;
  std::uint64_t num_keys = 100'000;
  std::size_t value_size = 16;
};

class RetwisWorkload {
 public:
  RetwisWorkload(RetwisConfig config, std::uint64_t seed)
      : config_(config),
        rng_(seed),
        zipf_(config.num_keys, config.zipf_alpha) {}

  RetwisTxn next_txn() {
    RetwisTxn txn;
    const double roll = rng_.uniform01();
    if (roll < 0.05) {
      txn.type = RetwisTxnType::kAddUser;
      build(txn.ops, /*gets=*/1, /*puts=*/3);
    } else if (roll < 0.20) {
      txn.type = RetwisTxnType::kFollow;
      build(txn.ops, 2, 2);
    } else if (roll < 0.50) {
      txn.type = RetwisTxnType::kPostTweet;
      build(txn.ops, 3, 5);
    } else {
      txn.type = RetwisTxnType::kLoadTimeline;
      build(txn.ops, static_cast<int>(rng_.uniform_range(1, 10)), 0);
    }
    return txn;
  }

  const RetwisConfig& config() const { return config_; }

 private:
  /// Emits `gets` reads and `puts` writes. The first min(gets, puts) keys
  /// are read-modify-write pairs; remaining puts are blind writes.
  void build(std::vector<rc::Op>& ops, int gets, int puts) {
    const int pairs = std::min(gets, puts);
    for (int i = 0; i < pairs; ++i) {
      const std::string key = pick_key();
      ops.push_back(rc::Op{true, key, {}});
      ops.push_back(rc::Op{false, key, value()});
    }
    for (int i = pairs; i < gets; ++i) ops.push_back(rc::Op{true, pick_key(), {}});
    for (int i = pairs; i < puts; ++i)
      ops.push_back(rc::Op{false, pick_key(), value()});
  }

  std::string value() const { return std::string(config_.value_size, 'w'); }

  std::string pick_key() {
    const std::uint64_t rank = zipf_.sample(rng_);
    const std::uint64_t idx = fnv_scramble(rank, config_.num_keys);
    char key[32];
    std::snprintf(key, sizeof(key), "k%08llu",
                  static_cast<unsigned long long>(idx));
    return key;
  }

  RetwisConfig config_;
  Rng rng_;
  Zipf zipf_;
};

}  // namespace srpc::wl
