#include "workload/runner.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace srpc::wl {

RcRunResult run_rc_closed_loop(rc::RcCluster& cluster,
                               const WorkloadFactory& workload_factory,
                               Duration warmup, Duration measure) {
  std::vector<rc::RcClient*> clients;
  const int per_dc = cluster.clients_per_dc();
  for (int dc = 0; dc < cluster.num_dcs(); ++dc)
    for (int i = 0; i < per_dc; ++i) clients.push_back(&cluster.client(dc, i));
  return run_rc_closed_loop(clients, 0, workload_factory, warmup, measure);
}

RcRunResult run_rc_closed_loop(const std::vector<rc::RcClient*>& clients,
                               int index_base,
                               const WorkloadFactory& workload_factory,
                               Duration warmup, Duration measure) {
  RcRunResult result;
  std::mutex result_mu;
  const TimePoint start = Clock::now();
  const TimePoint measure_from = start + warmup;
  const TimePoint measure_until = measure_from + measure;

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const int global_index = index_base + static_cast<int>(c);
    threads.emplace_back([&, c, global_index] {
        auto next_txn = workload_factory(global_index);
        rc::RcClient& client = *clients[c];
        while (Clock::now() < measure_until) {
          const TimePoint t0 = Clock::now();
          rc::TxnResult txn;
          try {
            txn = client.run(next_txn());
          } catch (const std::exception& e) {
            SRPC_LOG(WARN) << "txn failed: " << e.what();
            continue;
          }
          if (t0 < measure_from || t0 >= measure_until) continue;
          std::lock_guard<std::mutex> lock(result_mu);
          if (txn.committed) {
            result.committed++;
            if (txn.read_only) result.read_only++;
            result.txn_latency.record(txn.total);
            if (!txn.read_only) result.commit_latency.record(txn.commit_phase);
          } else {
            result.aborted++;
            result.abort_latency.record(txn.total);
          }
        }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = std::chrono::duration<double>(measure).count();
  return result;
}

BatchRunResult run_batch_closed_loop(rc::RcCluster& cluster,
                                     const BatchWorkloadFactory& factory,
                                     Duration warmup, Duration measure) {
  std::vector<batch::BatchClient*> clients;
  const int per_dc = cluster.clients_per_dc();
  for (int dc = 0; dc < cluster.num_dcs(); ++dc)
    for (int i = 0; i < per_dc; ++i)
      clients.push_back(&cluster.batch_client(dc, i));
  return run_batch_closed_loop(clients, 0, factory, warmup, measure);
}

BatchRunResult run_batch_closed_loop(rc::RcCluster& cluster,
                                     const SizedBatchWorkloadFactory& factory,
                                     Duration warmup, Duration measure) {
  std::vector<batch::BatchClient*> clients;
  const int per_dc = cluster.clients_per_dc();
  for (int dc = 0; dc < cluster.num_dcs(); ++dc)
    for (int i = 0; i < per_dc; ++i)
      clients.push_back(&cluster.batch_client(dc, i));
  return run_batch_closed_loop(clients, 0, factory, warmup, measure);
}

BatchRunResult run_batch_closed_loop(
    const std::vector<batch::BatchClient*>& clients, int index_base,
    const SizedBatchWorkloadFactory& factory, Duration warmup,
    Duration measure) {
  // Adapt the sized source onto the plain loop: each pull first asks the
  // client how deep the next epoch should be (the adaptive controller's
  // decision is cached until run_epoch consumes it, so size and mode stay
  // one decision).
  BatchWorkloadFactory adapted = [&factory, &clients,
                                  index_base](int client_index) {
    auto sized = factory(client_index);
    batch::BatchClient* client =
        clients[static_cast<std::size_t>(client_index - index_base)];
    return [sized = std::move(sized), client]() {
      return sized(client->next_epoch_size());
    };
  };
  return run_batch_closed_loop(clients, index_base, adapted, warmup, measure);
}

BatchRunResult run_batch_closed_loop(
    const std::vector<batch::BatchClient*>& clients, int index_base,
    const BatchWorkloadFactory& factory, Duration warmup, Duration measure) {
  BatchRunResult result;
  std::mutex result_mu;
  const TimePoint start = Clock::now();
  const TimePoint measure_from = start + warmup;
  const TimePoint measure_until = measure_from + measure;

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const int global_index = index_base + static_cast<int>(c);
    threads.emplace_back([&, c, global_index] {
      auto next_epoch = factory(global_index);
      batch::BatchClient& client = *clients[c];
      while (Clock::now() < measure_until) {
        const TimePoint t0 = Clock::now();
        batch::EpochResult epoch;
        try {
          epoch = client.run_epoch(next_epoch());
        } catch (const std::exception& e) {
          SRPC_LOG(WARN) << "batch epoch failed: " << e.what();
          continue;
        }
        if (t0 < measure_from || t0 >= measure_until) continue;
        std::lock_guard<std::mutex> lock(result_mu);
        result.epochs++;
        result.committed += epoch.committed;
        result.aborted += epoch.aborted;
        result.epoch_latency.record(epoch.total);
        if (epoch.mode != batch::BatchMode::kPerTxn2pc) {
          result.commit_latency.record(epoch.commit_phase);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = std::chrono::duration<double>(measure).count();
  return result;
}

}  // namespace srpc::wl
