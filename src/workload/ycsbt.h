// YCSB+T workload (§5.2.2): YCSB with transactional wrapping — each
// transaction performs `ops_per_txn` operations, each a read with
// probability `read_fraction`, keys drawn from a scrambled Zipfian
// distribution (default alpha 0.75, matching the paper).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rc/common.h"

namespace srpc::wl {

struct YcsbtConfig {
  int ops_per_txn = 5;
  double read_fraction = 0.5;  // 1:1 read/write ratio by default (Fig 9)
  double zipf_alpha = 0.75;
  std::uint64_t num_keys = 100'000;
  std::size_t value_size = 16;
};

class YcsbtWorkload {
 public:
  YcsbtWorkload(YcsbtConfig config, std::uint64_t seed)
      : config_(config),
        rng_(seed),
        zipf_(config.num_keys, config.zipf_alpha) {}

  std::vector<rc::Op> next_txn() {
    std::vector<rc::Op> ops;
    ops.reserve(static_cast<std::size_t>(config_.ops_per_txn));
    for (int i = 0; i < config_.ops_per_txn; ++i) {
      rc::Op op;
      op.is_read = rng_.flip(config_.read_fraction);
      op.key = pick_key();
      if (!op.is_read) op.value = std::string(config_.value_size, 'w');
      ops.push_back(std::move(op));
    }
    return ops;
  }

  const YcsbtConfig& config() const { return config_; }

 private:
  std::string pick_key() {
    const std::uint64_t rank = zipf_.sample(rng_);
    const std::uint64_t idx = fnv_scramble(rank, config_.num_keys);
    char key[32];
    std::snprintf(key, sizeof(key), "k%08llu",
                  static_cast<unsigned long long>(idx));
    return key;
  }

  YcsbtConfig config_;
  Rng rng_;
  Zipf zipf_;
};

}  // namespace srpc::wl
