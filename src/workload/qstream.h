// QStream — the ordered-stream workload family for queue-oriented batch
// transactions (DESIGN.md §12.7).
//
// Each client produces an ordered stream of small transactions cut into
// batch epochs. The stream has the structure queue-order prediction
// exploits:
//
//   * Hot-key runs — consecutive transactions revisit the same hot counter
//     (run lengths geometric around `run_length_mean`), so within a batch
//     later transactions read what earlier ones wrote (overlay reads), and
//     across epochs last epoch's committed values seed this epoch's reads.
//   * Skewed partition fan-out — each transaction's cold ops land on a
//     "home" shard drawn from a Zipfian over shards, so queue depths are
//     deliberately unbalanced.
//   * Cross-partition fraction — with probability
//     `cross_partition_fraction` a transaction is forced to straddle at
//     least two shard queues (the straddle commits atomically or not at
//     all; the suffix-rollback tests ride this knob).
//
// The hot set is shared by every client (same key names), so `hot_keys`
// and `hot_fraction` double as the conflict-rate dial: fewer hot keys +
// higher fraction = more cross-client write-write conflicts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "batch/types.h"
#include "common/rng.h"
#include "rc/view.h"

namespace srpc::wl {

struct QStreamConfig {
  std::size_t txns_per_epoch = 32;
  int ops_per_txn = 4;
  double read_fraction = 0.4;  // plain reads among cold ops
  double rmw_fraction = 0.3;   // rmw among cold ops; the rest blind-write
  std::uint64_t num_keys = 100'000;
  std::size_t value_size = 16;
  /// Hot set: `hot_keys` dataset keys starting at `hot_offset`, shared
  /// across clients.
  std::size_t hot_keys = 16;
  /// First dataset key of the hot set — phase schedules move it to flip the
  /// hot set's identity (old seeds stop mattering without any view change).
  std::uint64_t hot_offset = 0;
  /// Probability that a transaction (outside a run) starts a hot run.
  double hot_fraction = 0.5;
  double run_length_mean = 4.0;
  /// Zipf alpha over shards for the cold ops' home shard.
  double shard_alpha = 0.9;
  double cross_partition_fraction = 0.3;
};

/// One phase of a shifting schedule: the conflict dial (hot set size and
/// contention fraction) plus the hot set's identity. Everything else of the
/// stream (dataset, shard skew, op mix) stays fixed across phases.
struct QStreamPhase {
  std::size_t hot_keys = 16;
  std::uint64_t hot_offset = 0;
  double hot_fraction = 0.5;
  double cross_partition_fraction = 0.3;
};

class QStreamWorkload {
 public:
  /// `view` supplies the shard map the stream is bucketed against; the
  /// default static view matches a cluster that has not reconfigured. The
  /// bucketing is a generator-side targeting heuristic only — after a
  /// migration the "home shard" skew drifts, but correctness never depends
  /// on it (clients route by their own ClusterView).
  QStreamWorkload(QStreamConfig config, std::uint64_t seed,
                  const rc::ClusterView& view = rc::ClusterView::make_static())
      : config_(config),
        rng_(seed),
        num_shards_(view.num_shards),
        shard_zipf_(static_cast<std::uint64_t>(view.num_shards),
                    config.shard_alpha) {
    // Bucket the dataset by shard once so cold ops can target a shard
    // directly (slot hashing cannot be inverted).
    shard_keys_.resize(static_cast<std::size_t>(view.num_shards));
    for (std::uint64_t i = 0; i < config_.num_keys; ++i) {
      std::string key = key_at(i);
      shard_keys_[static_cast<std::size_t>(view.shard_of(key))].push_back(
          std::move(key));
    }
  }

  /// The next `txns_per_epoch` transactions of the stream, in order.
  std::vector<batch::BatchTxn> next_epoch() {
    return next_txns(config_.txns_per_epoch);
  }

  /// The next `n` transactions of the stream — the sized-source hook for
  /// adaptive epoch depths (the stream itself is epoch-agnostic).
  std::vector<batch::BatchTxn> next_txns(std::size_t n) {
    std::vector<batch::BatchTxn> txns;
    txns.reserve(n);
    for (std::size_t i = 0; i < n; ++i) txns.push_back(next_txn());
    return txns;
  }

  /// Flips the conflict dial and hot-set identity mid-stream (phase
  /// schedules). Takes effect from the next transaction; a live hot run is
  /// cut so the old hot set stops being touched immediately.
  void set_phase(const QStreamPhase& phase) {
    config_.hot_keys = phase.hot_keys;
    config_.hot_offset = phase.hot_offset;
    config_.hot_fraction = phase.hot_fraction;
    config_.cross_partition_fraction = phase.cross_partition_fraction;
    run_remaining_ = 0;
  }

  const QStreamConfig& config() const { return config_; }

 private:
  batch::BatchTxn next_txn() {
    batch::BatchTxn txn;
    txn.id = next_id_++;
    txn.ops.reserve(static_cast<std::size_t>(config_.ops_per_txn));

    // Hot-key run machinery: while a run is live, the transaction's first
    // op increments the run's counter key.
    if (run_remaining_ == 0 && config_.hot_keys > 0 &&
        rng_.flip(config_.hot_fraction)) {
      run_key_ = key_at((config_.hot_offset + rng_.uniform(config_.hot_keys)) %
                        config_.num_keys);
      run_remaining_ = 1;
      const auto cap = static_cast<std::size_t>(4 * config_.run_length_mean);
      while (run_remaining_ < cap &&
             rng_.flip(1.0 - 1.0 / config_.run_length_mean)) {
        run_remaining_++;
      }
    }
    if (run_remaining_ > 0) {
      run_remaining_--;
      batch::BatchOp op;
      op.kind = batch::OpKind::kRmw;
      op.key = run_key_;
      op.value = "1";
      op.transform = batch::Transform::kIncrement;
      txn.ops.push_back(std::move(op));
    }

    // Cold ops on the home shard; a cross-partition transaction forces its
    // second cold op onto a different shard.
    const int home = static_cast<int>(shard_zipf_.sample(rng_));
    const bool straddle = rng_.flip(config_.cross_partition_fraction);
    int cold_index = 0;
    while (txn.ops.size() < static_cast<std::size_t>(config_.ops_per_txn)) {
      int shard = home;
      if (straddle && cold_index == 1 && num_shards_ > 1) {
        shard = (home + 1 + static_cast<int>(rng_.uniform(
                                 static_cast<std::uint64_t>(num_shards_) -
                                 1))) %
                num_shards_;
      }
      const auto& keys = shard_keys_[static_cast<std::size_t>(shard)];
      batch::BatchOp op;
      op.key = keys[rng_.uniform(keys.size())];
      const double roll = rng_.uniform01();
      if (roll < config_.read_fraction) {
        op.kind = batch::OpKind::kRead;
      } else if (roll < config_.read_fraction + config_.rmw_fraction) {
        op.kind = batch::OpKind::kRmw;
        op.value = "a";
        op.transform = batch::Transform::kAppend;
      } else {
        op.kind = batch::OpKind::kWrite;
        op.value = std::string(config_.value_size, 'w');
      }
      txn.ops.push_back(std::move(op));
      cold_index++;
    }
    return txn;
  }

  std::string key_at(std::uint64_t i) const {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08llu",
                  static_cast<unsigned long long>(i));
    return key;
  }

  QStreamConfig config_;
  Rng rng_;
  int num_shards_ = 0;
  Zipf shard_zipf_;
  std::vector<std::vector<std::string>> shard_keys_;
  std::uint64_t next_id_ = 0;
  std::string run_key_;
  std::size_t run_remaining_ = 0;
};

}  // namespace srpc::wl
