// Closed-loop benchmark driver for Replicated Commit (§5.2: "a client sends
// transactions back-to-back, and there are 16 clients in each datacentre").
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rc/cluster.h"
#include "stats/histogram.h"

namespace srpc::wl {

struct RcRunResult {
  stats::Histogram txn_latency;     // completion time of committed txns
  stats::Histogram commit_latency;  // commit phase of committed r/w txns
  stats::Histogram abort_latency;   // completion time of aborted txns
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t read_only = 0;
  double elapsed_s = 0;

  double committed_per_s() const {
    return elapsed_s > 0 ? static_cast<double>(committed) / elapsed_s : 0;
  }
  double abort_rate() const {
    const auto total = committed + aborted;
    return total > 0 ? static_cast<double>(aborted) /
                           static_cast<double>(total)
                     : 0;
  }
};

/// Per-client transaction source; must be safe to use from that client's
/// thread only. The int argument is the global client index.
using WorkloadFactory =
    std::function<std::function<std::vector<rc::Op>()>(int client_index)>;

/// Runs every client of `cluster` in a closed loop for warmup+measure,
/// recording only transactions that *start* inside the measurement window
/// (the paper measures the middle of each run for the same reason).
RcRunResult run_rc_closed_loop(rc::RcCluster& cluster,
                               const WorkloadFactory& workload_factory,
                               Duration warmup, Duration measure);

/// Same closed loop over bare clients. A cross-process cluster node drives
/// only its local clients through this; `index_base` offsets the global
/// client index so workload streams stay distinct across processes.
RcRunResult run_rc_closed_loop(const std::vector<rc::RcClient*>& clients,
                               int index_base,
                               const WorkloadFactory& workload_factory,
                               Duration warmup, Duration measure);

// ------------------------------------------------------- batch closed loop

struct BatchRunResult {
  stats::Histogram epoch_latency;   // full epoch (plan -> decide)
  stats::Histogram commit_latency;  // batch commit round (batched modes)
  std::uint64_t committed = 0;      // transactions, not epochs
  std::uint64_t aborted = 0;
  std::uint64_t epochs = 0;
  double elapsed_s = 0;

  double committed_per_s() const {
    return elapsed_s > 0 ? static_cast<double>(committed) / elapsed_s : 0;
  }
  double abort_rate() const {
    const auto total = committed + aborted;
    return total > 0 ? static_cast<double>(aborted) /
                           static_cast<double>(total)
                     : 0;
  }
};

/// Per-client epoch source (one ordered stream per client); the int is the
/// global client index.
using BatchWorkloadFactory = std::function<
    std::function<std::vector<batch::BatchTxn>()>(int client_index)>;

/// Sized variant: the per-client source takes the epoch's transaction
/// count. The loop asks the client (BatchClient::next_epoch_size — the
/// adaptive controller's pick, or the static config size) before each
/// epoch, so epoch depth can move mid-run.
using SizedBatchWorkloadFactory = std::function<
    std::function<std::vector<batch::BatchTxn>(std::size_t)>(int client_index)>;

/// Closed loop over every batch client of `cluster` (requires
/// config.batch_clients): each client runs epochs back-to-back; only epochs
/// that *start* inside the measurement window are recorded.
BatchRunResult run_batch_closed_loop(rc::RcCluster& cluster,
                                     const BatchWorkloadFactory& factory,
                                     Duration warmup, Duration measure);
BatchRunResult run_batch_closed_loop(rc::RcCluster& cluster,
                                     const SizedBatchWorkloadFactory& factory,
                                     Duration warmup, Duration measure);

/// Same loop over bare batch clients (cross-process cluster nodes).
BatchRunResult run_batch_closed_loop(
    const std::vector<batch::BatchClient*>& clients, int index_base,
    const BatchWorkloadFactory& factory, Duration warmup, Duration measure);
BatchRunResult run_batch_closed_loop(
    const std::vector<batch::BatchClient*>& clients, int index_base,
    const SizedBatchWorkloadFactory& factory, Duration warmup,
    Duration measure);

}  // namespace srpc::wl
