// SpecRPC wire protocol (paper §3.4).
//
// Four message types:
//   kRequest            caller -> callee   RPC invocation; carries whether
//                                          the caller is speculative so the
//                                          callee creates its RPC object in
//                                          the right state.
//   kPredictedResponse  callee -> caller   a specReturn'd prediction, or an
//                                          actual return value produced by a
//                                          still-speculative branch.
//   kActualResponse     callee -> caller   the RPC's actual return value
//                                          (or an error).
//   kStateChange        caller -> callee   the caller resolved to a terminal
//                                          state; the remote RPC object (and
//                                          transitively its own calls) must
//                                          follow (§3.4).
#pragma once

#include <string>

#include "serde/codec.h"
#include "serde/value.h"

namespace srpc::spec {

enum class MsgType : std::uint8_t {
  kRequest = 10,
  kPredictedResponse = 11,
  kActualResponse = 12,
  kStateChange = 13,
};

struct RequestMsg {
  CallId call_id = 0;
  bool caller_speculative = false;
  std::string method;
  ValueList args;
};

struct PredictedResponseMsg {
  CallId call_id = 0;
  Value value;
};

struct ActualResponseMsg {
  CallId call_id = 0;
  bool ok = true;
  Value value;
  std::string error;
};

struct StateChangeMsg {
  CallId call_id = 0;
  bool correct = false;
};

MsgType peek_type(const Bytes& frame);

/// Append-encode into a caller-supplied buffer (not cleared first), so a
/// reused/pooled buffer serves many messages without reallocating.
void encode_into(const RequestMsg& m, const Codec& codec, Bytes& out);
void encode_into(const PredictedResponseMsg& m, const Codec& codec,
                 Bytes& out);
void encode_into(const ActualResponseMsg& m, const Codec& codec, Bytes& out);
void encode_into(const StateChangeMsg& m, const Codec& codec, Bytes& out);

/// Convenience forms; the returned buffer comes from the thread-local
/// BufferPool, and receivers hand exhausted frames back to it after decode.
Bytes encode(const RequestMsg& m, const Codec& codec);
Bytes encode(const PredictedResponseMsg& m, const Codec& codec);
Bytes encode(const ActualResponseMsg& m, const Codec& codec);
Bytes encode(const StateChangeMsg& m, const Codec& codec);

RequestMsg decode_request(const Bytes& frame, const Codec& codec);
PredictedResponseMsg decode_predicted(const Bytes& frame, const Codec& codec);
ActualResponseMsg decode_actual(const Bytes& frame, const Codec& codec);
StateChangeMsg decode_state_change(const Bytes& frame, const Codec& codec);

}  // namespace srpc::spec
