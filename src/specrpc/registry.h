// Signature registry (paper §3.5): "RPCs are registered by servers as
// signatures containing an RPC name, a return type, parameters and a server
// address. RPC signatures are stored in a file that is synchronized between
// the servers and clients using third-party tools, such as ZooKeeper."
//
// This reproduction keeps the same deployment shape without the external
// coordinator: Registry is an in-memory name -> (address, arity) map with
// save/load to the simple line format
//
//     <qualified-name> <address> <arity>
//
// so a file really can be shipped between processes; tests and the TCP
// example exercise that path.
//
// QoS (DESIGN.md §11): an entry optionally carries a priority tier and a
// deadline class as two extra columns
//
//     <qualified-name> <address> <arity> [priority] [deadline-ms]
//
// (omitted columns default to kNormal / no deadline, so pre-QoS registry
// files still load). apply_qos() pushes the classes into an engine so
// speculation-budget admission and per-method deadlines follow whatever
// the registry file says.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "specrpc/stub.h"

namespace srpc::spec {

class Registry {
 public:
  struct Entry {
    Address address;
    int arity = -1;
    QosClass qos;
  };

  /// Publishes a signature hosted at `address`; overwrites existing.
  void publish(const RpcSignature& sig, const Address& address);

  /// Publishes with a QoS class (priority tier + deadline class).
  void publish(const RpcSignature& sig, const Address& address, QosClass qos);

  std::optional<Entry> lookup(const std::string& qualified_name) const;

  /// Resolves a signature to a stub. Throws std::out_of_range if unknown.
  SpecStub bind(SpecEngine& engine, const RpcSignature& sig) const;
  SpecStub bind(SpecEngine& engine, const std::string& host_class,
                const std::string& method) const;

  /// File round trip (whitespace-separated lines; '#' comments).
  void save(const std::string& path) const;
  void load(const std::string& path);  // merges; throws on unreadable file

  /// Installs every entry's QoS class into `engine` (set_method_qos keyed
  /// by the qualified name). Call after load()/publish() and before
  /// traffic; later re-publishes need a fresh apply.
  void apply_qos(SpecEngine& engine) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace srpc::spec
