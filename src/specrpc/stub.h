// Client-side binding sugar — the paper's Figure 1(b) API surface.
//
//   RpcSignature plus("Math", "plus", 2);
//   SpecStub stub = SpecStub::bind(engine, registry, plus);
//   auto future = stub.call({Value(3)}, factory, 1, 2);
//
// A signature names a remote method and its arity; bind() resolves the
// hosting server through the Registry (paper §3.5: signatures live in a
// file synchronized between servers and clients). Arity is checked at call
// time — the dynamic Value payload carries the rest of the typing, as in
// the Java original's runtime-checked Object signatures.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "specrpc/engine.h"

namespace srpc::spec {

/// Identifies one remotely callable method.
struct RpcSignature {
  std::string host_class;  // e.g. "Math"
  std::string method;      // e.g. "plus"
  int arity = -1;          // -1: unchecked

  /// The wire-level method name ("Math.plus").
  std::string qualified() const { return host_class + "." + method; }
};

/// Thrown when a call does not match its bound signature.
class SignatureMismatch : public SpecRpcError {
 public:
  using SpecRpcError::SpecRpcError;
};

class SpecStub {
 public:
  SpecStub(SpecEngine& engine, Address server, RpcSignature signature)
      : engine_(&engine),
        server_(std::move(server)),
        signature_(std::move(signature)) {}

  /// Issues the RPC with optional predictions and a callback factory
  /// (Figure 1: stub.call(preds, new CBFactory(), 1, 2)).
  template <typename... Args>
  SpecFuturePtr call(ValueList predictions, CallbackFactory factory,
                     Args&&... args) {
    return call_args(std::move(predictions), std::move(factory),
                     make_args(std::forward<Args>(args)...));
  }

  /// Prediction-less convenience.
  template <typename... Args>
  SpecFuturePtr call_plain(Args&&... args) {
    return call_args({}, nullptr, make_args(std::forward<Args>(args)...));
  }

  SpecFuturePtr call_args(ValueList predictions, CallbackFactory factory,
                          ValueList args) {
    if (signature_.arity >= 0 &&
        static_cast<int>(args.size()) != signature_.arity) {
      throw SignatureMismatch(signature_.qualified() + " expects " +
                              std::to_string(signature_.arity) +
                              " arguments, got " +
                              std::to_string(args.size()));
    }
    return engine_->call(server_, signature_.qualified(), std::move(args),
                         std::move(predictions), std::move(factory));
  }

  const RpcSignature& signature() const { return signature_; }
  const Address& server() const { return server_; }

 private:
  SpecEngine* engine_;
  Address server_;
  RpcSignature signature_;
};

/// Registers a handler under its qualified signature name.
inline void register_signature(SpecEngine& engine, const RpcSignature& sig,
                               HandlerFactory factory) {
  engine.register_method(sig.qualified(), std::move(factory));
}
inline void register_signature(SpecEngine& engine, const RpcSignature& sig,
                               Handler handler) {
  engine.register_method(sig.qualified(), std::move(handler));
}

}  // namespace srpc::spec
