#include "specrpc/wire.h"

#include "serde/buffer_pool.h"
#include "serde/io.h"

namespace srpc::spec {

MsgType peek_type(const Bytes& frame) {
  if (frame.empty()) throw DecodeError("empty frame");
  return static_cast<MsgType>(frame[0]);
}

void encode_into(const RequestMsg& m, const Codec& codec, Bytes& out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kRequest));
  w.u64(m.call_id);
  w.u8(m.caller_speculative ? 1 : 0);
  w.str32(m.method);
  w.u32(static_cast<std::uint32_t>(m.args.size()));
  for (const auto& a : m.args) codec.encode(a, out);
}

void encode_into(const PredictedResponseMsg& m, const Codec& codec,
                 Bytes& out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kPredictedResponse));
  w.u64(m.call_id);
  codec.encode(m.value, out);
}

void encode_into(const ActualResponseMsg& m, const Codec& codec, Bytes& out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kActualResponse));
  w.u64(m.call_id);
  w.u8(m.ok ? 1 : 0);
  if (m.ok) {
    codec.encode(m.value, out);
  } else {
    w.str32(m.error);
  }
}

void encode_into(const StateChangeMsg& m, const Codec& codec, Bytes& out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kStateChange));
  w.u64(m.call_id);
  w.u8(m.correct ? 1 : 0);
}

Bytes encode(const RequestMsg& m, const Codec& codec) {
  Bytes out = BufferPool::acquire();
  encode_into(m, codec, out);
  return out;
}

Bytes encode(const PredictedResponseMsg& m, const Codec& codec) {
  Bytes out = BufferPool::acquire();
  encode_into(m, codec, out);
  return out;
}

Bytes encode(const ActualResponseMsg& m, const Codec& codec) {
  Bytes out = BufferPool::acquire();
  encode_into(m, codec, out);
  return out;
}

Bytes encode(const StateChangeMsg& m, const Codec& codec) {
  Bytes out = BufferPool::acquire();
  encode_into(m, codec, out);
  return out;
}

namespace {

Reader open(const Bytes& frame, MsgType want) {
  Reader r(frame);
  if (static_cast<MsgType>(r.u8()) != want)
    throw DecodeError("unexpected message type");
  return r;
}

}  // namespace

RequestMsg decode_request(const Bytes& frame, const Codec& codec) {
  Reader r = open(frame, MsgType::kRequest);
  RequestMsg m;
  m.call_id = r.u64();
  m.caller_speculative = r.u8() != 0;
  m.method = r.str32();
  const std::uint32_t n = r.u32();
  m.args.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.args.push_back(codec.decode(r));
  return m;
}

PredictedResponseMsg decode_predicted(const Bytes& frame, const Codec& codec) {
  Reader r = open(frame, MsgType::kPredictedResponse);
  PredictedResponseMsg m;
  m.call_id = r.u64();
  m.value = codec.decode(r);
  return m;
}

ActualResponseMsg decode_actual(const Bytes& frame, const Codec& codec) {
  Reader r = open(frame, MsgType::kActualResponse);
  ActualResponseMsg m;
  m.call_id = r.u64();
  m.ok = r.u8() != 0;
  if (m.ok) {
    m.value = codec.decode(r);
  } else {
    m.error = r.str32();
  }
  return m;
}

StateChangeMsg decode_state_change(const Bytes& frame, const Codec& codec) {
  Reader r = open(frame, MsgType::kStateChange);
  StateChangeMsg m;
  m.call_id = r.u64();
  m.correct = r.u8() != 0;
  return m;
}

}  // namespace srpc::spec
