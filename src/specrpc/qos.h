// Per-method QoS classes for overload protection (DESIGN.md §11).
//
// A QosClass is the admission-control identity of a method: its priority
// tier decides how early its *speculation* is shed when the engine's
// speculation budget tightens or the admission controller escalates, and an
// optional deadline class overrides the engine-wide call_timeout for that
// method. QoS never affects correctness — a call whose speculation is shed
// degrades to TradRPC semantics (request, actual response, re-execute),
// it is not rejected.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace srpc::spec {

/// Priority tiers, most-protected first. The numeric value is the shed
/// order: higher values lose speculation eligibility earlier (kBestEffort
/// is shed first, kCritical last).
enum class QosPriority : std::uint8_t {
  kCritical = 0,    // user-facing / paying traffic
  kNormal = 1,      // the default for unclassified methods
  kBestEffort = 2,  // background, prefetch, analytics
};

inline constexpr std::size_t kNumQosPriorities = 3;

inline constexpr const char* to_string(QosPriority p) {
  switch (p) {
    case QosPriority::kCritical: return "critical";
    case QosPriority::kNormal: return "normal";
    case QosPriority::kBestEffort: return "best-effort";
  }
  return "?";
}

struct QosClass {
  QosPriority priority = QosPriority::kNormal;
  /// Per-method deadline class; overrides SpecConfig::call_timeout when
  /// non-zero. Zero keeps the engine-wide default.
  Duration deadline = Duration::zero();
};

}  // namespace srpc::spec
