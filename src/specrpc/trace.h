// Speculation tracing — a developer-facing event log built on the engine's
// transition observer.
//
// The paper argues SpecRPC's value is making speculation *adoptable*; in
// practice that requires being able to see what speculated, what was
// abandoned, and why a chain resolved the way it did. SpecTrace records
// every dependency-tree transition with timestamps and renders a compact
// textual timeline, e.g.
//
//   +0.000ms  callback #12  CalleeSpeculative -> SpeculationCorrect
//   +0.113ms  call     #13  CallerSpeculative -> SpeculationIncorrect
//
// Attach with `trace.attach(engine)`. The engine's observer captures a raw
// pointer to the trace: detach (engine.set_transition_observer(nullptr)) or
// shut the engine down before destroying a live trace — destroying the
// trace alone does NOT detach it.
//
// Ordering note: with a sharded engine (DESIGN.md §6) transitions in
// *unrelated* speculation trees are recorded in whatever order their
// deferred observer actions happen to run — the timeline is totally ordered
// by arrival at the trace lock, not by any global engine order. Events for
// one node (and for one tree's transition batch) remain well-ordered.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "specrpc/engine.h"

namespace srpc::spec {

class SpecTrace {
 public:
  struct Event {
    Duration at{};  // since attach
    SpecNode::Kind kind;
    std::uint64_t node_id;
    SpecState from;
    SpecState to;
  };

  /// Starts recording `engine`'s transitions (replaces any observer the
  /// engine had — including a previous SpecTrace's). Safe to call while
  /// observer callbacks from an earlier attach (same or another engine) are
  /// still firing: the timestamp origin is written under `mu_`, the same
  /// lock those callbacks take to record. Re-attaching resets the origin
  /// but keeps already-recorded events; call clear() for a fresh timeline.
  /// A trace attached to several engines interleaves their events on one
  /// shared clock.
  void attach(SpecEngine& engine) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      start_ = Clock::now();
    }
    engine.set_transition_observer(
        [this](SpecNode::Kind kind, std::uint64_t id, SpecState from,
               SpecState to) {
          std::lock_guard<std::mutex> lock(mu_);
          events_.push_back(Event{Clock::now() - start_, kind, id, from, to});
        });
  }

  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  /// Number of recorded transitions into `state`.
  std::size_t count_into(SpecState state) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& e : events_) n += (e.to == state) ? 1 : 0;
    return n;
  }

  std::string render() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    for (const auto& e : events_) {
      os << "+" << to_ms(e.at) << "ms\t" << kind_name(e.kind) << " #"
         << e.node_id << "\t" << to_string(e.from) << " -> "
         << to_string(e.to) << "\n";
    }
    return os.str();
  }

  static const char* kind_name(SpecNode::Kind kind) {
    switch (kind) {
      case SpecNode::Kind::kRoot:
        return "root    ";
      case SpecNode::Kind::kCall:
        return "call    ";
      case SpecNode::Kind::kMirror:
        return "rpc     ";
      case SpecNode::Kind::kCallback:
        return "callback";
    }
    return "?";
  }

 private:
  mutable std::mutex mu_;
  TimePoint start_{};
  std::vector<Event> events_;
};

}  // namespace srpc::spec
