// User-facing SpecRPC programming model (paper §2, Figure 1).
//
// The original Java framework expresses dependent operations as callback
// objects created by user factories (SpecRpcCallbackFactory) so that every
// speculation branch gets a fresh, isolated object. The C++ equivalent is a
// factory std::function that returns a fresh callable per branch; any state
// the callback accumulates lives in that callable's captures, which is the
// same isolation guarantee.
//
//   auto factory = [] {                       // CallbackFactory
//     return [](SpecContext& ctx, const Value& rpc_result) -> CallbackResult {
//       return Value(rpc_result.as_int() + 1);    // the paper's IncCB
//     };
//   };
//   SpecFuturePtr f = engine.call(server, "plus", {Value(1), Value(2)},
//                                 {Value(3)} /* predictions */, factory);
//   f->get();  // blocks until the *non-speculative* result: 4
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rpc/future.h"
#include "serde/value.h"
#include "specrpc/errors.h"
#include "specrpc/state.h"
#include "transport/transport.h"

namespace srpc::spec {

/// A SpecRPC future resolves exclusively with non-speculative results
/// ("the framework ensures that the method returns a non-speculative
/// result", §2). Structurally identical to the TradRPC future.
using SpecFuture = rpc::Future;
using SpecFuturePtr = rpc::Future::Ptr;
using Outcome = rpc::Outcome;

class SpecContext;

/// What a callback's run() produces: either a plain value (ends the chain)
/// or a future from a nested call (continues the chain; the enclosing
/// future resolves from it once this callback is non-speculative).
struct CallbackResult {
  CallbackResult(Value v) : value(std::move(v)) {}  // NOLINT
  CallbackResult(SpecFuturePtr f) : future(std::move(f)) {}  // NOLINT

  bool is_future() const { return future != nullptr; }

  Value value;
  SpecFuturePtr future;
};

/// The body of a callback object (the paper's SpecRpcCallback::run). The
/// Value parameter is the RPC return value — possibly a prediction.
using CallbackFn =
    std::function<CallbackResult(SpecContext& ctx, const Value& rpc_result)>;

/// Creates a fresh callback per speculation branch (SpecRpcCallbackFactory).
using CallbackFactory = std::function<CallbackFn()>;

/// Picks the actual result of a quorum call from the first `quorum`
/// responses (§4.1: Replicated Commit quorum reads).
using Combiner = std::function<Value(const std::vector<Value>& responses)>;

class ServerCall;
using ServerCallPtr = std::shared_ptr<ServerCall>;

/// The body of an RPC object (the paper's SpecRpcHost method). Handlers may
/// respond synchronously, via ServerCall::finish_after, or from nested
/// speculative callbacks that captured the ServerCallPtr.
using Handler = std::function<void(const ServerCallPtr& call)>;

/// Creates a fresh handler per request (SpecRpcHostFactory).
using HandlerFactory = std::function<Handler()>;

/// Supplies predicted return values for an outgoing call that was issued
/// with a callback factory but *without* explicit predictions
/// (SpecConfig::prediction_supplier). Returning an empty list means "do not
/// speculate this call" — the engine then runs the callback once on the
/// actual result, which is exactly TradRPC behaviour (§3.3 forward
/// progress). Runs on the caller's thread, outside the engine lock; must be
/// thread-safe and must not call back into the engine.
using PredictionSupplier =
    std::function<ValueList(const std::string& method, const ValueList& args)>;

/// Observes the validation of one speculation-capable call (a call issued
/// with a callback factory) once its actual result arrives: `actual` is the
/// call's actual outcome, `predictions_made` how many distinct predicted
/// values were speculated on, and `any_correct` whether one of them matched.
/// Calls whose predictions list was empty still report (with
/// predictions_made == 0), so predictors can learn and accuracy trackers
/// can observe even while speculation is gated off. Runs outside the engine
/// lock, after the validating transition batch; `args` are the call's
/// arguments (retained by the engine whenever an observer is installed).
using PredictionObserver = std::function<void(
    const std::string& method, const ValueList& args, const Outcome& actual,
    std::size_t predictions_made, bool any_correct)>;

/// Builds a ValueList from heterogeneous arguments.
template <typename... Args>
ValueList make_args(Args&&... args) {
  ValueList list;
  list.reserve(sizeof...(args));
  (list.emplace_back(Value(std::forward<Args>(args))), ...);
  return list;
}

}  // namespace srpc::spec
