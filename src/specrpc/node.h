// SpecNode — one vertex of the speculation dependency tree (paper §3.2).
//
// The tree is distributed: a call issued to a remote server exists as a
// kCall node on the caller's machine (authoritative) and a kMirror node on
// the executing machine, synchronized with dedicated state-change messages
// (§3.4). Callback objects are kCallback nodes, children of their call node.
// Each node tracks only its children; state changes propagate downward
// (§3.5.1: "each node only tracks its child nodes").
//
// Locking (DESIGN.md §6): every tree has its own TreeControl; all structural
// mutation of a node (children, listeners, rollback bookkeeping, forced
// state) happens under that tree's mutex. `state` and `value_status` are
// additionally atomic so hot-path reads (check_live, speculative(),
// locally_resolved walks, GC predicates) never need a lock; they are only
// *written* under the tree mutex. Lock-ordering rule: a shard lock may be
// held while taking a tree lock, never the reverse.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "serde/value.h"
#include "specrpc/state.h"

namespace srpc::spec {

/// Per-tree concurrency domain. One instance is shared by every node of a
/// speculation tree (a top-level call and all its descendants, or a server
/// mirror and all the nested work its handler spawns). Transitions in
/// unrelated trees never contend.
struct TreeControl {
  std::mutex mu;
  std::condition_variable cv;  // spec_block waiters parked in this tree

  /// Incoming-RPC ids whose queued finishes may become sendable when this
  /// tree transitions (the producing context of a PendingFinish lives in
  /// this tree). Drained into a deferred flush after every transition batch;
  /// guarded by `mu`. This is how cross-tree work (an engine's server half
  /// reacting to its client half resolving) escapes the per-tree lock
  /// without ever taking two tree locks at once.
  std::vector<CallId> flush_ids;
};

struct SpecNode {
  enum class Kind : std::uint8_t {
    kRoot,      // non-speculative application context; always kCorrect
    kCall,      // an issued RPC, caller side (the paper's "RPC" node)
    kMirror,    // the same RPC, executing side; follows the kCall replica
    kCallback,  // a callback object
  };

  using Ptr = std::shared_ptr<SpecNode>;
  using WeakPtr = std::weak_ptr<SpecNode>;

  Kind kind = Kind::kCallback;

  /// Read lock-free anywhere; written only under tree->mu. Terminal states
  /// are sticky, so a lock-free reader observing kCorrect/kIncorrect can
  /// trust it forever.
  std::atomic<SpecState> state{SpecState::kCallerSpeculative};

  /// Strong upward edge: a live descendant keeps its ancestry alive so state
  /// computation always has the full path. Downward edges are weak; a dead
  /// child is a child nobody (record, running lambda, listener) observes.
  /// Immutable after construction.
  Ptr parent;
  std::vector<WeakPtr> children;  // guarded by tree->mu

  /// The concurrency domain this node belongs to. Set at construction and
  /// immutable; children share their parent's tree. Null only for the
  /// engine root, which never transitions.
  std::shared_ptr<TreeControl> tree;

  /// kCallback only: has this callback's input value been validated?
  /// Same discipline as `state`: atomic reads anywhere, writes under
  /// tree->mu. kCorrect/kIncorrect are sticky.
  std::atomic<ValueStatus> value_status{ValueStatus::kUnknown};

  /// kMirror only: terminal state imposed by a remote state-change message.
  /// Guarded by tree->mu (or pre-publication).
  bool forced = false;
  SpecState forced_state = SpecState::kCorrect;

  /// Fired exactly once when the node reaches a terminal state. Listeners
  /// run outside all engine locks. Guarded by tree->mu.
  std::vector<std::function<void(SpecState)>> terminal_listeners;

  /// Optional user rollback (§3.5.2), run when the node transitions to
  /// kIncorrect after having started execution. Guarded by tree->mu.
  std::function<void()> rollback;
  bool executed = false;        // run()/handler started; tree->mu
  bool rollback_fired = false;  // rollback runs at most once; tree->mu

  /// Diagnostic id (monotonic per engine) used in logs and tests.
  std::uint64_t debug_id = 0;

  bool terminal() const { return is_terminal(state.load()); }
};

}  // namespace srpc::spec
