// SpecNode — one vertex of the speculation dependency tree (paper §3.2).
//
// The tree is distributed: a call issued to a remote server exists as a
// kCall node on the caller's machine (authoritative) and a kMirror node on
// the executing machine, synchronized with dedicated state-change messages
// (§3.4). Callback objects are kCallback nodes, children of their call node.
// Each node tracks only its children; state changes propagate downward
// (§3.5.1: "each node only tracks its child nodes").
//
// All mutation happens under the owning SpecEngine's lock; SpecNode itself
// is a passive data holder.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "serde/value.h"
#include "specrpc/state.h"

namespace srpc::spec {

struct SpecNode {
  enum class Kind : std::uint8_t {
    kRoot,      // non-speculative application context; always kCorrect
    kCall,      // an issued RPC, caller side (the paper's "RPC" node)
    kMirror,    // the same RPC, executing side; follows the kCall replica
    kCallback,  // a callback object
  };

  using Ptr = std::shared_ptr<SpecNode>;
  using WeakPtr = std::weak_ptr<SpecNode>;

  Kind kind = Kind::kCallback;
  SpecState state = SpecState::kCallerSpeculative;

  /// Strong upward edge: a live descendant keeps its ancestry alive so state
  /// computation always has the full path. Downward edges are weak; a dead
  /// child is a child nobody (record, running lambda, listener) observes.
  Ptr parent;
  std::vector<WeakPtr> children;

  /// kCallback only: has this callback's input value been validated?
  ValueStatus value_status = ValueStatus::kUnknown;

  /// kMirror only: terminal state imposed by a remote state-change message.
  bool forced = false;
  SpecState forced_state = SpecState::kCorrect;

  /// Fired exactly once when the node reaches a terminal state. Listeners
  /// run outside the engine lock.
  std::vector<std::function<void(SpecState)>> terminal_listeners;

  /// Optional user rollback (§3.5.2), run when the node transitions to
  /// kIncorrect after having started execution.
  std::function<void()> rollback;
  bool executed = false;        // run()/handler started
  bool rollback_fired = false;  // rollback runs at most once

  /// Diagnostic id (monotonic per engine) used in logs and tests.
  std::uint64_t debug_id = 0;

  bool terminal() const { return is_terminal(state); }
};

}  // namespace srpc::spec
