#include "specrpc/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "serde/buffer_pool.h"
#include "serde/io.h"

namespace srpc::spec {

namespace {

// Implicit execution context (the paper threads speculative state through
// callback/RPC objects — "specObj"; we additionally track which node is
// currently executing on this thread so nested calls pick up the right
// parent without explicit plumbing).
struct ExecScope {
  ExecScope(const SpecEngine* engine, SpecNode::Ptr n);
  ~ExecScope();

  const SpecEngine* engine;
  SpecNode::Ptr node;
  ExecScope* prev;
};

thread_local ExecScope* tl_scope = nullptr;

// Call ids must be globally unique: servers key incoming RPCs, predicted
// responses and state-change messages by id alone, and several engines talk
// to one server. High bits: engine instance; low 40 bits: per-engine counter.
std::atomic<std::uint64_t> g_engine_instance{1};

ExecScope::ExecScope(const SpecEngine* engine_in, SpecNode::Ptr n)
    : engine(engine_in), node(std::move(n)), prev(tl_scope) {
  tl_scope = this;
}

ExecScope::~ExecScope() { tl_scope = prev; }

std::size_t resolve_shards(std::size_t configured) {
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : 2 * static_cast<std::size_t>(hw);
}

}  // namespace

SpecEngine::SpecEngine(Transport& transport, Executor& executor,
                       TimerWheel& wheel, SpecConfig config)
    : transport_(transport),
      executor_(executor),
      wheel_(wheel),
      config_(config) {
  const std::uint64_t instance = g_engine_instance.fetch_add(1);
  next_call_id_.store((instance << 40) + 1, std::memory_order_relaxed);
  const std::size_t n = resolve_shards(config_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->rng.reseed(instance * 0x9E3779B97F4A7C15ULL +
                      i * 0xD1B54A32D192ED03ULL + 0x7265747279ULL);
    shards_.push_back(std::move(shard));
  }
  if (n == 1) single_tree_ = std::make_shared<TreeControl>();
  root_ = std::make_shared<SpecNode>();
  root_->kind = SpecNode::Kind::kRoot;
  root_->state.store(SpecState::kCorrect);
  root_->debug_id = next_debug_id_.fetch_add(1);
  transport_.set_receiver([this](const Address& src, Bytes frame) {
    on_message(src, std::move(frame));
  });
}

SpecEngine::~SpecEngine() { begin_shutdown(); }

void SpecEngine::begin_shutdown() {
  transport_.set_receiver(nullptr);
  // A delivery that copied the receiver just before the swap may still be
  // inside on_message on an executor thread, about to touch this engine and
  // run transition actions (observers capture caller-owned state). Wait it
  // out: after quiesce() nothing the caller destroys next can be reached.
  transport_.quiesce();
  // Fence off timer callbacks first: once `alive` drops under the token's
  // mutex, no wheel callback can re-enter this engine (an in-flight one
  // finishes before we acquire the mutex).
  {
    std::lock_guard<std::mutex> lock(life_->mu);
    life_->alive = false;
  }
  if (stopping_.exchange(true)) return;
  std::vector<SpecFuturePtr> futures;
  std::vector<TimerId> timers;
  std::vector<std::shared_ptr<TreeControl>> trees;
  std::vector<std::shared_ptr<OutgoingCall>> orphans;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [_, rec] : shard.outgoing) {
      futures.push_back(rec->future);
      orphans.push_back(rec);
      if (const TimerId t = rec->timeout_timer.exchange(0)) timers.push_back(t);
    }
    for (auto& [_, early] : shard.early_state) {
      if (early.ttl_timer != 0) timers.push_back(early.ttl_timer);
    }
    shard.outgoing.clear();
    shard.wire_to_logical.clear();
    shard.incoming.clear();
    shard.early_state.clear();
    for (auto& weak : shard.trees) {
      if (auto tree = weak.lock()) trees.push_back(std::move(tree));
    }
    shard.trees.clear();
  }
  for (TimerId t : timers) wheel_.cancel(t);
  // Calls still in flight never reach a terminal state, so the listeners
  // they registered never fire — and each one captures the record that owns
  // its node (rec -> node -> listener -> rec). Break the cycles by hand.
  for (auto& rec : orphans) {
    std::lock_guard<std::mutex> lock(rec->node->tree->mu);
    rec->node->terminal_listeners.clear();
    rec->node->rollback = nullptr;
    for (auto& branch : rec->branches) {
      // The listeners that would have refilled the budget are being torn
      // down with the branch: return the token here so acquired == released
      // even across shutdown.
      release_spec_token_tree_locked(*branch, rec->id);
      branch->node->terminal_listeners.clear();
      branch->node->rollback = nullptr;
    }
    rec->branches.clear();
  }
  // Wake every spec_block waiter; the notify must happen under each tree's
  // mutex so a waiter between its predicate check and the wait can't miss it.
  for (auto& tree : trees) {
    std::lock_guard<std::mutex> lock(tree->mu);
    tree->cv.notify_all();
  }
  for (auto& f : futures) f->resolve(Outcome::failure("engine shut down"));
}

const Address& SpecEngine::address() const { return transport_.address(); }

void SpecEngine::bump(StatIdx idx, std::uint64_t key) const {
  shard_of(key).stats.v[idx].fetch_add(1, std::memory_order_release);
}

std::uint64_t SpecEngine::sum(StatIdx idx) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->stats.v[idx].load(std::memory_order_acquire);
  }
  return total;
}

SpecStats SpecEngine::stats() const {
  // Read derived counters before their bases: an increment of a derived
  // counter happens-after the increment of its base (same tree-lock
  // critical-section chain), so acquire-reading the derived value first
  // guarantees the base read that follows covers it. This is what keeps
  // e.g. predictions_correct + predictions_incorrect <= predictions_made
  // true in every snapshot, concurrent load included.
  SpecStats out;
  // budget_released is derived from budget_acquired (every release
  // happens-after its acquire in the same tree-lock chain): read it first
  // so released <= acquired in every snapshot.
  out.budget_released = sum(kBudgetReleased);
  out.budget_acquired = sum(kBudgetAcquired);
  out.budget_denied = sum(kBudgetDenied);
  out.predictions_correct = sum(kPredictionsCorrect);
  out.predictions_incorrect = sum(kPredictionsIncorrect);
  out.rollbacks_run = sum(kRollbacksRun);
  out.reexecutions = sum(kReexecutions);
  out.predictions_made = sum(kPredictionsMade);
  out.branches_abandoned = sum(kBranchesAbandoned);
  out.callbacks_spawned = sum(kCallbacksSpawned);
  out.state_msgs_sent = sum(kStateMsgsSent);
  out.spec_returns = sum(kSpecReturns);
  out.spec_blocks = sum(kSpecBlocks);
  out.retries = sum(kRetries);
  out.early_state_evictions = sum(kEarlyStateEvictions);
  out.calls_issued = sum(kCallsIssued);
  out.quorum_calls_issued = sum(kQuorumCallsIssued);
  return out;
}

SpecEngine::DebugSizes SpecEngine::debug_sizes() const {
  DebugSizes sizes;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    sizes.outgoing += shard.outgoing.size();
    sizes.incoming += shard.incoming.size();
    sizes.wire_routes += shard.wire_to_logical.size();
    sizes.early_state += shard.early_state.size();
  }
  return sizes;
}

void SpecEngine::set_transition_observer(TransitionObserver observer) {
  std::shared_ptr<TransitionObserver> next;
  if (observer) next = std::make_shared<TransitionObserver>(std::move(observer));
  std::atomic_store(&observer_, std::move(next));
}

void SpecEngine::register_method(const std::string& name,
                                 HandlerFactory factory) {
  std::unique_lock<std::shared_mutex> lock(methods_mu_);
  methods_[name] = std::move(factory);
}

void SpecEngine::register_method(const std::string& name, Handler handler) {
  register_method(name, HandlerFactory([handler] { return handler; }));
}

// ------------------------------------------------- QoS + speculation budget

void SpecEngine::set_method_qos(const std::string& method, QosClass qos) {
  std::unique_lock<std::shared_mutex> lock(qos_mu_);
  qos_[method] = qos;
  qos_any_.store(true, std::memory_order_release);
}

QosClass SpecEngine::method_qos(const std::string& method) const {
  if (!qos_any_.load(std::memory_order_acquire)) return QosClass{};
  std::shared_lock<std::shared_mutex> lock(qos_mu_);
  auto it = qos_.find(method);
  return it != qos_.end() ? it->second : QosClass{};
}

namespace {
std::int64_t tier_cap(const SpecBudget& budget, QosPriority priority) {
  const double frac = budget.tier_frac[static_cast<std::size_t>(priority)];
  return static_cast<std::int64_t>(
      static_cast<double>(budget.max_inflight) * frac);
}
}  // namespace

bool SpecEngine::spec_budget_headroom(const std::string& method) const {
  if (config_.budget.max_inflight == 0) return true;
  const QosPriority pri = method_qos(method).priority;
  return spec_inflight_.load(std::memory_order_acquire) <
         tier_cap(config_.budget, pri);
}

bool SpecEngine::try_acquire_spec_token(QosPriority priority,
                                        std::uint64_t key) {
  // The gauge is maintained even when the budget is unbounded, so tests and
  // the admission controller can watch spec_inflight() drain to zero.
  const std::int64_t occ =
      spec_inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (config_.budget.max_inflight != 0 &&
      occ > tier_cap(config_.budget, priority)) {
    spec_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    bump(kBudgetDenied, key);
    return false;
  }
  bump(kBudgetAcquired, key);
  return true;
}

void SpecEngine::release_spec_token_tree_locked(Branch& branch,
                                                std::uint64_t key) {
  if (!branch.token_held) return;
  branch.token_held = false;  // exactly-once: guarded by the tree mutex
  bump(kBudgetReleased, key);
  spec_inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void SpecEngine::register_tree_locked(
    Shard& shard, const std::shared_ptr<TreeControl>& tree) {
  shard.trees.push_back(tree);
  if (shard.trees.size() >= shard.trees_prune_at) {
    std::erase_if(shard.trees,
                  [](const std::weak_ptr<TreeControl>& w) { return w.expired(); });
    shard.trees_prune_at = std::max<std::size_t>(16, shard.trees.size() * 2);
  }
}

std::shared_ptr<SpecEngine::OutgoingCall> SpecEngine::find_outgoing(
    CallId logical_id) const {
  Shard& shard = shard_of(logical_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.outgoing.find(logical_id);
  return it == shard.outgoing.end() ? nullptr : it->second;
}

// --------------------------------------------------------------- context

SpecNode::Ptr SpecEngine::context_node() const {
  if (tl_scope != nullptr && tl_scope->engine == this) return tl_scope->node;
  return root_;
}

void SpecEngine::check_live(const SpecNode::Ptr& node) const {
  if (node->state.load() == SpecState::kIncorrect) throw SpeculationAbandoned();
}

bool SpecEngine::speculative() const {
  return !is_terminal(context_node()->state.load());
}

void SpecEngine::set_rollback(std::function<void()> rollback) {
  const SpecNode::Ptr node = context_node();
  if (node == root_ || node->tree == nullptr) {
    return;  // nothing to roll back on the app thread
  }
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> lock(node->tree->mu);
    if (node->state.load() == SpecState::kIncorrect && node->executed &&
        !node->rollback_fired) {
      node->rollback_fired = true;
      fire_now = true;
      bump(kRollbacksRun, node->debug_id);
    } else {
      node->rollback = std::move(rollback);
    }
  }
  if (fire_now) rollback();
}

void SpecEngine::spec_block() {
  const SpecNode::Ptr node = context_node();
  if (node == root_ || node->tree == nullptr) {
    return;  // application thread is never speculative
  }
  Executor::before_block();
  bump(kSpecBlocks, node->debug_id);
  std::unique_lock<std::mutex> lock(node->tree->mu);
  node->tree->cv.wait(lock, [&] {
    return is_terminal(node->state.load()) || stopping_.load();
  });
  if (node->state.load() == SpecState::kIncorrect) throw MisspeculationError();
}

// --------------------------------------------------------------- tree

SpecNode::Ptr SpecEngine::make_node(SpecNode::Kind kind, SpecNode::Ptr parent,
                                    std::shared_ptr<TreeControl> tree) {
  auto node = std::make_shared<SpecNode>();
  node->kind = kind;
  node->parent = parent;
  node->tree = std::move(tree);
  node->debug_id = next_debug_id_.fetch_add(1);
  // The root is shared by every tree and terminally kCorrect forever:
  // registering top-level calls as its children would serialize unrelated
  // trees on one node and grow an unbounded weak_ptr list for nothing
  // (no recomputation ever starts from a terminal root).
  if (parent != nullptr && parent != root_) parent->children.push_back(node);
  return node;
}

SpecState SpecEngine::compute_state(const SpecNode& node) const {
  switch (node.kind) {
    case SpecNode::Kind::kRoot:
      return SpecState::kCorrect;
    case SpecNode::Kind::kMirror:
      // Driven externally by state-change messages (§3.4); otherwise keeps
      // the state derived from the request's caller_speculative flag.
      return node.forced ? node.forced_state : node.state.load();
    case SpecNode::Kind::kCall: {
      const SpecState p =
          node.parent ? node.parent->state.load() : SpecState::kCorrect;
      if (p == SpecState::kCorrect) return SpecState::kCorrect;
      if (p == SpecState::kIncorrect) return SpecState::kIncorrect;
      return SpecState::kCallerSpeculative;  // Figure 5a
    }
    case SpecNode::Kind::kCallback: {
      const SpecState p =
          node.parent ? node.parent->state.load() : SpecState::kCorrect;
      if (node.value_status.load() == ValueStatus::kIncorrect ||
          p == SpecState::kIncorrect)
        return SpecState::kIncorrect;
      if (node.value_status.load() == ValueStatus::kUnknown)
        return SpecState::kCalleeSpeculative;  // running on a prediction
      return p == SpecState::kCorrect ? SpecState::kCorrect
                                      : SpecState::kCallerSpeculative;  // 5b
    }
  }
  return SpecState::kIncorrect;
}

void SpecEngine::apply_transition(const SpecNode::Ptr& node, SpecState next,
                                  Actions& actions) {
  const SpecState old = node->state.load();
  if (old == next || is_terminal(old)) return;
  node->state.store(next);
  if (auto obs = std::atomic_load(&observer_)) {
    actions.push_back(
        [obs, kind = node->kind, id = node->debug_id, old, next] {
          (*obs)(kind, id, old, next);
        });
  }
  if (!is_terminal(next)) return;
  // Terminal: fire listeners once, run rollback on abandonment, wake
  // specBlock waiters parked in this tree.
  auto listeners = std::move(node->terminal_listeners);
  node->terminal_listeners.clear();
  for (auto& l : listeners) {
    actions.push_back([l = std::move(l), next] { l(next); });
  }
  if (next == SpecState::kIncorrect) {
    bump(kBranchesAbandoned, node->debug_id);
    if (node->executed && node->rollback && !node->rollback_fired) {
      node->rollback_fired = true;
      bump(kRollbacksRun, node->debug_id);
      actions.push_back([rb = node->rollback] { rb(); });
    }
  }
  node->tree->cv.notify_all();
}

void SpecEngine::recompute_subtree(const SpecNode::Ptr& node,
                                   Actions& actions) {
  const SpecState next = compute_state(*node);
  if (next == node->state.load()) return;
  if (is_terminal(node->state.load())) return;  // terminal states are sticky
  apply_transition(node, next, actions);
  for (auto& weak_child : node->children) {
    if (SpecNode::Ptr child = weak_child.lock()) {
      recompute_subtree(child, actions);
    }
  }
}

void SpecEngine::set_value_status(const SpecNode::Ptr& cb_node, ValueStatus vs,
                                  Actions& actions) {
  if (cb_node->value_status.load() != ValueStatus::kUnknown) return;  // sticky
  cb_node->value_status.store(vs);
  recompute_subtree(cb_node, actions);
}

void SpecEngine::drain_tree_flush(TreeControl& tree, Actions& actions) {
  // Called with tree.mu held, after a transition batch: any incoming RPC
  // whose queued finish may have become sendable gets re-evaluated outside
  // the locks (flush_incoming takes shard → tree as needed).
  if (tree.flush_ids.empty()) return;
  actions.push_back([this, ids = std::move(tree.flush_ids)] {
    for (CallId id : ids) flush_incoming(id);
  });
  tree.flush_ids.clear();
}

bool SpecEngine::locally_resolved(const SpecNode::Ptr& ctx,
                                  const SpecNode::Ptr& mirror) const {
  const SpecNode* walk = ctx.get();
  while (walk != nullptr) {
    if (walk == mirror.get()) return true;
    if (walk->kind == SpecNode::Kind::kCallback &&
        walk->value_status.load() != ValueStatus::kCorrect)
      return false;
    walk = walk->parent.get();
  }
  // Context is not under this RPC's mirror (e.g. a captured ServerCall used
  // from an unrelated computation): fall back to global resolution.
  return ctx->state.load() == SpecState::kCorrect;
}

// --------------------------------------------------------------- client

SpecFuturePtr SpecEngine::call(const Address& dst, const std::string& method,
                               ValueList args, ValueList predictions,
                               CallbackFactory factory) {
  const SpecNode::Ptr caller = context_node();
  // Prediction hook (DESIGN.md §8): a call that could speculate but carries
  // no explicit predictions asks the configured supplier. Consulted outside
  // all engine locks — suppliers run user code (predictor lookups, the
  // adaptive gate). With no budget headroom for this method's tier the
  // supplier is skipped entirely (DESIGN.md §11 degradation ladder: no
  // predictions consulted, no speculative callbacks spawned).
  if (predictions.empty() && factory && config_.prediction_supplier) {
    if (spec_budget_headroom(method)) {
      predictions = config_.prediction_supplier(method, args);
    } else {
      bump(kBudgetDenied, caller->debug_id);
    }
  }
  check_live(caller);  // §3.3: abandoned computations may not issue RPCs
  return start_call(caller, {dst}, 1, method, std::move(args),
                    std::move(predictions), nullptr, std::move(factory));
}

SpecFuturePtr SpecEngine::call_quorum(const std::vector<Address>& dsts,
                                      int quorum, const std::string& method,
                                      ValueList args, Combiner combiner,
                                      CallbackFactory factory) {
  return call_quorum(dsts, quorum, method, std::move(args), ValueList{},
                     std::move(combiner), std::move(factory));
}

SpecFuturePtr SpecEngine::call_quorum(const std::vector<Address>& dsts,
                                      int quorum, const std::string& method,
                                      ValueList args, ValueList predictions,
                                      Combiner combiner,
                                      CallbackFactory factory) {
  assert(!dsts.empty());
  assert(quorum >= 1 && quorum <= static_cast<int>(dsts.size()));
  const SpecNode::Ptr caller = context_node();
  if (predictions.empty() && factory && config_.prediction_supplier) {
    if (spec_budget_headroom(method)) {
      predictions = config_.prediction_supplier(method, args);
    } else {
      bump(kBudgetDenied, caller->debug_id);
    }
  }
  check_live(caller);
  bump(kQuorumCallsIssued, caller->debug_id);
  return start_call(caller, dsts, quorum, method, std::move(args),
                    std::move(predictions), std::move(combiner),
                    std::move(factory));
}

SpecFuturePtr SpecEngine::start_call(SpecNode::Ptr caller,
                                     std::vector<Address> dsts, int quorum,
                                     const std::string& method, ValueList args,
                                     ValueList predictions, Combiner combiner,
                                     CallbackFactory factory) {
  auto rec = std::make_shared<OutgoingCall>();
  rec->id = next_call_id_.fetch_add(1);
  rec->dsts = std::move(dsts);
  rec->method = method;
  rec->quorum = quorum;
  rec->combiner = std::move(combiner);
  rec->factory = std::move(factory);
  rec->future = SpecFuture::create();
  // QoS (DESIGN.md §11): the priority tier gates this call's speculative
  // branches against the budget; a non-zero deadline class overrides the
  // engine-wide call_timeout.
  const QosClass qos = method_qos(method);
  rec->priority = qos.priority;
  const Duration timeout =
      qos.deadline > Duration::zero() ? qos.deadline : config_.call_timeout;
  rec->deadline = timeout > Duration::zero() ? Clock::now() + timeout
                                             : TimePoint::max();
  rec->dst_responded.assign(rec->dsts.size(), false);
  bump(kCallsIssued, rec->id);

  if (stopping_.load()) {
    rec->future->resolve(Outcome::failure("engine shut down"));
    return rec->future;
  }

  // Tree phase: the call joins its caller's tree (nested speculation) or
  // founds a new one (top-level call). Everything a racing response will
  // need — the node, wire ids, the state-change listener, the prediction
  // branches — is in place before the call is published to the shard maps,
  // so no reply can observe a half-built record.
  std::shared_ptr<TreeControl> tree;
  if (caller != root_ && caller->tree != nullptr) {
    tree = caller->tree;
  } else {
    tree = single_tree_ ? single_tree_ : std::make_shared<TreeControl>();
  }
  Actions actions;
  bool caller_speculative = false;
  {
    std::lock_guard<std::mutex> tree_lock(tree->mu);
    rec->node = make_node(SpecNode::Kind::kCall, std::move(caller), tree);
    rec->node->state.store(compute_state(*rec->node));
    caller_speculative = rec->node->state.load() != SpecState::kCorrect;
    for (std::size_t i = 0; i < rec->dsts.size(); ++i) {
      rec->wire_ids.emplace_back(next_call_id_.fetch_add(1), i);
    }
    // Retries re-encode the arguments; the prediction observer reports them
    // so predictors can key their learning.
    if (config_.retry.enabled() || config_.prediction_observer) {
      rec->args = args;
    }

    // Cross-machine dependency edge (§3.4): when this call's caller chain
    // resolves, tell every executing server so its RPC object (and its own
    // children) follow.
    if (!is_terminal(rec->node->state.load())) {
      rec->node->terminal_listeners.push_back([this, rec](SpecState s) {
        if (stopping_.load()) return;
        Actions inner;
        std::vector<std::pair<Address, Bytes>> msgs;
        {
          std::lock_guard<std::mutex> lock(rec->node->tree->mu);
          StateChangeMsg msg;
          msg.correct = (s == SpecState::kCorrect);
          // Every attempt's wire id: the server may hold an incoming record
          // under any of them (retries create fresh server-side mirrors).
          for (const auto& [wire_id, dst_idx] : rec->wire_ids) {
            msg.call_id = wire_id;
            msgs.emplace_back(rec->dsts[dst_idx], encode(msg, *config_.codec));
          }
          if (s == SpecState::kCorrect) deliver_direct(rec, inner);
        }
        for (auto& [dst, bytes] : msgs) {
          transport_.send(dst, std::move(bytes));
          bump(kStateMsgsSent, rec->id);
        }
        for (auto& a : inner) a();
        gc_outgoing(rec->id);
      });
    }

    // Client-side speculation (§2.1): each distinct predicted value starts a
    // fresh callback immediately — even before the request reaches the
    // server.
    if (rec->factory) {
      for (auto& p : predictions) {
        bool dup = false;
        for (const auto& b : rec->branches) {
          if (b->from_prediction && b->predicted_value == p) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          spawn_branch(rec, std::move(p), ValueStatus::kUnknown, actions);
        }
      }
    }
  }

  // Publish phase: the logical record first, then the wire routes pointing
  // at it, each under its own shard lock (ids hash to different shards).
  {
    Shard& home = shard_of(rec->id);
    std::lock_guard<std::mutex> lock(home.mu);
    // Re-check under the shard lock: begin_shutdown drains shards after
    // flipping stopping_, so an insert past this check is guaranteed to be
    // seen (and failed) by the drain.
    if (stopping_.load()) {
      rec->future->resolve(Outcome::failure("engine shut down"));
      return rec->future;
    }
    home.outgoing.emplace(rec->id, rec);
    register_tree_locked(home, tree);
  }
  for (const auto& [wire_id, _] : rec->wire_ids) {
    Shard& wire_shard = shard_of(wire_id);
    std::lock_guard<std::mutex> lock(wire_shard.mu);
    if (!stopping_.load()) wire_shard.wire_to_logical.emplace(wire_id, rec->id);
  }

  // Requests go out with no locks held: an inline-delivery transport may
  // hand us the response on this very stack.
  bool send_failed = false;
  for (const auto& [wire_id, dst_idx] : rec->wire_ids) {
    RequestMsg msg;
    msg.call_id = wire_id;
    msg.caller_speculative = caller_speculative;
    msg.method = method;
    msg.args = args;  // copied per destination (quorum fan-out)
    if (!transport_.send(rec->dsts[dst_idx], encode(msg, *config_.codec))) {
      send_failed = true;
    }
  }
  for (auto& a : actions) a();

  {
    std::lock_guard<std::mutex> tree_lock(tree->mu);
    if (!rec->actual_done && !stopping_.load()) {
      schedule_call_timer_tree_locked(rec);
    }
  }
  if (send_failed) {
    // The frame(s) never left this process (connect refused / watermark
    // shed): expedite the attempt instead of waiting out the attempt
    // timeout. on_attempt_timeout runs the normal retry/fail decision; the
    // dst_responded dedup absorbs any replica that did get the request.
    if (const TimerId t = rec->timeout_timer.exchange(0)) wheel_.cancel(t);
    on_attempt_timeout(rec->id, 1);
  }
  return rec->future;
}

void SpecEngine::schedule_call_timer_tree_locked(
    const std::shared_ptr<OutgoingCall>& rec) {
  const auto now = Clock::now();
  Duration wait;
  if (config_.retry.enabled() &&
      config_.retry.attempt_timeout > Duration::zero()) {
    wait = config_.retry.attempt_timeout;
    if (rec->deadline != TimePoint::max() && rec->deadline - now < wait) {
      wait = rec->deadline - now;
    }
  } else if (rec->deadline != TimePoint::max()) {
    wait = rec->deadline - now;
  } else {
    return;  // no deadline and no per-attempt bound
  }
  if (wait < Duration::zero()) wait = Duration::zero();
  rec->timeout_timer.store(wheel_.schedule_after(
      wait, [this, life = life_, id = rec->id, attempt = rec->attempt] {
        std::lock_guard<std::mutex> guard(life->mu);
        if (!life->alive) return;
        on_attempt_timeout(id, attempt);
      }));
}

void SpecEngine::spawn_branch(const std::shared_ptr<OutgoingCall>& rec,
                              Value value, ValueStatus vs, Actions& actions) {
  // Budget gate (DESIGN.md §11): only *speculative* branches (value still
  // unknown) consume a token. Re-executions on the actual value (vs ==
  // kCorrect) always run — forward progress never depends on budget. A
  // denied spawn simply skips the branch: the call keeps TradRPC semantics
  // and process_actual re-executes when the actual arrives.
  if (vs == ValueStatus::kUnknown &&
      !try_acquire_spec_token(rec->priority, rec->id)) {
    return;
  }
  auto branch = std::make_shared<Branch>();
  branch->node = make_node(SpecNode::Kind::kCallback, rec->node,
                           rec->node->tree);
  branch->node->value_status.store(vs);
  branch->node->state.store(compute_state(*branch->node));
  branch->predicted_value = value;
  branch->from_prediction = (vs == ValueStatus::kUnknown);
  branch->token_held = branch->from_prediction;
  rec->branches.push_back(branch);
  // Counter order matters for snapshot consistency: the base counter
  // (callbacks_spawned) is bumped before the derived one (predictions_made).
  bump(kCallbacksSpawned, rec->id);
  if (vs == ValueStatus::kUnknown) bump(kPredictionsMade, rec->id);

  if (branch->node->state.load() == SpecState::kIncorrect) {
    release_spec_token_tree_locked(*branch, rec->id);
    return;  // dead on arrival
  }

  if (!is_terminal(branch->node->state.load())) {
    branch->node->terminal_listeners.push_back(
        [this, rec, branch](SpecState s) {
          Actions inner;
          {
            std::lock_guard<std::mutex> lock(rec->node->tree->mu);
            // Either terminal outcome retires the branch's speculation:
            // refill the budget if validation didn't already (kIncorrect
            // via an abandoned caller chain arrives here first).
            release_spec_token_tree_locked(*branch, rec->id);
            if (s == SpecState::kCorrect) {
              maybe_deliver_branch(rec, branch, inner);
            }
          }
          for (auto& a : inner) a();
          gc_outgoing(rec->id);
        });
  }

  actions.push_back([this, rec, branch, value = std::move(value)] {
    executor_.post([this, rec, branch, value] {
      // Factory + run happen on an executor thread, outside all locks.
      const std::shared_ptr<TreeControl> tree = rec->node->tree;
      bool start = false;
      {
        std::lock_guard<std::mutex> lock(tree->mu);
        if (branch->node->state.load() != SpecState::kIncorrect) {
          branch->node->executed = true;
          start = true;
        }
      }
      if (!start) return;
      CallbackFn fn;
      try {
        fn = rec->factory();
      } catch (const std::exception& e) {
        SRPC_LOG(ERROR) << "callback factory threw: " << e.what();
        return;
      }
      SpecContext ctx(*this, branch->node);
      ExecScope scope(this, branch->node);
      Actions inner;
      try {
        CallbackResult result = fn(ctx, value);
        std::lock_guard<std::mutex> lock(tree->mu);
        branch->run_done = true;
        if (result.is_future()) {
          branch->result_future = result.future;
        } else {
          branch->result_value = std::move(result.value);
        }
        maybe_deliver_branch(rec, branch, inner);
      } catch (const SpeculationAbandoned&) {
        std::lock_guard<std::mutex> lock(tree->mu);
        branch->run_done = true;
        branch->failed = true;
        branch->error = "abandoned";
      } catch (const MisspeculationError&) {
        std::lock_guard<std::mutex> lock(tree->mu);
        branch->run_done = true;
        branch->failed = true;
        branch->error = "misspeculation";
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(tree->mu);
        branch->run_done = true;
        branch->failed = true;
        branch->error = e.what();
        maybe_deliver_branch(rec, branch, inner);
      }
      for (auto& a : inner) a();
      gc_outgoing(rec->id);
    });
  });
}

void SpecEngine::maybe_deliver_branch(const std::shared_ptr<OutgoingCall>& rec,
                                      const std::shared_ptr<Branch>& branch,
                                      Actions& actions) {
  if (branch->delivered || !branch->run_done) return;
  if (branch->node->state.load() != SpecState::kCorrect) return;
  branch->delivered = true;
  SpecFuturePtr future = rec->future;
  if (branch->failed) {
    actions.push_back([future, error = branch->error] {
      future->resolve(Outcome::failure(error));
    });
  } else if (branch->result_future) {
    // Chained call (§2): the enclosing future acquires the value of the
    // final non-speculative callback of the nested chain.
    actions.push_back([future, sub = branch->result_future] {
      sub->then([future](const Outcome& o) { future->resolve(o); });
    });
  } else {
    actions.push_back([future, value = branch->result_value] {
      future->resolve(Outcome::success(value));
    });
  }
}

void SpecEngine::deliver_direct(const std::shared_ptr<OutgoingCall>& rec,
                                Actions& actions) {
  // Resolution path for calls with no dependent callback (plain async call)
  // and for error outcomes: deliver the RPC's own outcome once the call is
  // globally non-speculative.
  if (!rec->actual_done || rec->branch_matched) return;
  if (rec->node->state.load() != SpecState::kCorrect) return;
  if (rec->actual.ok && rec->factory) return;  // a re-executed branch delivers
  actions.push_back([future = rec->future, outcome = rec->actual] {
    future->resolve(outcome);
  });
}

void SpecEngine::process_actual(const std::shared_ptr<OutgoingCall>& rec,
                                Outcome outcome, Actions& actions) {
  // Caller holds rec's tree mutex.
  if (rec->actual_done) return;
  rec->actual_done = true;
  rec->actual = std::move(outcome);
  if (const TimerId t = rec->timeout_timer.exchange(0)) wheel_.cancel(t);
  if (rec->node->state.load() == SpecState::kIncorrect) {
    actions.push_back([this, id = rec->id] { gc_outgoing(id); });
    return;
  }
  // Validate every outstanding prediction (§3.3). Validation retires the
  // branch's speculation either way — a validated-correct branch is no
  // longer speculative risk, an incorrect one is being abandoned — so each
  // releases its budget token here (exactly once; the terminal listener's
  // release becomes a no-op).
  for (auto& branch : rec->branches) {
    if (branch->node->value_status.load() != ValueStatus::kUnknown) continue;
    const bool match =
        rec->actual.ok && branch->predicted_value == rec->actual.value;
    if (match) {
      bump(kPredictionsCorrect, rec->id);
      rec->branch_matched = true;
    } else {
      bump(kPredictionsIncorrect, rec->id);
    }
    release_spec_token_tree_locked(*branch, rec->id);
    set_value_status(branch->node,
                     match ? ValueStatus::kCorrect : ValueStatus::kIncorrect,
                     actions);
  }
  // Report the validation to the prediction observer (outside the locks,
  // with the transition batch) so predictors learn the actual value and
  // accuracy trackers see the hit/miss — including predictions_made == 0
  // calls, which keep learning alive while the adaptive gate is off.
  if (config_.prediction_observer && rec->factory) {
    std::size_t made = 0;
    for (const auto& branch : rec->branches) {
      made += branch->from_prediction ? 1 : 0;
    }
    actions.push_back([obs = config_.prediction_observer, method = rec->method,
                       args = rec->args, outcome = rec->actual, made,
                       correct = rec->branch_matched] {
      obs(method, args, outcome, made, correct);
    });
  }
  if (!rec->branch_matched) {
    if (rec->actual.ok && rec->factory) {
      // No prediction was correct: re-execute on the actual result so
      // forward progress never depends on prediction accuracy (§3.3).
      // Base counter (callbacks_spawned, inside spawn_branch) bumps before
      // the derived one so reexecutions <= callbacks_spawned holds in every
      // stats snapshot.
      spawn_branch(rec, rec->actual.value, ValueStatus::kCorrect, actions);
      bump(kReexecutions, rec->id);
    } else {
      deliver_direct(rec, actions);
    }
  }
  drain_tree_flush(*rec->node->tree, actions);
  actions.push_back([this, id = rec->id] { gc_outgoing(id); });
}

void SpecEngine::gc_outgoing(CallId id) {
  // Takes shard → tree; callers must hold no locks (deferred-action path).
  std::vector<CallId> wire_ids;
  {
    Shard& home = shard_of(id);
    std::lock_guard<std::mutex> lock(home.mu);
    auto it = home.outgoing.find(id);
    if (it == home.outgoing.end()) return;
    const std::shared_ptr<OutgoingCall> rec = it->second;
    std::lock_guard<std::mutex> tree_lock(rec->node->tree->mu);
    // The record is only needed to route wire messages; once the call is
    // terminally incorrect, or its actual result has been processed, nothing
    // further can arrive that matters. Branch delivery keeps working after
    // GC because listeners and run wrappers capture rec/branch by
    // shared_ptr.
    const SpecState state = rec->node->state.load();
    if (!is_terminal(state)) return;
    if (state == SpecState::kCorrect && !rec->actual_done) return;
    if (const TimerId t = rec->timeout_timer.exchange(0)) wheel_.cancel(t);
    for (const auto& [wire_id, _] : rec->wire_ids) wire_ids.push_back(wire_id);
    home.outgoing.erase(it);
  }
  // The wire routes live in other shards; drop them one lock at a time
  // (never two shard locks at once).
  for (const CallId wire_id : wire_ids) {
    Shard& wire_shard = shard_of(wire_id);
    std::lock_guard<std::mutex> lock(wire_shard.mu);
    wire_shard.wire_to_logical.erase(wire_id);
  }
}

void SpecEngine::on_attempt_timeout(CallId logical_id, int attempt) {
  Actions actions;
  {
    Shard& home = shard_of(logical_id);
    std::lock_guard<std::mutex> lock(home.mu);
    auto it = home.outgoing.find(logical_id);
    if (it == home.outgoing.end()) return;
    const std::shared_ptr<OutgoingCall> rec = it->second;
    std::lock_guard<std::mutex> tree_lock(rec->node->tree->mu);
    if (rec->actual_done) return;
    if (rec->attempt != attempt) return;  // stale timer for an older attempt
    const auto now = Clock::now();
    bool retry = config_.retry.enabled() &&
                 rec->attempt < config_.retry.max_attempts &&
                 !stopping_.load() &&
                 rec->node->state.load() != SpecState::kIncorrect;
    Duration backoff = Duration::zero();
    if (retry) {
      backoff = config_.retry.backoff_after(rec->attempt, home.rng);
      if (rec->deadline != TimePoint::max() &&
          now + backoff >= rec->deadline) {
        retry = false;  // backoff would overrun the overall deadline
      }
    }
    if (!retry) {
      SRPC_LOG(WARN) << address() << ": call " << rec->method << " (id "
                     << rec->id << ", attempt " << rec->attempt << ", quorum "
                     << rec->quorum << ", responses " << rec->responses.size()
                     << ", node state " << to_string(rec->node->state.load())
                     << ", branches " << rec->branches.size()
                     << ") timed out";
      process_actual(rec, Outcome::failure("spec call timed out"), actions);
    } else {
      rec->attempt += 1;
      bump(kRetries, rec->id);
      rec->timeout_timer.store(wheel_.schedule_after(
          backoff, [this, life = life_, logical_id, next = rec->attempt] {
            std::lock_guard<std::mutex> guard(life->mu);
            if (!life->alive) return;
            resend_attempt(logical_id, next);
          }));
    }
  }
  for (auto& a : actions) a();
}

void SpecEngine::resend_attempt(CallId logical_id, int attempt) {
  if (stopping_.load()) return;
  const std::shared_ptr<OutgoingCall> rec = find_outgoing(logical_id);
  if (rec == nullptr) return;
  std::vector<CallId> fresh_ids;
  std::vector<std::pair<Address, Bytes>> msgs;
  {
    std::lock_guard<std::mutex> tree_lock(rec->node->tree->mu);
    if (rec->actual_done || rec->attempt != attempt) return;
    if (rec->node->state.load() == SpecState::kIncorrect) return;  // abandoned
    const bool caller_speculative =
        rec->node->state.load() != SpecState::kCorrect;
    for (std::size_t i = 0; i < rec->dsts.size(); ++i) {
      // A replica whose actual already counted does not need the re-issue.
      if (rec->dst_responded[i]) continue;
      const CallId wire_id = next_call_id_.fetch_add(1);
      rec->wire_ids.emplace_back(wire_id, i);
      fresh_ids.push_back(wire_id);
      RequestMsg msg;
      msg.call_id = wire_id;
      msg.caller_speculative = caller_speculative;
      msg.method = rec->method;
      msg.args = rec->args;  // copy; later attempts may need them again
      msgs.emplace_back(rec->dsts[i], encode(msg, *config_.codec));
    }
    schedule_call_timer_tree_locked(rec);
  }
  // Route first, then send: a response must never beat its own route.
  for (const CallId wire_id : fresh_ids) {
    Shard& wire_shard = shard_of(wire_id);
    std::lock_guard<std::mutex> lock(wire_shard.mu);
    if (!stopping_.load()) {
      wire_shard.wire_to_logical.emplace(wire_id, logical_id);
    }
  }
  bool send_failed = false;
  for (auto& [dst, bytes] : msgs) {
    if (!transport_.send(dst, std::move(bytes))) send_failed = true;
  }
  if (send_failed) {
    // Locally refused: fail the attempt fast so backoff (or the final
    // failure) engages now rather than after the attempt timeout.
    if (const TimerId t = rec->timeout_timer.exchange(0)) wheel_.cancel(t);
    on_attempt_timeout(logical_id, attempt);
  }
}

// --------------------------------------------------------------- server

void SpecEngine::server_spec_return(CallId id, Value value) {
  const SpecNode::Ptr ctx = context_node();
  if (ctx != root_ && ctx->state.load() == SpecState::kIncorrect) {
    throw SpeculationAbandoned();  // §3.3
  }
  Address dst;
  Bytes bytes;
  {
    Shard& shard = shard_of(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.incoming.find(id);
    if (it == shard.incoming.end()) return;
    IncomingRpc& rec = *it->second;
    if (rec.actual_sent) return;
    for (const auto& sent : rec.predictions_sent) {
      if (sent == value) return;  // duplicate prediction; client dedups anyway
    }
    rec.predictions_sent.push_back(value);
    bump(kSpecReturns, id);
    PredictedResponseMsg msg;
    msg.call_id = id;
    msg.value = std::move(value);
    dst = rec.caller;
    bytes = encode(msg, *config_.codec);
  }
  transport_.send(dst, std::move(bytes));
}

void SpecEngine::send_actual_response_locked(IncomingRpc& rec,
                                             const Outcome& outcome,
                                             Actions& actions) {
  // Caller holds the owning shard's mutex; the send itself is deferred so
  // an inline-delivery transport never re-enters the engine under a lock.
  if (rec.actual_sent) return;
  rec.actual_sent = true;
  ActualResponseMsg msg;
  msg.call_id = rec.id;
  msg.ok = outcome.ok;
  msg.value = outcome.value;
  msg.error = outcome.error;
  actions.push_back(
      [this, dst = rec.caller, bytes = encode(msg, *config_.codec)]() mutable {
        transport_.send(dst, std::move(bytes));
      });
  // Clear only after the message is built: `outcome` may alias an entry of
  // rec.pending. GC is the caller's job (iterator safety).
  rec.pending.clear();
}

void SpecEngine::server_finish(CallId id, SpecNode::Ptr ctx, Outcome outcome) {
  Actions actions;
  {
    Shard& shard = shard_of(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.incoming.find(id);
    if (it == shard.incoming.end()) return;
    const std::shared_ptr<IncomingRpc> rec = it->second;
    if (ctx == nullptr) ctx = rec->mirror;
    if (ctx->state.load() == SpecState::kIncorrect) return;  // abandoned: drop
    if (rec->actual_sent) return;
    bool resolved = false;
    if (ctx->tree == nullptr) {
      resolved = locally_resolved(ctx, rec->mirror);  // root-like context
    } else {
      // Check-and-subscribe atomically under ctx's tree lock: either the
      // producing chain is already value-resolved, or any transition that
      // resolves it later will find this RPC id on the tree's flush list.
      std::lock_guard<std::mutex> tree_lock(ctx->tree->mu);
      if (ctx->state.load() == SpecState::kIncorrect) return;
      resolved = locally_resolved(ctx, rec->mirror);
      if (!resolved) {
        auto& ids = ctx->tree->flush_ids;
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
    }
    if (resolved) {
      send_actual_response_locked(*rec, outcome, actions);
      maybe_gc_incoming_locked(shard, id);
    } else {
      // The producing computation still depends on predictions: the value
      // travels as a *predicted* response (Figure 3b step 5); the actual
      // response follows once the chain value-resolves (step 9).
      if (outcome.ok) {
        bool dup = false;
        for (const auto& sent : rec->predictions_sent) {
          if (sent == outcome.value) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          rec->predictions_sent.push_back(outcome.value);
          PredictedResponseMsg msg;
          msg.call_id = id;
          msg.value = outcome.value;
          actions.push_back([this, dst = rec->caller,
                             bytes = encode(msg, *config_.codec)]() mutable {
            transport_.send(dst, std::move(bytes));
          });
        }
      }
      rec->pending.push_back(PendingFinish{std::move(ctx), std::move(outcome)});
    }
  }
  for (auto& a : actions) a();
}

void SpecEngine::flush_incoming(CallId id) {
  // Re-evaluates one incoming RPC's queued finishes after a transition
  // batch. Takes shard → (per-pending) tree; callers hold no locks.
  Actions actions;
  {
    Shard& shard = shard_of(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.incoming.find(id);
    if (it == shard.incoming.end()) return;
    const std::shared_ptr<IncomingRpc> rec = it->second;
    if (!rec->actual_sent) {
      auto& pending = rec->pending;
      for (auto pit = pending.begin(); pit != pending.end();) {
        if (pit->ctx->state.load() == SpecState::kIncorrect) {
          pit = pending.erase(pit);  // abandoned producer: drop its finish
          continue;
        }
        bool resolved = false;
        if (pit->ctx->tree == nullptr) {
          resolved = locally_resolved(pit->ctx, rec->mirror);
        } else {
          // Subscribe-or-send under the producer's tree lock, as in
          // server_finish, so no resolving transition can slip between the
          // check and the re-registration.
          std::lock_guard<std::mutex> tree_lock(pit->ctx->tree->mu);
          if (pit->ctx->state.load() == SpecState::kIncorrect) {
            pit = pending.erase(pit);
            continue;
          }
          resolved = locally_resolved(pit->ctx, rec->mirror);
          if (!resolved) {
            auto& ids = pit->ctx->tree->flush_ids;
            if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
              ids.push_back(id);
            }
          }
        }
        if (resolved) {
          const Outcome outcome = pit->outcome;  // copy: send clears pending
          send_actual_response_locked(*rec, outcome, actions);
          break;
        }
        ++pit;
      }
    }
    maybe_gc_incoming_locked(shard, id);
  }
  for (auto& a : actions) a();
}

void SpecEngine::maybe_gc_incoming_locked(Shard& shard, CallId id) {
  auto it = shard.incoming.find(id);
  if (it == shard.incoming.end()) return;
  // Keep the record alive across the erase: destroying the mirror while a
  // caller still holds its tree mutex would destroy a locked mutex.
  const std::shared_ptr<IncomingRpc> rec = it->second;
  const SpecState state = rec->mirror->state.load();
  if (state == SpecState::kIncorrect ||
      (state == SpecState::kCorrect && rec->actual_sent)) {
    shard.incoming.erase(it);
  }
}

void SpecEngine::evict_early_state(CallId id) {
  Shard& shard = shard_of(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.early_state.erase(id) > 0) bump(kEarlyStateEvictions, id);
}

// --------------------------------------------------------------- ingress

void SpecEngine::on_message(const Address& src, Bytes frame) {
  Actions actions;
  try {
    if (!stopping_.load()) {
      switch (peek_type(frame)) {
        case MsgType::kRequest:
          on_request(src, decode_request(frame, *config_.codec), actions);
          break;
        case MsgType::kPredictedResponse:
          on_predicted(decode_predicted(frame, *config_.codec), actions);
          break;
        case MsgType::kActualResponse:
          on_actual(decode_actual(frame, *config_.codec), actions);
          break;
        case MsgType::kStateChange:
          on_state_change(decode_state_change(frame, *config_.codec), actions);
          break;
      }
    }
  } catch (const DecodeError& e) {
    SRPC_LOG(ERROR) << address() << ": bad frame from " << src << ": "
                    << e.what();
  }
  // The frame is fully decoded; recycle its capacity for future encodes.
  BufferPool::release(std::move(frame));
  for (auto& a : actions) a();
}

void SpecEngine::on_request(const Address& src, RequestMsg msg,
                            Actions& actions) {
  auto rec = std::make_shared<IncomingRpc>();
  rec->id = msg.call_id;
  rec->caller = src;
  rec->method = msg.method;
  rec->args = std::move(msg.args);
  // A mirror roots its own tree: the handler and everything it spawns form
  // one concurrency domain, independent of other requests. Pre-publication,
  // so no lock is needed to build it.
  auto tree = single_tree_ ? single_tree_ : std::make_shared<TreeControl>();
  rec->mirror = make_node(SpecNode::Kind::kMirror, nullptr, tree);
  rec->mirror->state.store(msg.caller_speculative
                               ? SpecState::kCallerSpeculative
                               : SpecState::kCorrect);

  Shard& shard = shard_of(rec->id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // A state-change message can beat the request (independent links, or
    // TCP reconnect); apply it now.
    if (auto early = shard.early_state.find(msg.call_id);
        early != shard.early_state.end()) {
      if (early->second.ttl_timer != 0) wheel_.cancel(early->second.ttl_timer);
      rec->mirror->forced = true;
      rec->mirror->forced_state =
          early->second.correct ? SpecState::kCorrect : SpecState::kIncorrect;
      rec->mirror->state.store(rec->mirror->forced_state);
      shard.early_state.erase(early);
    }
    if (rec->mirror->state.load() == SpecState::kIncorrect) {
      return;  // dead on arrival
    }
    if (!shard.incoming.emplace(rec->id, rec).second) {
      // Expected under fault injection: a duplicated request delivery (the
      // retry path uses fresh wire ids, so only the network creates these).
      SRPC_LOG(WARN) << address() << ": duplicate incoming call id " << rec->id
                     << " from " << src << " — dropping request";
      return;
    }
    register_tree_locked(shard, tree);
    if (!is_terminal(rec->mirror->state.load())) {
      rec->mirror->terminal_listeners.push_back(
          [this, id = rec->id](SpecState) {
            if (stopping_.load()) return;
            flush_incoming(id);
          });
    }
  }

  HandlerFactory factory;
  {
    std::shared_lock<std::shared_mutex> methods_lock(methods_mu_);
    auto mit = methods_.find(msg.method);
    if (mit != methods_.end()) factory = mit->second;
  }
  if (!factory) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.incoming.find(rec->id);
    if (it != shard.incoming.end()) {
      const Outcome err = Outcome::failure("unknown method: " + msg.method);
      send_actual_response_locked(*it->second, err, actions);
      maybe_gc_incoming_locked(shard, rec->id);
    }
    return;
  }
  actions.push_back([this, id = rec->id, factory = std::move(factory)] {
    executor_.post([this, id, factory] {
      std::shared_ptr<IncomingRpc> rec;
      ValueList args;
      {
        Shard& shard = shard_of(id);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.incoming.find(id);
        if (it == shard.incoming.end()) return;
        rec = it->second;
        // The handler task is the sole consumer of the decoded arguments;
        // hand them to the ServerCall instead of deep-copying the ValueList.
        args = std::move(rec->args);
      }
      {
        std::lock_guard<std::mutex> tree_lock(rec->mirror->tree->mu);
        if (rec->mirror->state.load() == SpecState::kIncorrect) return;
        rec->mirror->executed = true;
      }
      Handler handler;
      try {
        handler = factory();
      } catch (const std::exception& e) {
        SRPC_LOG(ERROR) << "handler factory threw: " << e.what();
        return;
      }
      auto call = std::make_shared<ServerCall>(*this, id, rec->caller,
                                               rec->method, std::move(args),
                                               rec->mirror);
      ExecScope scope(this, rec->mirror);
      try {
        handler(call);
      } catch (const SpeculationAbandoned&) {
        // Cooperative termination of an abandoned RPC object (§3.3).
      } catch (const MisspeculationError&) {
      } catch (const std::exception& e) {
        call->fail(e.what());
      }
    });
  });
}

void SpecEngine::on_predicted(PredictedResponseMsg msg, Actions& actions) {
  CallId logical_id = 0;
  {
    Shard& wire_shard = shard_of(msg.call_id);
    std::lock_guard<std::mutex> lock(wire_shard.mu);
    auto wit = wire_shard.wire_to_logical.find(msg.call_id);
    if (wit == wire_shard.wire_to_logical.end()) return;
    logical_id = wit->second;
  }
  const std::shared_ptr<OutgoingCall> rec = find_outgoing(logical_id);
  if (rec == nullptr) return;
  std::lock_guard<std::mutex> tree_lock(rec->node->tree->mu);
  if (rec->actual_done || !rec->factory) return;
  if (rec->node->state.load() == SpecState::kIncorrect) return;
  for (const auto& b : rec->branches) {
    if (b->from_prediction && b->predicted_value == msg.value) return;  // dup
  }
  spawn_branch(rec, std::move(msg.value), ValueStatus::kUnknown, actions);
}

void SpecEngine::on_actual(ActualResponseMsg msg, Actions& actions) {
  CallId logical_id = 0;
  {
    Shard& wire_shard = shard_of(msg.call_id);
    std::lock_guard<std::mutex> lock(wire_shard.mu);
    auto wit = wire_shard.wire_to_logical.find(msg.call_id);
    if (wit == wire_shard.wire_to_logical.end()) {
      return;  // dup/late/superseded reply
    }
    logical_id = wit->second;
    // Consume this wire id: a duplicated delivery of the same actual
    // (network dup) now misses the lookup above instead of being processed
    // twice. The id stays in rec->wire_ids so state-change fan-out still
    // reaches the server-side record it created.
    wire_shard.wire_to_logical.erase(wit);
  }
  const std::shared_ptr<OutgoingCall> rec = find_outgoing(logical_id);
  if (rec == nullptr) return;
  std::lock_guard<std::mutex> tree_lock(rec->node->tree->mu);
  std::size_t dst_idx = 0;
  for (const auto& [wire_id, idx] : rec->wire_ids) {
    if (wire_id == msg.call_id) {
      dst_idx = idx;
      break;
    }
  }
  Outcome outcome = msg.ok ? Outcome::success(std::move(msg.value))
                           : Outcome::failure(msg.error);
  if (rec->quorum > 1) {
    if (rec->actual_done) return;
    // A retried attempt can draw a second actual from the same replica;
    // quorum counts distinct replicas, not distinct replies.
    if (rec->dst_responded[dst_idx]) return;
    if (!outcome.ok) {
      // Keep the failure model simple: any replica error fails the logical
      // quorum call (the RC evaluation never exercises replica failures).
      process_actual(rec, std::move(outcome), actions);
      return;
    }
    rec->dst_responded[dst_idx] = true;
    rec->responses.push_back(outcome.value);
    // First response doubles as the prediction for the quorum result (§4.1).
    if (rec->responses.size() == 1 && rec->factory) {
      bool dup = false;
      for (const auto& b : rec->branches) {
        if (b->from_prediction && b->predicted_value == outcome.value) {
          dup = true;
          break;
        }
      }
      if (!dup && rec->node->state.load() != SpecState::kIncorrect) {
        spawn_branch(rec, outcome.value, ValueStatus::kUnknown, actions);
      }
    }
    if (static_cast<int>(rec->responses.size()) >= rec->quorum) {
      Value combined = rec->combiner ? rec->combiner(rec->responses)
                                     : rec->responses.front();
      process_actual(rec, Outcome::success(std::move(combined)), actions);
    }
    return;
  }
  process_actual(rec, std::move(outcome), actions);
}

void SpecEngine::on_state_change(StateChangeMsg msg, Actions& actions) {
  Shard& shard = shard_of(msg.call_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.incoming.find(msg.call_id);
  if (it == shard.incoming.end()) {
    // The state message beat its request. Stash it — bounded by a TTL so a
    // request the network permanently ate (fault injection + exhausted
    // retries) cannot leak the entry forever.
    EarlyState early;
    early.correct = msg.correct;
    if (config_.early_state_ttl > Duration::zero()) {
      early.ttl_timer = wheel_.schedule_after(
          config_.early_state_ttl, [this, life = life_, id = msg.call_id] {
            std::lock_guard<std::mutex> guard(life->mu);
            if (!life->alive) return;
            evict_early_state(id);
          });
    }
    if (!shard.early_state.emplace(msg.call_id, early).second &&
        early.ttl_timer != 0) {
      wheel_.cancel(early.ttl_timer);  // duplicate delivery: first wins
    }
    return;
  }
  const std::shared_ptr<IncomingRpc> rec = it->second;
  {
    std::lock_guard<std::mutex> tree_lock(rec->mirror->tree->mu);
    rec->mirror->forced = true;
    rec->mirror->forced_state =
        msg.correct ? SpecState::kCorrect : SpecState::kIncorrect;
    recompute_subtree(rec->mirror, actions);
    drain_tree_flush(*rec->mirror->tree, actions);
  }
  maybe_gc_incoming_locked(shard, msg.call_id);
}

// --------------------------------------------------------------- ServerCall

void ServerCall::spec_return(Value prediction) {
  engine_.server_spec_return(id_, std::move(prediction));
}

void ServerCall::finish(Value result) {
  SpecNode::Ptr ctx;
  if (tl_scope != nullptr && tl_scope->engine == &engine_) ctx = tl_scope->node;
  engine_.server_finish(id_, std::move(ctx),
                        Outcome::success(std::move(result)));
}

void ServerCall::fail(std::string error) {
  SpecNode::Ptr ctx;
  if (tl_scope != nullptr && tl_scope->engine == &engine_) ctx = tl_scope->node;
  engine_.server_finish(id_, std::move(ctx),
                        Outcome::failure(std::move(error)));
}

void ServerCall::finish_after(Duration work, Value result) {
  SpecNode::Ptr ctx;
  if (tl_scope != nullptr && tl_scope->engine == &engine_) ctx = tl_scope->node;
  auto self = shared_from_this();
  engine_.wheel().schedule_after(
      work, [self, ctx, life = engine_.life_,
             result = std::move(result)]() mutable {
        // Same lifetime fence as the engine's own timers: the engine may be
        // destroyed while this completion is parked on the wheel.
        std::lock_guard<std::mutex> guard(life->mu);
        if (!life->alive) return;
        self->engine_.server_finish(self->id_, ctx,
                                    Outcome::success(std::move(result)));
      });
}

}  // namespace srpc::spec
