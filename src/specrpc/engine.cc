#include "specrpc/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/logging.h"
#include "serde/buffer_pool.h"
#include "serde/io.h"

namespace srpc::spec {

namespace {

// Implicit execution context (the paper threads speculative state through
// callback/RPC objects — "specObj"; we additionally track which node is
// currently executing on this thread so nested calls pick up the right
// parent without explicit plumbing).
struct ExecScope {
  ExecScope(const SpecEngine* engine, SpecNode::Ptr n);
  ~ExecScope();

  const SpecEngine* engine;
  SpecNode::Ptr node;
  ExecScope* prev;
};

thread_local ExecScope* tl_scope = nullptr;

// Call ids must be globally unique: servers key incoming RPCs, predicted
// responses and state-change messages by id alone, and several engines talk
// to one server. High bits: engine instance; low 40 bits: per-engine counter.
std::atomic<std::uint64_t> g_engine_instance{1};

ExecScope::ExecScope(const SpecEngine* engine_in, SpecNode::Ptr n)
    : engine(engine_in), node(std::move(n)), prev(tl_scope) {
  tl_scope = this;
}

ExecScope::~ExecScope() { tl_scope = prev; }

}  // namespace

SpecEngine::SpecEngine(Transport& transport, Executor& executor,
                       TimerWheel& wheel, SpecConfig config)
    : transport_(transport),
      executor_(executor),
      wheel_(wheel),
      config_(config) {
  const std::uint64_t instance = g_engine_instance.fetch_add(1);
  next_call_id_ = (instance << 40) + 1;
  rng_.reseed(instance * 0x9E3779B97F4A7C15ULL + 0x7265747279ULL);
  root_ = std::make_shared<SpecNode>();
  root_->kind = SpecNode::Kind::kRoot;
  root_->state = SpecState::kCorrect;
  root_->debug_id = next_debug_id_++;
  transport_.set_receiver([this](const Address& src, Bytes frame) {
    on_message(src, std::move(frame));
  });
}

SpecEngine::~SpecEngine() { begin_shutdown(); }

void SpecEngine::begin_shutdown() {
  transport_.set_receiver(nullptr);
  // A delivery that copied the receiver just before the swap may still be
  // inside on_message on an executor thread, about to touch this engine and
  // run transition actions (observers capture caller-owned state). Wait it
  // out: after quiesce() nothing the caller destroys next can be reached.
  transport_.quiesce();
  // Fence off timer callbacks first: once `alive` drops under the token's
  // mutex, no wheel callback can re-enter this engine (an in-flight one
  // finishes before we acquire the mutex).
  {
    std::lock_guard<std::mutex> lock(life_->mu);
    life_->alive = false;
  }
  std::vector<SpecFuturePtr> futures;
  std::vector<TimerId> timers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (auto& [_, rec] : outgoing_) {
      futures.push_back(rec->future);
      if (rec->timeout_timer != 0) timers.push_back(rec->timeout_timer);
    }
    outgoing_.clear();
    wire_to_logical_.clear();
    incoming_.clear();
  }
  for (TimerId t : timers) wheel_.cancel(t);
  cv_.notify_all();
  for (auto& f : futures) f->resolve(Outcome::failure("engine shut down"));
}

const Address& SpecEngine::address() const { return transport_.address(); }

SpecStats SpecEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

SpecEngine::DebugSizes SpecEngine::debug_sizes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return DebugSizes{outgoing_.size(), incoming_.size(),
                    wire_to_logical_.size(), early_state_.size()};
}

void SpecEngine::set_transition_observer(TransitionObserver observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

void SpecEngine::register_method(const std::string& name,
                                 HandlerFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  methods_[name] = std::move(factory);
}

void SpecEngine::register_method(const std::string& name, Handler handler) {
  register_method(name, HandlerFactory([handler] { return handler; }));
}

// --------------------------------------------------------------- context

SpecNode::Ptr SpecEngine::context_node() const {
  if (tl_scope != nullptr && tl_scope->engine == this) return tl_scope->node;
  return root_;
}

void SpecEngine::check_live(const SpecNode::Ptr& node) const {
  if (node->state == SpecState::kIncorrect) throw SpeculationAbandoned();
}

bool SpecEngine::speculative() const {
  const SpecNode::Ptr node = context_node();
  std::lock_guard<std::mutex> lock(mu_);
  return !is_terminal(node->state);
}

void SpecEngine::set_rollback(std::function<void()> rollback) {
  const SpecNode::Ptr node = context_node();
  if (node == root_) return;  // nothing to roll back on the app thread
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (node->state == SpecState::kIncorrect && node->executed &&
        !node->rollback_fired) {
      node->rollback_fired = true;
      fire_now = true;
      stats_.rollbacks_run++;
    } else {
      node->rollback = std::move(rollback);
    }
  }
  if (fire_now) rollback();
}

void SpecEngine::spec_block() {
  const SpecNode::Ptr node = context_node();
  if (node == root_) return;  // application thread is never speculative
  Executor::before_block();
  std::unique_lock<std::mutex> lock(mu_);
  stats_.spec_blocks++;
  cv_.wait(lock, [&] { return is_terminal(node->state) || stopping_; });
  if (node->state == SpecState::kIncorrect) throw MisspeculationError();
}

void SpecEngine::block_on(const SpecNode::Ptr& node) {
  Executor::before_block();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return is_terminal(node->state) || stopping_; });
}

// --------------------------------------------------------------- tree

SpecNode::Ptr SpecEngine::make_node(SpecNode::Kind kind, SpecNode::Ptr parent) {
  auto node = std::make_shared<SpecNode>();
  node->kind = kind;
  node->parent = parent;
  node->debug_id = next_debug_id_++;
  if (parent) parent->children.push_back(node);
  return node;
}

SpecState SpecEngine::compute_state(const SpecNode& node) const {
  switch (node.kind) {
    case SpecNode::Kind::kRoot:
      return SpecState::kCorrect;
    case SpecNode::Kind::kMirror:
      // Driven externally by state-change messages (§3.4); otherwise keeps
      // the state derived from the request's caller_speculative flag.
      return node.forced ? node.forced_state : node.state;
    case SpecNode::Kind::kCall: {
      const SpecState p = node.parent ? node.parent->state : SpecState::kCorrect;
      if (p == SpecState::kCorrect) return SpecState::kCorrect;
      if (p == SpecState::kIncorrect) return SpecState::kIncorrect;
      return SpecState::kCallerSpeculative;  // Figure 5a
    }
    case SpecNode::Kind::kCallback: {
      const SpecState p = node.parent ? node.parent->state : SpecState::kCorrect;
      if (node.value_status == ValueStatus::kIncorrect ||
          p == SpecState::kIncorrect)
        return SpecState::kIncorrect;
      if (node.value_status == ValueStatus::kUnknown)
        return SpecState::kCalleeSpeculative;  // running on a prediction
      return p == SpecState::kCorrect ? SpecState::kCorrect
                                      : SpecState::kCallerSpeculative;  // 5b
    }
  }
  return SpecState::kIncorrect;
}

void SpecEngine::apply_transition(const SpecNode::Ptr& node, SpecState next,
                                  Actions& actions) {
  if (node->state == next || is_terminal(node->state)) return;
  const SpecState old = node->state;
  node->state = next;
  if (observer_) {
    actions.push_back([obs = observer_, kind = node->kind,
                       id = node->debug_id, old, next] {
      obs(kind, id, old, next);
    });
  }
  if (!is_terminal(next)) return;
  // Terminal: fire listeners once, run rollback on abandonment, wake
  // specBlock waiters.
  auto listeners = std::move(node->terminal_listeners);
  node->terminal_listeners.clear();
  for (auto& l : listeners) {
    actions.push_back([l = std::move(l), next] { l(next); });
  }
  if (next == SpecState::kIncorrect) {
    stats_.branches_abandoned++;
    if (node->executed && node->rollback && !node->rollback_fired) {
      node->rollback_fired = true;
      stats_.rollbacks_run++;
      actions.push_back([rb = node->rollback] { rb(); });
    }
  }
  cv_.notify_all();
}

void SpecEngine::recompute_subtree(const SpecNode::Ptr& node,
                                   Actions& actions) {
  const SpecState next = compute_state(*node);
  if (next == node->state) return;
  if (is_terminal(node->state)) return;  // terminal states are sticky
  apply_transition(node, next, actions);
  for (auto& weak_child : node->children) {
    if (SpecNode::Ptr child = weak_child.lock()) {
      recompute_subtree(child, actions);
    }
  }
}

void SpecEngine::set_value_status(const SpecNode::Ptr& cb_node, ValueStatus vs,
                                  Actions& actions) {
  if (cb_node->value_status != ValueStatus::kUnknown) return;  // sticky
  cb_node->value_status = vs;
  recompute_subtree(cb_node, actions);
}

bool SpecEngine::locally_resolved(const SpecNode::Ptr& ctx,
                                  const SpecNode::Ptr& mirror) const {
  const SpecNode* walk = ctx.get();
  while (walk != nullptr) {
    if (walk == mirror.get()) return true;
    if (walk->kind == SpecNode::Kind::kCallback &&
        walk->value_status != ValueStatus::kCorrect)
      return false;
    walk = walk->parent.get();
  }
  // Context is not under this RPC's mirror (e.g. a captured ServerCall used
  // from an unrelated computation): fall back to global resolution.
  return ctx->state == SpecState::kCorrect;
}

// --------------------------------------------------------------- client

SpecFuturePtr SpecEngine::call(const Address& dst, const std::string& method,
                               ValueList args, ValueList predictions,
                               CallbackFactory factory) {
  const SpecNode::Ptr caller = context_node();
  // Prediction hook (DESIGN.md §8): a call that could speculate but carries
  // no explicit predictions asks the configured supplier. Consulted outside
  // the engine lock — suppliers run user code (predictor lookups, the
  // adaptive gate).
  if (predictions.empty() && factory && config_.prediction_supplier) {
    predictions = config_.prediction_supplier(method, args);
  }
  Actions actions;
  SpecFuturePtr future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    check_live(caller);  // §3.3: abandoned computations may not issue RPCs
    future = start_call(caller, {dst}, 1, method, std::move(args),
                        std::move(predictions), nullptr, std::move(factory));
  }
  for (auto& a : actions) a();
  return future;
}

SpecFuturePtr SpecEngine::call_quorum(const std::vector<Address>& dsts,
                                      int quorum, const std::string& method,
                                      ValueList args, Combiner combiner,
                                      CallbackFactory factory) {
  return call_quorum(dsts, quorum, method, std::move(args), ValueList{},
                     std::move(combiner), std::move(factory));
}

SpecFuturePtr SpecEngine::call_quorum(const std::vector<Address>& dsts,
                                      int quorum, const std::string& method,
                                      ValueList args, ValueList predictions,
                                      Combiner combiner,
                                      CallbackFactory factory) {
  assert(!dsts.empty());
  assert(quorum >= 1 && quorum <= static_cast<int>(dsts.size()));
  const SpecNode::Ptr caller = context_node();
  if (predictions.empty() && factory && config_.prediction_supplier) {
    predictions = config_.prediction_supplier(method, args);
  }
  SpecFuturePtr future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    check_live(caller);
    stats_.quorum_calls_issued++;
    future = start_call(caller, dsts, quorum, method, std::move(args),
                        std::move(predictions), std::move(combiner),
                        std::move(factory));
  }
  return future;
}

SpecFuturePtr SpecEngine::start_call(SpecNode::Ptr caller,
                                     std::vector<Address> dsts, int quorum,
                                     const std::string& method, ValueList args,
                                     ValueList predictions, Combiner combiner,
                                     CallbackFactory factory) {
  auto rec = std::make_shared<OutgoingCall>();
  rec->id = next_call_id_++;
  rec->dsts = std::move(dsts);
  rec->method = method;
  rec->quorum = quorum;
  rec->combiner = std::move(combiner);
  rec->factory = std::move(factory);
  rec->future = SpecFuture::create();
  rec->node = make_node(SpecNode::Kind::kCall, std::move(caller));
  rec->node->state = compute_state(*rec->node);
  stats_.calls_issued++;

  if (stopping_) {
    rec->future->resolve(Outcome::failure("engine shut down"));
    return rec->future;
  }
  outgoing_.emplace(rec->id, rec);
  rec->deadline = config_.call_timeout > Duration::zero()
                      ? Clock::now() + config_.call_timeout
                      : TimePoint::max();
  rec->dst_responded.assign(rec->dsts.size(), false);

  const bool caller_speculative = rec->node->state != SpecState::kCorrect;
  for (std::size_t i = 0; i < rec->dsts.size(); ++i) {
    const CallId wire_id = next_call_id_++;
    rec->wire_ids.emplace_back(wire_id, i);
    wire_to_logical_.emplace(wire_id, rec->id);
    RequestMsg msg;
    msg.call_id = wire_id;
    msg.caller_speculative = caller_speculative;
    msg.method = method;
    msg.args = args;  // copied per destination (quorum fan-out)
    transport_.send(rec->dsts[i], encode(msg, *config_.codec));
  }
  // Retries re-encode the arguments; the prediction observer reports them
  // so predictors can key their learning.
  if (config_.retry.enabled() || config_.prediction_observer) {
    rec->args = std::move(args);
  }

  // Cross-machine dependency edge (§3.4): when this call's caller chain
  // resolves, tell every executing server so its RPC object (and its own
  // children) follow.
  if (!is_terminal(rec->node->state)) {
    rec->node->terminal_listeners.push_back([this, rec](SpecState s) {
      Actions actions;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
        StateChangeMsg msg;
        msg.correct = (s == SpecState::kCorrect);
        // Every attempt's wire id: the server may hold an incoming record
        // under any of them (retries create fresh server-side mirrors).
        for (const auto& [wire_id, dst_idx] : rec->wire_ids) {
          msg.call_id = wire_id;
          transport_.send(rec->dsts[dst_idx], encode(msg, *config_.codec));
          stats_.state_msgs_sent++;
        }
        if (s == SpecState::kCorrect) {
          deliver_direct(rec, actions);
        }
        maybe_gc_outgoing(rec->id);
      }
      for (auto& a : actions) a();
    });
  }

  // Client-side speculation (§2.1): each distinct predicted value starts a
  // fresh callback immediately — even before the request reaches the server.
  if (rec->factory) {
    Actions actions;  // spawn posts only; safe to run after we return
    for (auto& p : predictions) {
      bool dup = false;
      for (const auto& b : rec->branches) {
        if (b->from_prediction && b->predicted_value == p) {
          dup = true;
          break;
        }
      }
      if (!dup) spawn_branch(rec, std::move(p), ValueStatus::kUnknown, actions);
    }
    for (auto& a : actions) a();
  }

  schedule_call_timer_locked(rec);
  return rec->future;
}

void SpecEngine::schedule_call_timer_locked(
    const std::shared_ptr<OutgoingCall>& rec) {
  const auto now = Clock::now();
  Duration wait;
  if (config_.retry.enabled() &&
      config_.retry.attempt_timeout > Duration::zero()) {
    wait = config_.retry.attempt_timeout;
    if (rec->deadline != TimePoint::max() && rec->deadline - now < wait) {
      wait = rec->deadline - now;
    }
  } else if (rec->deadline != TimePoint::max()) {
    wait = rec->deadline - now;
  } else {
    return;  // no deadline and no per-attempt bound
  }
  if (wait < Duration::zero()) wait = Duration::zero();
  rec->timeout_timer = wheel_.schedule_after(
      wait, [this, life = life_, id = rec->id, attempt = rec->attempt] {
        std::lock_guard<std::mutex> guard(life->mu);
        if (!life->alive) return;
        on_attempt_timeout(id, attempt);
      });
}

void SpecEngine::spawn_branch(const std::shared_ptr<OutgoingCall>& rec,
                              Value value, ValueStatus vs, Actions& actions) {
  auto branch = std::make_shared<Branch>();
  branch->node = make_node(SpecNode::Kind::kCallback, rec->node);
  branch->node->value_status = vs;
  branch->node->state = compute_state(*branch->node);
  branch->predicted_value = value;
  branch->from_prediction = (vs == ValueStatus::kUnknown);
  rec->branches.push_back(branch);
  stats_.callbacks_spawned++;
  if (vs == ValueStatus::kUnknown) stats_.predictions_made++;

  if (branch->node->state == SpecState::kIncorrect) return;  // dead on arrival

  if (!is_terminal(branch->node->state)) {
    branch->node->terminal_listeners.push_back(
        [this, rec, branch](SpecState s) {
          Actions inner;
          {
            std::lock_guard<std::mutex> lock(mu_);
            if (s == SpecState::kCorrect) {
              maybe_deliver_branch(rec, branch, inner);
            }
            maybe_gc_outgoing(rec->id);
          }
          for (auto& a : inner) a();
        });
  }

  actions.push_back([this, rec, branch, value = std::move(value)] {
    executor_.post([this, rec, branch, value] {
      // Factory + run happen on an executor thread, outside the engine lock.
      bool start = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (branch->node->state != SpecState::kIncorrect) {
          branch->node->executed = true;
          start = true;
        }
      }
      if (!start) return;
      CallbackFn fn;
      try {
        fn = rec->factory();
      } catch (const std::exception& e) {
        SRPC_LOG(ERROR) << "callback factory threw: " << e.what();
        return;
      }
      SpecContext ctx(*this, branch->node);
      ExecScope scope(this, branch->node);
      Actions inner;
      try {
        CallbackResult result = fn(ctx, value);
        std::lock_guard<std::mutex> lock(mu_);
        branch->run_done = true;
        if (result.is_future()) {
          branch->result_future = result.future;
        } else {
          branch->result_value = std::move(result.value);
        }
        maybe_deliver_branch(rec, branch, inner);
        maybe_gc_outgoing(rec->id);
      } catch (const SpeculationAbandoned&) {
        std::lock_guard<std::mutex> lock(mu_);
        branch->run_done = true;
        branch->failed = true;
        branch->error = "abandoned";
        maybe_gc_outgoing(rec->id);
      } catch (const MisspeculationError&) {
        std::lock_guard<std::mutex> lock(mu_);
        branch->run_done = true;
        branch->failed = true;
        branch->error = "misspeculation";
        maybe_gc_outgoing(rec->id);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu_);
        branch->run_done = true;
        branch->failed = true;
        branch->error = e.what();
        maybe_deliver_branch(rec, branch, inner);
        maybe_gc_outgoing(rec->id);
      }
      for (auto& a : inner) a();
    });
  });
}

void SpecEngine::maybe_deliver_branch(const std::shared_ptr<OutgoingCall>& rec,
                                      const std::shared_ptr<Branch>& branch,
                                      Actions& actions) {
  if (branch->delivered || !branch->run_done) return;
  if (branch->node->state != SpecState::kCorrect) return;
  branch->delivered = true;
  SpecFuturePtr future = rec->future;
  if (branch->failed) {
    actions.push_back([future, error = branch->error] {
      future->resolve(Outcome::failure(error));
    });
  } else if (branch->result_future) {
    // Chained call (§2): the enclosing future acquires the value of the
    // final non-speculative callback of the nested chain.
    actions.push_back([future, sub = branch->result_future] {
      sub->then([future](const Outcome& o) { future->resolve(o); });
    });
  } else {
    actions.push_back([future, value = branch->result_value] {
      future->resolve(Outcome::success(value));
    });
  }
}

void SpecEngine::deliver_direct(const std::shared_ptr<OutgoingCall>& rec,
                                Actions& actions) {
  // Resolution path for calls with no dependent callback (plain async call)
  // and for error outcomes: deliver the RPC's own outcome once the call is
  // globally non-speculative.
  if (!rec->actual_done || rec->branch_matched) return;
  if (rec->node->state != SpecState::kCorrect) return;
  if (rec->actual.ok && rec->factory) return;  // a re-executed branch delivers
  actions.push_back([future = rec->future, outcome = rec->actual] {
    future->resolve(outcome);
  });
}

void SpecEngine::process_actual(const std::shared_ptr<OutgoingCall>& rec,
                                Outcome outcome, Actions& actions) {
  if (rec->actual_done) return;
  rec->actual_done = true;
  rec->actual = std::move(outcome);
  if (rec->timeout_timer != 0) {
    wheel_.cancel(rec->timeout_timer);
    rec->timeout_timer = 0;
  }
  if (rec->node->state == SpecState::kIncorrect) {
    maybe_gc_outgoing(rec->id);
    return;
  }
  // Validate every outstanding prediction (§3.3).
  for (auto& branch : rec->branches) {
    if (branch->node->value_status != ValueStatus::kUnknown) continue;
    const bool match =
        rec->actual.ok && branch->predicted_value == rec->actual.value;
    if (match) {
      stats_.predictions_correct++;
      rec->branch_matched = true;
    } else {
      stats_.predictions_incorrect++;
    }
    set_value_status(branch->node,
                     match ? ValueStatus::kCorrect : ValueStatus::kIncorrect,
                     actions);
  }
  // Report the validation to the prediction observer (outside the lock,
  // with the transition batch) so predictors learn the actual value and
  // accuracy trackers see the hit/miss — including predictions_made == 0
  // calls, which keep learning alive while the adaptive gate is off.
  if (config_.prediction_observer && rec->factory) {
    std::size_t made = 0;
    for (const auto& branch : rec->branches) {
      made += branch->from_prediction ? 1 : 0;
    }
    actions.push_back([obs = config_.prediction_observer, method = rec->method,
                       args = rec->args, outcome = rec->actual, made,
                       correct = rec->branch_matched] {
      obs(method, args, outcome, made, correct);
    });
  }
  if (!rec->branch_matched) {
    if (rec->actual.ok && rec->factory) {
      // No prediction was correct: re-execute on the actual result so
      // forward progress never depends on prediction accuracy (§3.3).
      stats_.reexecutions++;
      spawn_branch(rec, rec->actual.value, ValueStatus::kCorrect, actions);
    } else {
      deliver_direct(rec, actions);
    }
  }
  flush_pending_finishes(actions);
  maybe_gc_outgoing(rec->id);
}

void SpecEngine::maybe_gc_outgoing(CallId id) {
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;
  const auto& rec = it->second;
  // The record is only needed to route wire messages; once the call is
  // terminally incorrect, or its actual result has been processed, nothing
  // further can arrive that matters. Branch delivery keeps working after GC
  // because listeners and run wrappers capture rec/branch by shared_ptr.
  if (!is_terminal(rec->node->state)) return;
  if (rec->node->state == SpecState::kCorrect && !rec->actual_done) return;
  if (rec->timeout_timer != 0) {
    wheel_.cancel(rec->timeout_timer);
    rec->timeout_timer = 0;
  }
  for (const auto& [wire_id, _] : rec->wire_ids)
    wire_to_logical_.erase(wire_id);
  outgoing_.erase(it);
}

void SpecEngine::on_attempt_timeout(CallId logical_id, int attempt) {
  Actions actions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = outgoing_.find(logical_id);
    if (it == outgoing_.end() || it->second->actual_done) return;
    const auto& rec = it->second;
    if (rec->attempt != attempt) return;  // stale timer for an older attempt
    const auto now = Clock::now();
    bool retry = config_.retry.enabled() &&
                 rec->attempt < config_.retry.max_attempts && !stopping_ &&
                 rec->node->state != SpecState::kIncorrect;
    Duration backoff = Duration::zero();
    if (retry) {
      backoff = config_.retry.backoff_after(rec->attempt, rng_);
      if (rec->deadline != TimePoint::max() &&
          now + backoff >= rec->deadline) {
        retry = false;  // backoff would overrun the overall deadline
      }
    }
    if (!retry) {
      SRPC_LOG(WARN) << address() << ": call " << rec->method << " (id "
                     << rec->id << ", attempt " << rec->attempt << ", quorum "
                     << rec->quorum << ", responses " << rec->responses.size()
                     << ", node state " << to_string(rec->node->state)
                     << ", branches " << rec->branches.size()
                     << ") timed out";
      process_actual(it->second, Outcome::failure("spec call timed out"),
                     actions);
    } else {
      rec->attempt += 1;
      stats_.retries++;
      rec->timeout_timer = wheel_.schedule_after(
          backoff, [this, life = life_, logical_id, next = rec->attempt] {
            std::lock_guard<std::mutex> guard(life->mu);
            if (!life->alive) return;
            resend_attempt(logical_id, next);
          });
    }
  }
  for (auto& a : actions) a();
}

void SpecEngine::resend_attempt(CallId logical_id, int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  auto it = outgoing_.find(logical_id);
  if (it == outgoing_.end()) return;
  const auto& rec = it->second;
  if (rec->actual_done || rec->attempt != attempt) return;
  if (rec->node->state == SpecState::kIncorrect) return;  // abandoned
  const bool caller_speculative = rec->node->state != SpecState::kCorrect;
  for (std::size_t i = 0; i < rec->dsts.size(); ++i) {
    // A replica whose actual already counted does not need the re-issue.
    if (rec->dst_responded[i]) continue;
    const CallId wire_id = next_call_id_++;
    rec->wire_ids.emplace_back(wire_id, i);
    wire_to_logical_.emplace(wire_id, rec->id);
    RequestMsg msg;
    msg.call_id = wire_id;
    msg.caller_speculative = caller_speculative;
    msg.method = rec->method;
    msg.args = rec->args;  // copy; later attempts may need them again
    transport_.send(rec->dsts[i], encode(msg, *config_.codec));
  }
  schedule_call_timer_locked(rec);
}

// --------------------------------------------------------------- server

void SpecEngine::server_spec_return(CallId id, Value value) {
  const SpecNode::Ptr ctx = context_node();
  std::lock_guard<std::mutex> lock(mu_);
  if (ctx != root_ && ctx->state == SpecState::kIncorrect)
    throw SpeculationAbandoned();  // §3.3
  auto it = incoming_.find(id);
  if (it == incoming_.end()) return;
  auto& rec = *it->second;
  if (rec.actual_sent) return;
  for (const auto& sent : rec.predictions_sent) {
    if (sent == value) return;  // duplicate prediction; client dedups anyway
  }
  rec.predictions_sent.push_back(value);
  stats_.spec_returns++;
  PredictedResponseMsg msg;
  msg.call_id = id;
  msg.value = std::move(value);
  transport_.send(rec.caller, encode(msg, *config_.codec));
}

void SpecEngine::send_actual_response(IncomingRpc& rec, const Outcome& outcome,
                                      Actions& actions) {
  if (rec.actual_sent) return;
  rec.actual_sent = true;
  ActualResponseMsg msg;
  msg.call_id = rec.id;
  msg.ok = outcome.ok;
  msg.value = outcome.value;
  msg.error = outcome.error;
  transport_.send(rec.caller, encode(msg, *config_.codec));
  // Clear only after the message is built: `outcome` may alias an entry of
  // rec.pending. GC is the caller's job (iterator safety).
  rec.pending.clear();
}

void SpecEngine::server_finish(CallId id, SpecNode::Ptr ctx, Outcome outcome) {
  Actions actions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incoming_.find(id);
    if (it == incoming_.end()) return;
    auto& rec = *it->second;
    if (ctx == nullptr) ctx = rec.mirror;
    if (ctx->state == SpecState::kIncorrect) return;  // abandoned: drop
    if (rec.actual_sent) return;
    if (locally_resolved(ctx, rec.mirror)) {
      send_actual_response(rec, outcome, actions);
      maybe_gc_incoming(id);
    } else {
      // The producing computation still depends on predictions: the value
      // travels as a *predicted* response (Figure 3b step 5); the actual
      // response follows once the chain value-resolves (step 9).
      if (outcome.ok) {
        bool dup = false;
        for (const auto& sent : rec.predictions_sent) {
          if (sent == outcome.value) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          rec.predictions_sent.push_back(outcome.value);
          PredictedResponseMsg msg;
          msg.call_id = id;
          msg.value = outcome.value;
          transport_.send(rec.caller, encode(msg, *config_.codec));
        }
      }
      rec.pending.push_back(PendingFinish{std::move(ctx), std::move(outcome)});
    }
  }
  for (auto& a : actions) a();
}

void SpecEngine::flush_pending_finishes(Actions& actions) {
  // Snapshot: sending an actual response can trigger GC of incoming_
  // entries, which must not invalidate this iteration.
  std::vector<std::shared_ptr<IncomingRpc>> snapshot;
  snapshot.reserve(incoming_.size());
  for (auto& [_, rec] : incoming_) snapshot.push_back(rec);
  for (auto& rec : snapshot) {
    if (rec->actual_sent || rec->pending.empty()) continue;
    auto& pending = rec->pending;
    // Drop finishes from abandoned branches; send the first value-resolved.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->ctx->state == SpecState::kIncorrect) {
        it = pending.erase(it);
        continue;
      }
      if (locally_resolved(it->ctx, rec->mirror)) {
        const Outcome outcome = it->outcome;  // copy: send clears pending
        send_actual_response(*rec, outcome, actions);
        maybe_gc_incoming(rec->id);
        break;
      }
      ++it;
    }
  }
}

void SpecEngine::maybe_gc_incoming(CallId id) {
  auto it = incoming_.find(id);
  if (it == incoming_.end()) return;
  const auto& rec = it->second;
  if (rec->mirror->state == SpecState::kIncorrect ||
      (rec->mirror->state == SpecState::kCorrect && rec->actual_sent)) {
    incoming_.erase(it);
  }
}

// --------------------------------------------------------------- ingress

void SpecEngine::on_message(const Address& src, Bytes frame) {
  Actions actions;
  try {
    const MsgType type = peek_type(frame);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    switch (type) {
      case MsgType::kRequest:
        on_request(src, decode_request(frame, *config_.codec), actions);
        break;
      case MsgType::kPredictedResponse:
        on_predicted(decode_predicted(frame, *config_.codec), actions);
        break;
      case MsgType::kActualResponse:
        on_actual(decode_actual(frame, *config_.codec), actions);
        break;
      case MsgType::kStateChange:
        on_state_change(decode_state_change(frame, *config_.codec), actions);
        break;
    }
  } catch (const DecodeError& e) {
    SRPC_LOG(ERROR) << address() << ": bad frame from " << src << ": "
                    << e.what();
  }
  // The frame is fully decoded; recycle its capacity for future encodes.
  BufferPool::release(std::move(frame));
  for (auto& a : actions) a();
}

void SpecEngine::on_request(const Address& src, RequestMsg msg,
                            Actions& actions) {
  auto rec = std::make_shared<IncomingRpc>();
  rec->id = msg.call_id;
  rec->caller = src;
  rec->method = msg.method;
  rec->args = std::move(msg.args);
  rec->mirror = make_node(SpecNode::Kind::kMirror, nullptr);
  rec->mirror->state = msg.caller_speculative ? SpecState::kCallerSpeculative
                                              : SpecState::kCorrect;
  // A state-change message can beat the request (independent links, or TCP
  // reconnect); apply it now.
  if (auto early = early_state_.find(msg.call_id);
      early != early_state_.end()) {
    rec->mirror->forced = true;
    rec->mirror->forced_state =
        early->second ? SpecState::kCorrect : SpecState::kIncorrect;
    rec->mirror->state = rec->mirror->forced_state;
    early_state_.erase(early);
  }
  if (rec->mirror->state == SpecState::kIncorrect) return;  // dead on arrival
  if (!incoming_.emplace(rec->id, rec).second) {
    // Expected under fault injection: a duplicated request delivery (the
    // retry path uses fresh wire ids, so only the network creates these).
    SRPC_LOG(WARN) << address() << ": duplicate incoming call id " << rec->id
                   << " from " << src << " — dropping request";
    return;
  }

  if (!is_terminal(rec->mirror->state)) {
    rec->mirror->terminal_listeners.push_back([this,
                                               id = rec->id](SpecState s) {
      Actions inner;
      {
        std::lock_guard<std::mutex> lock(mu_);
        flush_pending_finishes(inner);
        maybe_gc_incoming(id);
      }
      for (auto& a : inner) a();
    });
  }

  auto mit = methods_.find(msg.method);
  if (mit == methods_.end()) {
    Outcome err = Outcome::failure("unknown method: " + msg.method);
    send_actual_response(*rec, err, actions);
    maybe_gc_incoming(rec->id);
    return;
  }
  HandlerFactory factory = mit->second;
  actions.push_back([this, id = rec->id, factory = std::move(factory)] {
    executor_.post([this, id, factory] {
      std::shared_ptr<IncomingRpc> rec;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = incoming_.find(id);
        if (it == incoming_.end()) return;
        rec = it->second;
        if (rec->mirror->state == SpecState::kIncorrect) return;
        rec->mirror->executed = true;
      }
      Handler handler;
      try {
        handler = factory();
      } catch (const std::exception& e) {
        SRPC_LOG(ERROR) << "handler factory threw: " << e.what();
        return;
      }
      // The handler task is the sole consumer of the decoded arguments;
      // hand them to the ServerCall instead of deep-copying the ValueList.
      auto call = std::make_shared<ServerCall>(*this, id, rec->caller,
                                               rec->method,
                                               std::move(rec->args),
                                               rec->mirror);
      ExecScope scope(this, rec->mirror);
      try {
        handler(call);
      } catch (const SpeculationAbandoned&) {
        // Cooperative termination of an abandoned RPC object (§3.3).
      } catch (const MisspeculationError&) {
      } catch (const std::exception& e) {
        call->fail(e.what());
      }
    });
  });
}

void SpecEngine::on_predicted(PredictedResponseMsg msg, Actions& actions) {
  auto wit = wire_to_logical_.find(msg.call_id);
  if (wit == wire_to_logical_.end()) return;
  auto it = outgoing_.find(wit->second);
  if (it == outgoing_.end()) return;
  auto& rec = it->second;
  if (rec->actual_done || !rec->factory) return;
  if (rec->node->state == SpecState::kIncorrect) return;
  for (const auto& b : rec->branches) {
    if (b->from_prediction && b->predicted_value == msg.value) return;  // dup
  }
  spawn_branch(rec, std::move(msg.value), ValueStatus::kUnknown, actions);
}

void SpecEngine::on_actual(ActualResponseMsg msg, Actions& actions) {
  auto wit = wire_to_logical_.find(msg.call_id);
  if (wit == wire_to_logical_.end()) return;  // dup/late/superseded reply
  auto it = outgoing_.find(wit->second);
  if (it == outgoing_.end()) return;
  auto& rec = it->second;
  // Consume this wire id: a duplicated delivery of the same actual (network
  // dup) now misses the lookup above instead of being processed twice. The
  // id stays in rec->wire_ids so state-change fan-out still reaches the
  // server-side record it created.
  std::size_t dst_idx = 0;
  for (const auto& [wire_id, idx] : rec->wire_ids) {
    if (wire_id == msg.call_id) {
      dst_idx = idx;
      break;
    }
  }
  wire_to_logical_.erase(wit);
  Outcome outcome = msg.ok ? Outcome::success(std::move(msg.value))
                           : Outcome::failure(msg.error);
  if (rec->quorum > 1) {
    if (rec->actual_done) return;
    // A retried attempt can draw a second actual from the same replica;
    // quorum counts distinct replicas, not distinct replies.
    if (rec->dst_responded[dst_idx]) return;
    if (!outcome.ok) {
      // Keep the failure model simple: any replica error fails the logical
      // quorum call (the RC evaluation never exercises replica failures).
      process_actual(rec, std::move(outcome), actions);
      return;
    }
    rec->dst_responded[dst_idx] = true;
    rec->responses.push_back(outcome.value);
    // First response doubles as the prediction for the quorum result (§4.1).
    if (rec->responses.size() == 1 && rec->factory) {
      bool dup = false;
      for (const auto& b : rec->branches) {
        if (b->from_prediction && b->predicted_value == outcome.value) {
          dup = true;
          break;
        }
      }
      if (!dup && rec->node->state != SpecState::kIncorrect) {
        spawn_branch(rec, outcome.value, ValueStatus::kUnknown, actions);
      }
    }
    if (static_cast<int>(rec->responses.size()) >= rec->quorum) {
      Value combined = rec->combiner
                           ? rec->combiner(rec->responses)
                           : rec->responses.front();
      process_actual(rec, Outcome::success(std::move(combined)), actions);
    }
    return;
  }
  process_actual(rec, std::move(outcome), actions);
}

void SpecEngine::on_state_change(StateChangeMsg msg, Actions& actions) {
  auto it = incoming_.find(msg.call_id);
  if (it == incoming_.end()) {
    early_state_.emplace(msg.call_id, msg.correct);
    return;
  }
  auto& rec = it->second;
  rec->mirror->forced = true;
  rec->mirror->forced_state =
      msg.correct ? SpecState::kCorrect : SpecState::kIncorrect;
  recompute_subtree(rec->mirror, actions);
  flush_pending_finishes(actions);
  maybe_gc_incoming(msg.call_id);
}

// --------------------------------------------------------------- ServerCall

void ServerCall::spec_return(Value prediction) {
  engine_.server_spec_return(id_, std::move(prediction));
}

void ServerCall::finish(Value result) {
  SpecNode::Ptr ctx;
  if (tl_scope != nullptr && tl_scope->engine == &engine_) ctx = tl_scope->node;
  engine_.server_finish(id_, std::move(ctx),
                        Outcome::success(std::move(result)));
}

void ServerCall::fail(std::string error) {
  SpecNode::Ptr ctx;
  if (tl_scope != nullptr && tl_scope->engine == &engine_) ctx = tl_scope->node;
  engine_.server_finish(id_, std::move(ctx),
                        Outcome::failure(std::move(error)));
}

void ServerCall::finish_after(Duration work, Value result) {
  SpecNode::Ptr ctx;
  if (tl_scope != nullptr && tl_scope->engine == &engine_) ctx = tl_scope->node;
  auto self = shared_from_this();
  engine_.wheel().schedule_after(
      work, [self, ctx, life = engine_.life_,
             result = std::move(result)]() mutable {
        // Same lifetime fence as the engine's own timers: the engine may be
        // destroyed while this completion is parked on the wheel.
        std::lock_guard<std::mutex> guard(life->mu);
        if (!life->alive) return;
        self->engine_.server_finish(self->id_, ctx,
                                    Outcome::success(std::move(result)));
      });
}

}  // namespace srpc::spec
