// SpecEngine — the per-process SpecRPC controller (paper §3, Figure 4).
//
// One engine per machine owns that machine's half of the distributed
// dependency tree: it creates call/callback/mirror nodes, runs state
// transitions (Figure 5), propagates terminal transitions downward and —
// for cross-machine edges — via dedicated state-change messages (§3.4),
// validates predictions against actual results, abandons incorrect branches
// (running rollbacks, §3.3/§3.5.2), re-executes on the actual value when no
// prediction matched, and resolves futures only with non-speculative
// results.
//
// Like rpc::Node, an engine is client and server at once: server-side
// handlers routinely issue speculative calls of their own (multi-level
// speculation, §2.2).
//
// Concurrency (DESIGN.md §6): the engine has no global lock. Call-tracking
// tables are striped into N shards keyed by call id; dependency-tree state
// is guarded per tree (TreeControl); stats are per-shard relaxed-ish atomics
// summed on snapshot. Lock-ordering rule: shard lock → tree lock is allowed
// (and common), tree lock → shard lock is forbidden — cross-domain work is
// routed through deferred Actions that run with no locks held.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/timer_wheel.h"
#include "specrpc/api.h"
#include "specrpc/node.h"
#include "specrpc/qos.h"
#include "specrpc/wire.h"

namespace srpc::spec {

/// Global speculation budget (DESIGN.md §11): a token bucket over in-flight
/// *speculative* branches (value_status still kUnknown), refilled by
/// completions — validation, branch abandonment, or shutdown each release
/// the branch's token. When the bucket is exhausted a call degrades to
/// TradRPC semantics (no predictions consulted, no speculative callback
/// spawned); it never queues. Re-executions on the actual value are exempt:
/// they are forward progress, not speculation risk.
struct SpecBudget {
  /// Max in-flight speculative branches. 0 = unbounded (the historical
  /// behaviour; the gauge is still maintained for stats).
  std::size_t max_inflight = 0;
  /// Per-priority fraction of max_inflight a tier may occupy, indexed by
  /// QosPriority. Lower tiers get smaller caps, so under pressure
  /// best-effort speculation exhausts its slice (and degrades to TradRPC)
  /// while critical traffic still finds tokens. Monotone non-increasing by
  /// construction of the defaults; not enforced.
  std::array<double, kNumQosPriorities> tier_frac = {1.0, 0.85, 0.6};
};

struct SpecConfig {
  const Codec* codec = &binary_codec();
  /// A call whose actual result has not arrived by then fails. 0 disables.
  Duration call_timeout = std::chrono::seconds(60);
  /// When enabled, outbound calls whose actual has not arrived within the
  /// per-attempt timeout are re-issued under fresh attempt-tagged wire ids
  /// (duplicate actuals are deduplicated per destination). Handlers must be
  /// idempotent — see DESIGN.md §7.
  RetryPolicy retry;
  /// Optional prediction hook (DESIGN.md §8): consulted by call()/
  /// call_quorum() for every speculation-capable call issued without
  /// explicit predictions. The usual installer is
  /// predict::SpeculationManager, which routes through a Predictor and the
  /// adaptive speculation gate.
  PredictionSupplier prediction_supplier;
  /// Optional observer of per-call prediction validation (method, args,
  /// actual, predictions_made, any_correct) — the feedback edge that lets
  /// predictors learn online and accuracy trackers drive the adaptive gate.
  PredictionObserver prediction_observer;
  /// Number of lock shards for the call-tracking tables (DESIGN.md §6).
  /// 0 = auto (~2× hardware_concurrency). 1 additionally collapses every
  /// speculation tree into one shared concurrency domain, reproducing the
  /// historical single-lock engine — the honest baseline for
  /// bench/perf_engine_scale.
  std::size_t shards = 0;
  /// TTL for stashed early state-change entries (a state message that beat
  /// its request, engine.cc on_state_change). If the request never arrives —
  /// dropped by fault injection with retries exhausted — the stash is
  /// evicted after this long instead of leaking forever. 0 disables.
  Duration early_state_ttl = std::chrono::seconds(30);
  /// Overload protection: bounds in-flight speculative branches
  /// (DESIGN.md §11). Default-unbounded so existing users are unaffected.
  SpecBudget budget;
};

/// Counters exposed for tests, benches and EXPERIMENTS.md. Maintained as
/// per-shard atomic cells; stats() sums them with an acquire discipline that
/// keeps derived counters consistent with their base counters (a snapshot
/// never shows predictions_correct + predictions_incorrect >
/// predictions_made, etc.) even under concurrent load.
struct SpecStats {
  std::uint64_t calls_issued = 0;
  std::uint64_t quorum_calls_issued = 0;
  std::uint64_t callbacks_spawned = 0;      // all branches, incl. re-executions
  std::uint64_t reexecutions = 0;           // branches spawned on actual value
                                            // after every prediction missed
  std::uint64_t predictions_made = 0;       // client + server + quorum-first
  std::uint64_t predictions_correct = 0;
  std::uint64_t predictions_incorrect = 0;
  std::uint64_t branches_abandoned = 0;     // nodes that reached kIncorrect
  std::uint64_t rollbacks_run = 0;
  std::uint64_t state_msgs_sent = 0;
  std::uint64_t spec_returns = 0;
  std::uint64_t spec_blocks = 0;
  std::uint64_t retries = 0;  // attempts re-issued after a timeout
  std::uint64_t early_state_evictions = 0;  // TTL'd early state stashes
  // Speculation-budget accounting (DESIGN.md §11). Exactly one release per
  // acquired token, so budget_released <= budget_acquired in every snapshot
  // and the two are equal once the workload drains.
  std::uint64_t budget_acquired = 0;  // tokens taken by speculative branches
  std::uint64_t budget_released = 0;  // tokens returned on completion
  std::uint64_t budget_denied = 0;    // speculation skipped: no headroom
};

class SpecEngine {
 public:
  SpecEngine(Transport& transport, Executor& executor, TimerWheel& wheel,
             SpecConfig config = SpecConfig());
  ~SpecEngine();

  SpecEngine(const SpecEngine&) = delete;
  SpecEngine& operator=(const SpecEngine&) = delete;

  /// Stops accepting work, fails outstanding futures and wakes spec_block
  /// waiters. Call before draining the executor that runs this engine's
  /// callbacks, so parked computations can unwind; the destructor calls it
  /// too. Idempotent.
  void begin_shutdown();

  // ------------------------------------------------------------- server

  /// Registers an RPC by name with a per-request handler factory (the
  /// paper's SpecRpcServer::register with an RPC host factory).
  void register_method(const std::string& name, HandlerFactory factory);

  /// Convenience overload for stateless handlers.
  void register_method(const std::string& name, Handler handler);

  // ------------------------------------------------------------- client

  /// Issues an RPC. Returns immediately with a future that acquires the
  /// return value of the final non-speculative callback in the chain (§2).
  ///
  /// `predictions` are client-side predicted return values (§2.1); each
  /// distinct value speculatively executes a fresh callback from `factory`.
  /// A null factory means "no dependent operation": the future resolves
  /// with the RPC's own result.
  ///
  /// Called from inside a running callback/handler, the new call becomes a
  /// child of that computation in the dependency tree (implicit context).
  SpecFuturePtr call(const Address& dst, const std::string& method,
                     ValueList args, ValueList predictions = {},
                     CallbackFactory factory = nullptr);

  /// Issues one logical call fanned out to `dsts`, completing when `quorum`
  /// responses arrived; `combiner` picks the actual result from them. The
  /// first response doubles as a prediction (§4.1: "we can use the first
  /// response to speculatively execute the next read operation").
  SpecFuturePtr call_quorum(const std::vector<Address>& dsts, int quorum,
                            const std::string& method, ValueList args,
                            Combiner combiner, CallbackFactory factory);

  /// call_quorum with client-side predictions of the *combined* result
  /// (validated against the combiner's output). The first quorum response
  /// still doubles as a prediction; client predictions start callbacks even
  /// earlier — before any response arrives (the RC read-chain pattern with
  /// a warm predictor).
  SpecFuturePtr call_quorum(const std::vector<Address>& dsts, int quorum,
                            const std::string& method, ValueList args,
                            ValueList predictions, Combiner combiner,
                            CallbackFactory factory);

  /// Blocks the calling computation until it is non-speculative; throws
  /// MisspeculationError if its speculation was incorrect (§3.5.2).
  /// No-op on a non-speculative application thread. Parks on the
  /// computation's *tree* condition variable, so resolutions in unrelated
  /// trees neither wake nor contend with this waiter.
  void spec_block();

  /// True if the current computation context is speculative.
  bool speculative() const;

  /// Installs a rollback for the current computation (§3.5.2).
  void set_rollback(std::function<void()> rollback);

  // ------------------------------------------------------------- misc

  const Address& address() const;
  Executor& executor() { return executor_; }
  TimerWheel& wheel() { return wheel_; }
  SpecStats stats() const;

  /// Assigns a QoS class to an outbound method (DESIGN.md §11): its
  /// priority tier for speculation-budget admission and an optional
  /// per-method deadline overriding call_timeout. Unclassified methods run
  /// at kNormal with the engine-wide timeout. Thread-safe; usually called
  /// once at setup (registry::apply_qos).
  void set_method_qos(const std::string& method, QosClass qos);
  QosClass method_qos(const std::string& method) const;

  /// Current in-flight speculative branches (budget gauge). Maintained even
  /// when the budget is unbounded; drains to 0 after a quiesced workload.
  std::int64_t spec_inflight() const {
    return spec_inflight_.load(std::memory_order_acquire);
  }

  /// True if a speculative branch for `method` would currently find budget
  /// headroom. Advisory (the authoritative check is at spawn time): call()
  /// uses it to skip the prediction supplier entirely when the bucket is
  /// dry, which is what "no predictions consulted" means in the
  /// degradation ladder.
  bool spec_budget_headroom(const std::string& method) const;

  /// Number of lock shards this engine was built with (after auto-sizing).
  std::size_t shard_count() const { return shards_.size(); }

  /// Diagnostic: live bookkeeping sizes {outgoing calls, incoming RPCs,
  /// wire-id routes, stashed early state changes}, summed across shards.
  /// After a quiesced workload these must drain back to ~zero (GC hygiene;
  /// tested).
  struct DebugSizes {
    std::size_t outgoing = 0;
    std::size_t incoming = 0;
    std::size_t wire_routes = 0;
    std::size_t early_state = 0;
  };
  DebugSizes debug_sizes() const;

  /// Test hook: observes every state transition (old -> new) of every node.
  /// Runs outside all engine locks, after the transition batch. With a
  /// sharded engine, events from *unrelated* trees may interleave in any
  /// order; events for one node are still well-ordered.
  using TransitionObserver = std::function<void(
      SpecNode::Kind kind, std::uint64_t debug_id, SpecState from,
      SpecState to)>;
  void set_transition_observer(TransitionObserver observer);

 private:
  friend class SpecContext;
  friend class ServerCall;

  struct Branch {
    SpecNode::Ptr node;
    Value predicted_value;     // the value run() received
    bool from_prediction;      // value_status started kUnknown
    /// Holds a speculation-budget token. Set at spawn for speculative
    /// branches, cleared (exactly once, under the tree mutex) by whichever
    /// of validation / terminal transition / shutdown reaps the branch
    /// first.
    bool token_held = false;
    bool run_done = false;
    bool failed = false;
    std::string error;
    Value result_value;
    SpecFuturePtr result_future;
    bool delivered = false;
  };

  /// One logical outbound call. Immutable after start_call's tree phase:
  /// id, dsts, method, quorum, combiner, factory, future, node, deadline,
  /// args. Everything else is guarded by node->tree->mu (the shard mutex
  /// only guards the map entry pointing here). timeout_timer is atomic so
  /// begin_shutdown can harvest it under the shard lock alone.
  struct OutgoingCall {
    CallId id = 0;
    std::vector<Address> dsts;
    /// Every attempt-tagged wire id issued for this call, with the index of
    /// the destination it was sent to (retries append fresh ids).
    std::vector<std::pair<CallId, std::size_t>> wire_ids;
    std::string method;
    ValueList args;  // retained only when retries/observer are enabled
    SpecNode::Ptr node;
    SpecFuturePtr future;
    CallbackFactory factory;
    std::vector<std::shared_ptr<Branch>> branches;
    bool actual_done = false;
    Outcome actual;
    bool branch_matched = false;
    QosPriority priority = QosPriority::kNormal;  // from method_qos at issue
    int attempt = 1;
    TimePoint deadline{};  // TimePoint::max() when call_timeout is 0
    // Quorum mode:
    int quorum = 1;
    Combiner combiner;
    std::vector<Value> responses;
    /// Per-destination flag: an actual from this replica already counted
    /// toward the quorum (a retried attempt must not double-count it).
    std::vector<bool> dst_responded;
    std::atomic<TimerId> timeout_timer{0};  // attempt-timeout/backoff timer
  };

  struct PendingFinish {
    SpecNode::Ptr ctx;
    Outcome outcome;
  };

  /// One incoming RPC. All mutable fields (predictions_sent, actual_sent,
  /// pending, args) are guarded by the owning shard's mutex; the mirror
  /// node follows the tree discipline.
  struct IncomingRpc {
    CallId id = 0;
    Address caller;
    std::string method;
    SpecNode::Ptr mirror;
    ValueList args;
    std::vector<Value> predictions_sent;
    bool actual_sent = false;
    std::vector<PendingFinish> pending;
  };

  using Actions = std::vector<std::function<void()>>;

  // Per-shard stat counters. Writes are fetch_add(release); stats() reads
  // acquire in derived-before-base order so cross-counter invariants hold
  // in every snapshot.
  enum StatIdx : std::size_t {
    kCallsIssued = 0,
    kQuorumCallsIssued,
    kCallbacksSpawned,
    kReexecutions,
    kPredictionsMade,
    kPredictionsCorrect,
    kPredictionsIncorrect,
    kBranchesAbandoned,
    kRollbacksRun,
    kStateMsgsSent,
    kSpecReturns,
    kSpecBlocks,
    kRetries,
    kEarlyStateEvictions,
    kBudgetAcquired,
    kBudgetReleased,
    kBudgetDenied,
    kNumStats,
  };
  struct alignas(64) StatsCell {
    std::array<std::atomic<std::uint64_t>, kNumStats> v{};
  };

  /// An early state-change stash (state message beat its request) with the
  /// timer that will evict it if the request never shows up.
  struct EarlyState {
    bool correct = false;
    TimerId ttl_timer = 0;
  };

  /// One lock stripe of the call-tracking tables. A call id belongs to
  /// shard id % N; note a call's logical id and its attempt-tagged wire ids
  /// generally land in *different* shards, so multi-map updates (publish,
  /// GC) take the shard locks one at a time, never nested.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<CallId, std::shared_ptr<OutgoingCall>> outgoing;
    std::unordered_map<CallId, CallId> wire_to_logical;
    std::unordered_map<CallId, std::shared_ptr<IncomingRpc>> incoming;
    std::unordered_map<CallId, EarlyState> early_state;
    /// Live trees homed here, so begin_shutdown can wake every spec_block
    /// waiter. Weak entries; pruned amortized on insert.
    std::vector<std::weak_ptr<TreeControl>> trees;
    std::size_t trees_prune_at = 16;
    Rng rng;  // retry backoff jitter; guarded by mu
    StatsCell stats;
  };

  Shard& shard_of(CallId id) const { return *shards_[id % shards_.size()]; }
  void bump(StatIdx idx, std::uint64_t key) const;
  std::uint64_t sum(StatIdx idx) const;
  void register_tree_locked(Shard& shard,
                            const std::shared_ptr<TreeControl>& tree);
  std::shared_ptr<OutgoingCall> find_outgoing(CallId logical_id) const;

  // Wire ingress. Dispatch is lock-free; each handler takes the shard and
  // tree locks it needs.
  void on_message(const Address& src, Bytes frame);
  void on_request(const Address& src, RequestMsg msg, Actions& actions);
  void on_predicted(PredictedResponseMsg msg, Actions& actions);
  void on_actual(ActualResponseMsg msg, Actions& actions);
  void on_state_change(StateChangeMsg msg, Actions& actions);
  void on_attempt_timeout(CallId logical_id, int attempt);
  void resend_attempt(CallId logical_id, int attempt);
  void evict_early_state(CallId id);

  // Tree machinery: callers hold the node's tree mutex.
  SpecState compute_state(const SpecNode& node) const;
  void recompute_subtree(const SpecNode::Ptr& node, Actions& actions);
  void apply_transition(const SpecNode::Ptr& node, SpecState next,
                        Actions& actions);
  void set_value_status(const SpecNode::Ptr& cb_node, ValueStatus vs,
                        Actions& actions);
  void drain_tree_flush(TreeControl& tree, Actions& actions);
  /// Pure read walk over atomic states; callers that need it to be stable
  /// against concurrent validation hold ctx's tree mutex.
  bool locally_resolved(const SpecNode::Ptr& ctx,
                        const SpecNode::Ptr& mirror) const;
  SpecNode::Ptr make_node(SpecNode::Kind kind, SpecNode::Ptr parent,
                          std::shared_ptr<TreeControl> tree);

  // Call progress. spawn_branch/process_actual/maybe_deliver_branch/
  // deliver_direct/schedule_call_timer_tree_locked require the call's tree
  // mutex; gc_outgoing/flush_incoming take their own locks and must be
  // invoked with none held (use deferred Actions from locked regions).
  SpecFuturePtr start_call(SpecNode::Ptr caller, std::vector<Address> dsts,
                           int quorum, const std::string& method,
                           ValueList args, ValueList predictions,
                           Combiner combiner, CallbackFactory factory);
  void spawn_branch(const std::shared_ptr<OutgoingCall>& rec, Value value,
                    ValueStatus vs, Actions& actions);
  void process_actual(const std::shared_ptr<OutgoingCall>& rec,
                      Outcome outcome, Actions& actions);
  void maybe_deliver_branch(const std::shared_ptr<OutgoingCall>& rec,
                            const std::shared_ptr<Branch>& branch,
                            Actions& actions);
  void deliver_direct(const std::shared_ptr<OutgoingCall>& rec,
                      Actions& actions);
  void schedule_call_timer_tree_locked(
      const std::shared_ptr<OutgoingCall>& rec);
  /// Budget accounting (DESIGN.md §11). Acquire is called from spawn_branch
  /// under the call's tree mutex; it bumps spec_inflight_ and checks the
  /// caller-priority tier cap. Release is idempotent per branch (the
  /// token_held flag, guarded by the same tree mutex, makes it
  /// exactly-once) and is invoked from validation, the branch's terminal
  /// listener, the dead-on-arrival path, and shutdown orphan cleanup —
  /// whichever runs first wins.
  bool try_acquire_spec_token(QosPriority priority, std::uint64_t key);
  void release_spec_token_tree_locked(Branch& branch, std::uint64_t key);

  void gc_outgoing(CallId id);
  void maybe_gc_incoming_locked(Shard& shard, CallId id);
  void flush_incoming(CallId id);
  void send_actual_response_locked(IncomingRpc& rec, const Outcome& outcome,
                                   Actions& actions);

  // Context plumbing used by SpecContext / ServerCall.
  SpecNode::Ptr context_node() const;
  void check_live(const SpecNode::Ptr& node) const;  // throws if kIncorrect
  void server_spec_return(CallId id, Value value);
  void server_finish(CallId id, SpecNode::Ptr ctx, Outcome outcome);

  /// Keeps timer-wheel callbacks from touching a destroyed engine: each
  /// callback holds the token's mutex for its whole run and bails if the
  /// engine already began shutdown. begin_shutdown() flips `alive` under
  /// the same mutex, so after it returns no callback can enter the engine.
  struct LifeToken {
    std::mutex mu;
    bool alive = true;
  };

  Transport& transport_;
  Executor& executor_;
  TimerWheel& wheel_;
  SpecConfig config_;
  std::shared_ptr<LifeToken> life_ = std::make_shared<LifeToken>();

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Non-null only when shards == 1: every tree shares this control block,
  /// reproducing the single global concurrency domain of the pre-shard
  /// engine (one mutex, one cv with notify_all thundering herd).
  std::shared_ptr<TreeControl> single_tree_;

  SpecNode::Ptr root_;
  std::shared_mutex methods_mu_;  // read-mostly: registration precedes serving
  std::unordered_map<std::string, HandlerFactory> methods_;
  /// Speculation-budget gauge: live branches whose value_status is still
  /// kUnknown. Tier caps are compared against it in try_acquire_spec_token.
  std::atomic<std::int64_t> spec_inflight_{0};
  /// Per-method QoS classes. qos_any_ short-circuits the common
  /// nothing-configured case so the call hot path skips the lock entirely.
  mutable std::shared_mutex qos_mu_;
  std::unordered_map<std::string, QosClass> qos_;
  std::atomic<bool> qos_any_{false};
  std::atomic<CallId> next_call_id_{1};
  std::atomic<std::uint64_t> next_debug_id_{1};
  std::shared_ptr<TransitionObserver> observer_;  // std::atomic_load/store
  std::atomic<bool> stopping_{false};
};

/// Execution context passed to callbacks; also constructible on the server
/// side. Wraps the implicit current-node context.
class SpecContext {
 public:
  SpecContext(SpecEngine& engine, SpecNode::Ptr node)
      : engine_(engine), node_(std::move(node)) {}

  SpecFuturePtr call(const Address& dst, const std::string& method,
                     ValueList args, ValueList predictions = {},
                     CallbackFactory factory = nullptr) {
    return engine_.call(dst, method, std::move(args), std::move(predictions),
                        std::move(factory));
  }

  SpecFuturePtr call_quorum(const std::vector<Address>& dsts, int quorum,
                            const std::string& method, ValueList args,
                            Combiner combiner, CallbackFactory factory) {
    return engine_.call_quorum(dsts, quorum, method, std::move(args),
                               std::move(combiner), std::move(factory));
  }

  SpecFuturePtr call_quorum(const std::vector<Address>& dsts, int quorum,
                            const std::string& method, ValueList args,
                            ValueList predictions, Combiner combiner,
                            CallbackFactory factory) {
    return engine_.call_quorum(dsts, quorum, method, std::move(args),
                               std::move(predictions), std::move(combiner),
                               std::move(factory));
  }

  void spec_block() { engine_.spec_block(); }
  bool speculative() const { return engine_.speculative(); }
  void set_rollback(std::function<void()> rollback) {
    engine_.set_rollback(std::move(rollback));
  }

  SpecEngine& engine() { return engine_; }
  const SpecNode::Ptr& node() const { return node_; }

 private:
  SpecEngine& engine_;
  SpecNode::Ptr node_;
};

/// Server-side view of one incoming RPC (the paper's RPC object surface).
/// Handlers (and callbacks that captured the ServerCallPtr) use it to return
/// predictions and the actual result.
class ServerCall : public std::enable_shared_from_this<ServerCall> {
 public:
  ServerCall(SpecEngine& engine, CallId id, Address caller, std::string method,
             ValueList args, SpecNode::Ptr mirror)
      : engine_(engine),
        id_(id),
        caller_(std::move(caller)),
        method_(std::move(method)),
        args_(std::move(args)),
        mirror_(std::move(mirror)) {}

  const ValueList& args() const { return args_; }
  const std::string& method() const { return method_; }
  const Address& caller() const { return caller_; }
  CallId call_id() const { return id_; }

  /// Sends a predicted return value to the caller mid-execution (§2.1
  /// specReturn). Throws SpeculationAbandoned from a dead branch.
  void spec_return(Value prediction);

  /// Provides the RPC's return value. Sent to the caller as the actual
  /// response once the producing computation is value-resolved; until then
  /// it travels as a predicted response (Figure 3b, steps 5 and 9).
  /// Silently ignored from an abandoned branch.
  void finish(Value result);

  /// Fails the call (actual error response; never sent speculatively).
  void fail(std::string error);

  /// Simulates `work` of service time before finish(result). The execution
  /// context is captured now, so speculation semantics match finish().
  void finish_after(Duration work, Value result);

  // Speculative operations, delegated to the engine's implicit context.
  SpecFuturePtr call(const Address& dst, const std::string& method,
                     ValueList args, ValueList predictions = {},
                     CallbackFactory factory = nullptr) {
    return engine_.call(dst, method, std::move(args), std::move(predictions),
                        std::move(factory));
  }
  void spec_block() { engine_.spec_block(); }
  bool speculative() const { return engine_.speculative(); }
  void set_rollback(std::function<void()> rollback) {
    engine_.set_rollback(std::move(rollback));
  }

  SpecEngine& engine() { return engine_; }

 private:
  friend class SpecEngine;

  SpecEngine& engine_;
  CallId id_;
  Address caller_;
  std::string method_;
  ValueList args_;
  SpecNode::Ptr mirror_;
};

}  // namespace srpc::spec
