// Speculative states (paper §3.1, Figure 5).
#pragma once

#include <cstdint>
#include <string>

namespace srpc::spec {

/// The speculation status of a callback or RPC object.
///
/// RPC (call) objects use: kCallerSpeculative -> {kCorrect, kIncorrect},
/// starting at kCorrect when the caller is not speculative (Figure 5a).
/// Callback objects additionally use kCalleeSpeculative while running on a
/// predicted — not yet validated — return value (Figure 5b).
enum class SpecState : std::uint8_t {
  kCallerSpeculative = 0,
  kCalleeSpeculative = 1,
  kCorrect = 2,    // "speculation correct"   (terminal)
  kIncorrect = 3,  // "speculation incorrect" (terminal)
};

/// Terminal states are *sticky*: once a node reaches kCorrect/kIncorrect it
/// never transitions again. The engine relies on this to read node state
/// lock-free (an atomic load that observes a terminal state can trust it
/// forever; see node.h).
inline bool is_terminal(SpecState s) {
  return s == SpecState::kCorrect || s == SpecState::kIncorrect;
}

inline const char* to_string(SpecState s) {
  switch (s) {
    case SpecState::kCallerSpeculative:
      return "CallerSpeculative";
    case SpecState::kCalleeSpeculative:
      return "CalleeSpeculative";
    case SpecState::kCorrect:
      return "SpeculationCorrect";
    case SpecState::kIncorrect:
      return "SpeculationIncorrect";
  }
  return "?";
}

/// Whether a callback's input value (the RPC return value it ran with) has
/// been validated against the actual RPC result yet.
enum class ValueStatus : std::uint8_t {
  kUnknown = 0,    // ran on a prediction; actual result not yet compared
  kCorrect = 1,    // ran on the actual value, or the prediction matched it
  kIncorrect = 2,  // the prediction did not match the actual value
};

}  // namespace srpc::spec
