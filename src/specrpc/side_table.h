// SpecSideTable — speculative state outside callback objects, §3.5.2.
//
// "An application can optionally install a rollback function for
//  mis-speculation in a callback or RPC. ... This enables an application to
//  extend its speculative states beyond the fields inside a callback or RPC
//  object. For example, an application can store speculative states in a
//  local database and issue a rollback for a mis-speculation."
//
// SpecSideTable is that "local database" with the rollback wired up
// automatically: a put() from a speculative computation records an undo
// entry and registers a rollback with the current execution context; if the
// branch is abandoned the previous value is restored. Puts from
// non-speculative contexts are plain writes.
//
// Limitations (documented, matching the paper's advisory model): undo is
// per-branch last-writer-wins; two *concurrent speculative branches* writing
// the same key still race, exactly like any shared mutable state under the
// advisory model — prefer callback-object state for branch-parallel data.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "specrpc/engine.h"

namespace srpc::spec {

class SpecSideTable {
 public:
  explicit SpecSideTable(SpecEngine& engine) : engine_(engine) {}

  /// Writes key=value. From a speculative context, registers a rollback
  /// restoring the previous state of `key` if this branch is abandoned.
  void put(const std::string& key, Value value) {
    std::optional<Value> previous;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = data_.find(key);
      if (it != data_.end()) previous = it->second;
      data_[key] = std::move(value);
    }
    if (engine_.speculative()) {
      engine_.set_rollback([this, key, previous] {
        std::lock_guard<std::mutex> lock(mu_);
        if (previous.has_value()) {
          data_[key] = *previous;
        } else {
          data_.erase(key);
        }
      });
    }
  }

  std::optional<Value> get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  void erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    data_.erase(key);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_.size();
  }

 private:
  SpecEngine& engine_;
  mutable std::mutex mu_;
  std::map<std::string, Value> data_;
};

}  // namespace srpc::spec
