// SpecSideTable — speculative state outside callback objects, §3.5.2.
//
// "An application can optionally install a rollback function for
//  mis-speculation in a callback or RPC. ... This enables an application to
//  extend its speculative states beyond the fields inside a callback or RPC
//  object. For example, an application can store speculative states in a
//  local database and issue a rollback for a mis-speculation."
//
// SpecSideTable is that "local database" with the rollback wired up
// automatically: a put() from a speculative computation records an undo
// entry and registers a rollback with the current execution context; if the
// branch is abandoned the previous value is restored. Puts from
// non-speculative contexts are plain writes.
//
// Concurrency: the table is lock-striped by key hash, matching the engine's
// shard discipline (DESIGN.md §6) — branches touching disjoint keys never
// contend, and rollbacks (which run outside all engine locks) only take the
// one stripe their key hashes to.
//
// Limitations (documented, matching the paper's advisory model): undo is
// per-branch last-writer-wins; two *concurrent speculative branches* writing
// the same key still race, exactly like any shared mutable state under the
// advisory model — prefer callback-object state for branch-parallel data.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "specrpc/engine.h"

namespace srpc::spec {

class SpecSideTable {
 public:
  explicit SpecSideTable(SpecEngine& engine) : engine_(engine) {}

  /// Writes key=value. From a speculative context, registers a rollback
  /// restoring the previous state of `key` if this branch is abandoned.
  void put(const std::string& key, Value value) {
    Stripe& stripe = stripe_of(key);
    std::optional<Value> previous;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      auto it = stripe.data.find(key);
      if (it != stripe.data.end()) previous = it->second;
      stripe.data[key] = std::move(value);
    }
    if (engine_.speculative()) {
      engine_.set_rollback([this, key, previous] {
        Stripe& s = stripe_of(key);
        std::lock_guard<std::mutex> lock(s.mu);
        if (previous.has_value()) {
          s.data[key] = *previous;
        } else {
          s.data.erase(key);
        }
      });
    }
  }

  std::optional<Value> get(const std::string& key) const {
    const Stripe& stripe = stripe_of(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.data.find(key);
    if (it == stripe.data.end()) return std::nullopt;
    return it->second;
  }

  void erase(const std::string& key) {
    Stripe& stripe = stripe_of(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.data.erase(key);
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      total += stripe.data.size();
    }
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, Value> data;
  };

  Stripe& stripe_of(const std::string& key) {
    return stripes_[std::hash<std::string>{}(key) % kStripes];
  }
  const Stripe& stripe_of(const std::string& key) const {
    return stripes_[std::hash<std::string>{}(key) % kStripes];
  }

  SpecEngine& engine_;
  std::array<Stripe, kStripes> stripes_;
};

}  // namespace srpc::spec
