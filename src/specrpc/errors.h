// SpecRPC error types (paper §3.3, §3.5.2).
#pragma once

#include <stdexcept>

namespace srpc::spec {

/// Base class for SpecRPC framework errors.
class SpecRpcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown out of specBlock() when the blocking computation turns out to be
/// based on an incorrect speculation ("the specBlock function will throw a
/// mis-speculation exception", §3.5.2).
class MisspeculationError : public SpecRpcError {
 public:
  MisspeculationError() : SpecRpcError("speculation was incorrect") {}
};

/// Thrown when an abandoned (speculation-incorrect) callback or RPC attempts
/// a further framework operation — issuing an RPC, returning a prediction,
/// or blocking (§3.3: "SpecRPC immediately terminates these callbacks and
/// RPCs if they attempt to perform further speculative operations").
/// The framework's run() wrappers swallow this exception; user code should
/// let it propagate.
class SpeculationAbandoned : public SpecRpcError {
 public:
  SpeculationAbandoned() : SpecRpcError("speculative branch abandoned") {}
};

}  // namespace srpc::spec
