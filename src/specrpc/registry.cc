#include "specrpc/registry.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace srpc::spec {

void Registry::publish(const RpcSignature& sig, const Address& address) {
  publish(sig, address, QosClass{});
}

void Registry::publish(const RpcSignature& sig, const Address& address,
                       QosClass qos) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[sig.qualified()] = Entry{address, sig.arity, qos};
}

std::optional<Registry::Entry> Registry::lookup(
    const std::string& qualified_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(qualified_name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

SpecStub Registry::bind(SpecEngine& engine, const RpcSignature& sig) const {
  auto entry = lookup(sig.qualified());
  if (!entry) {
    throw std::out_of_range("no registry entry for " + sig.qualified());
  }
  RpcSignature resolved = sig;
  if (resolved.arity < 0) resolved.arity = entry->arity;
  return SpecStub(engine, entry->address, std::move(resolved));
}

SpecStub Registry::bind(SpecEngine& engine, const std::string& host_class,
                        const std::string& method) const {
  return bind(engine, RpcSignature{host_class, method, -1});
}

void Registry::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write registry file " + path);
  out << "# SpecRPC signature registry: "
         "<name> <address> <arity> [priority] [deadline-ms]\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    out << name << " " << entry.address << " " << entry.arity << " "
        << static_cast<int>(entry.qos.priority) << " "
        << std::chrono::duration_cast<std::chrono::milliseconds>(
               entry.qos.deadline)
               .count()
        << "\n";
  }
}

void Registry::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read registry file " + path);
  std::string line;
  std::lock_guard<std::mutex> lock(mu_);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name;
    Entry entry;
    if (fields >> name >> entry.address >> entry.arity) {
      // Optional QoS columns (pre-QoS files simply stop after arity).
      int priority = static_cast<int>(QosPriority::kNormal);
      long long deadline_ms = 0;
      if (fields >> priority) {
        if (priority < 0 ||
            priority >= static_cast<int>(kNumQosPriorities)) {
          priority = static_cast<int>(QosPriority::kNormal);
        }
        entry.qos.priority = static_cast<QosPriority>(priority);
        if (fields >> deadline_ms && deadline_ms > 0) {
          entry.qos.deadline = std::chrono::milliseconds(deadline_ms);
        }
      }
      entries_[name] = entry;
    }
  }
}

void Registry::apply_qos(SpecEngine& engine) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    engine.set_method_qos(name, entry.qos);
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace srpc::spec
