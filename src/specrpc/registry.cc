#include "specrpc/registry.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace srpc::spec {

void Registry::publish(const RpcSignature& sig, const Address& address) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[sig.qualified()] = Entry{address, sig.arity};
}

std::optional<Registry::Entry> Registry::lookup(
    const std::string& qualified_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(qualified_name);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

SpecStub Registry::bind(SpecEngine& engine, const RpcSignature& sig) const {
  auto entry = lookup(sig.qualified());
  if (!entry) {
    throw std::out_of_range("no registry entry for " + sig.qualified());
  }
  RpcSignature resolved = sig;
  if (resolved.arity < 0) resolved.arity = entry->arity;
  return SpecStub(engine, entry->address, std::move(resolved));
}

SpecStub Registry::bind(SpecEngine& engine, const std::string& host_class,
                        const std::string& method) const {
  return bind(engine, RpcSignature{host_class, method, -1});
}

void Registry::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write registry file " + path);
  out << "# SpecRPC signature registry: <name> <address> <arity>\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    out << name << " " << entry.address << " " << entry.arity << "\n";
  }
}

void Registry::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read registry file " + path);
  std::string line;
  std::lock_guard<std::mutex> lock(mu_);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name;
    Entry entry;
    if (fields >> name >> entry.address >> entry.arity) {
      entries_[name] = entry;
    }
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace srpc::spec
