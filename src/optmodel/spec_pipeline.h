// SpecPipeline — the §4.2 multi-objective-optimizer application as a
// reusable library over SpecRPC.
//
// A pipeline is a series of dependent optimization stages deployed on a
// group of servers ("each OP can be registered as an RPC function, and the
// OPs can be deployed on a group of server nodes"). While a stage's
// optimizer runs, it specReturns its *current best solution* at a
// configurable hand-off time; downstream stages start speculatively on it.
// If the optimizer had already converged by hand-off, the prediction is
// correct and the stages overlap; otherwise SpecRPC re-executes downstream.
//
// The simulated optimizer draws its convergence time from the exponential
// model behind Figure 7: P(hand-off correct) = 1 - exp(-lambda * t / T).
// run_pipeline() reports measured latency and hit statistics, so tests and
// the ablation bench can check the empirical behaviour against the
// analytical optmodel (model.h).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "specrpc/engine.h"
#include "transport/sim_network.h"

namespace srpc::opt {

struct PipelineConfig {
  int stages = 3;
  Duration stage_time = std::chrono::milliseconds(40);  // T (equal stages)
  double lambda_per_T = 3.0;   // convergence rate of Figure 7's model
  double handoff_fraction = 0.3;  // t / T
  std::uint64_t seed = 1;
};

struct PipelineResult {
  Value solution;
  Duration latency{};
  std::uint64_t predictions_made = 0;
  std::uint64_t predictions_correct = 0;

  double hit_rate() const {
    return predictions_made > 0
               ? static_cast<double>(predictions_correct) /
                     static_cast<double>(predictions_made)
               : 0.0;
  }
};

/// Self-contained harness: builds client + one engine per stage on a
/// SimNetwork and runs `rounds` sequential pipeline executions.
class SpecPipeline {
 public:
  explicit SpecPipeline(PipelineConfig config);
  ~SpecPipeline();

  /// Runs the whole chain once with input x; stage i computes
  /// f_i(x) = 2*x + i (a pure function, so "the optimal solution" is
  /// well-defined and predictions can be validated exactly).
  PipelineResult run_once(std::int64_t input);

  /// Mean over `rounds` runs (aggregating hit statistics).
  PipelineResult run(int rounds);

  /// The closed-form final value for `input` (for tests).
  std::int64_t expected_solution(std::int64_t input) const;

  const PipelineConfig& config() const { return config_; }

 private:
  spec::CallbackFactory stage_factory(int next_stage);

  PipelineConfig config_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<spec::SpecEngine> client_;
  std::vector<std::unique_ptr<spec::SpecEngine>> servers_;
  std::unique_ptr<Rng> rng_;  // convergence draws (server side)
  std::mutex rng_mu_;
};

}  // namespace srpc::opt
