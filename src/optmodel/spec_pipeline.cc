#include "optmodel/spec_pipeline.h"

#include <cmath>

#include "optmodel/model.h"

namespace srpc::opt {

using spec::CallbackFn;
using spec::CallbackResult;
using spec::Handler;
using spec::ServerCallPtr;
using spec::SpecContext;
using spec::SpecEngine;

SpecPipeline::SpecPipeline(PipelineConfig config) : config_(config) {
  SimConfig sim_config;
  sim_config.executor_threads = 8;
  sim_config.default_delay = std::chrono::microseconds(100);
  sim_config.seed = config_.seed;
  net_ = std::make_unique<SimNetwork>(sim_config);
  client_ = std::make_unique<SpecEngine>(net_->add_node("client"),
                                         net_->executor(), net_->wheel());
  rng_ = std::make_unique<Rng>(config_.seed * 31 + 7);

  for (int s = 0; s < config_.stages; ++s) {
    auto engine = std::make_unique<SpecEngine>(
        net_->add_node("opt" + std::to_string(s)), net_->executor(),
        net_->wheel());
    engine->register_method(
        "solve", Handler([this, s](const ServerCallPtr& call) {
          const std::int64_t input = call->args().at(0).as_int();
          const std::int64_t optimum = input * 2 + s;
          // Convergence time ~ Exp(lambda/T): the current best equals the
          // optimum iff the optimizer converged before the hand-off.
          double converge_fraction;
          {
            std::lock_guard<std::mutex> lock(rng_mu_);
            converge_fraction = rng_->exponential(1.0 / config_.lambda_per_T);
          }
          const bool converged =
              converge_fraction <= config_.handoff_fraction;
          const std::int64_t best = converged ? optimum : optimum - 1;
          const auto handoff = std::chrono::duration_cast<Duration>(
              config_.stage_time * config_.handoff_fraction);
          call->engine().wheel().schedule_after(handoff, [call, best] {
            try {
              call->spec_return(Value(best));
            } catch (const spec::SpeculationAbandoned&) {
            }
          });
          call->finish_after(config_.stage_time, Value(optimum));
        }));
    servers_.push_back(std::move(engine));
  }
}

SpecPipeline::~SpecPipeline() {
  client_->begin_shutdown();
  for (auto& server : servers_) server->begin_shutdown();
  net_->executor().shutdown();
}

spec::CallbackFactory SpecPipeline::stage_factory(int next_stage) {
  return [this, next_stage]() -> CallbackFn {
    return [this, next_stage](SpecContext& ctx,
                              const Value& solution) -> CallbackResult {
      if (next_stage >= config_.stages) return solution;
      return ctx.call("opt" + std::to_string(next_stage), "solve",
                      spec::make_args(solution.as_int()), {},
                      stage_factory(next_stage + 1));
    };
  };
}

std::int64_t SpecPipeline::expected_solution(std::int64_t input) const {
  std::int64_t x = input;
  for (int s = 0; s < config_.stages; ++s) x = x * 2 + s;
  return x;
}

PipelineResult SpecPipeline::run_once(std::int64_t input) {
  const auto before = client_->stats();
  const TimePoint t0 = Clock::now();
  auto future = client_->call("opt0", "solve", spec::make_args(input), {},
                              stage_factory(1));
  PipelineResult result;
  result.solution = future->get();
  result.latency = Clock::now() - t0;
  const auto after = client_->stats();
  result.predictions_made = after.predictions_made - before.predictions_made;
  result.predictions_correct =
      after.predictions_correct - before.predictions_correct;
  return result;
}

PipelineResult SpecPipeline::run(int rounds) {
  PipelineResult total;
  Duration latency_sum{};
  for (int i = 0; i < rounds; ++i) {
    PipelineResult one = run_once(i);
    latency_sum += one.latency;
    total.predictions_made += one.predictions_made;
    total.predictions_correct += one.predictions_correct;
    total.solution = one.solution;
  }
  total.latency = latency_sum / std::max(1, rounds);
  return total;
}

}  // namespace srpc::opt
