#include "optmodel/model.h"

#include <cmath>

namespace srpc::opt {

double exp_prediction_rate(double lambda_per_T, double t, double T) {
  return 1.0 - std::exp(-lambda_per_T * t / T);
}

double stage_cost(double lambda_per_T, double t, double T) {
  return exp_prediction_rate(lambda_per_T, t, T) * (t - T) + T;
}

double optimal_handoff(double lambda_per_T, double T) {
  double lo = 0.0;
  double hi = T;
  for (int i = 0; i < 200; ++i) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (stage_cost(lambda_per_T, m1, T) < stage_cost(lambda_per_T, m2, T)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return (lo + hi) / 2.0;
}

double equation5_lhs(double lambda_per_T, double t, double T) {
  const double lam = lambda_per_T / T;  // absolute rate
  return 1.0 + std::exp(-lam * t) * (lam * (t - T) - 1.0);
}

double t_new(int stages, double lambda_per_T, double t, double T) {
  if (stages <= 1) return T;
  return (stages - 1) * stage_cost(lambda_per_T, t, T) + T;
}

double t_old(int stages, double T) { return stages * T; }

double speedup(int stages, double lambda_per_T, double t, double T) {
  return t_old(stages, T) / t_new(stages, lambda_per_T, t, T);
}

double max_speedup(int stages, double lambda_per_T, double T) {
  const double t = optimal_handoff(lambda_per_T, T);
  return speedup(stages, lambda_per_T, t, T);
}

double t_new_fixed_p(int stages, double p, double T) {
  if (stages <= 1) return T;
  return (stages - 1) * (1.0 - p) * T + T;
}

double speculation_benefit(double p, double misspec_cost, double T) {
  return p * T - (1.0 - p) * misspec_cost * T;
}

double break_even_accuracy(double misspec_cost) {
  if (misspec_cost <= 0.0) return 0.0;
  return misspec_cost / (1.0 + misspec_cost);
}

double max_speedup_general(const std::vector<Stage>& stages) {
  if (stages.empty()) return 1.0;
  double old_time = 0.0;
  for (const auto& s : stages) old_time += s.T;
  // Equation (2): per-stage terms are independent; the last stage always
  // costs T_n.
  double new_time = stages.back().T;
  for (std::size_t i = 0; i + 1 < stages.size(); ++i) {
    const auto& s = stages[i];
    const double t = optimal_handoff(s.lambda_per_T, s.T);
    new_time += stage_cost(s.lambda_per_T, t, s.T);
  }
  return old_time / new_time;
}

}  // namespace srpc::opt
