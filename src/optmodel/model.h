// Multi-objective optimizer speedup model (paper §4.2, Equations (1)-(5)).
//
// n dependent optimization stages run on n*N CPUs. Without speculation the
// stages run sequentially, each using all n*N CPUs: T_old = sum_j g_j(n*N).
// With speculation, stage i hands its current best solution to stage i+1 at
// time t_i; the hand-off is a correct prediction with probability
// P_i = f_i(t_i). Expected completion (Equation 1, solved as Equation 2):
//
//   T_new = sum_{i<n} [ P_i * (t_i - T_i) + T_i ] + T_n
//
// The per-stage terms are independent, so the optimal t_i minimizes
// h_i(t) = P_i(t) * (t - T_i) + T_i on [0, T_i].
//
// The paper's illustration (Figure 7) uses equal stages (T_i = T, enough
// CPUs that g(N) ~ g(nN)) and an exponential convergence model
// P(t) = 1 - exp(-lambda * t), lambda in units of 1/T; the optimal t solves
// Equation (5): 1 + exp(-lambda*t0) * (lambda*(t0 - T) - 1) = 0.
#pragma once

#include <functional>
#include <vector>

namespace srpc::opt {

/// P(t) = 1 - exp(-lambda_per_T * t / T): exponential convergence.
double exp_prediction_rate(double lambda_per_T, double t, double T);

/// h(t) = P(t)*(t - T) + T — expected cost of one speculated stage.
double stage_cost(double lambda_per_T, double t, double T);

/// argmin_{t in [0,T]} h(t) via ternary search (h is unimodal there).
double optimal_handoff(double lambda_per_T, double T);

/// Left-hand side of Equation (5); zero at the optimal hand-off time.
double equation5_lhs(double lambda_per_T, double t, double T);

/// T_new for n equal stages with per-stage hand-off time t (Equation 2).
double t_new(int stages, double lambda_per_T, double t, double T = 1.0);

/// T_old = n*T (equal stages, negligible CPU-scaling difference).
double t_old(int stages, double T = 1.0);

/// Speedup with per-stage hand-off t.
double speedup(int stages, double lambda_per_T, double t, double T = 1.0);

/// max_t speedup — one point of Figure 7.
double max_speedup(int stages, double lambda_per_T, double T = 1.0);

/// Generalized, unequal stages: T_i and lambda_i per stage.
struct Stage {
  double T = 1.0;
  double lambda_per_T = 1.0;
};
double max_speedup_general(const std::vector<Stage>& stages);

// ---- Fixed-accuracy specialization (online adaptive speculation) ----
//
// Client-side predictions are available *before* the call is issued, i.e.
// hand-off at t = 0, and the prediction rate P is not the exponential model
// but an accuracy measured online. Equation (2) then degenerates to
//   T_new = (n-1) * [P*(0 - T) + T] + T = (n-1)*(1-P)*T + T
// These are what predict::AdaptiveSpeculationController evaluates per call.

/// Expected completion of an n-call dependent chain, unit-T calls, when
/// every call speculates on a prediction of accuracy p (Equation (2) with
/// t = 0 and constant P = p).
double t_new_fixed_p(int stages, double p, double T = 1.0);

/// Expected net benefit (time saved vs. the sequential chain) of
/// speculating one call at accuracy p, charging `misspec_cost` (in units of
/// T) for each incorrect speculation's wasted work:
///   benefit(p) = p*T - (1-p)*misspec_cost*T
double speculation_benefit(double p, double misspec_cost, double T = 1.0);

/// The break-even accuracy: speculation_benefit(p*, misspec_cost) == 0,
/// i.e. p* = misspec_cost / (1 + misspec_cost). The adaptive controller
/// centres its hysteresis band on this threshold.
double break_even_accuracy(double misspec_cost);

}  // namespace srpc::opt
