// Multi-objective optimizer speedup model (paper §4.2, Equations (1)-(5)).
//
// n dependent optimization stages run on n*N CPUs. Without speculation the
// stages run sequentially, each using all n*N CPUs: T_old = sum_j g_j(n*N).
// With speculation, stage i hands its current best solution to stage i+1 at
// time t_i; the hand-off is a correct prediction with probability
// P_i = f_i(t_i). Expected completion (Equation 1, solved as Equation 2):
//
//   T_new = sum_{i<n} [ P_i * (t_i - T_i) + T_i ] + T_n
//
// The per-stage terms are independent, so the optimal t_i minimizes
// h_i(t) = P_i(t) * (t - T_i) + T_i on [0, T_i].
//
// The paper's illustration (Figure 7) uses equal stages (T_i = T, enough
// CPUs that g(N) ~ g(nN)) and an exponential convergence model
// P(t) = 1 - exp(-lambda * t), lambda in units of 1/T; the optimal t solves
// Equation (5): 1 + exp(-lambda*t0) * (lambda*(t0 - T) - 1) = 0.
#pragma once

#include <functional>
#include <vector>

namespace srpc::opt {

/// P(t) = 1 - exp(-lambda_per_T * t / T): exponential convergence.
double exp_prediction_rate(double lambda_per_T, double t, double T);

/// h(t) = P(t)*(t - T) + T — expected cost of one speculated stage.
double stage_cost(double lambda_per_T, double t, double T);

/// argmin_{t in [0,T]} h(t) via ternary search (h is unimodal there).
double optimal_handoff(double lambda_per_T, double T);

/// Left-hand side of Equation (5); zero at the optimal hand-off time.
double equation5_lhs(double lambda_per_T, double t, double T);

/// T_new for n equal stages with per-stage hand-off time t (Equation 2).
double t_new(int stages, double lambda_per_T, double t, double T = 1.0);

/// T_old = n*T (equal stages, negligible CPU-scaling difference).
double t_old(int stages, double T = 1.0);

/// Speedup with per-stage hand-off t.
double speedup(int stages, double lambda_per_T, double t, double T = 1.0);

/// max_t speedup — one point of Figure 7.
double max_speedup(int stages, double lambda_per_T, double T = 1.0);

/// Generalized, unequal stages: T_i and lambda_i per stage.
struct Stage {
  double T = 1.0;
  double lambda_per_T = 1.0;
};
double max_speedup_general(const std::vector<Stage>& stages);

}  // namespace srpc::opt
