// GrpcSim — the gRPC stand-in baseline.
//
// The paper benchmarks against Google's gRPC. gRPC itself is not part of
// this reproduction; §5.1 attributes exactly two behavioural deltas to it
// relative to TradRPC, and GrpcSim models both directly (DESIGN.md §3):
//
//   1. "gRPC has a more optimized implementation of message serialization
//      than TradRPC" -> GrpcSim uses the compact TaggedCodec (varint/zigzag)
//      instead of TradRPC's fixed-width BinaryCodec, so it uses *less*
//      network bandwidth (Figure 8c).
//   2. "gRPC provides additional features that are not supported by TradRPC
//      and SpecRPC", observed as slightly *higher* latency (Figure 8a) and
//      lower peak throughput (Figure 13) -> GrpcSim charges a configurable
//      per-message processing overhead (default 75 µs per received message,
//      i.e. ~0.15 ms per RPC round trip).
#pragma once

#include <memory>

#include "rpc/node.h"

namespace srpc::grpcsim {

struct GrpcSimConfig {
  Duration per_message_overhead = std::chrono::microseconds(75);
  Duration call_timeout = std::chrono::seconds(30);
  /// Passed through to the underlying rpc::Node (gRPC channels retry
  /// transparently; the sim inherits the same policy knobs).
  RetryPolicy retry;
};

/// A GrpcSim endpoint is a TradRPC engine with the gRPC-flavoured knobs.
class GrpcNode : public rpc::Node {
 public:
  GrpcNode(Transport& transport, Executor& executor, TimerWheel& wheel,
           GrpcSimConfig config = GrpcSimConfig());
};

rpc::NodeConfig to_node_config(const GrpcSimConfig& config);

}  // namespace srpc::grpcsim
