#include "grpcsim/grpcsim.h"

namespace srpc::grpcsim {

rpc::NodeConfig to_node_config(const GrpcSimConfig& config) {
  rpc::NodeConfig node_config;
  node_config.codec = &tagged_codec();
  node_config.per_message_overhead = config.per_message_overhead;
  node_config.call_timeout = config.call_timeout;
  node_config.retry = config.retry;
  return node_config;
}

GrpcNode::GrpcNode(Transport& transport, Executor& executor, TimerWheel& wheel,
                   GrpcSimConfig config)
    : rpc::Node(transport, executor, wheel, to_node_config(config)) {}

}  // namespace srpc::grpcsim
