#include "kvstore/store.h"

namespace srpc::kv {

std::optional<VersionedValue> VersionedStore::get(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void VersionedStore::load(const std::string& key, std::string value,
                          std::int64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  data_[key] = VersionedValue{std::move(value), version};
}

void VersionedStore::load_if_newer(const std::string& key, std::string value,
                                   std::int64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = data_[key];
  if (version > entry.version) {
    entry.value = std::move(value);
    entry.version = version;
  }
}

std::vector<std::tuple<std::string, std::string, std::int64_t>>
VersionedStore::export_if(
    const std::function<bool(const std::string&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::tuple<std::string, std::string, std::int64_t>> out;
  for (const auto& [key, vv] : data_) {
    if (pred(key)) out.emplace_back(key, vv.value, vv.version);
  }
  return out;
}

bool VersionedStore::any_locked_if(
    const std::function<bool(const std::string&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, _] : locks_) {
    if (pred(key)) return true;
  }
  return false;
}

std::size_t VersionedStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size();
}

bool VersionedStore::prepare(TxnId txn,
                             const std::vector<ReadValidation>& reads,
                             const std::vector<WriteOp>& writes) {
  std::lock_guard<std::mutex> lock(mu_);
  // Validate reads: version unchanged and not locked by a concurrent writer.
  for (const auto& r : reads) {
    auto lit = locks_.find(r.key);
    if (lit != locks_.end() && lit->second != txn) return false;
    auto dit = data_.find(r.key);
    const std::int64_t current = dit == data_.end() ? 0 : dit->second.version;
    if (current != r.version) return false;
  }
  // Acquire write locks; no waiting (fail-fast keeps us deadlock-free).
  std::vector<std::string> acquired;
  acquired.reserve(writes.size());
  for (const auto& w : writes) {
    auto [it, inserted] = locks_.emplace(w.key, txn);
    if (!inserted && it->second != txn) {
      for (const auto& k : acquired) locks_.erase(k);
      return false;
    }
    if (inserted) acquired.push_back(w.key);
  }
  auto& held = txn_locks_[txn];
  held.insert(held.end(), acquired.begin(), acquired.end());
  return true;
}

void VersionedStore::commit(TxnId txn, const std::vector<WriteOp>& writes,
                            std::int64_t commit_version) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& w : writes) {
    auto& entry = data_[w.key];
    if (commit_version > entry.version) {
      entry.value = w.value;
      entry.version = commit_version;
    }
  }
  auto it = txn_locks_.find(txn);
  if (it != txn_locks_.end()) {
    for (const auto& k : it->second) {
      auto lit = locks_.find(k);
      if (lit != locks_.end() && lit->second == txn) locks_.erase(lit);
    }
    txn_locks_.erase(it);
  }
}

std::vector<bool> VersionedStore::prepare_batch(
    TxnId batch_id, const std::vector<BatchEntry>& entries) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<bool> votes(entries.size(), false);
  // Keys the yes-voting prefix of the batch will write: reads of these are
  // queue-overlay reads (no store validation), and writes to these never
  // conflict with each other (single owner: batch_id).
  std::unordered_map<std::string, bool> batch_written;
  // Phase A: vote in queue order against store state + overlay. Nothing is
  // locked yet, so a no vote leaves no residue to unwind.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    bool ok = true;
    for (const auto& r : e.reads) {
      if (batch_written.count(r.key) != 0) continue;  // overlay read
      auto lit = locks_.find(r.key);
      if (lit != locks_.end() && lit->second != batch_id) {
        ok = false;
        break;
      }
      auto dit = data_.find(r.key);
      const std::int64_t current =
          dit == data_.end() ? 0 : dit->second.version;
      if (current != r.version) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& w : e.writes) {
        auto lit = locks_.find(w.key);
        if (lit != locks_.end() && lit->second != batch_id) {
          ok = false;
          break;
        }
      }
    }
    votes[i] = ok;
    if (ok) {
      for (const auto& w : e.writes) batch_written.emplace(w.key, true);
    }
  }
  // Phase B: acquire every yes-entry write lock under the batch owner. All
  // were checked free (or already batch-owned) above and the mutex was never
  // released, so acquisition cannot fail.
  auto& held = txn_locks_[batch_id];
  for (const auto& [key, _] : batch_written) {
    auto [it, inserted] = locks_.emplace(key, batch_id);
    (void)it;
    if (inserted) held.push_back(key);
  }
  if (held.empty()) txn_locks_.erase(batch_id);
  return votes;
}

void VersionedStore::commit_batch(TxnId batch_id,
                                  const std::vector<BatchEntry>& entries,
                                  const std::vector<bool>& decisions,
                                  std::int64_t version_base) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i >= decisions.size() || !decisions[i]) continue;
    const auto& e = entries[i];
    const std::int64_t commit_version =
        version_base + static_cast<std::int64_t>(e.txn);
    for (const auto& w : e.writes) {
      auto& entry = data_[w.key];
      if (commit_version > entry.version) {
        entry.value = w.value;
        entry.version = commit_version;
      }
    }
  }
  auto it = txn_locks_.find(batch_id);
  if (it != txn_locks_.end()) {
    for (const auto& k : it->second) {
      auto lit = locks_.find(k);
      if (lit != locks_.end() && lit->second == batch_id) locks_.erase(lit);
    }
    txn_locks_.erase(it);
  }
}

void VersionedStore::abort_batch(TxnId batch_id) { abort(batch_id); }

void VersionedStore::abort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txn_locks_.find(txn);
  if (it == txn_locks_.end()) return;
  for (const auto& k : it->second) {
    auto lit = locks_.find(k);
    if (lit != locks_.end() && lit->second == txn) locks_.erase(lit);
  }
  txn_locks_.erase(it);
}

bool VersionedStore::is_locked(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return locks_.find(key) != locks_.end();
}

std::optional<TxnId> VersionedStore::lock_holder(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = locks_.find(key);
  if (it == locks_.end()) return std::nullopt;
  return it->second;
}

std::size_t VersionedStore::locked_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return locks_.size();
}

}  // namespace srpc::kv
