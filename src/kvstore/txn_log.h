// Asynchronous transaction log (paper §5.2: "our implementation
// asynchronously persists transaction logs to SSDs").
//
// Commit records are appended to an in-memory queue and flushed to disk by
// a background writer, keeping persistence off the commit critical path —
// exactly the paper's design point. The binary record format round-trips
// through replay() so a store can be reconstructed after a crash.
//
// Record layout (little endian):
//   u32 record_len | u64 txn_id | i64 commit_version | u32 num_writes |
//   { u32 key_len | key | u32 value_len | value } * num_writes
#pragma once

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/types.h"
#include "kvstore/store.h"

namespace srpc::kv {

struct CommitRecord {
  TxnId txn = 0;
  std::int64_t commit_version = 0;
  std::vector<WriteOp> writes;
};

class TxnLog {
 public:
  /// Opens (appends to) `path`. Throws on failure.
  explicit TxnLog(const std::string& path);
  ~TxnLog();

  TxnLog(const TxnLog&) = delete;
  TxnLog& operator=(const TxnLog&) = delete;

  /// Enqueues a commit record; returns immediately (asynchronous).
  void append(CommitRecord record);

  /// Group append: enqueues N records with one lock acquisition and one
  /// wake-up. The writer drains them into a single contiguous buffer and
  /// issues one fwrite + one fflush for the whole group, so a batch commit
  /// (or any burst) costs one flush instead of N.
  void append_batch(std::vector<CommitRecord> records);

  /// Blocks until everything appended so far reaches the OS.
  void flush();

  /// Records appended since construction (diagnostic).
  std::uint64_t appended() const;
  std::uint64_t flushed() const;

  /// Reads all complete records from `path`, invoking `fn` per record.
  /// Stops at the first truncated/corrupt record (torn tail after a crash
  /// is expected and not an error). Returns the number of records replayed.
  static std::uint64_t replay(
      const std::string& path,
      const std::function<void(const CommitRecord&)>& fn);

  /// Convenience: replays the log into a store (apply in log order).
  static std::uint64_t recover(const std::string& path,
                               VersionedStore& store);

 private:
  void writer_loop();
  static Bytes encode(const CommitRecord& record);

  std::FILE* file_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<CommitRecord> queue_;
  std::uint64_t appended_ = 0;
  std::uint64_t flushed_ = 0;
  bool stopping_ = false;
  std::thread writer_;
};

}  // namespace srpc::kv
