#include "kvstore/txn_log.h"

#include <stdexcept>

#include "serde/io.h"

namespace srpc::kv {

TxnLog::TxnLog(const std::string& path) {
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open txn log " + path);
  }
  writer_ = std::thread([this] { writer_loop(); });
}

TxnLog::~TxnLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  std::fclose(file_);
}

void TxnLog::append(CommitRecord record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(record));
    appended_++;
  }
  cv_.notify_one();
}

void TxnLog::append_batch(std::vector<CommitRecord> records) {
  if (records.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& record : records) queue_.push_back(std::move(record));
    appended_ += records.size();
  }
  cv_.notify_one();
}

void TxnLog::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t target = appended_;
  cv_.wait(lock, [&] { return flushed_ >= target || stopping_; });
}

std::uint64_t TxnLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::uint64_t TxnLog::flushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_;
}

Bytes TxnLog::encode(const CommitRecord& record) {
  Bytes body;
  Writer w(body);
  w.u64(record.txn);
  w.u64(static_cast<std::uint64_t>(record.commit_version));
  w.u32(static_cast<std::uint32_t>(record.writes.size()));
  for (const auto& write : record.writes) {
    w.str32(write.key);
    w.str32(write.value);
  }
  Bytes framed;
  Writer fw(framed);
  fw.u32(static_cast<std::uint32_t>(body.size()));
  fw.raw(body.data(), body.size());
  return framed;
}

void TxnLog::writer_loop() {
  for (;;) {
    std::deque<CommitRecord> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() && stopping_) return;
      batch.swap(queue_);
    }
    // One contiguous buffer, one fwrite, one fflush for the whole drained
    // group — the per-record write()+flush() pair was the dominant cost of
    // bursty commits (group commit appends whole batches at once).
    Bytes buf;
    for (const auto& record : batch) {
      const Bytes framed = encode(record);
      buf.insert(buf.end(), framed.begin(), framed.end());
    }
    const std::uint64_t written = batch.size();
    if (!buf.empty()) std::fwrite(buf.data(), 1, buf.size(), file_);
    std::fflush(file_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      flushed_ += written;
    }
    cv_.notify_all();
  }
}

std::uint64_t TxnLog::replay(
    const std::string& path,
    const std::function<void(const CommitRecord&)>& fn) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return 0;
  std::uint64_t replayed = 0;
  for (;;) {
    std::uint8_t len_buf[4];
    if (std::fread(len_buf, 1, 4, in) != 4) break;
    Reader len_reader(len_buf, 4);
    const std::uint32_t len = len_reader.u32();
    Bytes body(len);
    if (len > 0 && std::fread(body.data(), 1, len, in) != len) break;  // torn
    try {
      Reader r(body);
      CommitRecord record;
      record.txn = r.u64();
      record.commit_version = static_cast<std::int64_t>(r.u64());
      const std::uint32_t n = r.u32();
      record.writes.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        WriteOp write;
        write.key = r.str32();
        write.value = r.str32();
        record.writes.push_back(std::move(write));
      }
      fn(record);
      replayed++;
    } catch (const DecodeError&) {
      break;  // corrupt tail
    }
  }
  std::fclose(in);
  return replayed;
}

std::uint64_t TxnLog::recover(const std::string& path, VersionedStore& store) {
  return replay(path, [&store](const CommitRecord& record) {
    store.commit(record.txn, record.writes, record.commit_version);
  });
}

}  // namespace srpc::kv
