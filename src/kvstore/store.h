// Versioned in-memory key-value store with 2PC-style write locks.
//
// One VersionedStore instance backs one shard replica of the Replicated
// Commit evaluation (§5.2: "transactional key-value store ... sharded into
// three partitions, with each partition having a replica at every
// datacentre"). Reads return (value, version); prepare acquires per-key
// write locks and validates read versions (OCC-flavoured 2PL, matching RC's
// buffered writes + quorum reads).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace srpc::kv {

using TxnId = std::uint64_t;

struct VersionedValue {
  std::string value;
  std::int64_t version = 0;
};

struct ReadValidation {
  std::string key;
  std::int64_t version = 0;
};

struct WriteOp {
  std::string key;
  std::string value;
};

/// One transaction's footprint on one shard inside a batch (queue-oriented
/// group commit, DESIGN.md §12). `index` is the transaction's global
/// position in the batch (queue order); `txn` is its globally-stamped id,
/// from which every replica derives the same commit version
/// (version_base + txn, the rc convention) without coordination.
struct BatchEntry {
  TxnId txn = 0;
  std::size_t index = 0;
  std::vector<ReadValidation> reads;
  std::vector<WriteOp> writes;
};

class VersionedStore {
 public:
  /// Committed read (ignores uncommitted/locked state; RC buffers writes
  /// until commit, so there is nothing uncommitted to see).
  std::optional<VersionedValue> get(const std::string& key) const;

  /// Direct load used to populate the dataset before a run.
  void load(const std::string& key, std::string value, std::int64_t version);

  /// Version-monotone load: applies only if `version` is newer than the
  /// stored one. State-transfer entries (view.pull) and forwarded applies
  /// land through this, so a racing newer commit is never clobbered.
  void load_if_newer(const std::string& key, std::string value,
                     std::int64_t version);

  /// Snapshot of every (key, value, version) whose key satisfies `pred`,
  /// taken under one lock hold — the export side of shard state transfer.
  std::vector<std::tuple<std::string, std::string, std::int64_t>> export_if(
      const std::function<bool(const std::string&)>& pred) const;

  /// True if any currently write-locked key satisfies `pred`. The transfer
  /// source refuses to export migrating slots until this drains (in-flight
  /// 2PC resolves in the epoch that prepared it).
  bool any_locked_if(const std::function<bool(const std::string&)>& pred) const;

  std::size_t size() const;

  /// 2PC prepare: atomically (a) write-lock every write key, (b) validate
  /// that every read version is still current and none of the read keys is
  /// write-locked by another transaction. On failure nothing stays locked.
  bool prepare(TxnId txn, const std::vector<ReadValidation>& reads,
               const std::vector<WriteOp>& writes);

  /// Applies the writes at `commit_version` and releases txn's locks.
  /// Also called on replicas that voted no but saw the global commit:
  /// versions only move forward.
  void commit(TxnId txn, const std::vector<WriteOp>& writes,
              std::int64_t commit_version);

  /// Releases txn's locks without applying.
  void abort(TxnId txn);

  /// Batch prepare (queue-oriented group commit): validates every entry in
  /// queue order under ONE lock hold and returns a per-entry vote. All write
  /// locks of yes-voting entries are acquired with `batch_id` as the owner,
  /// so intra-batch write-write overlap on a key is not a conflict (queue
  /// order serialises it) and release is a single abort/commit of the batch.
  /// A read whose key was written by an earlier yes-voting entry of the same
  /// batch is satisfied by the queue overlay and skips store validation (the
  /// client resolves such reads from the queue without an RPC; the entry
  /// here is defensive). On a no vote nothing of that entry stays locked.
  std::vector<bool> prepare_batch(TxnId batch_id,
                                  const std::vector<BatchEntry>& entries);

  /// Applies the writes of entries whose `decisions[i]` is true, each at
  /// commit_version = version_base + entry.txn (txn stamps are allocated in
  /// queue order, so versions strictly increase along the batch), then
  /// releases every lock owned by `batch_id`. Entries with a false decision
  /// are skipped but their locks (shared under batch_id) are still released.
  void commit_batch(TxnId batch_id, const std::vector<BatchEntry>& entries,
                    const std::vector<bool>& decisions,
                    std::int64_t version_base);

  /// Releases every lock owned by `batch_id` without applying anything.
  void abort_batch(TxnId batch_id);

  /// True if `key` currently carries a write lock (reads wait on these —
  /// an in-flight commit may be about to apply).
  bool is_locked(const std::string& key) const;

  /// Owner of `key`'s write lock, if any. Recovery hook: fail-fast locks
  /// have no expiry, so an operator (or test) that knows a transaction's
  /// global decision can release a lock whose decide message was lost —
  /// the role RC's per-DC Paxos log plays in the paper's deployment.
  std::optional<TxnId> lock_holder(const std::string& key) const;

  /// Diagnostics.
  std::size_t locked_keys() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, VersionedValue> data_;
  std::unordered_map<std::string, TxnId> locks_;            // key -> owner
  std::unordered_map<TxnId, std::vector<std::string>> txn_locks_;
};

}  // namespace srpc::kv
