// Dynamic value type used for RPC arguments and return values.
//
// The original SpecRPC is a Java framework whose RPC payloads are Objects
// described by runtime signatures. We mirror that with a small dynamic Value
// (null / bool / int64 / double / string / bytes / list / map), which keeps
// the method registry, the wire protocol, and prediction comparison
// (deep equality) simple. Typed convenience wrappers live in the RPC layers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"

namespace srpc {

class Value;
using ValueList = std::vector<Value>;
using ValueMap = std::map<std::string, Value>;

/// Thrown by checked accessors on type mismatch.
class ValueTypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull = 0,
    kBool = 1,
    kInt = 2,
    kDouble = 3,
    kString = 4,
    kBytes = 5,
    kList = 6,
    kMap = 7,
  };

  Value() : v_(std::monostate{}) {}
  Value(std::nullptr_t) : v_(std::monostate{}) {}  // NOLINT(runtime/explicit)
  Value(bool b) : v_(b) {}                         // NOLINT(runtime/explicit)
  Value(std::int64_t i) : v_(i) {}                 // NOLINT(runtime/explicit)
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : v_(d) {}                       // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}       // NOLINT(runtime/explicit)
  Value(const char* s) : v_(std::string(s)) {}     // NOLINT(runtime/explicit)
  Value(Bytes b) : v_(std::move(b)) {}             // NOLINT(runtime/explicit)
  Value(ValueList l) : v_(std::move(l)) {}         // NOLINT(runtime/explicit)
  Value(ValueMap m) : v_(std::move(m)) {}          // NOLINT(runtime/explicit)

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const { return get<std::int64_t>("int"); }
  double as_double() const { return get<double>("double"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const Bytes& as_bytes() const { return get<Bytes>("bytes"); }
  const ValueList& as_list() const { return get<ValueList>("list"); }
  const ValueMap& as_map() const { return get<ValueMap>("map"); }

  ValueList& mutable_list() { return get_mut<ValueList>("list"); }
  ValueMap& mutable_map() { return get_mut<ValueMap>("map"); }

  /// Destructive move-out accessors for the heap-backed alternatives: the
  /// payload is moved to the caller and the Value keeps a valid but empty
  /// container of the same type. Dispatch paths use these to hand decoded
  /// arguments/results onward without deep-copying. Type errors throw
  /// ValueTypeError, same as the as_*() family.
  std::string take_string() {
    return std::move(get_mut<std::string>("string"));
  }
  Bytes take_bytes() { return std::move(get_mut<Bytes>("bytes")); }
  ValueList take_list() { return std::move(get_mut<ValueList>("list")); }
  ValueMap take_map() { return std::move(get_mut<ValueMap>("map")); }

  /// Deep structural equality — this is what decides whether a prediction
  /// was correct (paper §3.3).
  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Deterministic ordering so Values can key ordered containers.
  friend bool operator<(const Value& a, const Value& b) { return a.v_ < b.v_; }

  /// Human-readable rendering for logs and test diagnostics.
  std::string to_string() const;

  /// Rough in-memory footprint (used by byte-accounting sanity checks).
  std::size_t approx_size() const;

 private:
  template <typename T>
  const T& get(const char* want) const {
    if (const T* p = std::get_if<T>(&v_)) return *p;
    throw ValueTypeError(std::string("Value is not a ") + want +
                         " (actual type index " +
                         std::to_string(v_.index()) + ")");
  }
  template <typename T>
  T& get_mut(const char* want) {
    if (T* p = std::get_if<T>(&v_)) return *p;
    throw ValueTypeError(std::string("Value is not a ") + want);
  }

  std::variant<std::monostate, bool, std::int64_t, double, std::string, Bytes,
               ValueList, ValueMap>
      v_;
};

/// Convenience builder: vlist(1, "a", 2.5) -> Value list.
template <typename... Args>
Value vlist(Args&&... args) {
  ValueList list;
  list.reserve(sizeof...(args));
  (list.emplace_back(Value(std::forward<Args>(args))), ...);
  return Value(std::move(list));
}

}  // namespace srpc
