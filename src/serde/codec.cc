#include "serde/codec.h"

#include "serde/io.h"

namespace srpc {

Value Codec::decode(const Bytes& in) const {
  Reader r(in);
  Value v = decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after value");
  return v;
}

// ---------------------------------------------------------------- Binary

void BinaryCodec::encode(const Value& v, Bytes& out) const {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case Value::Type::kNull:
      break;
    case Value::Type::kBool:
      w.u8(v.as_bool() ? 1 : 0);
      break;
    case Value::Type::kInt:
      w.u64(static_cast<std::uint64_t>(v.as_int()));
      break;
    case Value::Type::kDouble:
      w.f64(v.as_double());
      break;
    case Value::Type::kString:
      w.str32(v.as_string());
      break;
    case Value::Type::kBytes: {
      const Bytes& b = v.as_bytes();
      w.u32(static_cast<std::uint32_t>(b.size()));
      w.raw(b.data(), b.size());
      break;
    }
    case Value::Type::kList: {
      const ValueList& l = v.as_list();
      w.u32(static_cast<std::uint32_t>(l.size()));
      for (const auto& e : l) encode(e, out);
      break;
    }
    case Value::Type::kMap: {
      const ValueMap& m = v.as_map();
      w.u32(static_cast<std::uint32_t>(m.size()));
      for (const auto& [k, e] : m) {
        w.str32(k);
        encode(e, out);
      }
      break;
    }
  }
}

Value BinaryCodec::decode(Reader& in) const {
  const auto type = static_cast<Value::Type>(in.u8());
  switch (type) {
    case Value::Type::kNull:
      return Value();
    case Value::Type::kBool:
      return Value(in.u8() != 0);
    case Value::Type::kInt:
      return Value(static_cast<std::int64_t>(in.u64()));
    case Value::Type::kDouble:
      return Value(in.f64());
    case Value::Type::kString:
      return Value(in.str32());
    case Value::Type::kBytes: {
      const std::uint32_t len = in.u32();
      return Value(in.bytes(len));
    }
    case Value::Type::kList: {
      const std::uint32_t n = in.u32();
      ValueList l;
      l.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) l.push_back(decode(in));
      return Value(std::move(l));
    }
    case Value::Type::kMap: {
      const std::uint32_t n = in.u32();
      ValueMap m;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string k = in.str32();
        m.emplace(std::move(k), decode(in));
      }
      return Value(std::move(m));
    }
  }
  throw DecodeError("bad type byte");
}

// ---------------------------------------------------------------- Tagged

void TaggedCodec::encode(const Value& v, Bytes& out) const {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case Value::Type::kNull:
      break;
    case Value::Type::kBool:
      w.u8(v.as_bool() ? 1 : 0);
      break;
    case Value::Type::kInt:
      w.svarint(v.as_int());
      break;
    case Value::Type::kDouble:
      w.f64(v.as_double());
      break;
    case Value::Type::kString:
      w.str_v(v.as_string());
      break;
    case Value::Type::kBytes: {
      const Bytes& b = v.as_bytes();
      w.varint(b.size());
      w.raw(b.data(), b.size());
      break;
    }
    case Value::Type::kList: {
      const ValueList& l = v.as_list();
      w.varint(l.size());
      for (const auto& e : l) encode(e, out);
      break;
    }
    case Value::Type::kMap: {
      const ValueMap& m = v.as_map();
      w.varint(m.size());
      for (const auto& [k, e] : m) {
        w.str_v(k);
        encode(e, out);
      }
      break;
    }
  }
}

Value TaggedCodec::decode(Reader& in) const {
  const auto type = static_cast<Value::Type>(in.u8());
  switch (type) {
    case Value::Type::kNull:
      return Value();
    case Value::Type::kBool:
      return Value(in.u8() != 0);
    case Value::Type::kInt:
      return Value(in.svarint());
    case Value::Type::kDouble:
      return Value(in.f64());
    case Value::Type::kString:
      return Value(in.str_v());
    case Value::Type::kBytes: {
      const std::uint64_t len = in.varint();
      return Value(in.bytes(len));
    }
    case Value::Type::kList: {
      const std::uint64_t n = in.varint();
      ValueList l;
      l.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) l.push_back(decode(in));
      return Value(std::move(l));
    }
    case Value::Type::kMap: {
      const std::uint64_t n = in.varint();
      ValueMap m;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string k = in.str_v();
        m.emplace(std::move(k), decode(in));
      }
      return Value(std::move(m));
    }
  }
  throw DecodeError("bad type byte");
}

const BinaryCodec& binary_codec() {
  static BinaryCodec codec;
  return codec;
}

const TaggedCodec& tagged_codec() {
  static TaggedCodec codec;
  return codec;
}

}  // namespace srpc
