// Byte-buffer reader/writer primitives shared by the codecs and the RPC wire
// protocols. Little-endian fixed-width encodings plus LEB128 varints.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/types.h"

namespace srpc {

/// Thrown on malformed/truncated input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  /// ZigZag-encoded signed varint.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + len);
  }

  /// u32 length prefix + bytes (the "verbose" framing used by BinaryCodec).
  void str32(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  /// varint length prefix + bytes (compact framing used by TaggedCodec).
  void str_v(const std::string& s) {
    varint(s.size());
    raw(s.data(), s.size());
  }

  Bytes& buffer() { return out_; }

 private:
  Bytes& out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : p_(data), end_(data + len) {}
  explicit Reader(const Bytes& data) : Reader(data.data(), data.size()) {}

  bool done() const { return p_ == end_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(p_[0]) |
                      static_cast<std::uint16_t>(p_[1]) << 8;
    p_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      need(1);
      const std::uint8_t b = *p_++;
      if (shift >= 64) throw DecodeError("varint too long");
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::string str32() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return s;
  }

  std::string str_v() {
    const std::uint64_t len = varint();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    return s;
  }

  Bytes bytes(std::size_t len) {
    need(len);
    Bytes b(p_, p_ + len);
    p_ += len;
    return b;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("truncated input");
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace srpc
