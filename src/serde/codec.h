// Codec interface: Value <-> bytes.
//
// Two concrete codecs model the serialization difference the paper observes
// between its frameworks (§5.1, Figure 8c):
//   * BinaryCodec — straightforward fixed-width encoding; used by TradRPC
//     and SpecRPC ("TradRPC has higher network bandwidth usage than gRPC").
//   * TaggedCodec — compact protobuf-like varint encoding; used by the gRPC
//     stand-in ("gRPC has a more optimized implementation of message
//     serialization than TradRPC").
#pragma once

#include <memory>
#include <string>

#include "serde/value.h"

namespace srpc {

class Codec {
 public:
  virtual ~Codec() = default;

  virtual void encode(const Value& v, Bytes& out) const = 0;
  /// Decodes one Value from `in`; throws DecodeError on malformed input.
  virtual Value decode(class Reader& in) const = 0;
  virtual std::string name() const = 0;

  Bytes encode(const Value& v) const {
    Bytes out;
    encode(v, out);
    return out;
  }
  Value decode(const Bytes& in) const;
};

/// Fixed-width, type-byte-per-node encoding (verbose).
class BinaryCodec final : public Codec {
 public:
  using Codec::decode;
  using Codec::encode;
  void encode(const Value& v, Bytes& out) const override;
  Value decode(Reader& in) const override;
  std::string name() const override { return "binary"; }
};

/// Varint/zigzag, compact encoding (protobuf-flavoured).
class TaggedCodec final : public Codec {
 public:
  using Codec::decode;
  using Codec::encode;
  void encode(const Value& v, Bytes& out) const override;
  Value decode(Reader& in) const override;
  std::string name() const override { return "tagged"; }
};

const BinaryCodec& binary_codec();
const TaggedCodec& tagged_codec();

}  // namespace srpc
