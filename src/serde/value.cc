#include "serde/value.h"

#include <sstream>

namespace srpc {
namespace {

void render(const Value& v, std::ostringstream& os) {
  switch (v.type()) {
    case Value::Type::kNull:
      os << "null";
      break;
    case Value::Type::kBool:
      os << (v.as_bool() ? "true" : "false");
      break;
    case Value::Type::kInt:
      os << v.as_int();
      break;
    case Value::Type::kDouble:
      os << v.as_double();
      break;
    case Value::Type::kString:
      os << '"' << v.as_string() << '"';
      break;
    case Value::Type::kBytes:
      os << "bytes[" << v.as_bytes().size() << "]";
      break;
    case Value::Type::kList: {
      os << '[';
      bool first = true;
      for (const auto& e : v.as_list()) {
        if (!first) os << ", ";
        first = false;
        render(e, os);
      }
      os << ']';
      break;
    }
    case Value::Type::kMap: {
      os << '{';
      bool first = true;
      for (const auto& [k, e] : v.as_map()) {
        if (!first) os << ", ";
        first = false;
        os << k << ": ";
        render(e, os);
      }
      os << '}';
      break;
    }
  }
}

}  // namespace

std::string Value::to_string() const {
  std::ostringstream os;
  render(*this, os);
  return os.str();
}

std::size_t Value::approx_size() const {
  switch (type()) {
    case Type::kNull:
      return 1;
    case Type::kBool:
      return 1;
    case Type::kInt:
      return 8;
    case Type::kDouble:
      return 8;
    case Type::kString:
      return as_string().size() + 4;
    case Type::kBytes:
      return as_bytes().size() + 4;
    case Type::kList: {
      std::size_t sum = 4;
      for (const auto& e : as_list()) sum += e.approx_size();
      return sum;
    }
    case Type::kMap: {
      std::size_t sum = 4;
      for (const auto& [k, e] : as_map()) sum += k.size() + e.approx_size();
      return sum;
    }
  }
  return 0;
}

}  // namespace srpc
