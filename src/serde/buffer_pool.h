// Thread-local free-list of wire buffers.
//
// The RPC wire encoders acquire a Bytes here instead of default-constructing
// one, so the encode path reuses capacity instead of re-growing a fresh
// vector per message. Receivers hand exhausted frames back via release()
// once decoding is done. Pools are thread-local (no lock on the hot path);
// executor workers both encode and decode, so buffers naturally recirculate
// within a worker. Sender-only threads simply allocate and receiver-only
// threads cap their pool — the pool bounds itself rather than balancing
// across threads.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"

namespace srpc {

class BufferPool {
 public:
  /// Max buffers parked per thread; further releases just free. Sized for
  /// the TCP reactor's batch cycle: a read pass acquires a payload buffer
  /// per frame and the following drain releases them all, so the pool must
  /// hold a full burst (hundreds of small frames) for the capacity to
  /// recirculate instead of round-tripping through the allocator.
  static constexpr std::size_t kMaxPooled = 1024;
  /// Buffers that grew beyond this are freed on release, not pooled.
  static constexpr std::size_t kMaxPooledCapacity = 256 * 1024;
  /// Total capacity parked per thread: bounds worst-case pool memory
  /// (kMaxPooled buffers could otherwise pin kMaxPooled * 256 KiB each).
  static constexpr std::size_t kMaxPooledBytes = 4 * 1024 * 1024;

  /// Returns an empty Bytes, reusing pooled capacity when available.
  static Bytes acquire(std::size_t reserve_hint = 0) {
    auto& pool = local();
    if (!pool.entries.empty()) {
      Bytes b = std::move(pool.entries.back());
      pool.entries.pop_back();
      pool.bytes -= b.capacity();
      b.clear();
      if (reserve_hint > 0) b.reserve(reserve_hint);
      return b;
    }
    Bytes b;
    if (reserve_hint > 0) b.reserve(reserve_hint);
    return b;
  }

  /// Parks a spent buffer for reuse by this thread. Safe for any Bytes,
  /// including ones that did not come from acquire().
  static void release(Bytes&& b) {
    auto& pool = local();
    if (pool.entries.size() >= kMaxPooled ||
        b.capacity() > kMaxPooledCapacity || b.capacity() == 0 ||
        pool.bytes + b.capacity() > kMaxPooledBytes) {
      return;  // drop: destructor frees
    }
    pool.bytes += b.capacity();
    pool.entries.push_back(std::move(b));
  }

  /// Buffers currently parked for the calling thread (diagnostic/tests).
  static std::size_t local_size() { return local().entries.size(); }

 private:
  struct Pool {
    std::vector<Bytes> entries;
    std::size_t bytes = 0;  // summed capacity of `entries`
  };
  static Pool& local() {
    thread_local Pool pool;
    return pool;
  }
};

}  // namespace srpc
