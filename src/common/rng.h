// Deterministic pseudo-random utilities: a fast 64-bit generator
// (splitmix64-seeded xoshiro256**) and the workload distributions the paper
// uses — uniform, and Zipfian with configurable alpha (YCSB-style).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace srpc {

/// xoshiro256** — fast, high-quality, deterministic from a 64-bit seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill the state, as recommended by the xoshiro authors.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  std::uint64_t next() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <random> adaptors also work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform(std::uint64_t n) {
    assert(n > 0);
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    assert(hi >= lo);
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p.
  bool flip(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = uniform01();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

 private:
  std::uint64_t state_[4] = {};
};

/// Zipfian generator over [0, n) with exponent alpha, using the rejection
/// method of Gray et al. (as popularized by YCSB). Items are ranked: rank 0
/// is the hottest key. Callers typically scramble ranks into the key space.
class Zipf {
 public:
  Zipf(std::uint64_t n, double alpha);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  std::uint64_t n_;
  double alpha_;
  double zetan_;   // generalized harmonic number H_{n,alpha}
  double theta_;   // == alpha
  double zeta2_;   // H_{2,alpha}
  double eta_;
};

/// Maps a Zipf rank into a scrambled position in [0, n) so hot keys are
/// spread across the key space (YCSB "scrambled zipfian").
std::uint64_t fnv_scramble(std::uint64_t value, std::uint64_t n);

}  // namespace srpc
