// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage:
//   SRPC_LOG(INFO) << "server " << id << " started";
//
// The level is filtered at runtime via Logger::set_level() or the
// SPECRPC_LOG_LEVEL environment variable (TRACE/DEBUG/INFO/WARN/ERROR).
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace srpc {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, std::string_view file, int line,
             const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Logger::instance().write(level_, file_, line_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace srpc

#define SRPC_LOG_LEVEL_TRACE ::srpc::LogLevel::kTrace
#define SRPC_LOG_LEVEL_DEBUG ::srpc::LogLevel::kDebug
#define SRPC_LOG_LEVEL_INFO ::srpc::LogLevel::kInfo
#define SRPC_LOG_LEVEL_WARN ::srpc::LogLevel::kWarn
#define SRPC_LOG_LEVEL_ERROR ::srpc::LogLevel::kError

#define SRPC_LOG(severity)                                             \
  if (!::srpc::Logger::instance().enabled(SRPC_LOG_LEVEL_##severity)) { \
  } else                                                               \
    ::srpc::detail::LogLine(SRPC_LOG_LEVEL_##severity, __FILE__, __LINE__)
