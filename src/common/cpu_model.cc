#include "common/cpu_model.h"

#include <algorithm>
#include <cassert>

namespace srpc {

CpuModel::CpuModel(TimerWheel& wheel, int cores) : wheel_(wheel) {
  assert(cores >= 1);
  next_free_.assign(static_cast<std::size_t>(cores), Clock::now());
}

void CpuModel::execute(Duration work, std::function<void()> done) {
  if (work < Duration::zero()) work = Duration::zero();
  TimePoint finish;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::min_element(next_free_.begin(), next_free_.end());
    const TimePoint start = std::max(Clock::now(), *it);
    finish = start + work;
    *it = finish;
  }
  wheel_.schedule_at(finish, std::move(done));
}

Duration CpuModel::backlog() const {
  std::lock_guard<std::mutex> lock(mu_);
  const TimePoint earliest =
      *std::min_element(next_free_.begin(), next_free_.end());
  const TimePoint now = Clock::now();
  return earliest > now ? earliest - now : Duration::zero();
}

}  // namespace srpc
