// Retry/deadline policy shared by the RPC layers (rpc::Node, SpecEngine,
// and the GrpcSim/RC config plumbing on top of them).
//
// Semantics: a call gets an overall deadline (the caller's call_timeout)
// and, when retries are enabled, a per-attempt timeout. When an attempt
// times out the request is re-issued under a fresh attempt-tagged call id
// after an exponential backoff with jitter, provided the backoff still fits
// inside the overall deadline. Only idempotent requests may be retried —
// see DESIGN.md §7 for which RPCs qualify.
#pragma once

#include <algorithm>
#include <chrono>

#include "common/rng.h"
#include "common/types.h"

namespace srpc {

struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries (the pre-retry
  /// behaviour: one attempt bounded by the overall call timeout).
  int max_attempts = 1;
  /// Per-attempt timeout. Zero means no per-attempt bound — the single
  /// attempt runs until the overall deadline.
  Duration attempt_timeout = Duration::zero();
  /// Backoff before attempt n+1 is initial_backoff * multiplier^(n-1),
  /// clamped to max_backoff, then scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter) to de-synchronize retry storms.
  Duration initial_backoff = std::chrono::milliseconds(10);
  double backoff_multiplier = 2.0;
  Duration max_backoff = std::chrono::seconds(1);
  double jitter = 0.1;

  bool enabled() const { return max_attempts > 1; }

  /// Backoff to wait after attempt `attempt` (1-based) times out.
  Duration backoff_after(int attempt, Rng& rng) const {
    double scale = 1.0;
    for (int i = 1; i < attempt; ++i) scale *= backoff_multiplier;
    auto backoff = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, Duration::period>(
            static_cast<double>(initial_backoff.count()) * scale));
    backoff = std::min(backoff, max_backoff);
    if (jitter > 0.0) {
      const double factor = 1.0 + jitter * (2.0 * rng.uniform01() - 1.0);
      backoff = std::chrono::duration_cast<Duration>(
          std::chrono::duration<double, Duration::period>(
              static_cast<double>(backoff.count()) * factor));
    }
    return std::max(backoff, Duration::zero());
  }
};

}  // namespace srpc
