// Virtual-CPU capacity model.
//
// The paper's Figure 13 limits each Replicated Commit server to 2 or 3 CPU
// cores and measures throughput saturation. This container has a single
// physical core, so instead of pinning threads we model server compute
// capacity explicitly: a CpuModel with N virtual cores serializes simulated
// work items onto the earliest-available core, yielding the same queueing
// behaviour (service rate N/mean-work) without real parallel hardware.
// See DESIGN.md §3 (substitutions).
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "common/timer_wheel.h"
#include "common/types.h"

namespace srpc {

class CpuModel {
 public:
  /// `cores` virtual cores; completions fire on `wheel`'s thread.
  CpuModel(TimerWheel& wheel, int cores);

  /// Simulates `work` of CPU time: occupies the earliest-free virtual core
  /// for that long, then invokes `done`. FIFO within the model as a whole
  /// (items are assigned to cores in submission order).
  void execute(Duration work, std::function<void()> done);

  /// Instantaneous queueing delay estimate: how long a zero-length item
  /// submitted now would wait before starting (diagnostic).
  Duration backlog() const;

  int cores() const { return static_cast<int>(next_free_.size()); }

 private:
  TimerWheel& wheel_;
  mutable std::mutex mu_;
  std::vector<TimePoint> next_free_;
};

}  // namespace srpc
