// Basic shared type aliases for the SpecRPC codebase.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace srpc {

using Bytes = std::vector<std::uint8_t>;

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

using namespace std::chrono_literals;  // NOLINT: pervasive literals (10ms, 1s)

/// Globally unique id of one RPC invocation (unique per process via
/// CallIdAllocator; made globally unique by embedding a node id in the
/// high bits).
using CallId = std::uint64_t;

inline double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

inline Duration from_ms(double ms) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace srpc
