// The three RPC framework flavours the paper compares (§5).
#pragma once

namespace srpc {

enum class Flavor {
  kGrpc,  // GrpcSim — gRPC stand-in (see src/grpcsim)
  kTrad,  // TradRPC — SpecRPC's code base without speculation
  kSpec,  // SpecRPC
};

inline const char* to_string(Flavor f) {
  switch (f) {
    case Flavor::kGrpc:
      return "gRPC";
    case Flavor::kTrad:
      return "TradRPC";
    case Flavor::kSpec:
      return "SpecRPC";
  }
  return "?";
}

inline constexpr Flavor kAllFlavors[] = {Flavor::kGrpc, Flavor::kTrad,
                                         Flavor::kSpec};

}  // namespace srpc
