// Strand: serialized execution on top of an Executor.
//
// Tasks posted to a strand run in FIFO order, never concurrently with each
// other. The simulated network gives each node a delivery strand so message
// delivery order per destination matches schedule order even though the
// underlying executor is multi-threaded.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "common/executor.h"

namespace srpc {

class Strand : public std::enable_shared_from_this<Strand> {
 public:
  using Task = std::function<void()>;

  static std::shared_ptr<Strand> create(Executor& executor) {
    return std::shared_ptr<Strand>(new Strand(executor));
  }

  void post(Task task) {
    bool start = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      if (!running_) {
        running_ = true;
        start = true;
      }
    }
    if (start) schedule_pump();
  }

 private:
  explicit Strand(Executor& executor) : executor_(executor) {}

  void schedule_pump() {
    auto self = shared_from_this();
    executor_.post([self] { self->pump(); });
  }

  void pump() {
    for (;;) {
      Task task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty()) {
          running_ = false;
          return;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      try {
        task();
      } catch (...) {
        // Swallow: a throwing task must not wedge the strand (running_
        // would stay true and the queue would never drain).
      }
    }
  }

  Executor& executor_;
  std::mutex mu_;
  std::deque<Task> queue_;
  bool running_ = false;
};

}  // namespace srpc
