#include "common/executor.h"

#include "common/logging.h"

namespace srpc {

namespace {
// Identifies the pool (and worker slot) owning the current thread, so
// post() can route worker-local submissions to the worker's own deque and
// honor the shutdown drain guarantee.
thread_local Executor* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;
}  // namespace

Executor::Executor(int num_threads, std::string name) : name_(std::move(name)) {
  if (num_threads < 1) num_threads = 1;
  queues_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

Executor::~Executor() { shutdown(); }

bool Executor::on_worker_thread() const { return tl_pool == this; }

bool Executor::post(Task task) {
  const bool from_worker = (tl_pool == this);
  Worker& wk = from_worker
                   ? *queues_[tl_index]
                   : *queues_[rr_.fetch_add(1, std::memory_order_relaxed) %
                              queues_.size()];
  bool accepted = true;
  {
    std::lock_guard<std::mutex> lock(wk.mu);
    // Checked under the target's lock so a drain scan that saw this deque
    // empty implies this post observes stopping_ and rejects (no lost task).
    if (stopping_.load(std::memory_order_acquire) && !from_worker) {
      accepted = false;
    } else {
      wk.dq.push_back(std::move(task));
      wk.depth.store(wk.dq.size(), std::memory_order_release);
    }
  }
  if (!accepted) {
    SRPC_LOG(WARN) << name_
                   << ": rejecting task posted after shutdown from a "
                      "non-worker thread";
    return false;
  }
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_one();
  }
  return true;
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Executor::before_block() {
  Executor* pool = tl_pool;
  if (pool == nullptr) return;
  Worker& wk = *pool->queues_[tl_index];
  if (wk.bpos >= wk.bcnt) return;
  {
    std::lock_guard<std::mutex> lock(wk.mu);
    // Re-front the unrun remainder in reverse so FIFO order is preserved.
    for (std::size_t i = wk.bcnt; i > wk.bpos; --i) {
      wk.dq.push_front(std::move(wk.batch[i - 1]));
    }
    wk.depth.store(wk.dq.size(), std::memory_order_release);
  }
  wk.bcnt = wk.bpos;
  if (pool->sleepers_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(pool->idle_mu_);
    pool->idle_cv_.notify_all();
  }
}

std::size_t Executor::take_own(std::size_t idx) {
  Worker& wk = *queues_[idx];
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(wk.mu);
  while (n < kBatch && !wk.dq.empty()) {
    wk.batch[n++] = std::move(wk.dq.front());
    wk.dq.pop_front();
  }
  if (n > 0) wk.depth.store(wk.dq.size(), std::memory_order_relaxed);
  return n;
}

std::size_t Executor::steal(std::size_t idx, bool blocking) {
  Worker& self = *queues_[idx];
  const std::size_t n_workers = queues_.size();
  for (std::size_t k = 1; k < n_workers; ++k) {
    Worker& victim = *queues_[(idx + k) % n_workers];
    std::unique_lock<std::mutex> lock(victim.mu, std::defer_lock);
    if (blocking) {
      lock.lock();
    } else if (!lock.try_lock()) {
      continue;
    }
    if (victim.dq.empty()) continue;
    // Take up to half the victim's queue, from the back (the owner pops
    // the front), so one steal rebalances instead of ping-ponging.
    std::size_t want = (victim.dq.size() + 1) / 2;
    if (want > kBatch) want = kBatch;
    std::size_t n = 0;
    while (n < want) {
      self.batch[n++] = std::move(victim.dq.back());
      victim.dq.pop_back();
    }
    victim.depth.store(victim.dq.size(), std::memory_order_relaxed);
    return n;
  }
  return 0;
}

bool Executor::work_visible() const {
  for (const auto& w : queues_) {
    if (w->depth.load(std::memory_order_acquire) > 0) return true;
  }
  return false;
}

void Executor::run(Task& task) {
  try {
    task();
  } catch (const std::exception& e) {
    SRPC_LOG(ERROR) << name_ << ": task threw: " << e.what();
  } catch (...) {
    SRPC_LOG(ERROR) << name_ << ": task threw unknown exception";
  }
  task = nullptr;  // release captures promptly
}

void Executor::worker_loop(std::size_t idx) {
  tl_pool = this;
  tl_index = idx;
  Worker& self = *queues_[idx];
  int spins = 0;
  for (;;) {
    std::size_t n = take_own(idx);
    if (n == 0) n = steal(idx, /*blocking=*/false);
    if (n > 0) {
      spins = 0;
      self.bcnt = n;
      self.bpos = 0;
      // bpos advances past the task *before* it runs, so before_block()
      // (called from inside the running task) republishes exactly the
      // unrun remainder.
      while (self.bpos < self.bcnt) {
        Task task = std::move(self.batch[self.bpos]);
        ++self.bpos;
        run(task);
      }
      self.bcnt = self.bpos = 0;
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain epilogue. External posts are now rejected and worker posts
      // only target the posting worker's own deque, so once a blocking
      // sweep of every deque (ours included, via take_own above) comes up
      // empty, this worker's share of the drain is complete: our deque can
      // never refill.
      std::size_t m = steal(idx, /*blocking=*/true);
      if (m == 0) m = take_own(idx);
      if (m == 0) return;
      self.bcnt = m;
      self.bpos = 0;
      while (self.bpos < self.bcnt) {
        Task task = std::move(self.batch[self.bpos]);
        ++self.bpos;
        run(task);
      }
      self.bcnt = self.bpos = 0;
      continue;
    }
    // Spin briefly before parking: a try_lock miss may have hidden work,
    // and under a steady external-submission stream the producer's next
    // post lands within a few yields. Staying runnable keeps sleepers_ at
    // zero, which lets post() skip the condvar signal entirely — that
    // syscall (futex wake with a waiter) costs more than the task itself.
    if (spins < 64) {
      ++spins;
      std::this_thread::yield();
      continue;
    }
    spins = 0;
    std::unique_lock<std::mutex> lock(idle_mu_);
    sleepers_.fetch_add(1, std::memory_order_release);
    idle_cv_.wait(lock, [this] {
      return work_visible() || stopping_.load(std::memory_order_acquire);
    });
    sleepers_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace srpc
