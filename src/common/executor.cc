#include "common/executor.h"

#include "common/logging.h"

namespace srpc {

Executor::Executor(int num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() { shutdown(); }

bool Executor::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second call: workers may already be joined; fall through to join
      // guard below.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::size_t Executor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Executor::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (const std::exception& e) {
      SRPC_LOG(ERROR) << name_ << ": task threw: " << e.what();
    } catch (...) {
      SRPC_LOG(ERROR) << name_ << ": task threw unknown exception";
    }
  }
}

}  // namespace srpc
