#include "common/timer_wheel.h"

#include "common/logging.h"

namespace srpc {

TimerWheel::TimerWheel() : thread_([this] { run(); }) {}

TimerWheel::~TimerWheel() { shutdown(); }

TimerId TimerWheel::schedule_at(TimePoint deadline, Callback cb) {
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return 0;
    id = next_id_++;
    heap_.push(Entry{deadline, next_seq_++, id});
    callbacks_.emplace(id, std::move(cb));
  }
  cv_.notify_one();
  return id;
}

TimerId TimerWheel::schedule_after(Duration delay, Callback cb) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(Clock::now() + delay, std::move(cb));
}

bool TimerWheel::cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return callbacks_.erase(id) > 0;
}

std::size_t TimerWheel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return callbacks_.size();
}

void TimerWheel::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimerWheel::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
      continue;
    }
    const Entry top = heap_.top();
    auto now = Clock::now();
    if (top.deadline > now) {
      cv_.wait_until(lock, top.deadline);
      continue;  // re-evaluate: new earlier entry or shutdown may have landed
    }
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    lock.unlock();
    try {
      cb();
    } catch (const std::exception& e) {
      SRPC_LOG(ERROR) << "timer callback threw: " << e.what();
    } catch (...) {
      SRPC_LOG(ERROR) << "timer callback threw unknown exception";
    }
    lock.lock();
  }
}

}  // namespace srpc
