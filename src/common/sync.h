// Small synchronization helpers used across the codebase.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/executor.h"
#include "common/types.h"

namespace srpc {

/// Go-style wait group: add() work, done() it, wait() for zero.
class WaitGroup {
 public:
  void add(int delta = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += delta;
  }

  void done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ <= 0) cv_.notify_all();
  }

  void wait() {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ <= 0; });
  }

  /// Returns false on timeout.
  bool wait_for(Duration timeout) {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

/// One-shot event.
class Event {
 public:
  void set() {
    // Notify while holding mu_: an Event is routinely stack-allocated and
    // destroyed as soon as wait() returns, and the waiter can only
    // re-acquire mu_ once set() has fully released it — so notifying after
    // the unlock would race cv_'s destruction.
    std::lock_guard<std::mutex> lock(mu_);
    set_ = true;
    cv_.notify_all();
  }

  void wait() {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return set_; });
  }

  bool wait_for(Duration timeout) {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return set_; });
  }

  bool is_set() {
    std::lock_guard<std::mutex> lock(mu_);
    return set_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

}  // namespace srpc
