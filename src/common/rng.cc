#include "common/rng.h"

namespace srpc {
namespace {

double zeta(std::uint64_t n, double alpha) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), alpha);
  }
  return sum;
}

}  // namespace

Zipf::Zipf(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha), theta_(alpha) {
  assert(n > 0);
  zetan_ = zeta(n_, theta_);
  zeta2_ = zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t Zipf::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double x = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, 1.0 / (1.0 - theta_));
  auto rank = static_cast<std::uint64_t>(x);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

std::uint64_t fnv_scramble(std::uint64_t value, std::uint64_t n) {
  // 64-bit FNV-1a over the 8 bytes of `value`.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFF;
    hash *= 0x100000001B3ULL;
  }
  return hash % n;
}

}  // namespace srpc
