// Work-stealing thread-pool executor.
//
// Each worker owns a deque guarded by its own mutex (Chase-Lev in spirit;
// mutex-per-worker as the first cut). Tasks posted from a worker thread go
// to that worker's own deque (locality — strand pumps and RPC dispatch
// repost from workers constantly); tasks posted from outside the pool are
// distributed round-robin. A worker that finds its own deque empty steals
// from the back of a sibling's deque. Workers pop their own queue in FIFO
// order and grab small batches under one lock acquisition, so the per-task
// cost is a fraction of a mutex round-trip instead of a contended global
// lock + condvar signal per task.
//
// The pool is sized generously relative to expected concurrency because
// SpecRPC callbacks may park a worker (futures, specBlock) while waiting for
// speculation to resolve; waiting threads cost almost nothing.
//
// Shutdown guarantee: tasks already queued when shutdown() begins are run.
// Tasks posted *from a pool worker* after shutdown() begins (continuations,
// strand pumps, completion callbacks running during the drain) are also
// accepted and run — they land on the posting worker's own deque, which that
// worker drains before exiting, so a task chain that terminates always runs
// to completion. Tasks posted from non-worker threads after shutdown()
// begins are rejected: post() returns false and logs a warning, so nothing
// is ever silently dropped. shutdown() must not be called from a worker.
//
// Blocking-task protocol: workers claim small batches, so a task that parks
// its worker (spec_block, Future::wait, quorum waits) would otherwise strand
// the claimed-but-unrun remainder of its batch where no other worker can see
// it — a deadlock if the parked task waits on one of those very tasks. Every
// blocking primitive in this codebase calls Executor::before_block() first,
// which republishes the current worker's unrun batch remainder to its deque
// (preserving order) and wakes a sibling to take it.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace srpc {

class Executor {
 public:
  using Task = std::function<void()>;

  /// Starts `num_threads` workers immediately.
  explicit Executor(int num_threads, std::string name = "executor");

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Drains remaining tasks and joins all workers.
  ~Executor();

  /// Enqueues `task`. Returns false (and logs) only when the executor is
  /// shutting down and the caller is not a pool worker; see the shutdown
  /// guarantee above.
  bool post(Task task);

  /// Stops accepting external tasks, runs everything already queued (plus
  /// worker-posted continuations), joins workers. Idempotent.
  void shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Approximate number of queued-but-unclaimed tasks. Constant-time and
  /// lock-free: sums the fixed set of per-worker depth gauges (no global
  /// counter exists — a shared atomic would put an RMW on every post).
  std::size_t queue_depth() const {
    std::size_t total = 0;
    for (const auto& w : queues_)
      total += w->depth.load(std::memory_order_relaxed);
    return total;
  }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Called by blocking primitives (spec_block, Future::wait, quorum waits)
  /// before parking the calling thread. If the caller is a pool worker with
  /// claimed-but-unrun batch tasks, they are pushed back onto the worker's
  /// deque (order preserved) and a sibling is woken to take them, so nothing
  /// the parked task may be waiting on stays invisible. No-op elsewhere.
  static void before_block();

 private:
  /// Max tasks a worker claims from its own deque per lock acquisition.
  static constexpr std::size_t kBatch = 16;

  struct alignas(64) Worker {
    std::mutex mu;
    std::deque<Task> dq;
    /// dq.size(), published by whoever holds mu. Readers (idle scans,
    /// queue_depth) tolerate staleness; every post also notifies sleepers.
    std::atomic<std::size_t> depth{0};
    /// Claimed batch; [bpos, bcnt) are unrun. Owner-thread-only (thieves
    /// never touch it; before_block republishes it under mu).
    std::array<Task, kBatch> batch;
    std::size_t bpos = 0;
    std::size_t bcnt = 0;
  };

  void worker_loop(std::size_t idx);
  std::size_t take_own(std::size_t idx);
  std::size_t steal(std::size_t idx, bool blocking);
  bool work_visible() const;
  void run(Task& task);

  std::string name_;
  std::vector<std::unique_ptr<Worker>> queues_;
  std::atomic<std::size_t> rr_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<int> sleepers_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::vector<std::thread> workers_;
};

}  // namespace srpc
