// Fixed-size thread-pool executor.
//
// Tasks posted to the executor run on one of a fixed set of worker threads.
// The pool is sized generously relative to expected concurrency because
// SpecRPC callbacks may park a worker (futures, specBlock) while waiting for
// speculation to resolve; waiting threads cost almost nothing.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace srpc {

class Executor {
 public:
  using Task = std::function<void()>;

  /// Starts `num_threads` workers immediately.
  explicit Executor(int num_threads, std::string name = "executor");

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Drains remaining tasks and joins all workers.
  ~Executor();

  /// Enqueues `task`; returns false if the executor is shutting down.
  bool post(Task task);

  /// Stops accepting tasks, runs everything already queued, joins workers.
  /// Idempotent.
  void shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks currently queued (diagnostic).
  std::size_t queue_depth() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::string name_;
  std::vector<std::thread> workers_;
};

}  // namespace srpc
