// Deadline scheduler ("timer wheel" in spirit; a min-heap in implementation).
//
// A single dedicated thread pops expired entries and runs their callbacks.
// Callbacks must be short — anything substantial should be posted to an
// Executor. Entries with equal deadlines fire in insertion order, which the
// simulated network relies on for per-link FIFO delivery.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <thread>
#include <vector>

#include "common/types.h"

namespace srpc {

using TimerId = std::uint64_t;

class TimerWheel {
 public:
  using Callback = std::function<void()>;

  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Runs `cb` on the timer thread at (or shortly after) `deadline`.
  TimerId schedule_at(TimePoint deadline, Callback cb);

  /// Runs `cb` after `delay` from now. Non-positive delays fire immediately
  /// (still on the timer thread, still in FIFO order w.r.t. equal deadlines).
  TimerId schedule_after(Duration delay, Callback cb);

  /// Cancels a pending timer. Returns true if the timer had not fired yet.
  /// A timer currently executing cannot be cancelled.
  bool cancel(TimerId id);

  /// Number of pending entries (diagnostic).
  std::size_t pending() const;

  void shutdown();

 private:
  struct Entry {
    TimePoint deadline;
    std::uint64_t seq;  // tie-break: FIFO for equal deadlines
    TimerId id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void run();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  // Callbacks live out-of-heap so cancel() can drop them without a heap
  // rebuild; a heap entry whose id is absent here is a cancelled tombstone.
  std::unordered_map<TimerId, Callback> callbacks_;
  TimerId next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace srpc
