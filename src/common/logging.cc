#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace srpc {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel level_from_env() {
  const char* env = std::getenv("SPECRPC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "TRACE") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  if (std::strcmp(env, "OFF") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::string_view basename_of(std::string_view path) {
  auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

Logger::Logger() : level_(level_from_env()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view file, int line,
                   const std::string& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[" << level_name(level) << " " << basename_of(file) << ":"
            << line << "] " << msg << "\n";
}

}  // namespace srpc
