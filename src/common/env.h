// Environment-variable configuration helpers for benches and examples.
#pragma once

#include <cstdlib>
#include <string>

namespace srpc {

inline std::string env_str(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::string(v);
}

inline double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end == v) ? def : parsed;
}

inline long env_long(const char* name, long def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return (end == v) ? def : parsed;
}

/// Global latency scale for benches: all emulated WAN/service latencies are
/// multiplied by this factor (default 0.1) so runs finish quickly; reported
/// latencies can be divided back. See DESIGN.md §3.
inline double latency_scale() { return env_double("SPECRPC_LAT_SCALE", 0.1); }

}  // namespace srpc
