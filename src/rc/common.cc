#include "rc/common.h"

#include <atomic>

namespace srpc::rc {

Value encode_read_result(const ReadResult& r) {
  return vlist(r.value, r.version);
}

ReadResult decode_read_result(const std::string& key, const Value& v) {
  const ValueList& list = v.as_list();
  ReadResult r;
  r.key = key;
  r.value = list.at(0).as_string();
  r.version = list.at(1).as_int();
  return r;
}

Value encode_reads(const std::vector<kv::ReadValidation>& reads) {
  ValueList out;
  out.reserve(reads.size());
  for (const auto& r : reads) out.push_back(vlist(r.key, r.version));
  return Value(std::move(out));
}

std::vector<kv::ReadValidation> decode_reads(const Value& v) {
  std::vector<kv::ReadValidation> out;
  for (const auto& e : v.as_list()) {
    const ValueList& pair = e.as_list();
    out.push_back(kv::ReadValidation{pair.at(0).as_string(),
                                     pair.at(1).as_int()});
  }
  return out;
}

Value encode_writes(const std::vector<kv::WriteOp>& writes) {
  ValueList out;
  out.reserve(writes.size());
  for (const auto& w : writes) out.push_back(vlist(w.key, w.value));
  return Value(std::move(out));
}

std::vector<kv::WriteOp> decode_writes(const Value& v) {
  std::vector<kv::WriteOp> out;
  for (const auto& e : v.as_list()) {
    const ValueList& pair = e.as_list();
    out.push_back(kv::WriteOp{pair.at(0).as_string(), pair.at(1).as_string()});
  }
  return out;
}

Value encode_batch_entries(const std::vector<kv::BatchEntry>& entries) {
  ValueList out;
  out.reserve(entries.size());
  for (const auto& e : entries) {
    out.push_back(vlist(static_cast<std::int64_t>(e.txn),
                        static_cast<std::int64_t>(e.index),
                        encode_reads(e.reads), encode_writes(e.writes)));
  }
  return Value(std::move(out));
}

std::vector<kv::BatchEntry> decode_batch_entries(const Value& v) {
  std::vector<kv::BatchEntry> out;
  for (const auto& item : v.as_list()) {
    const ValueList& quad = item.as_list();
    kv::BatchEntry e;
    e.txn = static_cast<kv::TxnId>(quad.at(0).as_int());
    e.index = static_cast<std::size_t>(quad.at(1).as_int());
    e.reads = decode_reads(quad.at(2));
    e.writes = decode_writes(quad.at(3));
    out.push_back(std::move(e));
  }
  return out;
}

Value encode_batch_flags(const std::vector<bool>& flags) {
  ValueList out;
  out.reserve(flags.size());
  for (const bool f : flags) out.push_back(Value(f));
  return Value(std::move(out));
}

std::vector<bool> decode_batch_flags(const Value& v) {
  std::vector<bool> out;
  for (const auto& e : v.as_list()) out.push_back(e.as_bool());
  return out;
}

Value encode_store_entries(
    const std::vector<std::tuple<std::string, std::string, std::int64_t>>&
        entries) {
  ValueList out;
  out.reserve(entries.size());
  for (const auto& [key, value, version] : entries) {
    out.push_back(vlist(key, value, version));
  }
  return Value(std::move(out));
}

std::vector<std::tuple<std::string, std::string, std::int64_t>>
decode_store_entries(const Value& v) {
  std::vector<std::tuple<std::string, std::string, std::int64_t>> out;
  for (const auto& e : v.as_list()) {
    const ValueList& triple = e.as_list();
    out.emplace_back(triple.at(0).as_string(), triple.at(1).as_string(),
                     triple.at(2).as_int());
  }
  return out;
}

std::int64_t next_txn_stamp() {
  static std::atomic<std::int64_t> counter{1};
  return counter.fetch_add(1);
}

}  // namespace srpc::rc
