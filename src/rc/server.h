// Replicated Commit servers: shard replica + per-DC coordinator.
//
// ShardServer exposes quorum-read and local-2PC participant operations over
// one VersionedStore replica. Coordinator runs the datacentre-local 2PC for
// rc.commit and forwards the global decision to its shards. Both are
// framework-independent via RpcKit, matching the paper's claim that the RC
// protocol code is unchanged between the gRPC/TradRPC/SpecRPC builds.
//
// An optional CpuModel charges per-request processing time — this is how
// the Figure 13 experiment limits servers to 2-3 cores (DESIGN.md §3).
#pragma once

#include <memory>

#include "common/cpu_model.h"
#include "kvstore/store.h"
#include "kvstore/txn_log.h"
#include "rc/common.h"
#include "rc/kit.h"

namespace srpc::rc {

struct ServerCosts {
  Duration read{};     // per rc.read
  Duration prepare{};  // per rc.prepare
  Duration apply{};    // per rc.apply / rc.abort
  Duration commit{};   // per rc.commit at the coordinator
};

class ShardServer {
 public:
  /// `log` (optional) receives every applied commit asynchronously — the
  /// paper's SSD-persisted transaction log, off the critical path.
  ShardServer(RpcKit& kit, kv::VersionedStore& store, CpuModel* cpu = nullptr,
              ServerCosts costs = {}, kv::TxnLog* log = nullptr);

  kv::VersionedStore& store() { return store_; }

 private:
  void with_cpu(Duration cost, std::function<void()> work);
  void serve_read(const std::string& key,
                  std::function<void(Outcome)> respond, int attempt);
  void handle_batch_prepare(ValueList args,
                            std::function<void(Outcome)> respond);
  void handle_batch_apply(ValueList args,
                          std::function<void(Outcome)> respond);

  RpcKit& kit_;
  kv::VersionedStore& store_;
  CpuModel* cpu_;
  ServerCosts costs_;
  kv::TxnLog* log_;
};

class Coordinator {
 public:
  Coordinator(RpcKit& kit, Topology topology, int dc, CpuModel* cpu = nullptr,
              ServerCosts costs = {});

 private:
  void with_cpu(Duration cost, std::function<void()> work);
  void handle_commit(ValueList args, std::function<void(Outcome)> respond);
  void handle_decide(ValueList args, std::function<void(Outcome)> respond);
  void handle_batch_commit(ValueList args,
                           std::function<void(Outcome)> respond);
  void handle_batch_decide(ValueList args,
                           std::function<void(Outcome)> respond);

  RpcKit& kit_;
  Topology topology_;
  int dc_;
  CpuModel* cpu_;
  ServerCosts costs_;
};

}  // namespace srpc::rc
