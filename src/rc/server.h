// Replicated Commit servers: shard replica + per-DC coordinator.
//
// ShardServer exposes quorum-read and local-2PC participant operations over
// one VersionedStore replica. Coordinator runs the datacentre-local 2PC for
// rc.commit and forwards the global decision to its shards. Both are
// framework-independent via RpcKit, matching the paper's claim that the RC
// protocol code is unchanged between the gRPC/TradRPC/SpecRPC builds.
//
// Both take a ViewProvider (rc/view.h): routed requests carry the caller's
// view epoch and are NACKed with kWrongEpoch when it differs from the
// server's; view.install moves a server to the next epoch. A shard that
// gains slots marks them warming, pulls their state from the old owner
// (view.pull), and delays reads/prepares on warming keys until the transfer
// lands; applies whose keys have migrated away are forwarded to the current
// owner so no committed write is stranded on an old replica (DESIGN.md §13).
//
// An optional CpuModel charges per-request processing time — this is how
// the Figure 13 experiment limits servers to 2-3 cores (DESIGN.md §3).
#pragma once

#include <memory>
#include <set>

#include "common/cpu_model.h"
#include "kvstore/store.h"
#include "kvstore/txn_log.h"
#include "rc/common.h"
#include "rc/kit.h"

namespace srpc::rc {

struct ServerCosts {
  Duration read{};     // per rc.read
  Duration prepare{};  // per rc.prepare
  Duration apply{};    // per rc.apply / rc.abort
  Duration commit{};   // per rc.commit at the coordinator
};

class ShardServer {
 public:
  /// `dc`/`shard` are this replica's coordinates in the view. `log`
  /// (optional) receives every applied commit asynchronously — the paper's
  /// SSD-persisted transaction log, off the critical path.
  ShardServer(RpcKit& kit, kv::VersionedStore& store,
              std::shared_ptr<ViewProvider> views, int dc, int shard,
              CpuModel* cpu = nullptr, ServerCosts costs = {},
              kv::TxnLog* log = nullptr);

  kv::VersionedStore& store() { return store_; }
  int shard() const { return shard_; }
  int dc() const { return dc_; }
  /// Slots owned in the current view whose state transfer has not landed.
  std::size_t warming_slots() const;

 private:
  void with_cpu(Duration cost, std::function<void()> work);
  void serve_read(const std::string& key,
                  std::function<void(Outcome)> respond, int attempt);
  void handle_prepare(ValueList args, std::function<void(Outcome)> respond,
                      int attempt);
  void handle_batch_prepare(ValueList args,
                            std::function<void(Outcome)> respond, int attempt);
  void handle_batch_apply(ValueList args,
                          std::function<void(Outcome)> respond);
  void handle_view_install(ValueList args,
                           std::function<void(Outcome)> respond);
  void handle_view_pull(ValueList args, std::function<void(Outcome)> respond);

  /// NACKs (and returns true) when the request's trailing view-epoch arg
  /// differs from the server's current epoch.
  bool nack_wrong_epoch(const ValueList& args,
                        const std::function<void(Outcome)>& respond);
  bool is_warming(const std::string& key) const;
  void clear_warming(const std::vector<int>& slots);
  /// Pulls `slots` from `source` (the old owner's replica in this DC),
  /// retrying until the source has installed the epoch and drained prepared
  /// transactions on those keys.
  void pull_from(Address source, std::vector<int> slots, int attempt);
  /// Re-applies writes whose key now lives on another shard of this DC.
  void forward_migrated(kv::TxnId txn, const std::vector<kv::WriteOp>& writes,
                        std::int64_t version);

  RpcKit& kit_;
  kv::VersionedStore& store_;
  std::shared_ptr<ViewProvider> views_;
  int dc_;
  int shard_;
  CpuModel* cpu_;
  ServerCosts costs_;
  kv::TxnLog* log_;
  /// Serializes view.install processing (proposals are serial; this guards
  /// against duplicated/raced installs).
  std::mutex install_mu_;
  mutable std::mutex warm_mu_;
  std::set<int> warming_;
};

class Coordinator {
 public:
  Coordinator(RpcKit& kit, std::shared_ptr<ViewProvider> views, int dc,
              CpuModel* cpu = nullptr, ServerCosts costs = {});

 private:
  void with_cpu(Duration cost, std::function<void()> work);
  void handle_commit(ValueList args, std::function<void(Outcome)> respond);
  void handle_decide(ValueList args, std::function<void(Outcome)> respond);
  void handle_batch_commit(ValueList args,
                           std::function<void(Outcome)> respond);
  void handle_batch_decide(ValueList args,
                           std::function<void(Outcome)> respond);

  RpcKit& kit_;
  std::shared_ptr<ViewProvider> views_;
  int dc_;
  CpuModel* cpu_;
  ServerCosts costs_;
};

}  // namespace srpc::rc
