// ClusterView — the epoch-versioned routing map of the replicated store.
//
// PR 9 replaces the static Topology (fixed 3 DCs x 3 shards, hash % 3 key
// placement) with a live-reconfigurable view, following the construction of
// "Reconfigurable State Machine Replication from Non-Reconfigurable
// Building Blocks" (PAPERS.md): each epoch is an immutable block — a fixed
// set of shard servers and a fixed slot table — and reconfiguration chains
// epochs. Keys hash into a fixed number of *slots*; a view assigns every
// slot to one shard. Migration never rehashes keys, it remaps slots.
//
// The protocol around it (DESIGN.md §13):
//   * every routed RPC (read/prepare/commit and their batch forms) carries
//     the sender's view epoch; a server whose epoch differs NACKs with
//     kWrongEpoch carrying its own serialized view, and the client installs
//     the newer view inline and re-issues — speculative branches opened
//     under the old epoch roll back through the ordinary branch machinery,
//     so predictions are never validated across epochs;
//   * decide/apply/abort are deliberately NOT epoch-checked: an in-flight
//     2PC resolves in the epoch that prepared it (the locks live on the
//     shards that voted), or aborts cleanly;
//   * a shard that gains slots in epoch N+1 marks them "warming", pulls
//     their contents from the old owner (view.pull — refused until the old
//     owner has drained prepared transactions on those keys), and delays
//     reads/prepares for warming keys until the transfer lands.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "transport/transport.h"

namespace srpc::rc {

/// Fixed key-space granularity. Keys hash into slots; views assign slots to
/// shards. 64 slots keeps migrations meaningfully sub-shard while the table
/// stays one cache line of ints.
inline constexpr int kViewSlots = 64;

/// Slot of a key — view-independent (the hash and slot count never change;
/// only the slot->shard assignment is versioned).
int slot_of_key(const std::string& key);

struct ClusterView {
  std::int64_t epoch = 1;
  int num_dcs = 3;
  /// Addressable shard servers per DC (including spares owning no slots —
  /// migration targets / joining replicas).
  int num_shards = 3;
  /// slot -> owning shard; kViewSlots entries, each in [0, num_shards).
  std::vector<int> slot_owner;
  std::vector<std::string> dc_names;

  /// Optional explicit address maps. In-process clusters use the logical
  /// name-derived addresses; a cross-process cluster fills these with real
  /// TCP "host:port" endpoints learned during the port exchange, and they
  /// take precedence when non-empty.
  std::vector<std::vector<Address>> shard_addrs_override;  // [dc][shard]
  std::vector<Address> coord_addrs_override;               // [dc]

  /// Canonical DC names for any cluster size: the first three keep the
  /// paper's {oregon, ireland, seoul}; beyond that, "dc3", "dc4", ...
  /// (Topology used to index a fixed 3-name list out of range.)
  static std::vector<std::string> default_dc_names(int num_dcs);

  /// Epoch-1 view: `active_shards` (0 = all) shards share the slots
  /// round-robin; shards in [active_shards, num_shards) start empty.
  static ClusterView make_static(int num_dcs = 3, int num_shards = 3,
                                 int active_shards = 0);

  int shard_of(const std::string& key) const {
    return slot_owner[static_cast<std::size_t>(slot_of_key(key))];
  }

  Address shard_addr(int dc, int shard) const;
  Address coord_addr(int dc) const;
  std::vector<Address> all_replicas(int shard) const;
  std::vector<Address> all_coords() const;

  /// Slots currently assigned to `shard`, ascending.
  std::vector<int> slots_of(int shard) const;
  /// Shards owning at least one slot, ascending (workloads draw keys from
  /// these; spares own nothing to read).
  std::vector<int> active_shards() const;

  /// The successor view moving `slots` to `to_shard` (epoch + 1). This is
  /// both "shard split" (spread one shard's slots over several) and
  /// "replica add" (first slots onto a previously-empty spare).
  ClusterView with_slots_moved(const std::vector<int>& slots,
                               int to_shard) const;

  /// Compact single-line encoding (no spaces inside tokens) — rides inside
  /// wrong-epoch NACK error strings and view.install args.
  std::string to_wire() const;
  static std::optional<ClusterView> from_wire(const std::string& s);
};

/// Thread-safe holder of a node's current view. Every node owns one;
/// install() only moves forward (epoch-monotone), so late or duplicated
/// view messages are harmless. A short history is retained so decides
/// stamped with an older epoch can still be routed to the shards that
/// prepared them.
class ViewProvider {
 public:
  explicit ViewProvider(ClusterView initial);

  std::shared_ptr<const ClusterView> get() const;
  std::int64_t epoch() const;

  /// Installs iff next.epoch > current epoch. Returns whether it installed.
  bool install(ClusterView next);

  /// The retained view with exactly `epoch`, or nullptr. History depth is
  /// bounded (old epochs beyond it have no in-flight 2PC left to resolve).
  std::shared_ptr<const ClusterView> at_epoch(std::int64_t epoch) const;

 private:
  static constexpr std::size_t kHistory = 8;
  mutable std::mutex mu_;
  std::shared_ptr<const ClusterView> view_;
  std::vector<std::shared_ptr<const ClusterView>> history_;
};

// ------------------------------------------------------- wrong-epoch NACK

/// Marker prefix of a wrong-epoch NACK error string; the remainder is the
/// NACKing server's serialized view.
inline constexpr const char* kWrongEpoch = "wrong_epoch";

std::string wrong_epoch_error(const ClusterView& view);

/// Extracts the view payload from an error message containing a wrong-epoch
/// NACK (the marker may be embedded — quorum failures wrap messages).
std::optional<ClusterView> parse_wrong_epoch(const std::string& error);
bool is_wrong_epoch(const std::string& error);

/// Thrown by client paths when a txn attempt died on a wrong-epoch NACK;
/// carries the newer view (when the NACK's payload parsed) so the caller
/// can refresh routing inline and re-issue.
class WrongEpochError : public std::runtime_error {
 public:
  explicit WrongEpochError(std::optional<ClusterView> view)
      : std::runtime_error("txn raced a view change (wrong epoch)"),
        view_(std::move(view)) {}
  const std::optional<ClusterView>& view() const { return view_; }

 private:
  std::optional<ClusterView> view_;
};

}  // namespace srpc::rc
