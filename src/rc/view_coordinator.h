// ViewCoordinator — proposes epoch N+1 to a running cluster.
//
// Reconfiguration driver for the view-change protocol (DESIGN.md §13):
// `propose` broadcasts view.install to every shard replica and DC
// coordinator of both the old and new views and waits for their acks;
// `wait_ready` polls view.status until every shard has adopted the target
// epoch and finished warming its gained slots (state transfer landed).
// Traffic keeps flowing throughout — servers NACK stale-epoch requests and
// clients refresh inline, so the coordinator never has to quiesce anyone.
//
// One instance runs per cluster (the "viewctl" node). Proposals are serial:
// a second propose while one is in flight is refused.
#pragma once

#include <memory>

#include "rc/common.h"
#include "rc/kit.h"

namespace srpc::rc {

class ViewCoordinator {
 public:
  ViewCoordinator(RpcKit& kit, std::shared_ptr<ViewProvider> views);

  /// Installs `next` locally and broadcasts it to every shard replica and
  /// coordinator (union of the current and next views' address sets).
  /// Returns true when every node acked within `timeout`. Nodes that missed
  /// the broadcast still converge later — their next wrong-epoch NACK or
  /// forwarded apply carries the new view — but a full ack set means the
  /// change is already everywhere.
  bool propose(const ClusterView& next,
               Duration timeout = std::chrono::seconds(10));

  /// Convenience: propose the successor view moving `slots` to `to_shard`,
  /// then wait_ready — a complete live migration in one call.
  bool migrate_slots(const std::vector<int>& slots, int to_shard,
                     Duration timeout = std::chrono::seconds(10));

  /// Polls view.status on every shard replica until all report the current
  /// epoch with zero warming slots (every state transfer landed), or the
  /// timeout expires.
  bool wait_ready(Duration timeout = std::chrono::seconds(10));

  const std::shared_ptr<ViewProvider>& views() const { return views_; }

 private:
  RpcKit& kit_;
  std::shared_ptr<ViewProvider> views_;
  std::mutex propose_mu_;
};

}  // namespace srpc::rc
