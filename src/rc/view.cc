#include "rc/view.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace srpc::rc {

int slot_of_key(const std::string& key) {
  return static_cast<int>(std::hash<std::string>{}(key) %
                          static_cast<std::size_t>(kViewSlots));
}

std::vector<std::string> ClusterView::default_dc_names(int num_dcs) {
  static const char* kCanonical[] = {"oregon", "ireland", "seoul"};
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_dcs));
  for (int dc = 0; dc < num_dcs; ++dc) {
    if (dc < 3) {
      names.emplace_back(kCanonical[dc]);
    } else {
      names.push_back("dc" + std::to_string(dc));
    }
  }
  return names;
}

ClusterView ClusterView::make_static(int num_dcs, int num_shards,
                                     int active_shards) {
  ClusterView view;
  view.epoch = 1;
  view.num_dcs = num_dcs;
  view.num_shards = num_shards;
  if (active_shards <= 0 || active_shards > num_shards) {
    active_shards = num_shards;
  }
  view.slot_owner.resize(kViewSlots);
  for (int s = 0; s < kViewSlots; ++s) view.slot_owner[s] = s % active_shards;
  view.dc_names = default_dc_names(num_dcs);
  return view;
}

Address ClusterView::shard_addr(int dc, int shard) const {
  if (!shard_addrs_override.empty()) {
    return shard_addrs_override.at(static_cast<std::size_t>(dc))
        .at(static_cast<std::size_t>(shard));
  }
  return dc_names.at(static_cast<std::size_t>(dc)) + ".shard" +
         std::to_string(shard);
}

Address ClusterView::coord_addr(int dc) const {
  if (!coord_addrs_override.empty()) {
    return coord_addrs_override.at(static_cast<std::size_t>(dc));
  }
  return dc_names.at(static_cast<std::size_t>(dc)) + ".coord";
}

std::vector<Address> ClusterView::all_replicas(int shard) const {
  std::vector<Address> out;
  out.reserve(static_cast<std::size_t>(num_dcs));
  for (int dc = 0; dc < num_dcs; ++dc) out.push_back(shard_addr(dc, shard));
  return out;
}

std::vector<Address> ClusterView::all_coords() const {
  std::vector<Address> out;
  out.reserve(static_cast<std::size_t>(num_dcs));
  for (int dc = 0; dc < num_dcs; ++dc) out.push_back(coord_addr(dc));
  return out;
}

std::vector<int> ClusterView::slots_of(int shard) const {
  std::vector<int> out;
  for (int s = 0; s < kViewSlots; ++s) {
    if (slot_owner[static_cast<std::size_t>(s)] == shard) out.push_back(s);
  }
  return out;
}

std::vector<int> ClusterView::active_shards() const {
  std::vector<bool> seen(static_cast<std::size_t>(num_shards), false);
  for (const int owner : slot_owner) {
    if (owner >= 0 && owner < num_shards)
      seen[static_cast<std::size_t>(owner)] = true;
  }
  std::vector<int> out;
  for (int shard = 0; shard < num_shards; ++shard) {
    if (seen[static_cast<std::size_t>(shard)]) out.push_back(shard);
  }
  return out;
}

ClusterView ClusterView::with_slots_moved(const std::vector<int>& slots,
                                          int to_shard) const {
  ClusterView next = *this;
  next.epoch = epoch + 1;
  for (const int slot : slots) {
    next.slot_owner.at(static_cast<std::size_t>(slot)) = to_shard;
  }
  return next;
}

std::string ClusterView::to_wire() const {
  std::ostringstream out;
  out << "CV1 " << epoch << ' ' << num_dcs << ' ' << num_shards << ' ';
  for (std::size_t s = 0; s < slot_owner.size(); ++s) {
    if (s != 0) out << ',';
    out << slot_owner[s];
  }
  for (const auto& name : dc_names) out << ' ' << name;
  if (!shard_addrs_override.empty() || !coord_addrs_override.empty()) {
    out << " A";
    for (int dc = 0; dc < num_dcs; ++dc) {
      for (int shard = 0; shard < num_shards; ++shard) {
        out << ' ' << shard_addr(dc, shard);
      }
      out << ' ' << coord_addr(dc);
    }
  }
  return out.str();
}

std::optional<ClusterView> ClusterView::from_wire(const std::string& s) {
  std::istringstream in(s);
  std::string tag;
  ClusterView view;
  if (!(in >> tag) || tag != "CV1") return std::nullopt;
  std::string slots_csv;
  if (!(in >> view.epoch >> view.num_dcs >> view.num_shards >> slots_csv)) {
    return std::nullopt;
  }
  if (view.num_dcs <= 0 || view.num_shards <= 0) return std::nullopt;
  view.slot_owner.clear();
  {
    std::istringstream slots(slots_csv);
    std::string tok;
    while (std::getline(slots, tok, ',')) {
      const int owner = std::atoi(tok.c_str());
      if (owner < 0 || owner >= view.num_shards) return std::nullopt;
      view.slot_owner.push_back(owner);
    }
  }
  if (static_cast<int>(view.slot_owner.size()) != kViewSlots) {
    return std::nullopt;
  }
  view.dc_names.resize(static_cast<std::size_t>(view.num_dcs));
  for (auto& name : view.dc_names) {
    if (!(in >> name)) return std::nullopt;
  }
  std::string marker;
  if (in >> marker && marker == "A") {
    view.shard_addrs_override.resize(static_cast<std::size_t>(view.num_dcs));
    view.coord_addrs_override.resize(static_cast<std::size_t>(view.num_dcs));
    for (int dc = 0; dc < view.num_dcs; ++dc) {
      auto& shards = view.shard_addrs_override[static_cast<std::size_t>(dc)];
      shards.resize(static_cast<std::size_t>(view.num_shards));
      for (int shard = 0; shard < view.num_shards; ++shard) {
        if (!(in >> shards[static_cast<std::size_t>(shard)]))
          return std::nullopt;
      }
      if (!(in >> view.coord_addrs_override[static_cast<std::size_t>(dc)]))
        return std::nullopt;
    }
  }
  return view;
}

// ------------------------------------------------------------ ViewProvider

ViewProvider::ViewProvider(ClusterView initial) {
  view_ = std::make_shared<const ClusterView>(std::move(initial));
  history_.push_back(view_);
}

std::shared_ptr<const ClusterView> ViewProvider::get() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

std::int64_t ViewProvider::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_->epoch;
}

bool ViewProvider::install(ClusterView next) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next.epoch <= view_->epoch) return false;
  view_ = std::make_shared<const ClusterView>(std::move(next));
  history_.push_back(view_);
  if (history_.size() > kHistory) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(history_.size() - kHistory));
  }
  return true;
}

std::shared_ptr<const ClusterView> ViewProvider::at_epoch(
    std::int64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& v : history_) {
    if (v->epoch == epoch) return v;
  }
  return nullptr;
}

// ------------------------------------------------------- wrong-epoch NACK

std::string wrong_epoch_error(const ClusterView& view) {
  return std::string(kWrongEpoch) + " " + view.to_wire();
}

bool is_wrong_epoch(const std::string& error) {
  return error.find(kWrongEpoch) != std::string::npos;
}

std::optional<ClusterView> parse_wrong_epoch(const std::string& error) {
  const auto pos = error.find(kWrongEpoch);
  if (pos == std::string::npos) return std::nullopt;
  const auto payload = error.find("CV1", pos);
  if (payload == std::string::npos) return std::nullopt;
  return ClusterView::from_wire(error.substr(payload));
}

}  // namespace srpc::rc
