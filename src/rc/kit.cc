#include "rc/kit.h"

#include <condition_variable>
#include <mutex>

#include "common/executor.h"

namespace srpc::rc {

void TradKit::register_handler(const std::string& name, AsyncHandler handler) {
  node_.register_method(
      name, [handler](const rpc::CallContext&, ValueList args,
                      rpc::Responder responder) {
        auto shared = std::make_shared<rpc::Responder>(std::move(responder));
        handler(std::move(args), [shared](Outcome outcome) {
          if (outcome.ok) {
            shared->finish(std::move(outcome.value));
          } else {
            shared->fail(outcome.error);
          }
        });
      });
}

void SpecKit::register_handler(const std::string& name, AsyncHandler handler) {
  engine_.register_method(
      name, spec::Handler([handler](const spec::ServerCallPtr& call) {
        handler(call->args(), [call](Outcome outcome) {
          if (outcome.ok) {
            call->finish(std::move(outcome.value));
          } else {
            call->fail(outcome.error);
          }
        });
      }));
}

QuorumResult quorum_wait_detailed(const std::vector<FuturePtr>& futures,
                                  int quorum) {
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Outcome> successes;
    std::vector<std::string> errors;
  };
  auto state = std::make_shared<State>();
  const int total = static_cast<int>(futures.size());
  for (const auto& f : futures) {
    f->then([state, quorum, total](const Outcome& outcome) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (outcome.ok) {
        if (static_cast<int>(state->successes.size()) < quorum)
          state->successes.push_back(outcome);
      } else {
        state->errors.push_back(outcome.error);
      }
      if (static_cast<int>(state->successes.size()) >= quorum ||
          static_cast<int>(state->errors.size()) > total - quorum) {
        state->cv.notify_all();
      }
    });
  }
  Executor::before_block();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return static_cast<int>(state->successes.size()) >= quorum ||
           static_cast<int>(state->errors.size()) > total - quorum;
  });
  return QuorumResult{state->successes, state->errors};
}

std::vector<Outcome> quorum_wait(const std::vector<FuturePtr>& futures,
                                 int quorum) {
  return quorum_wait_detailed(futures, quorum).successes;
}

}  // namespace srpc::rc
