// ProcessCluster — cross-process Replicated Commit harness.
//
// Forks one `rc_cluster_node` process per datacentre role (a server process
// hosting that DC's 3 shard transports + coordinator, and a client process
// hosting its client machines), exchanges real TCP addresses over the
// children's stdio pipes, barriers on readiness, runs the closed-loop
// workload in the client processes, and aggregates their RESULT lines.
// This is the first configuration where the RC evaluation crosses real
// process boundaries on the TcpTransport instead of SimNetwork.
//
// Pipe line protocol (one line per step, parent-driven):
//
//   child  -> parent : ADDRS <shard0> ... <shardN-1> <coord>      (servers)
//   child  -> parent : ADDRS -                                    (clients)
//   parent -> child  : TOPOLOGY <a(0,0)> ... <a(0,N-1)> <c(0)> <a(1,0)>...
//   child  -> parent : READY
//   parent -> child  : RUN
//   client -> parent : RESULT committed=... aborted=... mean_us=...
//   parent -> child  : QUIT
//
// Children that miss a phase deadline are SIGKILLed; a child that dies
// mid-protocol (its pipe EOFs) fails the run immediately with the child's
// exit status in the error, rather than stalling out the phase deadline.
// Teardown is otherwise cooperative (QUIT, then waitpid).
#pragma once

#include <string>
#include <vector>

#include "common/flavor.h"
#include "common/types.h"
#include "rc/server.h"

namespace srpc::rc {

struct ProcessClusterConfig {
  Flavor flavor = Flavor::kTrad;
  int num_dcs = 3;
  int num_shards = 3;
  int clients_per_dc = 4;
  /// Quorum sizes forwarded to every RcClient (shrink to 1 for the
  /// single-DC smoke configuration).
  int read_quorum = 2;
  int vote_quorum = 2;
  std::size_t num_keys = 20'000;
  std::size_t value_size = 16;
  /// >0 enables the CpuModel on every server (Figure 13 configuration).
  int server_cores = 0;
  ServerCosts costs;
  /// Multiplier on `costs` for every datacentre other than DC 0. Loopback
  /// has no WAN RTT, so the latency asymmetry the paper gets from geography
  /// (the local replica answers long before the quorum completes, §5.2) is
  /// reproduced as a service-time asymmetry: DC 0 answers fast, the DCs
  /// that complete the quorum answer slow. 1.0 = symmetric.
  double remote_cost_mult = 1.0;
  /// gRPC flavour only: GrpcSim per-message overhead.
  double grpc_overhead_us = 75.0;
  std::string workload = "ycsbt";  // "ycsbt" | "retwis" | "qstream"
  int ops_per_txn = 5;
  double read_fraction = 0.5;
  /// qstream (batch-epoch) knobs, used when workload == "qstream". The
  /// client processes then host batch::BatchClients instead of RcClients;
  /// RESULT latency fields are per-epoch rather than per-txn.
  std::string batch_mode = "speculative";  // | "group-commit" | "per-txn-2pc"
  int txns_per_epoch = 32;
  /// Adaptive batching (DESIGN.md §14) in the client processes: every batch
  /// client gets an AdaptiveBatchController sizing epochs within
  /// [min_epoch, max_epoch] and picking the commit mode online; batch_mode
  /// becomes its initial mode and txns_per_epoch its initial size.
  bool adaptive_batch = false;
  int min_epoch = 4;
  int max_epoch = 64;
  int hot_keys = 16;
  double hot_fraction = 0.5;
  double cross_fraction = 0.3;
  std::uint64_t seed = 1;
  Duration warmup = std::chrono::milliseconds(200);
  Duration measure = std::chrono::seconds(2);
  /// Path to rc_cluster_node; empty = find_node_binary().
  std::string node_binary;
  /// Per-protocol-phase deadline before children are declared hung.
  Duration phase_timeout = std::chrono::seconds(60);
};

struct ProcessClusterResult {
  bool ok = false;
  std::string error;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t read_only = 0;
  double elapsed_s = 0;
  double mean_txn_ms = 0;    // committed-weighted mean over client processes
  double p50_txn_ms = 0;     // committed-weighted mean of per-process p50s
  double p99_txn_ms = 0;     // max over client processes (conservative)
  double mean_commit_ms = 0;
  /// Adaptive-batching counters summed over client processes (zero when
  /// adaptive_batch is off or the node binary predates them).
  std::uint64_t adaptive_epochs = 0;
  std::uint64_t mode_flips = 0;
  std::uint64_t probes = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  double committed_per_s() const {
    return elapsed_s > 0 ? static_cast<double>(committed) / elapsed_s : 0;
  }
};

class ProcessCluster {
 public:
  /// Locates the rc_cluster_node binary: $SPECRPC_CLUSTER_NODE_BIN, then
  /// candidates relative to /proc/self/exe (same directory, and the build
  /// tree's src/rc/ from tests/ or bench/). Empty string when not found —
  /// callers (tests) skip rather than fail.
  static std::string find_node_binary();

  explicit ProcessCluster(ProcessClusterConfig config);
  ~ProcessCluster();

  /// Full lifecycle: spawn, address exchange, readiness barrier, RUN,
  /// collect client RESULTs, QUIT + reap. Children are SIGKILLed on any
  /// phase timeout and the result carries `error` instead of numbers.
  ProcessClusterResult run();

 private:
  struct Child {
    pid_t pid = -1;
    int to_child = -1;    // parent writes protocol lines here
    int from_child = -1;  // parent reads protocol lines here
    std::string buf;      // partial-line accumulator
    bool is_client = false;
  };

  bool spawn(const std::vector<std::string>& kv, bool is_client,
             std::string& error);
  /// On failure `why` (when non-null) says whether the deadline expired or
  /// the child's pipe EOFed — including the dead child's exit status.
  bool read_line(Child& c, std::string& line, TimePoint deadline,
                 std::string* why = nullptr);
  bool write_line(Child& c, const std::string& line);
  /// Reaps a child that closed its pipe and formats how it went down.
  std::string child_status(Child& c);
  void kill_all();
  void reap_all(Duration grace);

  ProcessClusterConfig config_;
  std::string binary_;
  std::vector<Child> children_;
};

}  // namespace srpc::rc
