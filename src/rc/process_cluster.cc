#include "rc/process_cluster.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace srpc::rc {
namespace {

std::string exe_dir() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string path(buf);
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? std::string(".") : path.substr(0, pos);
}

const char* flavor_arg(Flavor f) {
  switch (f) {
    case Flavor::kGrpc: return "grpc";
    case Flavor::kTrad: return "trad";
    case Flavor::kSpec: return "spec";
  }
  return "trad";
}

double field(const std::string& line, const std::string& key) {
  const auto pos = line.find(key + "=");
  if (pos == std::string::npos) return 0;
  return std::strtod(line.c_str() + pos + key.size() + 1, nullptr);
}

std::int64_t us_of(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

}  // namespace

std::string ProcessCluster::find_node_binary() {
  if (const char* env = std::getenv("SPECRPC_CLUSTER_NODE_BIN")) {
    if (access(env, X_OK) == 0) return env;
  }
  const std::string dir = exe_dir();
  if (dir.empty()) return {};
  // Same directory (installed layout), then the build tree's src/rc/ as
  // seen from build/tests/ or build/bench/.
  for (const char* rel :
       {"/rc_cluster_node", "/../src/rc/rc_cluster_node",
        "/../../src/rc/rc_cluster_node"}) {
    const std::string candidate = dir + rel;
    if (access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return {};
}

ProcessCluster::ProcessCluster(ProcessClusterConfig config)
    : config_(std::move(config)) {
  binary_ = config_.node_binary.empty() ? find_node_binary()
                                        : config_.node_binary;
}

ProcessCluster::~ProcessCluster() {
  kill_all();
  reap_all(std::chrono::seconds(5));
}

bool ProcessCluster::spawn(const std::vector<std::string>& kv, bool is_client,
                           std::string& error) {
  int to_child[2];    // parent -> child stdin
  int from_child[2];  // child stdout -> parent
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    error = "pipe() failed";
    return false;
  }
  // Parent-side ends must not leak into later-forked siblings: a sibling
  // holding an earlier child's stdout write-end keeps that pipe open after
  // the child dies, so the parent never sees EOF and stalls out the full
  // phase deadline instead of failing fast.
  fcntl(to_child[1], F_SETFD, FD_CLOEXEC);
  fcntl(from_child[0], F_SETFD, FD_CLOEXEC);
  const pid_t pid = fork();
  if (pid < 0) {
    error = "fork() failed";
    return false;
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary_.c_str()));
    for (const auto& arg : kv) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    execv(binary_.c_str(), argv.data());
    // Exec failure must not return into the parent's state.
    std::fprintf(stderr, "execv %s: %s\n", binary_.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  Child c;
  c.pid = pid;
  c.to_child = to_child[1];
  c.from_child = from_child[0];
  c.is_client = is_client;
  children_.push_back(std::move(c));
  return true;
}

bool ProcessCluster::read_line(Child& c, std::string& line,
                               TimePoint deadline, std::string* why) {
  for (;;) {
    const auto nl = c.buf.find('\n');
    if (nl != std::string::npos) {
      line = c.buf.substr(0, nl);
      c.buf.erase(0, nl + 1);
      return true;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      if (why != nullptr) *why = "deadline expired";
      return false;
    }
    pollfd pfd{c.from_child, POLLIN, 0};
    const int pr = poll(&pfd, 1, static_cast<int>(left.count()));
    if (pr < 0 && errno == EINTR) continue;
    if (pr == 0) {
      if (why != nullptr) *why = "deadline expired";
      return false;
    }
    if (pr < 0) {
      if (why != nullptr) *why = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    char chunk[4096];
    const ssize_t n = read(c.from_child, chunk, sizeof(chunk));
    if (n <= 0) {
      // Child died or closed stdout: fail fast with its fate instead of
      // waiting out the phase deadline.
      if (why != nullptr) *why = "child pipe EOF (" + child_status(c) + ")";
      return false;
    }
    c.buf.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string ProcessCluster::child_status(Child& c) {
  if (c.pid <= 0) return "already reaped";
  // Give a just-died child a moment to become reapable.
  for (int i = 0; i < 20; ++i) {
    int status = 0;
    const pid_t r = waitpid(c.pid, &status, WNOHANG);
    if (r == c.pid) {
      c.pid = -1;
      if (WIFEXITED(status)) {
        return "exit status " + std::to_string(WEXITSTATUS(status));
      }
      if (WIFSIGNALED(status)) {
        return "killed by signal " + std::to_string(WTERMSIG(status));
      }
      return "exited";
    }
    if (r < 0) return std::string("waitpid: ") + std::strerror(errno);
    usleep(10'000);
  }
  return "still running with stdout closed";
}

bool ProcessCluster::write_line(Child& c, const std::string& line) {
  const std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = write(c.to_child, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void ProcessCluster::kill_all() {
  for (auto& c : children_) {
    if (c.pid > 0) kill(c.pid, SIGKILL);
  }
}

void ProcessCluster::reap_all(Duration grace) {
  const TimePoint deadline = Clock::now() + grace;
  for (auto& c : children_) {
    if (c.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = waitpid(c.pid, &status, WNOHANG);
      if (r == c.pid) break;
      if (r < 0) break;
      if (Clock::now() >= deadline) {
        kill(c.pid, SIGKILL);
        waitpid(c.pid, &status, 0);
        break;
      }
      usleep(10'000);
    }
    if (c.to_child >= 0) ::close(c.to_child);
    if (c.from_child >= 0) ::close(c.from_child);
    c.pid = -1;
    c.to_child = -1;
    c.from_child = -1;
  }
  children_.clear();
}

ProcessClusterResult ProcessCluster::run() {
  ProcessClusterResult result;
  if (binary_.empty()) {
    result.error = "rc_cluster_node binary not found";
    return result;
  }
  // A child dying mid-protocol turns the parent's next write into EPIPE;
  // we want the read_line timeout path, not a signal.
  signal(SIGPIPE, SIG_IGN);

  auto common_args = [&](int dc) {
    // The WAN stand-in: servers outside DC 0 charge scaled service times
    // (see remote_cost_mult in the header).
    const double mult = dc == 0 ? 1.0 : config_.remote_cost_mult;
    auto scaled = [&](Duration d) {
      return std::to_string(
          static_cast<std::int64_t>(static_cast<double>(us_of(d)) * mult));
    };
    std::vector<std::string> kv = {
        std::string("dc=") + std::to_string(dc),
        std::string("flavor=") + flavor_arg(config_.flavor),
        "num_dcs=" + std::to_string(config_.num_dcs),
        "num_shards=" + std::to_string(config_.num_shards),
        "clients_per_dc=" + std::to_string(config_.clients_per_dc),
        "read_quorum=" + std::to_string(config_.read_quorum),
        "vote_quorum=" + std::to_string(config_.vote_quorum),
        "num_keys=" + std::to_string(config_.num_keys),
        "value_size=" + std::to_string(config_.value_size),
        "server_cores=" + std::to_string(config_.server_cores),
        "read_us=" + scaled(config_.costs.read),
        "prepare_us=" + scaled(config_.costs.prepare),
        "apply_us=" + scaled(config_.costs.apply),
        "commit_us=" + scaled(config_.costs.commit),
        "grpc_overhead_us=" + std::to_string(config_.grpc_overhead_us),
        "workload=" + config_.workload,
        "ops_per_txn=" + std::to_string(config_.ops_per_txn),
        "read_fraction=" + std::to_string(config_.read_fraction),
        "batch_mode=" + config_.batch_mode,
        "txns_per_epoch=" + std::to_string(config_.txns_per_epoch),
        "adaptive_batch=" + std::to_string(config_.adaptive_batch ? 1 : 0),
        "min_epoch=" + std::to_string(config_.min_epoch),
        "max_epoch=" + std::to_string(config_.max_epoch),
        "hot_keys=" + std::to_string(config_.hot_keys),
        "hot_fraction=" + std::to_string(config_.hot_fraction),
        "cross_fraction=" + std::to_string(config_.cross_fraction),
        "seed=" + std::to_string(config_.seed),
        "warmup_ms=" +
            std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                               config_.warmup)
                               .count()),
        "measure_ms=" +
            std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                               config_.measure)
                               .count()),
    };
    return kv;
  };

  for (int dc = 0; dc < config_.num_dcs; ++dc) {
    auto kv = common_args(dc);
    kv.push_back("role=server");
    if (!spawn(kv, /*is_client=*/false, result.error)) {
      kill_all();
      reap_all(std::chrono::seconds(2));
      return result;
    }
  }
  for (int dc = 0; dc < config_.num_dcs; ++dc) {
    auto kv = common_args(dc);
    kv.push_back("role=client");
    if (!spawn(kv, /*is_client=*/true, result.error)) {
      kill_all();
      reap_all(std::chrono::seconds(2));
      return result;
    }
  }

  auto fail = [&](const std::string& why) {
    result.ok = false;
    result.error = why;
    kill_all();
    reap_all(std::chrono::seconds(5));
    return result;
  };

  // Phase 1: collect ADDRS from every child (servers announce their four
  // listening endpoints; clients answer "ADDRS -" to keep the barrier
  // uniform), then broadcast the full TCP topology.
  TimePoint deadline = Clock::now() + config_.phase_timeout;
  std::vector<std::string> topo_addrs;  // dc-major: s0..sN-1 coord per DC
  for (auto& c : children_) {
    std::string line, why;
    if (!read_line(c, line, deadline, &why))
      return fail("waiting ADDRS: " + why);
    if (line.rfind("ADDRS", 0) != 0) return fail("bad ADDRS line: " + line);
    if (c.is_client) continue;
    std::istringstream in(line.substr(5));
    std::string addr;
    while (in >> addr) topo_addrs.push_back(addr);
  }
  if (topo_addrs.size() != static_cast<std::size_t>(config_.num_dcs) *
                               static_cast<std::size_t>(config_.num_shards + 1)) {
    return fail("wrong topology size from servers");
  }
  std::string topo_line = "TOPOLOGY";
  for (const auto& addr : topo_addrs) topo_line += " " + addr;
  for (auto& c : children_) {
    if (!write_line(c, topo_line)) return fail("child died before TOPOLOGY");
  }

  // Phase 2: readiness barrier, then start the measured run everywhere.
  deadline = Clock::now() + config_.phase_timeout;
  for (auto& c : children_) {
    std::string line, why;
    if (!read_line(c, line, deadline, &why))
      return fail("waiting READY: " + why);
    if (line != "READY") return fail("bad READY line: " + line);
  }
  for (auto& c : children_) {
    if (!write_line(c, "RUN")) return fail("child died before RUN");
  }

  // Phase 3: client RESULT lines. Allow the workload duration on top of the
  // protocol timeout.
  deadline = Clock::now() + config_.phase_timeout + config_.warmup +
             config_.measure;
  double mean_weight = 0, commit_weight = 0;
  for (auto& c : children_) {
    if (!c.is_client) continue;
    std::string line, why;
    if (!read_line(c, line, deadline, &why))
      return fail("waiting RESULT: " + why);
    if (line.rfind("RESULT", 0) != 0) return fail("bad RESULT line: " + line);
    const double committed = field(line, "committed");
    result.committed += static_cast<std::uint64_t>(committed);
    result.aborted += static_cast<std::uint64_t>(field(line, "aborted"));
    result.read_only += static_cast<std::uint64_t>(field(line, "read_only"));
    result.elapsed_s = std::max(result.elapsed_s, field(line, "elapsed_s"));
    result.mean_txn_ms += committed * field(line, "mean_us") / 1000.0;
    result.p50_txn_ms += committed * field(line, "p50_us") / 1000.0;
    result.p99_txn_ms =
        std::max(result.p99_txn_ms, field(line, "p99_us") / 1000.0);
    mean_weight += committed;
    const double commits = field(line, "commit_count");
    result.mean_commit_ms += commits * field(line, "commit_mean_us") / 1000.0;
    commit_weight += commits;
    result.adaptive_epochs +=
        static_cast<std::uint64_t>(field(line, "adaptive_epochs"));
    result.mode_flips += static_cast<std::uint64_t>(field(line, "mode_flips"));
    result.probes += static_cast<std::uint64_t>(field(line, "probes"));
    result.grows += static_cast<std::uint64_t>(field(line, "grows"));
    result.shrinks += static_cast<std::uint64_t>(field(line, "shrinks"));
  }
  if (mean_weight > 0) {
    result.mean_txn_ms /= mean_weight;
    result.p50_txn_ms /= mean_weight;
  }
  if (commit_weight > 0) result.mean_commit_ms /= commit_weight;

  // Phase 4: cooperative teardown.
  for (auto& c : children_) write_line(c, "QUIT");
  reap_all(std::chrono::seconds(20));
  result.ok = true;
  return result;
}

}  // namespace srpc::rc
