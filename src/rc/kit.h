// RpcKit — the thin framework-independence seam for Replicated Commit.
//
// The paper evaluates three builds of the same RC prototype: gRPC, TradRPC
// and SpecRPC (§5.2, "Our SpecRPC changes do not modify the commit
// protocol"). RC's servers and its non-speculative client paths are written
// against this minimal async-RPC surface; the only SpecRPC-specific code is
// the speculative read chain in the client (mirroring the paper's ~300
// client-side lines of changes).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/timer_wheel.h"

#include "grpcsim/grpcsim.h"
#include "rpc/node.h"
#include "specrpc/engine.h"

namespace srpc::rc {

using Future = rpc::Future;
using FuturePtr = rpc::Future::Ptr;
using Outcome = rpc::Outcome;

/// Server handler: args in, respond exactly once (possibly later/async).
using AsyncHandler =
    std::function<void(ValueList args, std::function<void(Outcome)> respond)>;

class RpcKit {
 public:
  virtual ~RpcKit() = default;

  virtual void register_handler(const std::string& name,
                                AsyncHandler handler) = 0;
  virtual FuturePtr call(const Address& dst, const std::string& method,
                         ValueList args) = 0;
  virtual const Address& address() const = 0;
  virtual TimerWheel& wheel() = 0;

  /// The SpecRPC engine when this kit wraps one, else nullptr. The RC client
  /// uses it to build the speculative read chain.
  virtual spec::SpecEngine* spec_engine() { return nullptr; }
};

/// Kit over the TradRPC engine (also used, with GrpcSim knobs, for the gRPC
/// stand-in — construct the rpc::Node with grpcsim::to_node_config).
class TradKit final : public RpcKit {
 public:
  explicit TradKit(rpc::Node& node) : node_(node) {}

  void register_handler(const std::string& name, AsyncHandler handler) override;
  FuturePtr call(const Address& dst, const std::string& method,
                 ValueList args) override {
    return node_.call(dst, method, std::move(args));
  }
  const Address& address() const override { return node_.address(); }
  TimerWheel& wheel() override { return node_.wheel(); }

 private:
  rpc::Node& node_;
};

/// Kit over the SpecRPC engine: plain (prediction-less) calls.
class SpecKit final : public RpcKit {
 public:
  explicit SpecKit(spec::SpecEngine& engine) : engine_(engine) {}

  void register_handler(const std::string& name, AsyncHandler handler) override;
  FuturePtr call(const Address& dst, const std::string& method,
                 ValueList args) override {
    return engine_.call(dst, method, std::move(args));
  }
  const Address& address() const override { return engine_.address(); }
  TimerWheel& wheel() override { return engine_.wheel(); }
  spec::SpecEngine* spec_engine() override { return &engine_; }

 private:
  spec::SpecEngine& engine_;
};

/// Blocks for the first `quorum` successful outcomes of `futures`; returns
/// them. If success becomes impossible, returns what arrived (size < quorum).
std::vector<Outcome> quorum_wait(const std::vector<FuturePtr>& futures,
                                 int quorum);

/// quorum_wait plus the error strings of failed futures — callers that need
/// to distinguish wrong-epoch NACKs (rc/view.h) from transport faults use
/// this form.
struct QuorumResult {
  std::vector<Outcome> successes;
  std::vector<std::string> errors;
};
QuorumResult quorum_wait_detailed(const std::vector<FuturePtr>& futures,
                                  int quorum);

}  // namespace srpc::rc
