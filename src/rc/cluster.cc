#include "rc/cluster.h"

#include <algorithm>
#include <cstdio>

namespace srpc::rc {

struct RcCluster::NodeBundle {
  Transport* transport = nullptr;
  // Exactly one of the engines is set, matching the cluster flavour.
  std::unique_ptr<rpc::Node> rpc_node;
  std::unique_ptr<spec::SpecEngine> spec_engine;
  std::unique_ptr<RpcKit> kit;
};

RcCluster::NodeBundle& RcCluster::make_node(
    int dc, const std::string& name, bool with_predictor,
    predict::PredictorPtr predictor_override) {
  auto bundle = std::make_unique<NodeBundle>();
  bundle->transport = &geo_->add_machine(dc, name);
  switch (config_.flavor) {
    case Flavor::kGrpc: {
      grpcsim::GrpcSimConfig grpc_config;
      grpc_config.call_timeout = config_.call_timeout;
      grpc_config.retry = config_.retry;
      auto node_config = grpcsim::to_node_config(grpc_config);
      bundle->rpc_node = std::make_unique<rpc::Node>(
          *bundle->transport, *work_executor_, net_->wheel(), node_config);
      bundle->kit = std::make_unique<TradKit>(*bundle->rpc_node);
      break;
    }
    case Flavor::kTrad: {
      rpc::NodeConfig node_config;
      node_config.call_timeout = config_.call_timeout;
      node_config.retry = config_.retry;
      bundle->rpc_node = std::make_unique<rpc::Node>(
          *bundle->transport, *work_executor_, net_->wheel(), node_config);
      bundle->kit = std::make_unique<TradKit>(*bundle->rpc_node);
      break;
    }
    case Flavor::kSpec: {
      spec::SpecConfig spec_config;
      spec_config.call_timeout = config_.call_timeout;
      spec_config.retry = config_.retry;
      spec_config.budget.max_inflight = config_.spec_budget;
      if (with_predictor &&
          (predictor_override != nullptr ||
           config_.read_predictor != predict::Kind::kNone)) {
        predict::ManagerConfig mgr_config;
        mgr_config.adaptive = config_.adaptive_speculation;
        mgr_config.adaptive_config = config_.adaptive;
        mgr_config.admission = admission_;  // shared; null when disabled
        auto predictor = predictor_override != nullptr
                             ? std::move(predictor_override)
                             : predict::make_predictor(config_.read_predictor,
                                                       config_.predictor_config);
        predict_managers_.push_back(
            std::make_unique<predict::SpeculationManager>(std::move(predictor),
                                                          mgr_config));
        predict_managers_.back()->install(spec_config);
      }
      bundle->spec_engine = std::make_unique<spec::SpecEngine>(
          *bundle->transport, *work_executor_, net_->wheel(), spec_config);
      bundle->kit = std::make_unique<SpecKit>(*bundle->spec_engine);
      break;
    }
  }
  nodes_.push_back(std::move(bundle));
  return *nodes_.back();
}

RcCluster::RcCluster(ClusterConfig config) : config_(std::move(config)) {
  num_dcs_ = static_cast<int>(config_.geo.dc_names.size());
  total_shards_ = config_.num_shards + config_.spare_shards;
  // Epoch-1 view: the active shards share the slots round-robin; spares are
  // addressable but own nothing until a migration. The geo topology's DC
  // names drive both machine addressing and the view's logical addresses.
  base_view_ = ClusterView::make_static(num_dcs_, total_shards_,
                                        config_.num_shards);
  base_view_.dc_names = config_.geo.dc_names;

  SimConfig sim_config;
  sim_config.executor_threads = config_.executor_threads;
  sim_config.seed = config_.seed;
  net_ = std::make_unique<SimNetwork>(sim_config);
  const int total_clients = num_dcs_ * config_.clients_per_dc;
  work_executor_ = std::make_unique<Executor>(
      std::max(32, total_clients * 3 + 16), "rc-work");
  geo_ = std::make_unique<GeoTopology>(*net_, config_.geo);

  // Cluster-wide overload admission (DESIGN.md §11): one controller watches
  // the shared work executor's queue depth; every client's manager consults
  // it before speculating. Created before make_node so the managers can
  // capture it.
  if (config_.batch_clients) {
    batch_gauge_ = std::make_shared<batch::BatchQueueGauge>(total_shards_);
  }
  if (config_.flavor == Flavor::kSpec && config_.admission_control) {
    admission_ =
        std::make_shared<predict::AdmissionController>(config_.admission);
    admission_->add_source([exec = work_executor_.get()] {
      predict::PressureSample s;
      s.queue_depth = exec->queue_depth();
      return s;
    });
    // Batch-queue occupancy is a second pressure axis (DESIGN.md §12.6):
    // planned-but-undecided batch operations count against the same ladder.
    if (batch_gauge_ != nullptr) {
      admission_->add_source(batch::batch_pressure_source(batch_gauge_));
    }
  }

  // Preload the dataset once, then copy into every replica.
  std::vector<std::pair<std::string, std::string>> dataset;
  dataset.reserve(config_.num_keys);
  for (std::size_t i = 0; i < config_.num_keys; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08zu", i);
    dataset.emplace_back(key, std::string(config_.value_size, 'v'));
  }

  for (int dc = 0; dc < num_dcs_; ++dc) {
    for (int shard = 0; shard < total_shards_; ++shard) {
      auto& bundle = make_node(dc, "shard" + std::to_string(shard));
      auto store = std::make_unique<kv::VersionedStore>();
      for (const auto& [key, value] : dataset) {
        if (base_view_.shard_of(key) == shard) store->load(key, value, 1);
      }
      CpuModel* cpu = nullptr;
      if (config_.server_cores > 0) {
        cpus_.push_back(std::make_unique<CpuModel>(net_->wheel(),
                                                   config_.server_cores));
        cpu = cpus_.back().get();
      }
      kv::TxnLog* log = nullptr;
      if (!config_.log_dir.empty()) {
        logs_.push_back(std::make_unique<kv::TxnLog>(
            config_.log_dir + "/" + std::to_string(dc) + "." +
            std::to_string(shard) + ".rclog"));
        log = logs_.back().get();
      }
      shard_servers_.push_back(std::make_unique<ShardServer>(
          *bundle.kit, *store, std::make_shared<ViewProvider>(base_view_), dc,
          shard, cpu, config_.costs, log));
      stores_.push_back(std::move(store));
    }
    auto& coord_bundle = make_node(dc, "coord");
    CpuModel* coord_cpu = nullptr;
    if (config_.server_cores > 0) {
      cpus_.push_back(std::make_unique<CpuModel>(net_->wheel(),
                                                 config_.server_cores));
      coord_cpu = cpus_.back().get();
    }
    coordinators_.push_back(std::make_unique<Coordinator>(
        *coord_bundle.kit, std::make_shared<ViewProvider>(base_view_), dc,
        coord_cpu, config_.costs));
  }

  // The viewctl node: hosts the ViewCoordinator driving reconfiguration.
  auto& viewctl_bundle = make_node(0, "viewctl");
  views_ = std::make_shared<ViewProvider>(base_view_);
  view_coordinator_ =
      std::make_unique<ViewCoordinator>(*viewctl_bundle.kit, views_);

  for (int dc = 0; dc < num_dcs_; ++dc) {
    for (int i = 0; i < config_.clients_per_dc; ++i) {
      // Batch clients under kSpec replace the config-selected read predictor
      // with a QueueSeedPredictor: queue-order seeds flow through the same
      // PredictionSupplier/observer hooks (and thus the same accuracy,
      // budget and admission machinery) as ordinary read prediction.
      std::shared_ptr<batch::SeedStore> seeds;
      std::shared_ptr<batch::QueueSeedPredictor> qpredictor;
      if (config_.batch_clients && config_.flavor == Flavor::kSpec) {
        seeds = std::make_shared<batch::SeedStore>();
        qpredictor = std::make_shared<batch::QueueSeedPredictor>(seeds);
      }
      auto& bundle = make_node(dc, "client" + std::to_string(i),
                               /*with_predictor=*/true, qpredictor);
      // One provider per client machine, shared by its RcClient and
      // BatchClient: a wrong-epoch refresh learned by either immediately
      // reroutes the other.
      auto client_views = std::make_shared<ViewProvider>(base_view_);
      RcClientConfig client_config;
      client_config.my_dc = dc;
      clients_.push_back(std::make_unique<RcClient>(*bundle.kit, client_views,
                                                    client_config));
      if (config_.batch_clients) {
        if (seeds != nullptr) seeds->attach_engine(bundle.spec_engine.get());
        batch::BatchClientConfig batch_config;
        batch_config.my_dc = dc;
        batch_config.mode = config_.batch_mode;
        batch_config.txns_per_epoch = config_.batch_txns_per_epoch;
        batch_clients_.push_back(std::make_unique<batch::BatchClient>(
            *bundle.kit, client_views, batch_config, seeds, qpredictor,
            batch_gauge_));
        if (config_.adaptive_batch) {
          // Per-client controller: epoch streams are per client, so the
          // signals (and the right operating point) are too. Non-spec
          // flavours have no engine to speculate with, so the controller
          // only moves on the per-txn/group axis there.
          batch::AdaptiveBatchConfig acfg = config_.adaptive_batch_config;
          acfg.initial_mode = config_.batch_mode;
          acfg.allow_speculative = config_.flavor == Flavor::kSpec;
          batch_clients_.back()->set_controller(
              std::make_shared<batch::AdaptiveBatchController>(acfg));
          batch_clients_.back()->set_admission(admission_);
        }
      }
    }
  }
}

RcCluster::~RcCluster() {
  // Teardown order matters: (1) stop engines so computations parked in
  // spec_block unwind, (2) drain the work executor so no callback still
  // references an engine, (3) destroy engines/servers, (4) the network.
  for (auto& node : nodes_) {
    if (node->spec_engine) node->spec_engine->begin_shutdown();
  }
  work_executor_->shutdown();
  // Join the timer thread before destroying servers: pending timers (read
  // retries, service-time completions, view pulls) capture raw server
  // pointers.
  net_->wheel().shutdown();
  view_coordinator_.reset();
  batch_clients_.clear();
  clients_.clear();
  coordinators_.clear();
  shard_servers_.clear();
  nodes_.clear();
  cpus_.clear();
  logs_.clear();
  stores_.clear();
  geo_.reset();
  net_.reset();
  work_executor_.reset();
}

predict::SpeculationManager* RcCluster::client_predictor(int dc, int index) {
  if (predict_managers_.empty()) return nullptr;
  return predict_managers_
      .at(static_cast<std::size_t>(dc * config_.clients_per_dc + index))
      .get();
}

batch::AdaptiveBatchStats RcCluster::adaptive_batch_stats() const {
  batch::AdaptiveBatchStats total;
  for (const auto& client : batch_clients_) {
    if (client->controller() != nullptr) total += client->controller()->stats();
  }
  return total;
}

predict::ManagerStats RcCluster::predict_stats() const {
  predict::ManagerStats total;
  for (const auto& mgr : predict_managers_) {
    const auto s = mgr->stats();
    total.supplier_calls += s.supplier_calls;
    total.predictions_supplied += s.predictions_supplied;
    total.gate_suppressed += s.gate_suppressed;
    total.predictor_empty += s.predictor_empty;
    total.learned += s.learned;
  }
  return total;
}

spec::SpecStats RcCluster::spec_stats() const {
  spec::SpecStats total;
  for (const auto& node : nodes_) {
    if (!node->spec_engine) continue;
    const auto s = node->spec_engine->stats();
    total.calls_issued += s.calls_issued;
    total.quorum_calls_issued += s.quorum_calls_issued;
    total.callbacks_spawned += s.callbacks_spawned;
    total.reexecutions += s.reexecutions;
    total.predictions_made += s.predictions_made;
    total.predictions_correct += s.predictions_correct;
    total.predictions_incorrect += s.predictions_incorrect;
    total.branches_abandoned += s.branches_abandoned;
    total.rollbacks_run += s.rollbacks_run;
    total.state_msgs_sent += s.state_msgs_sent;
    total.spec_returns += s.spec_returns;
    total.spec_blocks += s.spec_blocks;
    total.retries += s.retries;
  }
  return total;
}

}  // namespace srpc::rc
