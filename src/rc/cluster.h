// RcCluster — assembles the full Replicated Commit testbed over a simulated
// geo-network for one RPC framework flavour (the three bars of every RC
// figure: gRPC stand-in, TradRPC, SpecRPC).
//
// Topology per §5.2: 3 datacentres x 3 shard servers (full replication,
// one server per replica) + 1 coordinator per DC + N client machines per DC.
// PR 9 generalises both axes: num_shards is a knob, spare_shards adds
// slot-less servers (migration targets), and routing flows through an
// epoch-versioned ClusterView instead of a fixed hash (DESIGN.md §13). A
// dedicated "viewctl" node hosts the ViewCoordinator that drives live
// reconfiguration.
#pragma once

#include <memory>
#include <vector>

#include "batch/client.h"
#include "common/cpu_model.h"
#include "common/flavor.h"
#include "common/retry.h"
#include "predict/manager.h"
#include "predict/predictor.h"
#include "rc/client.h"
#include "rc/server.h"
#include "rc/view_coordinator.h"
#include "transport/geo.h"
#include "transport/sim_network.h"

namespace srpc::rc {

using srpc::Flavor;

struct ClusterConfig {
  Flavor flavor = Flavor::kTrad;
  GeoConfig geo;                    // latency matrix (Table 1 by default)
  int clients_per_dc = 16;
  /// Shards owning slots in the initial view.
  int num_shards = 3;
  /// Extra slot-less shard servers per DC: addressable from epoch 1 but
  /// owning nothing until a view change migrates slots onto them.
  int spare_shards = 0;
  std::size_t num_keys = 100'000;
  std::size_t value_size = 16;
  /// 0 = unconstrained servers (latency experiments); >0 enables the
  /// CpuModel with that many virtual cores per server (Figure 13).
  int server_cores = 0;
  ServerCosts costs;
  int executor_threads = 8;
  Duration call_timeout = std::chrono::seconds(30);
  /// Retry/deadline policy inherited by every node's RPC layer (all three
  /// flavours); disabled by default.
  RetryPolicy retry;
  std::uint64_t seed = 1;
  /// Non-empty: each shard server writes an async transaction log
  /// <log_dir>/<dc>.<shard>.rclog (the paper persists txn logs to SSD).
  std::string log_dir;
  /// kNone disables client-side read prediction. Any other kind gives every
  /// client machine (kSpec flavour only) its own predictor whose learned
  /// state feeds "rc.read" quorum calls through the engine's prediction
  /// hooks (DESIGN.md §8), on top of the first-response prediction of §4.1.
  predict::Kind read_predictor = predict::Kind::kNone;
  predict::PredictorConfig predictor_config;
  /// With a predictor installed: gate read speculation on observed accuracy
  /// (AdaptiveSpeculationController) instead of always speculating.
  bool adaptive_speculation = false;
  predict::AdaptiveConfig adaptive;
  /// Overload protection (DESIGN.md §11; kSpec flavour only). Bounds
  /// in-flight speculative branches per engine; 0 = unbounded.
  std::size_t spec_budget = 0;
  /// Adds one cluster-wide AdmissionController, fed by the shared work
  /// executor's queue depth and shared by every client's
  /// SpeculationManager: under executor pressure read speculation degrades
  /// to TradRPC before the queues grow unbounded.
  bool admission_control = false;
  predict::AdmissionConfig admission;
  /// Queue-oriented batch transactions (DESIGN.md §12): give every client
  /// machine a batch::BatchClient next to its RcClient. Under kSpec each
  /// batch client also gets a SeedStore + QueueSeedPredictor wired through
  /// the engine's prediction hooks, so queue-order seeding rides the same
  /// accuracy/budget/admission governance as read prediction; and the
  /// shared batch-queue gauge feeds the admission controller (if any) as an
  /// extra pressure source.
  bool batch_clients = false;
  batch::BatchMode batch_mode = batch::BatchMode::kSpeculative;
  /// Default epoch depth reported by BatchClient::next_epoch_size() when
  /// adaptive batching is off (sized workload sources honour it).
  std::size_t batch_txns_per_epoch = 8;
  /// Adaptive batching (DESIGN.md §14): give every batch client an
  /// AdaptiveBatchController that picks epoch size within
  /// [adaptive_batch_config.min_epoch, max_epoch] and commit mode online.
  /// batch_mode becomes the controller's initial mode; on non-spec flavours
  /// the speculative mode is excluded from its choices.
  bool adaptive_batch = false;
  batch::AdaptiveBatchConfig adaptive_batch_config;
};

class RcCluster {
 public:
  explicit RcCluster(ClusterConfig config);
  ~RcCluster();

  RcClient& client(int dc, int index) {
    return *clients_.at(static_cast<std::size_t>(dc * config_.clients_per_dc +
                                                 index));
  }
  /// The batch client of one client machine; only with config.batch_clients.
  batch::BatchClient& batch_client(int dc, int index) {
    return *batch_clients_.at(
        static_cast<std::size_t>(dc * config_.clients_per_dc + index));
  }
  /// Shared batch-queue occupancy gauge; nullptr unless batch_clients.
  const std::shared_ptr<batch::BatchQueueGauge>& batch_gauge() const {
    return batch_gauge_;
  }
  /// One client machine's adaptive batch controller; nullptr unless
  /// config.adaptive_batch. Index mirrors batch_client(dc, index).
  batch::AdaptiveBatchController* batch_controller(int dc, int index) {
    if (!config_.adaptive_batch || batch_clients_.empty()) return nullptr;
    return batch_client(dc, index).controller().get();
  }
  /// Controller counters summed over every batch client (zeroes when
  /// adaptive batching is off).
  batch::AdaptiveBatchStats adaptive_batch_stats() const;

  int clients_per_dc() const { return config_.clients_per_dc; }
  int num_dcs() const { return num_dcs_; }
  /// Slot-owning shards in the initial view (spares excluded).
  int num_shards() const { return config_.num_shards; }
  /// All addressable shard servers per DC, spares included.
  int total_shards() const { return total_shards_; }
  /// The viewctl node's current view — the newest view in the cluster once
  /// a proposal has been acked.
  std::shared_ptr<const ClusterView> view() const { return views_->get(); }
  /// Drives live reconfiguration (propose / migrate_slots / wait_ready).
  ViewCoordinator& view_coordinator() { return *view_coordinator_; }
  SimNetwork& net() { return *net_; }
  const ClusterConfig& config() const { return config_; }

  /// Sum of the SpecRPC stats over all engines (zeroes for other flavours).
  spec::SpecStats spec_stats() const;

  /// The read predictor attached to one client machine, or nullptr when the
  /// cluster runs without prediction (read_predictor == kNone or non-spec
  /// flavour). Index mirrors client(dc, index).
  predict::SpeculationManager* client_predictor(int dc, int index);
  /// The cluster-wide admission controller; nullptr unless
  /// config.admission_control (kSpec flavour).
  predict::AdmissionController* admission() { return admission_.get(); }
  /// Sum of the per-client prediction-manager counters.
  predict::ManagerStats predict_stats() const;

  /// Direct store access for invariants checks in tests (spares included).
  kv::VersionedStore& store(int dc, int shard) {
    return *stores_.at(static_cast<std::size_t>(dc * total_shards_ + shard));
  }
  /// Direct shard-server access (warming introspection in tests).
  ShardServer& shard_server(int dc, int shard) {
    return *shard_servers_.at(
        static_cast<std::size_t>(dc * total_shards_ + shard));
  }

 private:
  struct NodeBundle;  // one machine: transport + engine + kit (+ roles)

  /// `predictor_override` (kSpec only) replaces the config-selected read
  /// predictor for this node's SpeculationManager — the batch clients hand
  /// in their QueueSeedPredictor here.
  NodeBundle& make_node(int dc, const std::string& name,
                        bool with_predictor = false,
                        predict::PredictorPtr predictor_override = nullptr);

  ClusterConfig config_;
  int num_dcs_ = 0;
  int total_shards_ = 0;
  ClusterView base_view_;
  std::unique_ptr<SimNetwork> net_;
  /// Engines run callbacks/handlers here, isolated from the network's
  /// delivery executor: a callback parked in spec_block (§4.1) must never
  /// stall message delivery, or speculation could deadlock under load.
  std::unique_ptr<Executor> work_executor_;
  std::unique_ptr<GeoTopology> geo_;
  std::vector<std::unique_ptr<NodeBundle>> nodes_;
  std::vector<std::unique_ptr<kv::VersionedStore>> stores_;
  std::vector<std::unique_ptr<kv::TxnLog>> logs_;
  std::vector<std::unique_ptr<CpuModel>> cpus_;
  std::vector<std::unique_ptr<ShardServer>> shard_servers_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::vector<std::unique_ptr<RcClient>> clients_;
  /// Batch-mode companions (config.batch_clients): one BatchClient per
  /// client machine, sharing that machine's kit/engine — and its
  /// ViewProvider — with its RcClient.
  std::vector<std::unique_ptr<batch::BatchClient>> batch_clients_;
  std::shared_ptr<batch::BatchQueueGauge> batch_gauge_;
  /// The viewctl node's provider (also what view() reads).
  std::shared_ptr<ViewProvider> views_;
  std::unique_ptr<ViewCoordinator> view_coordinator_;
  /// One per client machine when read prediction is on (same order as
  /// clients_); empty otherwise. The installed hooks hold the state by
  /// shared_ptr, so destruction order vs. engines is not delicate.
  std::vector<std::unique_ptr<predict::SpeculationManager>> predict_managers_;
  /// Shared by every client manager when admission_control is on. Its
  /// pressure source samples work_executor_, so it must not be polled after
  /// the cluster is destroyed.
  std::shared_ptr<predict::AdmissionController> admission_;
};

}  // namespace srpc::rc
