#include "rc/server.h"

#include <map>
#include <mutex>

#include "common/logging.h"

namespace srpc::rc {

// ------------------------------------------------------------ ShardServer

ShardServer::ShardServer(RpcKit& kit, kv::VersionedStore& store, CpuModel* cpu,
                         ServerCosts costs, kv::TxnLog* log)
    : kit_(kit), store_(store), cpu_(cpu), costs_(costs), log_(log) {
  kit_.register_handler(
      kRead, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.read, [this, args = std::move(args),
                               respond = std::move(respond)] {
          serve_read(args.at(0).as_string(), std::move(respond),
                     /*attempt=*/0);
        });
      });

  kit_.register_handler(
      kPrepare, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.prepare, [this, args = std::move(args),
                                  respond = std::move(respond)] {
          const auto txn = static_cast<kv::TxnId>(args.at(0).as_int());
          const auto reads = decode_reads(args.at(1));
          const auto writes = decode_writes(args.at(2));
          const bool ok = store_.prepare(txn, reads, writes);
          respond(Outcome::success(Value(ok)));
        });
      });

  kit_.register_handler(
      kApply, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.apply, [this, args = std::move(args),
                                respond = std::move(respond)] {
          const auto txn = static_cast<kv::TxnId>(args.at(0).as_int());
          const auto writes = decode_writes(args.at(1));
          const std::int64_t version = args.at(2).as_int();
          store_.commit(txn, writes, version);
          if (log_ != nullptr) {
            log_->append(kv::CommitRecord{txn, version, writes});
          }
          respond(Outcome::success(Value(true)));
        });
      });

  kit_.register_handler(
      kAbort, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.apply, [this, args = std::move(args),
                                respond = std::move(respond)] {
          store_.abort(static_cast<kv::TxnId>(args.at(0).as_int()));
          respond(Outcome::success(Value(true)));
        });
      });

  // Batch mode (DESIGN.md §12). batch.read serves exactly like rc.read; the
  // extra args (epoch, shard, pos) exist only to give every queue position a
  // distinct predictor key on the client.
  kit_.register_handler(
      kBatchRead, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.read, [this, args = std::move(args),
                               respond = std::move(respond)] {
          serve_read(args.at(0).as_string(), std::move(respond),
                     /*attempt=*/0);
        });
      });
  kit_.register_handler(
      kBatchPrepare,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.prepare, [this, args = std::move(args),
                                  respond = std::move(respond)] {
          handle_batch_prepare(std::move(args), std::move(respond));
        });
      });
  kit_.register_handler(
      kBatchApply,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.apply, [this, args = std::move(args),
                                respond = std::move(respond)] {
          handle_batch_apply(std::move(args), std::move(respond));
        });
      });
}

void ShardServer::handle_batch_prepare(ValueList args,
                                       std::function<void(Outcome)> respond) {
  const auto batch_id = static_cast<kv::TxnId>(args.at(0).as_int());
  const auto entries = decode_batch_entries(args.at(1));
  const auto votes = store_.prepare_batch(batch_id, entries);
  respond(Outcome::success(encode_batch_flags(votes)));
}

void ShardServer::handle_batch_apply(ValueList args,
                                     std::function<void(Outcome)> respond) {
  const auto batch_id = static_cast<kv::TxnId>(args.at(0).as_int());
  const bool commit = args.at(1).as_bool();
  if (!commit) {
    store_.abort_batch(batch_id);
    respond(Outcome::success(Value(true)));
    return;
  }
  const auto entries = decode_batch_entries(args.at(2));
  const auto decisions = decode_batch_flags(args.at(3));
  const std::int64_t version_base = args.at(4).as_int();
  store_.commit_batch(batch_id, entries, decisions, version_base);
  if (log_ != nullptr) {
    // One group append for the whole batch: N records, one lock, one flush
    // (TxnLog::append_batch) — the log-side half of group commit.
    std::vector<kv::CommitRecord> records;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i >= decisions.size() || !decisions[i]) continue;
      const auto& e = entries[i];
      records.push_back(kv::CommitRecord{
          e.txn, version_base + static_cast<std::int64_t>(e.txn), e.writes});
    }
    log_->append_batch(std::move(records));
  }
  respond(Outcome::success(Value(true)));
}

void ShardServer::serve_read(const std::string& key,
                             std::function<void(Outcome)> respond,
                             int attempt) {
  // A write-locked key has an in-flight commit that may be about to apply;
  // RC reads wait for the outcome rather than return a possibly-stale value
  // (this is what makes read-after-commit see the write). Bounded retry so
  // a stuck lock cannot wedge readers forever.
  if (store_.is_locked(key) && attempt < 400) {
    kit_.wheel().schedule_after(
        std::chrono::microseconds(500),
        [this, key, respond = std::move(respond), attempt]() mutable {
          serve_read(key, std::move(respond), attempt + 1);
        });
    return;
  }
  ReadResult r;
  r.key = key;
  if (auto vv = store_.get(key)) {
    r.value = vv->value;
    r.version = vv->version;
  }
  respond(Outcome::success(encode_read_result(r)));
}

void ShardServer::with_cpu(Duration cost, std::function<void()> work) {
  if (cost <= Duration::zero()) {
    work();
    return;
  }
  if (cpu_ == nullptr) {
    // No CPU model: charge the cost as pure latency (a slow but
    // non-saturating server). The cross-process cluster leans on this for
    // its WAN stand-in — remote-DC service times scaled up without the
    // queueing a 1-core CpuModel would add (DESIGN.md §10.2).
    kit_.wheel().schedule_after(cost, std::move(work));
    return;
  }
  cpu_->execute(cost, std::move(work));
}

// ------------------------------------------------------------ Coordinator

Coordinator::Coordinator(RpcKit& kit, Topology topology, int dc, CpuModel* cpu,
                         ServerCosts costs)
    : kit_(kit), topology_(std::move(topology)), dc_(dc), cpu_(cpu),
      costs_(costs) {
  kit_.register_handler(
      kCommit, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_commit(args, respond);
        });
      });
  kit_.register_handler(
      kDecide, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_decide(args, respond);
        });
      });
  kit_.register_handler(
      kBatchCommit,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_batch_commit(std::move(args), std::move(respond));
        });
      });
  kit_.register_handler(
      kBatchDecide,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_batch_decide(std::move(args), std::move(respond));
        });
      });
}

void Coordinator::with_cpu(Duration cost, std::function<void()> work) {
  if (cost <= Duration::zero()) {
    work();
    return;
  }
  if (cpu_ == nullptr) {
    kit_.wheel().schedule_after(cost, std::move(work));  // latency-only, as above
    return;
  }
  cpu_->execute(cost, std::move(work));
}

namespace {

/// Splits read/write sets by owning shard. Only shards that own at least
/// one key participate in the local 2PC.
struct ShardSets {
  std::vector<kv::ReadValidation> reads;
  std::vector<kv::WriteOp> writes;
};

std::map<int, ShardSets> split_by_shard(
    const std::vector<kv::ReadValidation>& reads,
    const std::vector<kv::WriteOp>& writes) {
  std::map<int, ShardSets> out;
  for (const auto& r : reads) out[shard_of(r.key)].reads.push_back(r);
  for (const auto& w : writes) out[shard_of(w.key)].writes.push_back(w);
  return out;
}

/// Per-shard slice of a batch: the sub-entries owning keys on that shard,
/// in batch order, plus each sub-entry's position in the full batch so
/// per-shard votes can be folded back into the batch-wide vote vector.
struct ShardBatch {
  std::vector<kv::BatchEntry> entries;
  std::vector<std::size_t> positions;
};

std::map<int, ShardBatch> split_batch_by_shard(
    const std::vector<kv::BatchEntry>& entries) {
  std::map<int, ShardBatch> out;
  for (std::size_t pos = 0; pos < entries.size(); ++pos) {
    const auto& e = entries[pos];
    std::map<int, kv::BatchEntry> per_shard;
    for (const auto& r : e.reads) {
      auto& sub = per_shard[shard_of(r.key)];
      sub.reads.push_back(r);
    }
    for (const auto& w : e.writes) {
      auto& sub = per_shard[shard_of(w.key)];
      sub.writes.push_back(w);
    }
    for (auto& [shard, sub] : per_shard) {
      sub.txn = e.txn;
      sub.index = e.index;
      auto& sb = out[shard];
      sb.entries.push_back(std::move(sub));
      sb.positions.push_back(pos);
    }
  }
  return out;
}

}  // namespace

void Coordinator::handle_batch_commit(ValueList args,
                                      std::function<void(Outcome)> respond) {
  const std::int64_t batch_id = args.at(0).as_int();
  const auto entries = decode_batch_entries(args.at(1));
  auto by_shard = split_batch_by_shard(entries);
  if (by_shard.empty()) {
    respond(Outcome::success(
        encode_batch_flags(std::vector<bool>(entries.size(), true))));
    return;
  }
  // DC-local 2PC prepare, one batch.prepare per participating shard. Votes
  // come back per sub-entry and are ANDed into the batch-wide vector; a
  // failed shard RPC conservatively votes no for every entry it owned.
  struct Agg {
    std::mutex mu;
    int remaining = 0;
    std::vector<bool> votes;
    std::function<void(Outcome)> respond;
  };
  auto agg = std::make_shared<Agg>();
  agg->remaining = static_cast<int>(by_shard.size());
  agg->votes.assign(entries.size(), true);
  agg->respond = std::move(respond);
  for (auto& [shard, sb] : by_shard) {
    ValueList prepare_args;
    prepare_args.emplace_back(batch_id);
    prepare_args.push_back(encode_batch_entries(sb.entries));
    auto future = kit_.call(topology_.shard_addr(dc_, shard), kBatchPrepare,
                            std::move(prepare_args));
    future->then([agg, positions = sb.positions](const Outcome& outcome) {
      bool done = false;
      std::vector<bool> result;
      {
        std::lock_guard<std::mutex> lock(agg->mu);
        if (outcome.ok) {
          const auto votes = decode_batch_flags(outcome.value);
          for (std::size_t i = 0; i < positions.size(); ++i) {
            if (i >= votes.size() || !votes[i]) agg->votes[positions[i]] = false;
          }
        } else {
          for (const std::size_t pos : positions) agg->votes[pos] = false;
        }
        if (--agg->remaining == 0) {
          done = true;
          result = agg->votes;
        }
      }
      if (done) agg->respond(Outcome::success(encode_batch_flags(result)));
    });
  }
}

void Coordinator::handle_batch_decide(ValueList args,
                                      std::function<void(Outcome)> respond) {
  const std::int64_t batch_id = args.at(0).as_int();
  const bool commit = args.at(1).as_bool();
  const auto entries = decode_batch_entries(args.at(2));
  const auto decisions = decode_batch_flags(args.at(3));
  const std::int64_t version_base = args.at(4).as_int();
  auto by_shard = split_batch_by_shard(entries);
  for (auto& [shard, sb] : by_shard) {
    ValueList apply_args;
    apply_args.emplace_back(batch_id);
    apply_args.emplace_back(commit);
    if (commit) {
      std::vector<bool> sub_decisions;
      sub_decisions.reserve(sb.positions.size());
      for (const std::size_t pos : sb.positions) {
        sub_decisions.push_back(pos < decisions.size() && decisions[pos]);
      }
      apply_args.push_back(encode_batch_entries(sb.entries));
      apply_args.push_back(encode_batch_flags(sub_decisions));
      apply_args.emplace_back(version_base);
    }
    kit_.call(topology_.shard_addr(dc_, shard), kBatchApply,
              std::move(apply_args));
  }
  respond(Outcome::success(Value(true)));
}

void Coordinator::handle_commit(ValueList args,
                                std::function<void(Outcome)> respond) {
  const std::int64_t txn = args.at(0).as_int();
  const auto reads = decode_reads(args.at(1));
  const auto writes = decode_writes(args.at(2));
  const auto by_shard = split_by_shard(reads, writes);
  if (by_shard.empty()) {
    respond(Outcome::success(Value(true)));
    return;
  }
  // Datacentre-local 2PC prepare across the involved shards.
  struct Agg {
    std::mutex mu;
    int remaining;
    bool ok = true;
    std::function<void(Outcome)> respond;
  };
  auto agg = std::make_shared<Agg>();
  agg->remaining = static_cast<int>(by_shard.size());
  agg->respond = std::move(respond);
  for (const auto& [shard, sets] : by_shard) {
    ValueList prepare_args;
    prepare_args.emplace_back(txn);
    prepare_args.push_back(encode_reads(sets.reads));
    prepare_args.push_back(encode_writes(sets.writes));
    auto future = kit_.call(topology_.shard_addr(dc_, shard), kPrepare,
                            std::move(prepare_args));
    future->then([agg](const Outcome& outcome) {
      bool done = false;
      bool vote = false;
      {
        std::lock_guard<std::mutex> lock(agg->mu);
        if (!outcome.ok || !outcome.value.as_bool()) agg->ok = false;
        if (--agg->remaining == 0) {
          done = true;
          vote = agg->ok;
        }
      }
      if (done) agg->respond(Outcome::success(Value(vote)));
    });
  }
}

void Coordinator::handle_decide(ValueList args,
                                std::function<void(Outcome)> respond) {
  const std::int64_t txn = args.at(0).as_int();
  const bool commit = args.at(1).as_bool();
  const auto writes = decode_writes(args.at(2));
  const std::int64_t version = args.at(3).as_int();
  const auto reads = decode_reads(args.at(4));
  const auto by_shard = split_by_shard(reads, writes);
  for (const auto& [shard, sets] : by_shard) {
    if (commit) {
      ValueList apply_args;
      apply_args.emplace_back(txn);
      apply_args.push_back(encode_writes(sets.writes));
      apply_args.emplace_back(version);
      kit_.call(topology_.shard_addr(dc_, shard), kApply,
                std::move(apply_args));
    } else {
      ValueList abort_args;
      abort_args.emplace_back(txn);
      kit_.call(topology_.shard_addr(dc_, shard), kAbort,
                std::move(abort_args));
    }
  }
  respond(Outcome::success(Value(true)));
}

}  // namespace srpc::rc
