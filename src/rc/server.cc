#include "rc/server.h"

#include <map>
#include <mutex>
#include <sstream>
#include <utility>

namespace srpc::rc {

namespace {

std::string slots_to_csv(const std::vector<int>& slots) {
  std::ostringstream out;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i != 0) out << ',';
    out << slots[i];
  }
  return out.str();
}

std::set<int> slots_from_csv(const std::string& csv) {
  std::set<int> out;
  std::istringstream in(csv);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) out.insert(std::stoi(tok));
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ ShardServer

ShardServer::ShardServer(RpcKit& kit, kv::VersionedStore& store,
                         std::shared_ptr<ViewProvider> views, int dc, int shard,
                         CpuModel* cpu, ServerCosts costs, kv::TxnLog* log)
    : kit_(kit), store_(store), views_(std::move(views)), dc_(dc),
      shard_(shard), cpu_(cpu), costs_(costs), log_(log) {
  kit_.register_handler(
      kRead, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.read, [this, args = std::move(args),
                               respond = std::move(respond)]() mutable {
          if (nack_wrong_epoch(args, respond)) return;
          serve_read(args.at(0).as_string(), std::move(respond),
                     /*attempt=*/0);
        });
      });

  kit_.register_handler(
      kPrepare, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.prepare, [this, args = std::move(args),
                                  respond = std::move(respond)]() mutable {
          handle_prepare(std::move(args), std::move(respond), /*attempt=*/0);
        });
      });

  kit_.register_handler(
      kApply, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.apply, [this, args = std::move(args),
                                respond = std::move(respond)] {
          const auto txn = static_cast<kv::TxnId>(args.at(0).as_int());
          const auto writes = decode_writes(args.at(1));
          const std::int64_t version = args.at(2).as_int();
          store_.commit(txn, writes, version);
          if (log_ != nullptr) {
            log_->append(kv::CommitRecord{txn, version, writes});
          }
          // Forwarded applies carry the sender's epoch as a 4th arg; only
          // re-forward when our view is strictly newer, so a forwarding
          // cycle between servers on different epochs cannot loop.
          const bool may_forward =
              args.size() < 4 || args.at(3).as_int() < views_->epoch();
          if (may_forward) forward_migrated(txn, writes, version);
          respond(Outcome::success(Value(true)));
        });
      });

  kit_.register_handler(
      kAbort, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.apply, [this, args = std::move(args),
                                respond = std::move(respond)] {
          store_.abort(static_cast<kv::TxnId>(args.at(0).as_int()));
          respond(Outcome::success(Value(true)));
        });
      });

  // Batch mode (DESIGN.md §12). batch.read serves exactly like rc.read; the
  // extra args (batch epoch, shard, pos) exist only to give every queue
  // position a distinct predictor key on the client.
  kit_.register_handler(
      kBatchRead, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.read, [this, args = std::move(args),
                               respond = std::move(respond)]() mutable {
          if (nack_wrong_epoch(args, respond)) return;
          serve_read(args.at(0).as_string(), std::move(respond),
                     /*attempt=*/0);
        });
      });
  kit_.register_handler(
      kBatchPrepare,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.prepare, [this, args = std::move(args),
                                  respond = std::move(respond)]() mutable {
          handle_batch_prepare(std::move(args), std::move(respond),
                               /*attempt=*/0);
        });
      });
  kit_.register_handler(
      kBatchApply,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.apply, [this, args = std::move(args),
                                respond = std::move(respond)] {
          handle_batch_apply(std::move(args), std::move(respond));
        });
      });

  // View-change protocol (DESIGN.md §13).
  kit_.register_handler(
      kViewInstall,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        handle_view_install(std::move(args), std::move(respond));
      });
  kit_.register_handler(
      kViewPull, [this](ValueList args, std::function<void(Outcome)> respond) {
        handle_view_pull(std::move(args), std::move(respond));
      });
  kit_.register_handler(
      kViewStatus,
      [this](ValueList /*args*/, std::function<void(Outcome)> respond) {
        respond(Outcome::success(vlist(
            views_->epoch(), static_cast<std::int64_t>(warming_slots()))));
      });
  kit_.register_handler(
      kViewGet, [this](ValueList /*args*/,
                       std::function<void(Outcome)> respond) {
        respond(Outcome::success(Value(views_->get()->to_wire())));
      });
}

std::size_t ShardServer::warming_slots() const {
  std::lock_guard<std::mutex> lock(warm_mu_);
  return warming_.size();
}

bool ShardServer::nack_wrong_epoch(
    const ValueList& args, const std::function<void(Outcome)>& respond) {
  const std::int64_t vepoch = args.back().as_int();
  auto view = views_->get();
  if (vepoch == view->epoch) return false;
  respond(Outcome::failure(wrong_epoch_error(*view)));
  return true;
}

bool ShardServer::is_warming(const std::string& key) const {
  std::lock_guard<std::mutex> lock(warm_mu_);
  return warming_.count(slot_of_key(key)) != 0;
}

void ShardServer::clear_warming(const std::vector<int>& slots) {
  std::lock_guard<std::mutex> lock(warm_mu_);
  for (const int s : slots) warming_.erase(s);
}

void ShardServer::handle_prepare(ValueList args,
                                 std::function<void(Outcome)> respond,
                                 int attempt) {
  if (nack_wrong_epoch(args, respond)) return;
  const auto txn = static_cast<kv::TxnId>(args.at(0).as_int());
  const auto reads = decode_reads(args.at(1));
  const auto writes = decode_writes(args.at(2));
  // A warming key's state transfer has not landed yet: preparing against it
  // could validate a read version or grant a lock against stale data. Wait
  // briefly for the pull; past the bound, vote no (the client aborts and
  // retries — never prepares against a half-transferred slot).
  bool warm = false;
  for (const auto& r : reads) warm = warm || is_warming(r.key);
  for (const auto& w : writes) warm = warm || is_warming(w.key);
  if (warm) {
    if (attempt < 400) {
      kit_.wheel().schedule_after(
          std::chrono::microseconds(500),
          [this, args = std::move(args), respond = std::move(respond),
           attempt]() mutable {
            handle_prepare(std::move(args), std::move(respond), attempt + 1);
          });
    } else {
      respond(Outcome::success(Value(false)));
    }
    return;
  }
  const bool ok = store_.prepare(txn, reads, writes);
  respond(Outcome::success(Value(ok)));
}

void ShardServer::handle_batch_prepare(ValueList args,
                                       std::function<void(Outcome)> respond,
                                       int attempt) {
  if (nack_wrong_epoch(args, respond)) return;
  const auto batch_id = static_cast<kv::TxnId>(args.at(0).as_int());
  const auto entries = decode_batch_entries(args.at(1));
  bool warm = false;
  for (const auto& e : entries) {
    for (const auto& r : e.reads) warm = warm || is_warming(r.key);
    for (const auto& w : e.writes) warm = warm || is_warming(w.key);
  }
  if (warm) {
    if (attempt < 400) {
      kit_.wheel().schedule_after(
          std::chrono::microseconds(500),
          [this, args = std::move(args), respond = std::move(respond),
           attempt]() mutable {
            handle_batch_prepare(std::move(args), std::move(respond),
                                 attempt + 1);
          });
    } else {
      respond(Outcome::success(
          encode_batch_flags(std::vector<bool>(entries.size(), false))));
    }
    return;
  }
  const auto votes = store_.prepare_batch(batch_id, entries);
  respond(Outcome::success(encode_batch_flags(votes)));
}

void ShardServer::handle_batch_apply(ValueList args,
                                     std::function<void(Outcome)> respond) {
  const auto batch_id = static_cast<kv::TxnId>(args.at(0).as_int());
  const bool commit = args.at(1).as_bool();
  if (!commit) {
    store_.abort_batch(batch_id);
    respond(Outcome::success(Value(true)));
    return;
  }
  const auto entries = decode_batch_entries(args.at(2));
  const auto decisions = decode_batch_flags(args.at(3));
  const std::int64_t version_base = args.at(4).as_int();
  store_.commit_batch(batch_id, entries, decisions, version_base);
  if (log_ != nullptr) {
    // One group append for the whole batch: N records, one lock, one flush
    // (TxnLog::append_batch) — the log-side half of group commit.
    std::vector<kv::CommitRecord> records;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i >= decisions.size() || !decisions[i]) continue;
      const auto& e = entries[i];
      records.push_back(kv::CommitRecord{
          e.txn, version_base + static_cast<std::int64_t>(e.txn), e.writes});
    }
    log_->append_batch(std::move(records));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i >= decisions.size() || !decisions[i]) continue;
    const auto& e = entries[i];
    forward_migrated(e.txn, e.writes,
                     version_base + static_cast<std::int64_t>(e.txn));
  }
  respond(Outcome::success(Value(true)));
}

void ShardServer::serve_read(const std::string& key,
                             std::function<void(Outcome)> respond,
                             int attempt) {
  // A write-locked key has an in-flight commit that may be about to apply;
  // RC reads wait for the outcome rather than return a possibly-stale value
  // (this is what makes read-after-commit see the write). A warming key's
  // contents have not arrived from the old owner yet. Bounded retry so a
  // stuck lock or a wedged transfer cannot block readers forever.
  if ((store_.is_locked(key) || is_warming(key)) && attempt < 400) {
    kit_.wheel().schedule_after(
        std::chrono::microseconds(500),
        [this, key, respond = std::move(respond), attempt]() mutable {
          serve_read(key, std::move(respond), attempt + 1);
        });
    return;
  }
  if (is_warming(key)) {
    // Transfer still pending past the wait bound: refuse rather than serve
    // a missing/stale value (the client's quorum tolerates one slow DC, or
    // the whole read retries).
    respond(Outcome::failure("warming: slot transfer pending"));
    return;
  }
  ReadResult r;
  r.key = key;
  if (auto vv = store_.get(key)) {
    r.value = vv->value;
    r.version = vv->version;
  }
  respond(Outcome::success(encode_read_result(r)));
}

void ShardServer::handle_view_install(ValueList args,
                                      std::function<void(Outcome)> respond) {
  auto parsed = ClusterView::from_wire(args.at(0).as_string());
  if (!parsed) {
    respond(Outcome::failure("view.install: unparseable view"));
    return;
  }
  std::lock_guard<std::mutex> serial(install_mu_);
  auto prev = views_->get();
  if (parsed->epoch <= prev->epoch) {
    // Duplicate or stale proposal; ack with where we are.
    respond(Outcome::success(Value(views_->epoch())));
    return;
  }
  // Slots this shard gains, grouped by their owner in the previous view —
  // that owner's replica in OUR datacentre is the state-transfer source.
  std::map<int, std::vector<int>> gained;
  for (int s = 0; s < kViewSlots; ++s) {
    if (parsed->slot_owner[static_cast<std::size_t>(s)] == shard_ &&
        prev->slot_owner[static_cast<std::size_t>(s)] != shard_) {
      gained[prev->slot_owner[static_cast<std::size_t>(s)]].push_back(s);
    }
  }
  {
    // Mark warming BEFORE the new view turns live: no request routed here
    // under the new epoch can ever read a slot whose data has not arrived.
    std::lock_guard<std::mutex> lock(warm_mu_);
    for (const auto& [src, slots] : gained) {
      warming_.insert(slots.begin(), slots.end());
    }
  }
  views_->install(*parsed);
  auto next = views_->get();
  for (const auto& [src, slots] : gained) {
    pull_from(next->shard_addr(dc_, src), slots, /*attempt=*/0);
  }
  respond(Outcome::success(Value(next->epoch)));
}

void ShardServer::pull_from(Address source, std::vector<int> slots,
                            int attempt) {
  auto view = views_->get();
  // Drop slots that a newer view has since reassigned away, and slots whose
  // transfer already landed.
  std::vector<int> live;
  {
    std::lock_guard<std::mutex> lock(warm_mu_);
    for (const int s : slots) {
      if (view->slot_owner[static_cast<std::size_t>(s)] == shard_ &&
          warming_.count(s) != 0) {
        live.push_back(s);
      }
    }
  }
  if (live.empty()) return;
  ValueList args;
  args.emplace_back(view->epoch);
  args.emplace_back(slots_to_csv(live));
  kit_.call(source, kViewPull, std::move(args))
      ->then([this, source, live, attempt](const Outcome& outcome) {
        if (outcome.ok) {
          for (auto& [key, value, version] :
               decode_store_entries(outcome.value)) {
            store_.load_if_newer(key, std::move(value), version);
          }
          clear_warming(live);
          return;
        }
        // "not_ready" (source draining prepared txns / behind on the
        // install) or a transient transport fault: retry shortly. Past the
        // bound, unblock the slots empty-handed — quorum reads mask one
        // stale DC and version-monotone applies repair us over time.
        if (attempt >= 4000) {
          clear_warming(live);
          return;
        }
        kit_.wheel().schedule_after(
            std::chrono::milliseconds(1), [this, source, live, attempt] {
              pull_from(source, live, attempt + 1);
            });
      });
}

void ShardServer::handle_view_pull(ValueList args,
                                   std::function<void(Outcome)> respond) {
  const std::int64_t epoch = args.at(0).as_int();
  auto view = views_->get();
  if (view->epoch < epoch) {
    // We have not adopted the epoch that reassigned these slots yet; the
    // export would race applies still landing under our older view.
    respond(Outcome::failure("not_ready: source behind on install"));
    return;
  }
  const auto slots = slots_from_csv(args.at(1).as_string());
  {
    std::lock_guard<std::mutex> lock(warm_mu_);
    for (const int s : slots) {
      if (warming_.count(s) != 0) {
        respond(Outcome::failure("not_ready: source still warming"));
        return;
      }
    }
  }
  const auto in_slots = [&slots](const std::string& key) {
    return slots.count(slot_of_key(key)) != 0;
  };
  // Prepared transactions on migrating keys must resolve in the epoch that
  // prepared them: their write locks live here, so refusing the export
  // until the locks drain IS the drain barrier. Once a lock releases, its
  // apply has hit the store (atomically), so the export below contains it.
  if (store_.any_locked_if(in_slots)) {
    respond(Outcome::failure("not_ready: prepared txns draining"));
    return;
  }
  respond(Outcome::success(encode_store_entries(store_.export_if(in_slots))));
}

void ShardServer::forward_migrated(kv::TxnId txn,
                                   const std::vector<kv::WriteOp>& writes,
                                   std::int64_t version) {
  auto view = views_->get();
  std::map<int, std::vector<kv::WriteOp>> moved;
  for (const auto& w : writes) {
    const int owner = view->shard_of(w.key);
    if (owner != shard_) moved[owner].push_back(w);
  }
  for (auto& [owner, ws] : moved) {
    ValueList fwd;
    fwd.emplace_back(static_cast<std::int64_t>(txn));
    fwd.push_back(encode_writes(ws));
    fwd.emplace_back(version);
    fwd.emplace_back(view->epoch);
    kit_.call(view->shard_addr(dc_, owner), kApply, std::move(fwd));
  }
}

void ShardServer::with_cpu(Duration cost, std::function<void()> work) {
  if (cost <= Duration::zero()) {
    work();
    return;
  }
  if (cpu_ == nullptr) {
    // No CPU model: charge the cost as pure latency (a slow but
    // non-saturating server). The cross-process cluster leans on this for
    // its WAN stand-in — remote-DC service times scaled up without the
    // queueing a 1-core CpuModel would add (DESIGN.md §10.2).
    kit_.wheel().schedule_after(cost, std::move(work));
    return;
  }
  cpu_->execute(cost, std::move(work));
}

// ------------------------------------------------------------ Coordinator

Coordinator::Coordinator(RpcKit& kit, std::shared_ptr<ViewProvider> views,
                         int dc, CpuModel* cpu, ServerCosts costs)
    : kit_(kit), views_(std::move(views)), dc_(dc), cpu_(cpu), costs_(costs) {
  kit_.register_handler(
      kCommit, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_commit(args, respond);
        });
      });
  kit_.register_handler(
      kDecide, [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_decide(args, respond);
        });
      });
  kit_.register_handler(
      kBatchCommit,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_batch_commit(std::move(args), std::move(respond));
        });
      });
  kit_.register_handler(
      kBatchDecide,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        with_cpu(costs_.commit, [this, args = std::move(args),
                                 respond = std::move(respond)] {
          handle_batch_decide(std::move(args), std::move(respond));
        });
      });
  kit_.register_handler(
      kViewInstall,
      [this](ValueList args, std::function<void(Outcome)> respond) {
        auto parsed = ClusterView::from_wire(args.at(0).as_string());
        if (!parsed) {
          respond(Outcome::failure("view.install: unparseable view"));
          return;
        }
        views_->install(*parsed);  // coordinators hold no slot state
        respond(Outcome::success(Value(views_->epoch())));
      });
  kit_.register_handler(
      kViewGet, [this](ValueList /*args*/,
                       std::function<void(Outcome)> respond) {
        respond(Outcome::success(Value(views_->get()->to_wire())));
      });
}

void Coordinator::with_cpu(Duration cost, std::function<void()> work) {
  if (cost <= Duration::zero()) {
    work();
    return;
  }
  if (cpu_ == nullptr) {
    kit_.wheel().schedule_after(cost, std::move(work));  // latency-only, as above
    return;
  }
  cpu_->execute(cost, std::move(work));
}

namespace {

/// Splits read/write sets by owning shard under `view`. Only shards that
/// own at least one key participate in the local 2PC.
struct ShardSets {
  std::vector<kv::ReadValidation> reads;
  std::vector<kv::WriteOp> writes;
};

std::map<int, ShardSets> split_by_shard(
    const ClusterView& view, const std::vector<kv::ReadValidation>& reads,
    const std::vector<kv::WriteOp>& writes) {
  std::map<int, ShardSets> out;
  for (const auto& r : reads) out[view.shard_of(r.key)].reads.push_back(r);
  for (const auto& w : writes) out[view.shard_of(w.key)].writes.push_back(w);
  return out;
}

/// Per-shard slice of a batch: the sub-entries owning keys on that shard,
/// in batch order, plus each sub-entry's position in the full batch so
/// per-shard votes can be folded back into the batch-wide vote vector.
struct ShardBatch {
  std::vector<kv::BatchEntry> entries;
  std::vector<std::size_t> positions;
};

std::map<int, ShardBatch> split_batch_by_shard(
    const ClusterView& view, const std::vector<kv::BatchEntry>& entries) {
  std::map<int, ShardBatch> out;
  for (std::size_t pos = 0; pos < entries.size(); ++pos) {
    const auto& e = entries[pos];
    std::map<int, kv::BatchEntry> per_shard;
    for (const auto& r : e.reads) {
      auto& sub = per_shard[view.shard_of(r.key)];
      sub.reads.push_back(r);
    }
    for (const auto& w : e.writes) {
      auto& sub = per_shard[view.shard_of(w.key)];
      sub.writes.push_back(w);
    }
    for (auto& [shard, sub] : per_shard) {
      sub.txn = e.txn;
      sub.index = e.index;
      auto& sb = out[shard];
      sb.entries.push_back(std::move(sub));
      sb.positions.push_back(pos);
    }
  }
  return out;
}

}  // namespace

void Coordinator::handle_batch_commit(ValueList args,
                                      std::function<void(Outcome)> respond) {
  const std::int64_t batch_id = args.at(0).as_int();
  const auto entries = decode_batch_entries(args.at(1));
  const std::int64_t vepoch = args.at(2).as_int();
  auto view = views_->get();
  if (vepoch != view->epoch) {
    respond(Outcome::failure(wrong_epoch_error(*view)));
    return;
  }
  auto by_shard = split_batch_by_shard(*view, entries);
  if (by_shard.empty()) {
    respond(Outcome::success(
        encode_batch_flags(std::vector<bool>(entries.size(), true))));
    return;
  }
  // DC-local 2PC prepare, one batch.prepare per participating shard. Votes
  // come back per sub-entry and are ANDed into the batch-wide vector; a
  // failed shard RPC conservatively votes no for every entry it owned.
  struct Agg {
    std::mutex mu;
    int remaining = 0;
    std::vector<bool> votes;
    std::function<void(Outcome)> respond;
    std::string epoch_error;  // first wrong-epoch NACK from a shard, if any
  };
  auto agg = std::make_shared<Agg>();
  agg->remaining = static_cast<int>(by_shard.size());
  agg->votes.assign(entries.size(), true);
  agg->respond = std::move(respond);
  for (auto& [shard, sb] : by_shard) {
    ValueList prepare_args;
    prepare_args.emplace_back(batch_id);
    prepare_args.push_back(encode_batch_entries(sb.entries));
    prepare_args.emplace_back(vepoch);
    auto future = kit_.call(view->shard_addr(dc_, shard), kBatchPrepare,
                            std::move(prepare_args));
    future->then([agg, positions = sb.positions](const Outcome& outcome) {
      bool done = false;
      std::vector<bool> result;
      std::string epoch_error;
      {
        std::lock_guard<std::mutex> lock(agg->mu);
        if (outcome.ok) {
          const auto votes = decode_batch_flags(outcome.value);
          for (std::size_t i = 0; i < positions.size(); ++i) {
            if (i >= votes.size() || !votes[i]) agg->votes[positions[i]] = false;
          }
        } else {
          if (agg->epoch_error.empty() && is_wrong_epoch(outcome.error)) {
            agg->epoch_error = outcome.error;
          }
          for (const std::size_t pos : positions) agg->votes[pos] = false;
        }
        if (--agg->remaining == 0) {
          done = true;
          result = agg->votes;
          epoch_error = agg->epoch_error;
        }
      }
      if (!done) return;
      // A shard raced past us to a newer epoch: surface the NACK (with its
      // view payload) instead of a silent all-no vote, so the client
      // refreshes and re-plans the batch.
      if (!epoch_error.empty()) {
        agg->respond(Outcome::failure(epoch_error));
      } else {
        agg->respond(Outcome::success(encode_batch_flags(result)));
      }
    });
  }
}

void Coordinator::handle_batch_decide(ValueList args,
                                      std::function<void(Outcome)> respond) {
  const std::int64_t batch_id = args.at(0).as_int();
  const bool commit = args.at(1).as_bool();
  const auto entries = decode_batch_entries(args.at(2));
  const auto decisions = decode_batch_flags(args.at(3));
  const std::int64_t version_base = args.at(4).as_int();
  const std::int64_t vepoch = args.size() > 5 ? args.at(5).as_int() : 0;
  // Decides are not epoch-checked: the batch resolves in the epoch that
  // prepared it. Route to the owners under BOTH the prepared view (its
  // locks live there) and the current view (migrated keys need the apply at
  // their new home too); applies are version-monotone so duplicates are
  // harmless, and aborts on shards holding no locks are no-ops.
  auto current = views_->get();
  auto prepared = views_->at_epoch(vepoch);
  const auto send_under = [&](const ClusterView& view) {
    auto by_shard = split_batch_by_shard(view, entries);
    for (auto& [shard, sb] : by_shard) {
      ValueList apply_args;
      apply_args.emplace_back(batch_id);
      apply_args.emplace_back(commit);
      if (commit) {
        std::vector<bool> sub_decisions;
        sub_decisions.reserve(sb.positions.size());
        for (const std::size_t pos : sb.positions) {
          sub_decisions.push_back(pos < decisions.size() && decisions[pos]);
        }
        apply_args.push_back(encode_batch_entries(sb.entries));
        apply_args.push_back(encode_batch_flags(sub_decisions));
        apply_args.emplace_back(version_base);
      }
      kit_.call(view.shard_addr(dc_, shard), kBatchApply,
                std::move(apply_args));
    }
  };
  send_under(*current);
  if (prepared != nullptr && prepared->epoch != current->epoch) {
    send_under(*prepared);
  }
  respond(Outcome::success(Value(true)));
}

void Coordinator::handle_commit(ValueList args,
                                std::function<void(Outcome)> respond) {
  const std::int64_t txn = args.at(0).as_int();
  const auto reads = decode_reads(args.at(1));
  const auto writes = decode_writes(args.at(2));
  const std::int64_t vepoch = args.at(3).as_int();
  auto view = views_->get();
  if (vepoch != view->epoch) {
    respond(Outcome::failure(wrong_epoch_error(*view)));
    return;
  }
  const auto by_shard = split_by_shard(*view, reads, writes);
  if (by_shard.empty()) {
    respond(Outcome::success(Value(true)));
    return;
  }
  // Datacentre-local 2PC prepare across the involved shards.
  struct Agg {
    std::mutex mu;
    int remaining;
    bool ok = true;
    std::function<void(Outcome)> respond;
    std::string epoch_error;
  };
  auto agg = std::make_shared<Agg>();
  agg->remaining = static_cast<int>(by_shard.size());
  agg->respond = std::move(respond);
  for (const auto& [shard, sets] : by_shard) {
    ValueList prepare_args;
    prepare_args.emplace_back(txn);
    prepare_args.push_back(encode_reads(sets.reads));
    prepare_args.push_back(encode_writes(sets.writes));
    prepare_args.emplace_back(vepoch);
    auto future = kit_.call(view->shard_addr(dc_, shard), kPrepare,
                            std::move(prepare_args));
    future->then([agg](const Outcome& outcome) {
      bool done = false;
      bool vote = false;
      std::string epoch_error;
      {
        std::lock_guard<std::mutex> lock(agg->mu);
        if (!outcome.ok || !outcome.value.as_bool()) agg->ok = false;
        if (!outcome.ok && agg->epoch_error.empty() &&
            is_wrong_epoch(outcome.error)) {
          agg->epoch_error = outcome.error;
        }
        if (--agg->remaining == 0) {
          done = true;
          vote = agg->ok;
          epoch_error = agg->epoch_error;
        }
      }
      if (!done) return;
      if (!epoch_error.empty()) {
        agg->respond(Outcome::failure(epoch_error));
      } else {
        agg->respond(Outcome::success(Value(vote)));
      }
    });
  }
}

void Coordinator::handle_decide(ValueList args,
                                std::function<void(Outcome)> respond) {
  const std::int64_t txn = args.at(0).as_int();
  const bool commit = args.at(1).as_bool();
  const auto writes = decode_writes(args.at(2));
  const std::int64_t version = args.at(3).as_int();
  const auto reads = decode_reads(args.at(4));
  const std::int64_t vepoch = args.size() > 5 ? args.at(5).as_int() : 0;
  // Same union routing as batch decide: resolve in the prepared epoch AND
  // land migrated writes at their current home.
  auto current = views_->get();
  auto prepared = views_->at_epoch(vepoch);
  const auto send_under = [&](const ClusterView& view) {
    const auto by_shard = split_by_shard(view, reads, writes);
    for (const auto& [shard, sets] : by_shard) {
      if (commit) {
        ValueList apply_args;
        apply_args.emplace_back(txn);
        apply_args.push_back(encode_writes(sets.writes));
        apply_args.emplace_back(version);
        kit_.call(view.shard_addr(dc_, shard), kApply, std::move(apply_args));
      } else {
        ValueList abort_args;
        abort_args.emplace_back(txn);
        kit_.call(view.shard_addr(dc_, shard), kAbort, std::move(abort_args));
      }
    }
  };
  send_under(*current);
  if (prepared != nullptr && prepared->epoch != current->epoch) {
    send_under(*prepared);
  }
  respond(Outcome::success(Value(true)));
}

}  // namespace srpc::rc
