#include "rc/view_coordinator.h"

#include <condition_variable>
#include <set>
#include <thread>

#include "common/executor.h"

namespace srpc::rc {

ViewCoordinator::ViewCoordinator(RpcKit& kit,
                                 std::shared_ptr<ViewProvider> views)
    : kit_(kit), views_(std::move(views)) {}

bool ViewCoordinator::propose(const ClusterView& next, Duration timeout) {
  std::unique_lock<std::mutex> serial(propose_mu_, std::try_to_lock);
  if (!serial.owns_lock()) return false;  // a proposal is already in flight
  auto prev = views_->get();
  if (next.epoch <= prev->epoch) return false;
  views_->install(next);

  // Union of old and new address sets: shards leaving the cluster still
  // need the view (to forward their remaining applies), joining shards need
  // it to start warming.
  std::set<Address> targets;
  for (const auto* view : {prev.get(), &next}) {
    for (int shard = 0; shard < view->num_shards; ++shard) {
      for (const auto& addr : view->all_replicas(shard)) targets.insert(addr);
    }
    for (const auto& addr : view->all_coords()) targets.insert(addr);
  }

  struct AckState {
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;
    int acked = 0;
  };
  auto acks = std::make_shared<AckState>();
  acks->pending = static_cast<int>(targets.size());
  const std::string wire = next.to_wire();
  for (const auto& addr : targets) {
    ValueList args;
    args.emplace_back(wire);
    kit_.call(addr, kViewInstall, std::move(args))
        ->then([acks](const Outcome& outcome) {
          std::lock_guard<std::mutex> lock(acks->mu);
          if (outcome.ok) acks->acked++;
          acks->pending--;
          acks->cv.notify_all();
        });
  }
  Executor::before_block();
  std::unique_lock<std::mutex> lock(acks->mu);
  acks->cv.wait_for(lock, timeout, [&] { return acks->pending == 0; });
  return acks->pending == 0 &&
         acks->acked == static_cast<int>(targets.size());
}

bool ViewCoordinator::migrate_slots(const std::vector<int>& slots,
                                    int to_shard, Duration timeout) {
  const TimePoint deadline = Clock::now() + timeout;
  const ClusterView next = views_->get()->with_slots_moved(slots, to_shard);
  if (!propose(next, timeout)) return false;
  const Duration left = deadline - Clock::now();
  return wait_ready(left > Duration::zero() ? left : Duration::zero());
}

bool ViewCoordinator::wait_ready(Duration timeout) {
  const TimePoint deadline = Clock::now() + timeout;
  for (;;) {
    auto view = views_->get();
    std::vector<FuturePtr> futures;
    for (int shard = 0; shard < view->num_shards; ++shard) {
      for (const auto& addr : view->all_replicas(shard)) {
        futures.push_back(kit_.call(addr, kViewStatus, ValueList{}));
      }
    }
    bool ready = true;
    for (const auto& f : futures) {
      try {
        // Keep the reply alive for the whole check: get() returns a
        // temporary, and a reference from as_list() would dangle.
        const Value reply = f->get();
        const ValueList& status = reply.as_list();
        if (status.at(0).as_int() != view->epoch ||
            status.at(1).as_int() != 0) {
          ready = false;
        }
      } catch (const rpc::RpcError&) {
        ready = false;
      }
    }
    // Re-check that no newer view landed mid-poll; status answers compare
    // against the epoch we polled for.
    if (ready && views_->epoch() == view->epoch) return true;
    if (Clock::now() >= deadline) return false;
    Executor::before_block();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace srpc::rc
