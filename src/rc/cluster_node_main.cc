// rc_cluster_node — one process of a cross-process Replicated Commit
// cluster, driven by rc::ProcessCluster over stdio (see process_cluster.h
// for the line protocol).
//
//   role=server : hosts one datacentre's 3 shard servers + coordinator,
//                 each on its own TcpTransport.
//   role=client : hosts one datacentre's client machines and runs the
//                 closed-loop workload when told to RUN.
//
// All configuration arrives as key=value argv pairs; only the TCP topology
// (learned ports) travels over the pipe.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "batch/client.h"
#include "batch/seed.h"
#include "common/cpu_model.h"
#include "common/executor.h"
#include "common/flavor.h"
#include "common/timer_wheel.h"
#include "grpcsim/grpcsim.h"
#include "kvstore/store.h"
#include "predict/manager.h"
#include "rc/client.h"
#include "rc/common.h"
#include "rc/kit.h"
#include "rc/server.h"
#include "rpc/node.h"
#include "specrpc/engine.h"
#include "transport/tcp_transport.h"
#include "workload/qstream.h"
#include "workload/retwis.h"
#include "workload/runner.h"
#include "workload/ycsbt.h"

namespace srpc::rc {
namespace {

struct Args {
  std::map<std::string, std::string> kv;

  std::string str(const std::string& key, const std::string& dflt = "") const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  long num(const std::string& key, long dflt = 0) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtol(it->second.c_str(), nullptr, 10);
  }
  double real(const std::string& key, double dflt = 0) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
};

Flavor parse_flavor(const std::string& s) {
  if (s == "grpc") return Flavor::kGrpc;
  if (s == "spec") return Flavor::kSpec;
  return Flavor::kTrad;
}

batch::BatchMode parse_batch_mode(const std::string& s) {
  if (s == "per-txn-2pc") return batch::BatchMode::kPerTxn2pc;
  if (s == "group-commit") return batch::BatchMode::kGroupCommit;
  return batch::BatchMode::kSpeculative;
}

/// One machine of this process: transport + the flavour's engine + kit.
/// Mirrors RcCluster::NodeBundle, over TCP instead of SimNetwork.
struct Machine {
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<rpc::Node> rpc_node;
  std::unique_ptr<spec::SpecEngine> spec_engine;
  std::unique_ptr<RpcKit> kit;
};

std::unique_ptr<Machine> make_machine(Flavor flavor, Executor& executor,
                                      TimerWheel& wheel,
                                      double grpc_overhead_us,
                                      predict::SpeculationManager* manager =
                                          nullptr) {
  auto m = std::make_unique<Machine>();
  TcpConfig tc;
  // One reactor per machine-transport: a node process hosts several
  // transports on a box with few cores; the reactor count multiplies.
  tc.reactors = 1;
  m->transport = std::make_unique<TcpTransport>(executor, tc);
  switch (flavor) {
    case Flavor::kGrpc: {
      grpcsim::GrpcSimConfig grpc_config;
      grpc_config.per_message_overhead = std::chrono::microseconds(
          static_cast<std::int64_t>(grpc_overhead_us));
      m->rpc_node = std::make_unique<rpc::Node>(
          *m->transport, executor, wheel, grpcsim::to_node_config(grpc_config));
      m->kit = std::make_unique<TradKit>(*m->rpc_node);
      break;
    }
    case Flavor::kTrad: {
      m->rpc_node = std::make_unique<rpc::Node>(*m->transport, executor, wheel,
                                                rpc::NodeConfig{});
      m->kit = std::make_unique<TradKit>(*m->rpc_node);
      break;
    }
    case Flavor::kSpec: {
      spec::SpecConfig sc;
      if (manager != nullptr) manager->install(sc);  // before construction
      m->spec_engine = std::make_unique<spec::SpecEngine>(
          *m->transport, executor, wheel, sc);
      m->kit = std::make_unique<SpecKit>(*m->spec_engine);
      break;
    }
  }
  return m;
}

int node_main(const Args& args) {
  const std::string role = args.str("role");
  const int my_dc = static_cast<int>(args.num("dc"));
  const Flavor flavor = parse_flavor(args.str("flavor", "trad"));
  const int num_dcs = static_cast<int>(args.num("num_dcs", 3));
  const int num_shards = static_cast<int>(args.num("num_shards", 3));
  const int clients_per_dc = static_cast<int>(args.num("clients_per_dc", 4));
  const auto num_keys = static_cast<std::size_t>(args.num("num_keys", 20'000));
  const auto value_size = static_cast<std::size_t>(args.num("value_size", 16));
  const int server_cores = static_cast<int>(args.num("server_cores"));
  const double grpc_overhead_us = args.real("grpc_overhead_us", 75.0);
  ServerCosts costs;
  costs.read = std::chrono::microseconds(args.num("read_us"));
  costs.prepare = std::chrono::microseconds(args.num("prepare_us"));
  costs.apply = std::chrono::microseconds(args.num("apply_us"));
  costs.commit = std::chrono::microseconds(args.num("commit_us"));

  const int machines = role == "server" ? num_shards + 1 : clients_per_dc;
  Executor executor(std::max(8, machines * 3), "node-work");
  TimerWheel wheel;

  // qstream client machines under kSpec get per-machine queue-seed
  // prediction, installed before the engine exists (the hooks are read at
  // construction). The manager objects just need to outlive install();
  // the installed hooks keep the shared state alive on their own.
  const bool qstream =
      role == "client" && args.str("workload", "ycsbt") == "qstream";
  std::vector<std::shared_ptr<batch::SeedStore>> seed_stores;
  std::vector<std::shared_ptr<batch::QueueSeedPredictor>> qpredictors;
  std::vector<std::unique_ptr<predict::SpeculationManager>> managers;

  std::vector<std::unique_ptr<Machine>> nodes;
  for (int i = 0; i < machines; ++i) {
    predict::SpeculationManager* mgr = nullptr;
    if (qstream && flavor == Flavor::kSpec) {
      auto seeds = std::make_shared<batch::SeedStore>();
      auto qp = std::make_shared<batch::QueueSeedPredictor>(seeds);
      managers.push_back(std::make_unique<predict::SpeculationManager>(qp));
      seed_stores.push_back(std::move(seeds));
      qpredictors.push_back(std::move(qp));
      mgr = managers.back().get();
    }
    nodes.push_back(
        make_machine(flavor, executor, wheel, grpc_overhead_us, mgr));
    if (qstream && flavor == Flavor::kSpec) {
      seed_stores[static_cast<std::size_t>(i)]->attach_engine(
          nodes.back()->spec_engine.get());
    }
  }

  // Announce listening endpoints (servers) or just check in (clients).
  if (role == "server") {
    std::printf("ADDRS");
    for (const auto& m : nodes) std::printf(" %s", m->transport->address().c_str());
    std::printf("\n");
  } else {
    std::printf("ADDRS -\n");
  }
  std::fflush(stdout);

  // Receive the full TCP topology and build the address map every kit
  // routes through.
  std::string line;
  if (!std::getline(std::cin, line) || line.rfind("TOPOLOGY", 0) != 0) {
    std::fprintf(stderr, "node[%s dc%d]: bad TOPOLOGY line\n", role.c_str(),
                 my_dc);
    return 2;
  }
  // Static epoch-1 view over the learned TCP endpoints. Cross-process runs
  // do not reconfigure (the in-process cluster covers that), so every
  // machine gets its own provider pinned at this view.
  ClusterView base = ClusterView::make_static(num_dcs, num_shards);
  {
    std::istringstream in(line.substr(8));
    base.shard_addrs_override.resize(static_cast<std::size_t>(num_dcs));
    base.coord_addrs_override.resize(static_cast<std::size_t>(num_dcs));
    for (int dc = 0; dc < num_dcs; ++dc) {
      auto& shards = base.shard_addrs_override[static_cast<std::size_t>(dc)];
      shards.resize(static_cast<std::size_t>(num_shards));
      for (int s = 0; s < num_shards; ++s) {
        if (!(in >> shards[static_cast<std::size_t>(s)])) return 2;
      }
      if (!(in >> base.coord_addrs_override[static_cast<std::size_t>(dc)]))
        return 2;
    }
  }
  const auto make_views = [&base] {
    return std::make_shared<ViewProvider>(base);
  };

  std::vector<std::unique_ptr<kv::VersionedStore>> stores;
  std::vector<std::unique_ptr<CpuModel>> cpus;
  std::vector<std::unique_ptr<ShardServer>> shard_servers;
  std::vector<std::unique_ptr<Coordinator>> coordinators;
  std::vector<std::unique_ptr<RcClient>> clients;
  std::vector<std::unique_ptr<batch::BatchClient>> batch_clients;

  if (role == "server") {
    for (int shard = 0; shard < num_shards; ++shard) {
      auto store = std::make_unique<kv::VersionedStore>();
      for (std::size_t i = 0; i < num_keys; ++i) {
        char key[32];
        std::snprintf(key, sizeof(key), "k%08zu", i);
        if (base.shard_of(key) == shard)
          store->load(key, std::string(value_size, 'v'), 1);
      }
      CpuModel* cpu = nullptr;
      if (server_cores > 0) {
        cpus.push_back(std::make_unique<CpuModel>(wheel, server_cores));
        cpu = cpus.back().get();
      }
      shard_servers.push_back(std::make_unique<ShardServer>(
          *nodes[static_cast<std::size_t>(shard)]->kit, *store, make_views(),
          my_dc, shard, cpu, costs));
      stores.push_back(std::move(store));
    }
    CpuModel* coord_cpu = nullptr;
    if (server_cores > 0) {
      cpus.push_back(std::make_unique<CpuModel>(wheel, server_cores));
      coord_cpu = cpus.back().get();
    }
    coordinators.push_back(std::make_unique<Coordinator>(
        *nodes[static_cast<std::size_t>(num_shards)]->kit, make_views(), my_dc,
        coord_cpu, costs));
  } else if (qstream) {
    batch::BatchClientConfig batch_config;
    batch_config.my_dc = my_dc;
    batch_config.read_quorum = static_cast<int>(args.num("read_quorum", 2));
    batch_config.vote_quorum = static_cast<int>(args.num("vote_quorum", 2));
    batch_config.mode = parse_batch_mode(args.str("batch_mode", "speculative"));
    batch_config.txns_per_epoch =
        static_cast<std::size_t>(args.num("txns_per_epoch", 32));
    const bool adaptive = args.num("adaptive_batch", 0) != 0;
    for (int i = 0; i < clients_per_dc; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      batch_clients.push_back(std::make_unique<batch::BatchClient>(
          *nodes[idx]->kit, make_views(), batch_config,
          idx < seed_stores.size() ? seed_stores[idx] : nullptr,
          idx < qpredictors.size() ? qpredictors[idx] : nullptr, nullptr));
      if (adaptive) {
        batch::AdaptiveBatchConfig acfg;
        acfg.min_epoch = static_cast<std::size_t>(args.num("min_epoch", 4));
        acfg.max_epoch = static_cast<std::size_t>(args.num("max_epoch", 64));
        acfg.initial_epoch = batch_config.txns_per_epoch;
        acfg.initial_mode = batch_config.mode;
        acfg.allow_speculative = flavor == Flavor::kSpec;
        batch_clients.back()->set_controller(
            std::make_shared<batch::AdaptiveBatchController>(acfg));
      }
    }
  } else {
    RcClientConfig client_config;
    client_config.my_dc = my_dc;
    client_config.read_quorum = static_cast<int>(args.num("read_quorum", 2));
    client_config.vote_quorum = static_cast<int>(args.num("vote_quorum", 2));
    for (int i = 0; i < clients_per_dc; ++i) {
      clients.push_back(std::make_unique<RcClient>(
          *nodes[static_cast<std::size_t>(i)]->kit, make_views(),
          client_config));
    }
  }

  std::printf("READY\n");
  std::fflush(stdout);
  if (!std::getline(std::cin, line) || line != "RUN") return 2;

  if (role == "client" && qstream) {
    // Ordered-stream batch workload: every client machine drives batch
    // epochs back-to-back. The RESULT line keeps the standard field names
    // (committed/aborted count transactions; latency fields are per-epoch)
    // so the parent's aggregation works unchanged.
    const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
    wl::QStreamConfig wc;
    wc.txns_per_epoch =
        static_cast<std::size_t>(args.num("txns_per_epoch", 32));
    wc.ops_per_txn = static_cast<int>(args.num("ops_per_txn", 4));
    wc.num_keys = num_keys;
    wc.value_size = value_size;
    wc.hot_keys = static_cast<std::size_t>(args.num("hot_keys", 16));
    wc.hot_fraction = args.real("hot_fraction", 0.5);
    wc.cross_partition_fraction = args.real("cross_fraction", 0.3);
    // Sized source: each pull asks the client for the next epoch's depth
    // (the adaptive controller's pick; txns_per_epoch without one).
    wl::SizedBatchWorkloadFactory factory = [wc, seed, base](int client_index) {
      auto w = std::make_shared<wl::QStreamWorkload>(
          wc, seed + static_cast<std::uint64_t>(client_index), base);
      return [w](std::size_t n) { return w->next_txns(n); };
    };
    std::vector<batch::BatchClient*> raw;
    for (auto& c : batch_clients) raw.push_back(c.get());
    const auto run = wl::run_batch_closed_loop(
        raw, my_dc * clients_per_dc, factory,
        std::chrono::milliseconds(args.num("warmup_ms", 200)),
        std::chrono::milliseconds(args.num("measure_ms", 2000)));
    // Controller counters summed over this node's clients; the parent's
    // field() parser ignores keys it doesn't know, so the extra fields are
    // compatible with old parents.
    batch::AdaptiveBatchStats astats;
    for (auto* c : raw) {
      if (c->controller() != nullptr) astats += c->controller()->stats();
    }
    std::printf(
        "RESULT committed=%llu aborted=%llu read_only=0 elapsed_s=%.3f "
        "mean_us=%.1f p50_us=%.1f p99_us=%.1f commit_count=%llu "
        "commit_mean_us=%.1f adaptive_epochs=%llu mode_flips=%llu "
        "probes=%llu grows=%llu shrinks=%llu epoch_size=%llu\n",
        static_cast<unsigned long long>(run.committed),
        static_cast<unsigned long long>(run.aborted), run.elapsed_s,
        run.epoch_latency.mean_us(), run.epoch_latency.percentile_us(50),
        run.epoch_latency.percentile_us(99),
        static_cast<unsigned long long>(run.commit_latency.count()),
        run.commit_latency.mean_us(),
        static_cast<unsigned long long>(astats.epochs),
        static_cast<unsigned long long>(astats.mode_flips),
        static_cast<unsigned long long>(astats.probes),
        static_cast<unsigned long long>(astats.grows),
        static_cast<unsigned long long>(astats.shrinks),
        static_cast<unsigned long long>(astats.epoch_size));
    std::fflush(stdout);
  } else if (role == "client") {
    const std::string workload = args.str("workload", "ycsbt");
    const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
    wl::WorkloadFactory factory;
    if (workload == "retwis") {
      wl::RetwisConfig wc;
      wc.num_keys = num_keys;
      wc.value_size = value_size;
      factory = [wc, seed](int client_index) {
        auto w = std::make_shared<wl::RetwisWorkload>(
            wc, seed + static_cast<std::uint64_t>(client_index));
        return [w] { return w->next_txn().ops; };
      };
    } else {
      wl::YcsbtConfig wc;
      wc.ops_per_txn = static_cast<int>(args.num("ops_per_txn", 5));
      wc.read_fraction = args.real("read_fraction", 0.5);
      wc.num_keys = num_keys;
      wc.value_size = value_size;
      factory = [wc, seed](int client_index) {
        auto w = std::make_shared<wl::YcsbtWorkload>(
            wc, seed + static_cast<std::uint64_t>(client_index));
        return [w] { return w->next_txn(); };
      };
    }
    std::vector<RcClient*> raw;
    for (auto& c : clients) raw.push_back(c.get());
    const auto run = wl::run_rc_closed_loop(
        raw, my_dc * clients_per_dc, factory,
        std::chrono::milliseconds(args.num("warmup_ms", 200)),
        std::chrono::milliseconds(args.num("measure_ms", 2000)));
    std::printf(
        "RESULT committed=%llu aborted=%llu read_only=%llu elapsed_s=%.3f "
        "mean_us=%.1f p50_us=%.1f p99_us=%.1f commit_count=%llu "
        "commit_mean_us=%.1f\n",
        static_cast<unsigned long long>(run.committed),
        static_cast<unsigned long long>(run.aborted),
        static_cast<unsigned long long>(run.read_only), run.elapsed_s,
        run.txn_latency.mean_us(), run.txn_latency.percentile_us(50),
        run.txn_latency.percentile_us(99),
        static_cast<unsigned long long>(run.commit_latency.count()),
        run.commit_latency.mean_us());
    std::fflush(stdout);
  }

  // Hold everything up until the parent releases us; servers spend the whole
  // run here answering RPCs.
  while (std::getline(std::cin, line)) {
    if (line == "QUIT") break;
  }

  // Teardown mirrors RcCluster: unwind parked speculative computations,
  // drain workers, join timers, then destroy in dependency order.
  for (auto& m : nodes) {
    if (m->spec_engine) m->spec_engine->begin_shutdown();
  }
  executor.shutdown();
  wheel.shutdown();
  batch_clients.clear();
  clients.clear();
  coordinators.clear();
  shard_servers.clear();
  nodes.clear();
  cpus.clear();
  stores.clear();
  return 0;
}

}  // namespace
}  // namespace srpc::rc

int main(int argc, char** argv) {
  srpc::rc::Args args;
  for (int i = 1; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) continue;
    args.kv.emplace(
        std::string(argv[i], static_cast<std::size_t>(eq - argv[i])),
        std::string(eq + 1));
  }
  return srpc::rc::node_main(args);
}
