// Replicated Commit client: transaction execution over quorum reads and the
// single-roundtrip commit.
//
// Two execution strategies share the commit protocol (the paper's SpecRPC
// port "does not modify the commit protocol"):
//
//   * run_sequential — dependent quorum reads execute one after another,
//     each waiting for its majority; this is the gRPC/TradRPC behaviour the
//     paper shows growing linearly with the number of reads (Figure 9).
//
//   * run_speculative — reads form a SpecRPC callback chain: the first
//     (local-DC) response predicts each quorum result, so all dependent
//     reads overlap; the final callback specBlocks until every read is
//     non-speculative before the commit is issued (§4.1: "Before calling
//     commit ... an RC client will issue a specBlock to wait until all
//     quorum reads become non-speculative").
//
// Routing comes from a ViewProvider: every transaction snapshots the current
// ClusterView, stamps its RPCs with the view's epoch, and on a wrong-epoch
// NACK installs the server's newer view and re-runs the whole transaction
// under it (speculative branches opened under the old epoch roll back
// through the ordinary branch machinery — they are never validated across
// epochs). TxnResult::view_refreshes counts those re-runs.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "rc/common.h"
#include "rc/kit.h"

namespace srpc::rc {

struct RcClientConfig {
  int my_dc = 0;
  int read_quorum = 2;
  int vote_quorum = 2;  // majority of 3 DCs
};

class RcClient {
 public:
  RcClient(RpcKit& kit, std::shared_ptr<ViewProvider> views,
           RcClientConfig config);

  /// Executes ops with sequential quorum reads, then commits.
  TxnResult run_sequential(const std::vector<Op>& ops);

  /// Executes ops with a speculative read chain, then commits.
  /// Requires the kit to wrap a SpecRPC engine.
  TxnResult run_speculative(const std::vector<Op>& ops);

  /// Dispatches on the kit's capability (SpecRPC -> speculative).
  TxnResult run(const std::vector<Op>& ops);

  /// Read-modify-write transaction: quorum-reads `key`, writes
  /// transform(value) — the commit validates the very read the transform
  /// consumed, so concurrent increments are lost-update-free.
  TxnResult run_transform(
      const std::string& key,
      const std::function<std::string(const std::string&)>& transform);

  const std::shared_ptr<ViewProvider>& views() const { return views_; }

 private:
  struct Plan {
    std::vector<std::string> quorum_reads;    // keys needing quorum reads
    std::vector<ReadResult> local_reads;      // satisfied from write buffer
    std::vector<kv::WriteOp> writes;          // buffered writes (last wins)
  };
  using View = std::shared_ptr<const ClusterView>;

  Plan plan_ops(const std::vector<Op>& ops) const;

  /// Runs `attempt` under the current view, re-running under the refreshed
  /// view (bounded times) whenever it throws WrongEpochError; fills
  /// total/view_refreshes.
  TxnResult run_with_view(
      const std::function<void(const View&, TxnResult&)>& attempt);

  void run_sequential_once(const View& view, const std::vector<Op>& ops,
                           TxnResult& result);
  void run_speculative_once(const View& view, const std::vector<Op>& ops,
                            TxnResult& result);

  /// Replica fan-out for a key, local datacentre first (its response is the
  /// speculation-friendly first responder, §4.1).
  std::vector<Address> replicas_for(const ClusterView& view,
                                    const std::string& key) const;

  /// Throws WrongEpochError when the quorum failed on wrong-epoch NACKs,
  /// plain RpcError on any other quorum failure.
  ReadResult quorum_read(const ClusterView& view, const std::string& key);
  spec::CallbackFactory chain_factory(
      View view, std::shared_ptr<const std::vector<std::string>> keys,
      std::size_t idx, std::vector<ReadResult> acc) const;

  /// Commit phase shared by both strategies; fills committed/commit_phase.
  /// A wrong-epoch NACK from a coordinator that cost us the vote quorum
  /// aborts the transaction everywhere, then throws WrongEpochError.
  void commit_txn(const ClusterView& view,
                  const std::vector<ReadResult>& reads,
                  const std::vector<kv::WriteOp>& writes, TxnResult& result);

  RpcKit& kit_;
  std::shared_ptr<ViewProvider> views_;
  RcClientConfig config_;
};

/// Quorum-read combiner: the value with the highest version among the
/// responses (RC's read rule).
Value max_version_combiner(const std::vector<Value>& responses);

}  // namespace srpc::rc
