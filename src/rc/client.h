// Replicated Commit client: transaction execution over quorum reads and the
// single-roundtrip commit.
//
// Two execution strategies share the commit protocol (the paper's SpecRPC
// port "does not modify the commit protocol"):
//
//   * run_sequential — dependent quorum reads execute one after another,
//     each waiting for its majority; this is the gRPC/TradRPC behaviour the
//     paper shows growing linearly with the number of reads (Figure 9).
//
//   * run_speculative — reads form a SpecRPC callback chain: the first
//     (local-DC) response predicts each quorum result, so all dependent
//     reads overlap; the final callback specBlocks until every read is
//     non-speculative before the commit is issued (§4.1: "Before calling
//     commit ... an RC client will issue a specBlock to wait until all
//     quorum reads become non-speculative").
#pragma once

#include <map>
#include <vector>

#include "rc/common.h"
#include "rc/kit.h"

namespace srpc::rc {

struct RcClientConfig {
  int my_dc = 0;
  int read_quorum = 2;
  int vote_quorum = 2;  // majority of 3 DCs
};

class RcClient {
 public:
  RcClient(RpcKit& kit, Topology topology, RcClientConfig config);

  /// Executes ops with sequential quorum reads, then commits.
  TxnResult run_sequential(const std::vector<Op>& ops);

  /// Executes ops with a speculative read chain, then commits.
  /// Requires the kit to wrap a SpecRPC engine.
  TxnResult run_speculative(const std::vector<Op>& ops);

  /// Dispatches on the kit's capability (SpecRPC -> speculative).
  TxnResult run(const std::vector<Op>& ops);

  /// Read-modify-write transaction: quorum-reads `key`, writes
  /// transform(value) — the commit validates the very read the transform
  /// consumed, so concurrent increments are lost-update-free.
  TxnResult run_transform(
      const std::string& key,
      const std::function<std::string(const std::string&)>& transform);

 private:
  struct Plan {
    std::vector<std::string> quorum_reads;    // keys needing quorum reads
    std::vector<ReadResult> local_reads;      // satisfied from write buffer
    std::vector<kv::WriteOp> writes;          // buffered writes (last wins)
  };
  Plan plan_ops(const std::vector<Op>& ops) const;

  /// Replica fan-out for a key, local datacentre first (its response is the
  /// speculation-friendly first responder, §4.1).
  std::vector<Address> replicas_for(const std::string& key) const;

  ReadResult quorum_read(const std::string& key);
  spec::CallbackFactory chain_factory(
      std::shared_ptr<const std::vector<std::string>> keys, std::size_t idx,
      std::vector<ReadResult> acc) const;

  /// Commit phase shared by both strategies; fills committed/commit_phase.
  void commit_txn(const std::vector<ReadResult>& reads,
                  const std::vector<kv::WriteOp>& writes, TxnResult& result);

  RpcKit& kit_;
  Topology topology_;
  RcClientConfig config_;
};

/// Quorum-read combiner: the value with the highest version among the
/// responses (RC's read rule).
Value max_version_combiner(const std::vector<Value>& responses);

}  // namespace srpc::rc
