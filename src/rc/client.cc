#include "rc/client.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/executor.h"

namespace srpc::rc {

namespace {

/// A wrong-epoch NACK kills at most this many whole-transaction re-runs
/// before the transaction is surfaced as aborted (a view change is one
/// epoch hop in practice; repeated hops mean the caller should back off).
constexpr int kMaxViewRetries = 3;

}  // namespace

RcClient::RcClient(RpcKit& kit, std::shared_ptr<ViewProvider> views,
                   RcClientConfig config)
    : kit_(kit), views_(std::move(views)), config_(config) {}

Value max_version_combiner(const std::vector<Value>& responses) {
  const Value* best = &responses.front();
  std::int64_t best_version = best->as_list().at(1).as_int();
  for (const auto& r : responses) {
    const std::int64_t v = r.as_list().at(1).as_int();
    if (v > best_version) {
      best = &r;
      best_version = v;
    }
  }
  return *best;
}

RcClient::Plan RcClient::plan_ops(const std::vector<Op>& ops) const {
  Plan plan;
  std::map<std::string, std::string> buffer;  // write buffer, last wins
  for (const auto& op : ops) {
    if (op.is_read) {
      auto it = buffer.find(op.key);
      if (it != buffer.end()) {
        // Read-your-own-write: served from the buffer, no quorum needed and
        // no validation entry (we wrote it; versions are assigned at commit).
        plan.local_reads.push_back(ReadResult{op.key, it->second, -1});
      } else {
        plan.quorum_reads.push_back(op.key);
      }
    } else {
      buffer[op.key] = op.value;
    }
  }
  plan.writes.reserve(buffer.size());
  for (auto& [key, value] : buffer)
    plan.writes.push_back(kv::WriteOp{key, value});
  return plan;
}

std::vector<Address> RcClient::replicas_for(const ClusterView& view,
                                            const std::string& key) const {
  const int shard = view.shard_of(key);
  std::vector<Address> out;
  out.reserve(static_cast<std::size_t>(view.num_dcs));
  out.push_back(view.shard_addr(config_.my_dc, shard));  // local first
  for (int dc = 0; dc < view.num_dcs; ++dc) {
    if (dc != config_.my_dc) out.push_back(view.shard_addr(dc, shard));
  }
  return out;
}

ReadResult RcClient::quorum_read(const ClusterView& view,
                                 const std::string& key) {
  std::vector<FuturePtr> futures;
  for (const auto& addr : replicas_for(view, key)) {
    ValueList args;
    args.emplace_back(key);
    args.emplace_back(view.epoch);
    futures.push_back(kit_.call(addr, kRead, std::move(args)));
  }
  auto result = quorum_wait_detailed(futures, config_.read_quorum);
  if (static_cast<int>(result.successes.size()) < config_.read_quorum) {
    for (const auto& error : result.errors) {
      if (is_wrong_epoch(error)) {
        throw WrongEpochError(parse_wrong_epoch(error));
      }
    }
    throw rpc::RpcError("quorum read failed for " + key);
  }
  std::vector<Value> values;
  values.reserve(result.successes.size());
  for (auto& o : result.successes) values.push_back(o.value);
  return decode_read_result(key, max_version_combiner(values));
}

TxnResult RcClient::run_with_view(
    const std::function<void(const View&, TxnResult&)>& attempt) {
  const TimePoint t0 = Clock::now();
  int refreshes = 0;
  TxnResult result;
  for (;;) {
    result = TxnResult{};
    auto view = views_->get();
    try {
      attempt(view, result);
    } catch (const WrongEpochError& err) {
      ++refreshes;
      if (err.view()) views_->install(*err.view());
      if (refreshes <= kMaxViewRetries) continue;
      result = TxnResult{};  // out of retries: surface as aborted
    }
    break;
  }
  result.view_refreshes = refreshes;
  result.total = Clock::now() - t0;
  return result;
}

void RcClient::run_sequential_once(const View& view,
                                   const std::vector<Op>& ops,
                                   TxnResult& result) {
  Plan plan = plan_ops(ops);
  // Dependent reads execute strictly one after another — this is the
  // latency the paper attributes to the non-speculative builds (Figure 9).
  for (const auto& key : plan.quorum_reads) {
    result.reads.push_back(quorum_read(*view, key));
  }
  commit_txn(*view, result.reads, plan.writes, result);
  result.reads.insert(result.reads.end(), plan.local_reads.begin(),
                      plan.local_reads.end());
}

TxnResult RcClient::run_sequential(const std::vector<Op>& ops) {
  return run_with_view([this, &ops](const View& view, TxnResult& result) {
    run_sequential_once(view, ops, result);
  });
}

spec::CallbackFactory RcClient::chain_factory(
    View view, std::shared_ptr<const std::vector<std::string>> keys,
    std::size_t idx, std::vector<ReadResult> acc) const {
  // Each speculation branch gets a fresh callback whose accumulated reads
  // are an isolated by-value snapshot (the paper's factory pattern, §3.5.2).
  return [this, view, keys, idx, acc]() -> spec::CallbackFn {
    return [this, view, keys, idx, acc](spec::SpecContext& ctx,
                                        const Value& v)
               -> spec::CallbackResult {
      std::vector<ReadResult> mine = acc;
      mine.push_back(decode_read_result((*keys)[idx], v));
      if (idx + 1 < keys->size()) {
        const std::string& next = (*keys)[idx + 1];
        ValueList args;
        args.emplace_back(next);
        args.emplace_back(view->epoch);
        return ctx.call_quorum(replicas_for(*view, next), config_.read_quorum,
                               kRead, std::move(args), max_version_combiner,
                               chain_factory(view, keys, idx + 1,
                                             std::move(mine)));
      }
      // Last read: wait until every speculation in this chain is resolved
      // before results become visible to the commit (§4.1 specBlock).
      ctx.spec_block();
      ValueList out;
      out.reserve(mine.size());
      for (const auto& r : mine)
        out.push_back(vlist(r.key, r.value, r.version));
      return Value(std::move(out));
    };
  };
}

void RcClient::run_speculative_once(const View& view,
                                    const std::vector<Op>& ops,
                                    TxnResult& result) {
  spec::SpecEngine* engine = kit_.spec_engine();
  Plan plan = plan_ops(ops);
  if (!plan.quorum_reads.empty()) {
    auto keys = std::make_shared<const std::vector<std::string>>(
        plan.quorum_reads);
    ValueList args;
    args.emplace_back((*keys)[0]);
    args.emplace_back(view->epoch);
    auto future = engine->call_quorum(replicas_for(*view, (*keys)[0]),
                                      config_.read_quorum, kRead,
                                      std::move(args), max_version_combiner,
                                      chain_factory(view, keys, 0, {}));
    Value all;
    try {
      all = future->get();  // non-speculative read results
    } catch (const rpc::RpcError& err) {
      // A wrong-epoch NACK anywhere in the chain fails the whole logical
      // call; every branch opened under the old epoch has already rolled
      // back by the time the future resolves. Re-run under the new view.
      if (is_wrong_epoch(err.what())) {
        throw WrongEpochError(parse_wrong_epoch(err.what()));
      }
      throw;
    }
    for (const auto& e : all.as_list()) {
      const ValueList& triple = e.as_list();
      result.reads.push_back(ReadResult{triple.at(0).as_string(),
                                        triple.at(1).as_string(),
                                        triple.at(2).as_int()});
    }
  }
  commit_txn(*view, result.reads, plan.writes, result);
  result.reads.insert(result.reads.end(), plan.local_reads.begin(),
                      plan.local_reads.end());
}

TxnResult RcClient::run_speculative(const std::vector<Op>& ops) {
  if (kit_.spec_engine() == nullptr) return run_sequential(ops);
  return run_with_view([this, &ops](const View& view, TxnResult& result) {
    run_speculative_once(view, ops, result);
  });
}

TxnResult RcClient::run_transform(
    const std::string& key,
    const std::function<std::string(const std::string&)>& transform) {
  return run_with_view(
      [this, &key, &transform](const View& view, TxnResult& result) {
        result.reads.push_back(quorum_read(*view, key));
        std::vector<kv::WriteOp> writes;
        writes.push_back(kv::WriteOp{key, transform(result.reads[0].value)});
        commit_txn(*view, result.reads, writes, result);
      });
}

TxnResult RcClient::run(const std::vector<Op>& ops) {
  return kit_.spec_engine() != nullptr ? run_speculative(ops)
                                       : run_sequential(ops);
}

void RcClient::commit_txn(const ClusterView& view,
                          const std::vector<ReadResult>& reads,
                          const std::vector<kv::WriteOp>& writes,
                          TxnResult& result) {
  if (writes.empty()) {
    // Read-only transactions need no commit round: quorum reads already
    // returned majority-committed values.
    result.committed = true;
    result.read_only = true;
    result.commit_phase = Duration::zero();
    return;
  }
  const TimePoint t1 = Clock::now();
  const std::int64_t txn = next_txn_stamp();
  const std::int64_t commit_version = txn + 1'000'000'000;  // above loads
  std::vector<kv::ReadValidation> validations;
  validations.reserve(reads.size());
  for (const auto& r : reads)
    validations.push_back(kv::ReadValidation{r.key, r.version});

  // One wide-area round trip: commit request to every DC coordinator; the
  // transaction commits once a majority votes yes.
  struct VoteState {
    std::mutex mu;
    std::condition_variable cv;
    int yes = 0;
    int no = 0;
    std::string epoch_error;  // first coordinator wrong-epoch NACK, if any
  };
  auto votes = std::make_shared<VoteState>();
  const int num_dcs = view.num_dcs;
  const int quorum = config_.vote_quorum;
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(txn);
    args.push_back(encode_reads(validations));
    args.push_back(encode_writes(writes));
    args.emplace_back(view.epoch);
    auto future = kit_.call(view.coord_addr(dc), kCommit, std::move(args));
    future->then([votes](const Outcome& outcome) {
      std::lock_guard<std::mutex> lock(votes->mu);
      if (outcome.ok && outcome.value.as_bool()) {
        votes->yes++;
      } else {
        votes->no++;
        if (!outcome.ok && votes->epoch_error.empty() &&
            is_wrong_epoch(outcome.error)) {
          votes->epoch_error = outcome.error;
        }
      }
      votes->cv.notify_all();
    });
  }
  bool committed;
  std::string epoch_error;
  {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(votes->mu);
    votes->cv.wait(lock, [&] {
      return votes->yes >= quorum || votes->no > num_dcs - quorum;
    });
    committed = votes->yes >= quorum;
    epoch_error = votes->epoch_error;
  }
  // Broadcast the decision (asynchronous, off the latency path). A txn that
  // lost its quorum to a wrong-epoch NACK aborts here too: DCs that DID
  // prepare under the old epoch release their locks before we re-run.
  const bool decision = committed;
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(txn);
    args.emplace_back(decision);
    args.push_back(encode_writes(writes));
    args.emplace_back(commit_version);
    args.push_back(encode_reads(validations));
    args.emplace_back(view.epoch);
    kit_.call(view.coord_addr(dc), kDecide, std::move(args));
  }
  if (!committed && !epoch_error.empty()) {
    throw WrongEpochError(parse_wrong_epoch(epoch_error));
  }
  result.committed = committed;
  result.commit_phase = Clock::now() - t1;
}

}  // namespace srpc::rc
