#include "rc/client.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/executor.h"
#include "common/logging.h"

namespace srpc::rc {

RcClient::RcClient(RpcKit& kit, Topology topology, RcClientConfig config)
    : kit_(kit), topology_(std::move(topology)), config_(config) {}

Value max_version_combiner(const std::vector<Value>& responses) {
  const Value* best = &responses.front();
  std::int64_t best_version = best->as_list().at(1).as_int();
  for (const auto& r : responses) {
    const std::int64_t v = r.as_list().at(1).as_int();
    if (v > best_version) {
      best = &r;
      best_version = v;
    }
  }
  return *best;
}

RcClient::Plan RcClient::plan_ops(const std::vector<Op>& ops) const {
  Plan plan;
  std::map<std::string, std::string> buffer;  // write buffer, last wins
  for (const auto& op : ops) {
    if (op.is_read) {
      auto it = buffer.find(op.key);
      if (it != buffer.end()) {
        // Read-your-own-write: served from the buffer, no quorum needed and
        // no validation entry (we wrote it; versions are assigned at commit).
        plan.local_reads.push_back(ReadResult{op.key, it->second, -1});
      } else {
        plan.quorum_reads.push_back(op.key);
      }
    } else {
      buffer[op.key] = op.value;
    }
  }
  plan.writes.reserve(buffer.size());
  for (auto& [key, value] : buffer)
    plan.writes.push_back(kv::WriteOp{key, value});
  return plan;
}

std::vector<Address> RcClient::replicas_for(const std::string& key) const {
  const int shard = shard_of(key);
  std::vector<Address> out;
  out.reserve(topology_.num_dcs);
  out.push_back(topology_.shard_addr(config_.my_dc, shard));  // local first
  for (int dc = 0; dc < topology_.num_dcs; ++dc) {
    if (dc != config_.my_dc) out.push_back(topology_.shard_addr(dc, shard));
  }
  return out;
}

ReadResult RcClient::quorum_read(const std::string& key) {
  std::vector<FuturePtr> futures;
  for (const auto& addr : replicas_for(key)) {
    ValueList args;
    args.emplace_back(key);
    futures.push_back(kit_.call(addr, kRead, std::move(args)));
  }
  auto outcomes = quorum_wait(futures, config_.read_quorum);
  if (static_cast<int>(outcomes.size()) < config_.read_quorum)
    throw rpc::RpcError("quorum read failed for " + key);
  std::vector<Value> values;
  values.reserve(outcomes.size());
  for (auto& o : outcomes) values.push_back(o.value);
  return decode_read_result(key, max_version_combiner(values));
}

TxnResult RcClient::run_sequential(const std::vector<Op>& ops) {
  const TimePoint t0 = Clock::now();
  Plan plan = plan_ops(ops);
  TxnResult result;
  // Dependent reads execute strictly one after another — this is the
  // latency the paper attributes to the non-speculative builds (Figure 9).
  for (const auto& key : plan.quorum_reads) {
    result.reads.push_back(quorum_read(key));
  }
  commit_txn(result.reads, plan.writes, result);
  result.reads.insert(result.reads.end(), plan.local_reads.begin(),
                      plan.local_reads.end());
  result.total = Clock::now() - t0;
  return result;
}

spec::CallbackFactory RcClient::chain_factory(
    std::shared_ptr<const std::vector<std::string>> keys, std::size_t idx,
    std::vector<ReadResult> acc) const {
  // Each speculation branch gets a fresh callback whose accumulated reads
  // are an isolated by-value snapshot (the paper's factory pattern, §3.5.2).
  return [this, keys, idx, acc]() -> spec::CallbackFn {
    return [this, keys, idx, acc](spec::SpecContext& ctx,
                                  const Value& v) -> spec::CallbackResult {
      std::vector<ReadResult> mine = acc;
      mine.push_back(decode_read_result((*keys)[idx], v));
      if (idx + 1 < keys->size()) {
        const std::string& next = (*keys)[idx + 1];
        ValueList args;
        args.emplace_back(next);
        return ctx.call_quorum(replicas_for(next), config_.read_quorum, kRead,
                               std::move(args), max_version_combiner,
                               chain_factory(keys, idx + 1, std::move(mine)));
      }
      // Last read: wait until every speculation in this chain is resolved
      // before results become visible to the commit (§4.1 specBlock).
      ctx.spec_block();
      ValueList out;
      out.reserve(mine.size());
      for (const auto& r : mine)
        out.push_back(vlist(r.key, r.value, r.version));
      return Value(std::move(out));
    };
  };
}

TxnResult RcClient::run_speculative(const std::vector<Op>& ops) {
  spec::SpecEngine* engine = kit_.spec_engine();
  if (engine == nullptr) return run_sequential(ops);
  const TimePoint t0 = Clock::now();
  Plan plan = plan_ops(ops);
  TxnResult result;
  if (!plan.quorum_reads.empty()) {
    auto keys = std::make_shared<const std::vector<std::string>>(
        plan.quorum_reads);
    ValueList args;
    args.emplace_back((*keys)[0]);
    auto future = engine->call_quorum(replicas_for((*keys)[0]),
                                      config_.read_quorum, kRead,
                                      std::move(args), max_version_combiner,
                                      chain_factory(keys, 0, {}));
    const Value all = future->get();  // non-speculative read results
    for (const auto& e : all.as_list()) {
      const ValueList& triple = e.as_list();
      result.reads.push_back(ReadResult{triple.at(0).as_string(),
                                        triple.at(1).as_string(),
                                        triple.at(2).as_int()});
    }
  }
  commit_txn(result.reads, plan.writes, result);
  result.reads.insert(result.reads.end(), plan.local_reads.begin(),
                      plan.local_reads.end());
  result.total = Clock::now() - t0;
  return result;
}

TxnResult RcClient::run_transform(
    const std::string& key,
    const std::function<std::string(const std::string&)>& transform) {
  const TimePoint t0 = Clock::now();
  TxnResult result;
  result.reads.push_back(quorum_read(key));
  std::vector<kv::WriteOp> writes;
  writes.push_back(kv::WriteOp{key, transform(result.reads[0].value)});
  commit_txn(result.reads, writes, result);
  result.total = Clock::now() - t0;
  return result;
}

TxnResult RcClient::run(const std::vector<Op>& ops) {
  return kit_.spec_engine() != nullptr ? run_speculative(ops)
                                       : run_sequential(ops);
}

void RcClient::commit_txn(const std::vector<ReadResult>& reads,
                          const std::vector<kv::WriteOp>& writes,
                          TxnResult& result) {
  if (writes.empty()) {
    // Read-only transactions need no commit round: quorum reads already
    // returned majority-committed values.
    result.committed = true;
    result.read_only = true;
    result.commit_phase = Duration::zero();
    return;
  }
  const TimePoint t1 = Clock::now();
  const std::int64_t txn = next_txn_stamp();
  const std::int64_t commit_version = txn + 1'000'000'000;  // above loads
  std::vector<kv::ReadValidation> validations;
  validations.reserve(reads.size());
  for (const auto& r : reads)
    validations.push_back(kv::ReadValidation{r.key, r.version});

  // One wide-area round trip: commit request to every DC coordinator; the
  // transaction commits once a majority votes yes.
  struct VoteState {
    std::mutex mu;
    std::condition_variable cv;
    int yes = 0;
    int no = 0;
  };
  auto votes = std::make_shared<VoteState>();
  const int num_dcs = topology_.num_dcs;
  const int quorum = config_.vote_quorum;
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(txn);
    args.push_back(encode_reads(validations));
    args.push_back(encode_writes(writes));
    auto future = kit_.call(topology_.coord_addr(dc), kCommit,
                            std::move(args));
    future->then([votes](const Outcome& outcome) {
      std::lock_guard<std::mutex> lock(votes->mu);
      if (outcome.ok && outcome.value.as_bool()) {
        votes->yes++;
      } else {
        votes->no++;
      }
      votes->cv.notify_all();
    });
  }
  bool committed;
  {
    Executor::before_block();
    std::unique_lock<std::mutex> lock(votes->mu);
    votes->cv.wait(lock, [&] {
      return votes->yes >= quorum || votes->no > num_dcs - quorum;
    });
    committed = votes->yes >= quorum;
  }
  // Broadcast the decision (asynchronous, off the latency path).
  for (int dc = 0; dc < num_dcs; ++dc) {
    ValueList args;
    args.emplace_back(txn);
    args.emplace_back(committed);
    args.push_back(encode_writes(writes));
    args.emplace_back(commit_version);
    args.push_back(encode_reads(validations));
    kit_.call(topology_.coord_addr(dc), kDecide, std::move(args));
  }
  result.committed = committed;
  result.commit_phase = Clock::now() - t1;
}

}  // namespace srpc::rc
