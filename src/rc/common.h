// Replicated Commit protocol: shared types, wire encodings, topology map.
//
// Replicated Commit (Mahmoud et al., VLDB'13 [26]) commits a transaction in
// one wide-area round trip by replicating the commit operation itself: the
// client sends the commit to a coordinator in every datacentre; each
// coordinator runs 2PC locally across the shards of its own DC and acts as
// an acceptor; the transaction commits once a majority of DCs accept.
// Reads are majority quorum reads across DCs; writes are buffered at the
// client until commit (§4.1 of the SpecRPC paper).
//
// Faithfulness note (also in DESIGN.md): we let the *client* tally the
// per-DC accept votes and broadcast the decision, instead of coordinators
// exchanging Paxos accepts. The client-observed commit latency is identical
// (one WAN round trip to the majority-closest DCs); only the apply path at
// non-majority DCs differs, off the measured path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kvstore/store.h"
#include "serde/value.h"
#include "transport/transport.h"

namespace srpc::rc {

inline constexpr int kNumShards = 3;

/// Method names.
inline constexpr const char* kRead = "rc.read";
inline constexpr const char* kCommit = "rc.commit";
inline constexpr const char* kPrepare = "rc.prepare";
inline constexpr const char* kDecide = "rc.decide";
inline constexpr const char* kApply = "rc.apply";
inline constexpr const char* kAbort = "rc.abort";

/// Batch-mode method names (queue-oriented group commit, DESIGN.md §12).
/// batch.read args carry (key, epoch, shard, pos) so every queue position
/// gets a distinct predictor key — queue-order seeds never collide across
/// positions or epochs.
inline constexpr const char* kBatchRead = "batch.read";
inline constexpr const char* kBatchPrepare = "batch.prepare";
inline constexpr const char* kBatchApply = "batch.apply";
inline constexpr const char* kBatchCommit = "rc.batch_commit";
inline constexpr const char* kBatchDecide = "rc.batch_decide";

/// One workload operation inside a transaction.
struct Op {
  bool is_read = true;
  std::string key;
  std::string value;  // writes only
};

/// A completed read inside a transaction.
struct ReadResult {
  std::string key;
  std::string value;
  std::int64_t version = 0;
};

struct TxnResult {
  bool committed = false;
  bool read_only = false;
  Duration total{};        // begin -> decision
  Duration commit_phase{}; // commit issue -> decision (paper's "commit latency")
  std::vector<ReadResult> reads;
};

int shard_of(const std::string& key);

/// Cluster address map: 3 DCs x (3 shard servers + 1 coordinator).
struct Topology {
  int num_dcs = 3;
  /// replica(dc, shard) -> address
  Address shard_addr(int dc, int shard) const;
  Address coord_addr(int dc) const;
  std::vector<Address> all_replicas(int shard) const;
  std::vector<Address> all_coords() const;
  std::vector<std::string> dc_names = {"oregon", "ireland", "seoul"};

  /// Optional explicit address maps. In-process clusters use the logical
  /// name-derived addresses above; a cross-process cluster fills these with
  /// real TCP "host:port" endpoints learned during the port exchange, and
  /// they take precedence when non-empty.
  std::vector<std::vector<Address>> shard_addrs_override;  // [dc][shard]
  std::vector<Address> coord_addrs_override;               // [dc]
};

// ------------------------------------------------------------ wire helpers
// RC payloads ride inside framework Values.

Value encode_read_result(const ReadResult& r);
ReadResult decode_read_result(const std::string& key, const Value& v);

Value encode_reads(const std::vector<kv::ReadValidation>& reads);
std::vector<kv::ReadValidation> decode_reads(const Value& v);

Value encode_writes(const std::vector<kv::WriteOp>& writes);
std::vector<kv::WriteOp> decode_writes(const Value& v);

/// Batch wire format: a batch is a list of per-transaction entries, each
/// vlist(txn, global_index, reads, writes) with reads/writes encoded as
/// above. Shared by batch.prepare (shard payload) and rc.batch_commit
/// (coordinator fan-out).
Value encode_batch_entries(const std::vector<kv::BatchEntry>& entries);
std::vector<kv::BatchEntry> decode_batch_entries(const Value& v);

/// Per-entry booleans (prepare votes / decide decisions) as a Value list.
Value encode_batch_flags(const std::vector<bool>& flags);
std::vector<bool> decode_batch_flags(const Value& v);

/// Monotonic unique ids for transactions/commit versions within a process.
std::int64_t next_txn_stamp();

}  // namespace srpc::rc
