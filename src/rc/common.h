// Replicated Commit protocol: shared types, wire encodings.
//
// Replicated Commit (Mahmoud et al., VLDB'13 [26]) commits a transaction in
// one wide-area round trip by replicating the commit operation itself: the
// client sends the commit to a coordinator in every datacentre; each
// coordinator runs 2PC locally across the shards of its own DC and acts as
// an acceptor; the transaction commits once a majority of DCs accept.
// Reads are majority quorum reads across DCs; writes are buffered at the
// client until commit (§4.1 of the SpecRPC paper).
//
// Faithfulness note (also in DESIGN.md): we let the *client* tally the
// per-DC accept votes and broadcast the decision, instead of coordinators
// exchanging Paxos accepts. The client-observed commit latency is identical
// (one WAN round trip to the majority-closest DCs); only the apply path at
// non-majority DCs differs, off the measured path.
//
// Routing lives in rc::ClusterView (rc/view.h): every key hashes to a slot,
// every view assigns slots to shards, and views are epoch-versioned so the
// map can change while traffic flows (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kvstore/store.h"
#include "rc/view.h"
#include "serde/value.h"
#include "transport/transport.h"

namespace srpc::rc {

/// Method names. Epoch-checked methods carry the caller's view epoch as
/// their LAST argument and are NACKed with kWrongEpoch on mismatch:
/// rc.read, rc.prepare, rc.commit and their batch forms. Decision-side
/// methods (rc.decide/apply/abort, batch.apply, rc.batch_decide) are not
/// epoch-checked — an in-flight 2PC resolves in the epoch that prepared it.
inline constexpr const char* kRead = "rc.read";
inline constexpr const char* kCommit = "rc.commit";
inline constexpr const char* kPrepare = "rc.prepare";
inline constexpr const char* kDecide = "rc.decide";
inline constexpr const char* kApply = "rc.apply";
inline constexpr const char* kAbort = "rc.abort";

/// Batch-mode method names (queue-oriented group commit, DESIGN.md §12).
/// batch.read args carry (key, batch-epoch, shard, pos, view-epoch) so every
/// queue position gets a distinct predictor key — queue-order seeds never
/// collide across positions, batch epochs, or view epochs (migrated keys
/// must not serve predictions seeded under the old placement).
inline constexpr const char* kBatchRead = "batch.read";
inline constexpr const char* kBatchPrepare = "batch.prepare";
inline constexpr const char* kBatchApply = "batch.apply";
inline constexpr const char* kBatchCommit = "rc.batch_commit";
inline constexpr const char* kBatchDecide = "rc.batch_decide";

/// View-change protocol (DESIGN.md §13).
///   view.install (view_wire)        -> (epoch)       servers/coords adopt
///   view.pull    (epoch, slots_csv) -> (entries)     state transfer source
///   view.status  ()                 -> (epoch, warming_slots)
///   view.get     ()                 -> (view_wire)   client refresh
inline constexpr const char* kViewInstall = "view.install";
inline constexpr const char* kViewPull = "view.pull";
inline constexpr const char* kViewStatus = "view.status";
inline constexpr const char* kViewGet = "view.get";

/// One workload operation inside a transaction.
struct Op {
  bool is_read = true;
  std::string key;
  std::string value;  // writes only
};

/// A completed read inside a transaction.
struct ReadResult {
  std::string key;
  std::string value;
  std::int64_t version = 0;
};

struct TxnResult {
  bool committed = false;
  bool read_only = false;
  Duration total{};        // begin -> decision
  Duration commit_phase{}; // commit issue -> decision (paper's "commit latency")
  std::vector<ReadResult> reads;
  /// Number of wrong-epoch NACKs that forced a view refresh + re-issue of
  /// this transaction (0 in steady state).
  int view_refreshes = 0;
};

// ------------------------------------------------------------ wire helpers
// RC payloads ride inside framework Values.

Value encode_read_result(const ReadResult& r);
ReadResult decode_read_result(const std::string& key, const Value& v);

Value encode_reads(const std::vector<kv::ReadValidation>& reads);
std::vector<kv::ReadValidation> decode_reads(const Value& v);

Value encode_writes(const std::vector<kv::WriteOp>& writes);
std::vector<kv::WriteOp> decode_writes(const Value& v);

/// Batch wire format: a batch is a list of per-transaction entries, each
/// vlist(txn, global_index, reads, writes) with reads/writes encoded as
/// above. Shared by batch.prepare (shard payload) and rc.batch_commit
/// (coordinator fan-out).
Value encode_batch_entries(const std::vector<kv::BatchEntry>& entries);
std::vector<kv::BatchEntry> decode_batch_entries(const Value& v);

/// Per-entry booleans (prepare votes / decide decisions) as a Value list.
Value encode_batch_flags(const std::vector<bool>& flags);
std::vector<bool> decode_batch_flags(const Value& v);

/// view.pull payload: vlist of vlist(key, value, version).
Value encode_store_entries(
    const std::vector<std::tuple<std::string, std::string, std::int64_t>>&
        entries);
std::vector<std::tuple<std::string, std::string, std::int64_t>>
decode_store_entries(const Value& v);

/// Monotonic unique ids for transactions/commit versions within a process.
std::int64_t next_txn_stamp();

}  // namespace srpc::rc
