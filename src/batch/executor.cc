#include "batch/executor.h"

#include <exception>
#include <mutex>
#include <thread>

#include "rc/client.h"  // max_version_combiner

namespace srpc::batch {

namespace {

ValueList read_args(const std::string& key, std::uint64_t epoch, int shard,
                    std::size_t pos, std::int64_t vepoch) {
  // (key, epoch, shard, pos, vepoch): the extra coordinates make every
  // queue position a distinct predictor key (predict::key_of hashes the
  // args) — including the view epoch, so predictions primed under an old
  // view never validate a post-migration read. The trailing vepoch is also
  // what the server checks for the wrong-epoch NACK.
  ValueList args;
  args.reserve(5);
  args.emplace_back(key);
  args.emplace_back(static_cast<std::int64_t>(epoch));
  args.emplace_back(static_cast<std::int64_t>(shard));
  args.emplace_back(static_cast<std::int64_t>(pos));
  args.emplace_back(vepoch);
  return args;
}

}  // namespace

BatchExecutor::BatchExecutor(rc::RpcKit& kit,
                             std::shared_ptr<rc::ViewProvider> views,
                             int my_dc, int read_quorum,
                             std::shared_ptr<SeedStore> seeds)
    : kit_(kit),
      views_(std::move(views)),
      my_dc_(my_dc),
      read_quorum_(read_quorum),
      seeds_(std::move(seeds)) {}

std::vector<Address> BatchExecutor::replicas_for(const rc::ClusterView& view,
                                                 int shard) const {
  std::vector<Address> out;
  out.reserve(static_cast<std::size_t>(view.num_dcs));
  out.push_back(view.shard_addr(my_dc_, shard));  // local DC first
  for (int dc = 0; dc < view.num_dcs; ++dc) {
    if (dc != my_dc_) out.push_back(view.shard_addr(dc, shard));
  }
  return out;
}

rc::ReadResult BatchExecutor::quorum_read(const rc::ClusterView& view,
                                          const std::string& key,
                                          std::uint64_t epoch, int shard,
                                          std::size_t pos) {
  std::vector<rc::FuturePtr> futures;
  for (const auto& addr : replicas_for(view, shard)) {
    futures.push_back(kit_.call(addr, rc::kBatchRead,
                                read_args(key, epoch, shard, pos, view.epoch)));
  }
  auto result = rc::quorum_wait_detailed(futures, read_quorum_);
  if (static_cast<int>(result.successes.size()) < read_quorum_) {
    for (const auto& error : result.errors) {
      if (rc::is_wrong_epoch(error)) {
        throw rc::WrongEpochError(rc::parse_wrong_epoch(error));
      }
    }
    throw rpc::RpcError("batch quorum read failed for " + key);
  }
  std::vector<Value> values;
  values.reserve(result.successes.size());
  for (auto& o : result.successes) values.push_back(o.value);
  return rc::decode_read_result(key, rc::max_version_combiner(values));
}

spec::CallbackFactory BatchExecutor::chain_factory(
    View view, std::shared_ptr<const std::vector<WireRead>> reads,
    std::uint64_t epoch, std::size_t idx,
    std::vector<rc::ReadResult> acc) const {
  // Fresh callback per speculation branch; the accumulated reads are an
  // isolated by-value snapshot (the RC chain pattern, paper §3.5.2), so a
  // re-executed suffix never sees an abandoned branch's state.
  return [this, view, reads, epoch, idx, acc]() -> spec::CallbackFn {
    return [this, view, reads, epoch, idx,
            acc](spec::SpecContext& ctx, const Value& v) -> spec::CallbackResult {
      const WireRead& wr = (*reads)[idx];
      std::vector<rc::ReadResult> mine = acc;
      mine.push_back(rc::decode_read_result(wr.key, v));
      // Refresh the seed cache with the read this branch observed. From a
      // speculative branch the put registers a rollback, so an abandoned
      // branch's (predicted) value is undone with the branch.
      if (seeds_ != nullptr) {
        const auto& r = mine.back();
        seeds_->put(r.key, r.value, r.version);
      }
      if (idx + 1 < reads->size()) {
        const WireRead& next = (*reads)[idx + 1];
        return ctx.call_quorum(
            replicas_for(*view, next.shard), read_quorum_, rc::kBatchRead,
            read_args(next.key, epoch, next.shard, next.pos, view->epoch),
            rc::max_version_combiner,
            chain_factory(view, reads, epoch, idx + 1, std::move(mine)));
      }
      // Queue tail: block until every speculation in this chain resolved —
      // nothing speculative may reach the commit round (§4.1 specBlock).
      ctx.spec_block();
      ValueList out;
      out.reserve(mine.size());
      for (const auto& r : mine) out.push_back(vlist(r.key, r.value, r.version));
      return Value(std::move(out));
    };
  };
}

ReadSet BatchExecutor::execute(const BatchPlan& plan, BatchMode mode,
                               View view) {
  ReadSet result;
  spec::SpecEngine* engine = kit_.spec_engine();
  if (mode == BatchMode::kSpeculative && engine != nullptr) {
    // One chain per non-empty shard queue, all in flight concurrently.
    struct ShardChain {
      const std::vector<WireRead>* reads;
      spec::SpecFuturePtr future;
    };
    std::vector<ShardChain> chains;
    for (int shard = 0; shard < plan.num_shards; ++shard) {
      const auto& reads = plan.wire_reads[static_cast<std::size_t>(shard)];
      if (reads.empty()) continue;
      auto shared = std::make_shared<const std::vector<WireRead>>(reads);
      const WireRead& first = (*shared)[0];
      auto future = engine->call_quorum(
          replicas_for(*view, first.shard), read_quorum_, rc::kBatchRead,
          read_args(first.key, plan.epoch, first.shard, first.pos,
                    view->epoch),
          rc::max_version_combiner,
          chain_factory(view, shared, plan.epoch, 0, {}));
      chains.push_back(ShardChain{&reads, std::move(future)});
    }
    for (auto& chain : chains) {
      Value all;
      try {
        all = chain.future->get();  // non-speculative results
      } catch (const rpc::RpcError& err) {
        // A wrong-epoch NACK from any replica fails the whole chain; every
        // branch opened under the old view has already rolled back inside
        // the engine by the time the future resolves.
        if (rc::is_wrong_epoch(err.what())) {
          throw rc::WrongEpochError(rc::parse_wrong_epoch(err.what()));
        }
        throw;
      }
      const ValueList& list = all.as_list();
      for (std::size_t i = 0; i < list.size(); ++i) {
        const ValueList& triple = list[i].as_list();
        const WireRead& wr = (*chain.reads)[i];
        result[{wr.txn_pos, wr.op_pos}] =
            rc::ReadResult{triple.at(0).as_string(), triple.at(1).as_string(),
                           triple.at(2).as_int()};
      }
    }
    return result;
  }

  // Non-speculative queue machine: each queue processes its reads strictly
  // in order, but independent queues run concurrently — that is the
  // parallelism partitioned queues buy even without speculation.
  std::mutex mu;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  for (int shard = 0; shard < plan.num_shards; ++shard) {
    const auto& reads = plan.wire_reads[static_cast<std::size_t>(shard)];
    if (reads.empty()) continue;
    workers.emplace_back([&, shard] {
      try {
        for (const auto& wr : plan.wire_reads[static_cast<std::size_t>(shard)]) {
          auto r = quorum_read(*view, wr.key, plan.epoch, wr.shard, wr.pos);
          if (seeds_ != nullptr) seeds_->put(r.key, r.value, r.version);
          std::lock_guard<std::mutex> lock(mu);
          result[{wr.txn_pos, wr.op_pos}] = std::move(r);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : workers) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return result;
}

}  // namespace srpc::batch
