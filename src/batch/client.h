// BatchClient — drives one client machine's batch epochs end to end
// (DESIGN.md §12): plan -> execute queues -> compute -> one batch-wide
// commit round -> dependency closure -> decide broadcast.
//
// The commit protocol is Replicated Commit lifted to batches: the client
// sends the whole batch to a coordinator in every datacentre
// (rc.batch_commit); each coordinator runs a DC-local 2PC across its shards
// (batch.prepare validates the shard's slice of every transaction in queue
// order under ONE store lock hold) and returns a per-transaction vote
// vector; a transaction commits once a majority of DCs voted yes for it.
// The client then closes dependencies — a transaction whose overlay read
// came from an aborted transaction aborts too, transitively — and
// broadcasts rc.batch_decide, which applies all decided writes per shard
// with one group TxnLog append.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "batch/adaptive.h"
#include "batch/executor.h"
#include "batch/planner.h"
#include "batch/pressure.h"
#include "batch/seed.h"
#include "predict/admission.h"
#include "rc/kit.h"

namespace srpc::batch {

struct BatchClientConfig {
  int my_dc = 0;
  int read_quorum = 2;
  int vote_quorum = 2;  // majority of 3 DCs
  BatchMode mode = BatchMode::kSpeculative;
  /// Epoch size next_epoch_size() reports when no adaptive controller is
  /// attached (sized workload sources ask the client how many transactions
  /// to generate; static configs answer with this).
  std::size_t txns_per_epoch = 8;
};

struct EpochResult {
  std::uint64_t epoch = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  /// Final per-transaction decision, batch order (vote AND dep closure).
  std::vector<bool> decisions;
  /// Mode this epoch actually ran in (the controller's pick, which may be a
  /// probe; config mode when no controller is attached).
  BatchMode mode = BatchMode::kSpeculative;
  Duration total{};         // plan -> decide broadcast
  Duration commit_phase{};  // commit round only (batched modes)
  Duration read_phase{};    // wall time resolving wire reads
};

/// Cumulative per-client counters (atomics: the storm test reads them from
/// other threads).
struct BatchClientStats {
  std::atomic<std::uint64_t> epochs{0};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<std::uint64_t> dep_aborts{0};      // aborted only by closure
  std::atomic<std::uint64_t> wire_reads{0};
  std::atomic<std::uint64_t> overlay_reads{0};   // resolved without an RPC
  std::atomic<std::uint64_t> view_refreshes{0};  // wrong-epoch NACKs absorbed
};

class BatchClient {
 public:
  /// `seeds`/`predictor` enable queue-order prediction seeding (kSpeculative
  /// with a spec engine); either may be null. `gauge` (optional, shared
  /// across clients) feeds the admission controller's pressure source.
  BatchClient(rc::RpcKit& kit, std::shared_ptr<rc::ViewProvider> views,
              BatchClientConfig config,
              std::shared_ptr<SeedStore> seeds = nullptr,
              std::shared_ptr<QueueSeedPredictor> predictor = nullptr,
              std::shared_ptr<BatchQueueGauge> gauge = nullptr);

  /// Runs one batch epoch over `txns`. Synchronous: returns after the
  /// decide broadcast is out (kPerTxn2pc: after the last txn's decide).
  /// A wrong-epoch NACK before anything committed re-plans the whole epoch
  /// under the refreshed view (bounded retries); once any transaction of
  /// the batch has committed the epoch is never replayed — remaining
  /// transactions just abort and the stream moves on.
  ///
  /// With an adaptive controller attached, the epoch runs in the
  /// controller's mode (cached by next_epoch_size(), fetched here if the
  /// driver never asked) and its outcome is fed back as one EpochFeedback.
  EpochResult run_epoch(std::vector<BatchTxn> txns);

  /// How many transactions the next epoch should carry: the adaptive
  /// controller's decision (cached until the next run_epoch consumes it),
  /// or config.txns_per_epoch without one. Sized workload sources call
  /// this right before generating the epoch.
  std::size_t next_epoch_size();

  /// Attaches the online epoch-size/commit-mode controller; while attached,
  /// it overrides config.mode per epoch. Wire before traffic.
  void set_controller(std::shared_ptr<AdaptiveBatchController> controller) {
    controller_ = std::move(controller);
  }
  const std::shared_ptr<AdaptiveBatchController>& controller() const {
    return controller_;
  }
  /// Admission ladder whose level feeds the controller's pressure signal
  /// (optional; shared with the cluster's prediction manager).
  void set_admission(std::shared_ptr<predict::AdmissionController> admission) {
    admission_ = std::move(admission);
  }

  const std::shared_ptr<rc::ViewProvider>& views() const { return views_; }

  const BatchClientStats& stats() const { return stats_; }
  /// Static mode from config; epochs may deviate under an attached
  /// controller (see EpochResult::mode).
  BatchMode mode() const { return config_.mode; }
  const std::shared_ptr<SeedStore>& seeds() const { return seeds_; }
  const std::shared_ptr<QueueSeedPredictor>& predictor() const {
    return predictor_;
  }

 private:
  using View = std::shared_ptr<const rc::ClusterView>;

  struct ComputedTxn {
    std::vector<kv::ReadValidation> validations;  // wire reads only
    std::vector<kv::WriteOp> writes;
  };

  EpochResult run_batched(const BatchPlan& plan, const View& view,
                          BatchMode mode);
  EpochResult run_per_txn(const BatchPlan& plan, const View& view);

  /// Resolves reads / applies transforms in queue (= batch) order against
  /// the rolling overlay of queued writes; wire reads come from `reads`.
  std::vector<ComputedTxn> compute(const BatchPlan& plan,
                                   const ReadSet& reads);

  void prime_predictions(const BatchPlan& plan);

  /// Installs the view carried by a wrong-epoch NACK and invalidates only
  /// the seeds whose slots migrated between the old and new view (seeds on
  /// unmoved slots stay warm; see SeedStore::invalidate_moved). A NACK
  /// without a parseable view falls back to the conservative full clear.
  void refresh_view(const rc::WrongEpochError& err);

  /// Marks an epoch observed for the controller's feedback deltas; returns
  /// the snapshot taken at epoch start.
  struct StatsSnapshot {
    std::uint64_t dep_aborts = 0;
    std::uint64_t wire_reads = 0;
    std::uint64_t seed_checked = 0;
    std::uint64_t seed_correct = 0;
  };
  StatsSnapshot snapshot_counters() const;
  void feed_controller(const BatchDecision& decision,
                       const EpochResult& result,
                       const StatsSnapshot& before, Duration epoch_time);

  /// Classic RC commit round for one transaction (the per-txn baseline).
  /// Throws rc::WrongEpochError when the round failed on a stale view.
  bool commit_single(const rc::ClusterView& view, kv::TxnId txn_id,
                     const std::vector<kv::ReadValidation>& validations,
                     const std::vector<kv::WriteOp>& writes);

  rc::RpcKit& kit_;
  std::shared_ptr<rc::ViewProvider> views_;
  BatchClientConfig config_;
  std::shared_ptr<SeedStore> seeds_;
  std::shared_ptr<QueueSeedPredictor> predictor_;
  std::shared_ptr<BatchQueueGauge> gauge_;
  std::shared_ptr<AdaptiveBatchController> controller_;
  std::shared_ptr<predict::AdmissionController> admission_;
  /// Controller decision fetched by next_epoch_size(), consumed by the next
  /// run_epoch (client threads are single-driver, like the stats contract).
  std::optional<BatchDecision> pending_decision_;
  TxnPlanner planner_;
  BatchExecutor executor_;
  BatchClientStats stats_;
};

}  // namespace srpc::batch
